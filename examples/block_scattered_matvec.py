#!/usr/bin/env python
"""Block-scattered dense linear algebra: distributed y = A @ x.

The paper's introduction cites Dongarra, van de Geijn & Walker on the
importance of the block-scattered (cyclic(k)) distribution for scalable
dense linear algebra.  This example runs a matrix-vector product on the
simulated machine with the matrix rows distributed cyclic(k):

* each rank owns the rows the cyclic(k) map assigns it (enumerated with
  the paper's access machinery -- a degenerate section with stride 1);
* ``x`` is replicated via an allgather (the standard matvec pattern);
* each rank computes its local row blocks with NumPy and the result is
  collected and checked against a sequential ``A @ x``.

Run:  python examples/block_scattered_matvec.py
"""

import numpy as np

from repro.core import iter_global_indices, local_allocation_size
from repro.distribution import CyclicLayout
from repro.machine import VirtualMachine, allgather, machine_report

P, K, N = 4, 3, 64  # 4 ranks, cyclic(3) rows, 64x64 matrix
RNG = np.random.default_rng(7)


def main() -> None:
    layout = CyclicLayout(P, K)
    host_a = RNG.random((N, N))
    host_x = RNG.random(N)

    vm = VirtualMachine(P)

    # --- Distribute: each rank stores its owned rows contiguously in
    # local row order (exactly the compressed local storage the access
    # sequence walks).
    for rank in range(P):
        rows = list(iter_global_indices(P, K, 0, 1, rank, N - 1))
        local_rows = local_allocation_size(P, K, N, rank)
        assert len(rows) == local_rows
        proc = vm.processors[rank]
        arena = proc.allocate("A_rows", local_rows * N)
        for slot, row in enumerate(rows):
            arena[slot * N : (slot + 1) * N] = host_a[row]
        xbuf = proc.allocate("x", N)
        # Rank 0 owns the authoritative x; others start empty.
        if rank == 0:
            xbuf[:] = host_x

    # --- Replicate x (allgather of each rank's share; here rank 0
    # broadcasts its full copy through the collective layer).
    copies = allgather(vm, [vm.processors[r].memory("x").copy() for r in range(P)])
    for rank in range(P):
        vm.processors[rank].memory("x")[:] = copies[rank][0]

    # --- Local compute: y_local = A_local @ x  (vectorized per rank).
    def compute(ctx):
        a_rows = ctx.memory("A_rows").reshape(-1, N)
        y = a_rows @ ctx.memory("x")
        ctx.allocate("y", len(y))
        ctx.memory("y")[:] = y
        return y

    vm.run(compute)

    # --- Collect y back to a host image using the same row enumeration.
    got = np.zeros(N)
    for rank in range(P):
        rows = list(iter_global_indices(P, K, 0, 1, rank, N - 1))
        got[rows] = vm.processors[rank].memory("y")[: len(rows)]

    want = host_a @ host_x
    assert np.allclose(got, want)
    report = machine_report(vm)
    print(f"distributed y = A @ x with rows cyclic({K}) over {P} ranks  [ok]")
    print(f"max |error| = {np.abs(got - want).max():.3e}")
    print(f"messages exchanged (x replication): {report['messages']}, "
          f"bytes: {report['bytes']}")
    owned = [layout.allocation_size(N, m) for m in range(P)]
    print(f"rows per rank: {owned} (balanced by the cyclic map)")


if __name__ == "__main__":
    main()
