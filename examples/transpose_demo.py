#!/usr/bin/env python
"""Distributed transpose: the classic communication-heavy array statement.

``Q = TRANSPOSE(M)`` written in the mini-HPF language, compiled to a
tensor-product communication schedule (per-dimension 1-D access
machinery), executed on the simulated machine, and verified against
NumPy.  The traffic heatmap shows the all-to-all-ish pattern a
transpose induces on a 2x2 grid, and how the choice of block sizes
changes the local fraction.

Run:  python examples/transpose_demo.py
"""

import numpy as np

from repro.lang import compile_source
from repro.runtime import distribute, traffic_matrix
from repro.viz import render_traffic

N = 48

SOURCE = f"""
PROCESSORS P(2, 2)
TEMPLATE   T({N}, {N})
REAL       M({N}, {N})
REAL       Q({N}, {N})
ALIGN      M(i, j) WITH T(i, j)
ALIGN      Q(i, j) WITH T(i, j)
DISTRIBUTE T(CYCLIC(4), CYCLIC(4)) ONTO P

Q(0:{N - 1}, 0:{N - 1}) = TRANSPOSE(M(0:{N - 1}, 0:{N - 1}))
"""


def main() -> None:
    program = compile_source(SOURCE)
    stmt = program.statements[0]
    print(f"compiled: {stmt.description}")
    sched = stmt.schedule
    print(f"schedule: {sched.total_elements} elements, "
          f"{sched.communicated_elements} cross the network "
          f"({100 * sched.communicated_elements / sched.total_elements:.0f}%)")

    vm = program.make_machine()
    host_m = np.arange(N * N, dtype=float).reshape(N, N)
    distribute(vm, program.arrays["M"], host_m)
    program.run(vm)
    got = program.image(vm, "Q")
    assert np.array_equal(got, host_m.T)
    print("Q == M.T verified against NumPy  [ok]\n")

    # Element traffic between ranks (2x2 grid, row-major ranks).
    matrix = np.zeros((4, 4), dtype=np.int64)
    for tr in sched.locals_ + sched.transfers:
        matrix[tr.source, tr.dest] += len(tr)
    print(render_traffic(matrix, label="transpose elements"))
    print("\nDiagonal ranks (0, 3) keep their diagonal blocks; "
          "off-diagonal ranks swap entire blocks --")
    print("the square-grid transpose pattern block-scattered libraries "
          "schedule around.")


if __name__ == "__main__":
    main()
