#!/usr/bin/env python
"""Elastic stencil: ride out a crash, then shrink the machine live.

``stencil_shift.py`` runs the plain Jacobi sweep; this example runs the
same sweep through :class:`repro.runtime.ElasticSession` and exercises
the two membership events a long-running job sees:

1. **A transient crash.**  A fault plan SIGKILLs rank 2 during the first
   sweep's shift exchange; the resilient executor restores it from a
   checkpoint and replays the lost transfers -- the sweep's result is
   still exact.
2. **A planned shrink.**  Mid-run the cluster reclaims half the nodes,
   so every registered array is live-migrated from p=4 to p=2 with
   :meth:`ElasticSession.relayout`.  The session defers retiring ranks
   2-3 until the *last* array has left them, then membership commits
   and the remaining sweeps run on the smaller machine.

The final field is verified against the sequential NumPy sweep: crash
recovery and re-layout are both bit-transparent.

Run:  python examples/elastic_stencil.py
"""

import numpy as np

from repro.distribution import (
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.machine import VirtualMachine
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.obs import Observability
from repro.runtime import ElasticSession, collect

P, K, N = 4, 8, 192
SWEEPS_BEFORE, SWEEPS_AFTER = 3, 3
SHRINK_TO = 2


def build(name: str, p: int) -> DistributedArray:
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (N,), grid, (AxisMap(CyclicK(K), grid_axis=0),))


def sweep(vm: VirtualMachine, session: ElasticSession) -> None:
    interior = RegularSection(1, N - 2, 1)
    from_left = RegularSection(0, N - 3, 1)
    from_right = RegularSection(2, N - 1, 1)
    session.copy("LEFT", interior, "A", from_left)
    session.copy("RIGHT", interior, "A", from_right)
    a = session.arrays["A"]

    def jacobi(ctx):
        mem_a = ctx.memory("A")
        mem_l = ctx.memory("LEFT")
        mem_r = ctx.memory("RIGHT")
        for _idx, addr in a.local_section_elements((interior,), ctx.rank):
            mem_a[addr] = 0.5 * (mem_l[addr] + mem_r[addr])

    vm.run(jacobi)


def main() -> None:
    rng = np.random.default_rng(11)
    host = rng.random(N)

    # Rank 2 is killed at superstep 2 -- inside the first shift exchange
    # -- and reboots one superstep later with wiped memory.
    plan = FaultPlan(forced_crashes=frozenset({(2, 2)}), crash_downtime=1)
    obs = Observability(enabled=True)
    vm = VirtualMachine(P, fault_plan=plan, obs=obs)
    store = CheckpointStore(CheckpointPolicy(every=1, retention=8))
    session = ElasticSession(vm, checkpoints=store)

    session.register(build("A", P), host)
    session.register(build("LEFT", P), np.zeros(N))
    session.register(build("RIGHT", P), np.zeros(N))

    print(f"Jacobi on {N} points, cyclic({K}) over p={P}; "
          f"rank 2 will crash during sweep 1...")
    for _ in range(SWEEPS_BEFORE):
        sweep(vm, session)
    crashes = list(vm.crash_log)
    assert crashes, "the planned crash should have fired"
    print(f"survived crash of rank {crashes[0][0]} at superstep "
          f"{crashes[0][1]} (checkpoint restore + replay)")

    # --- The cluster reclaims two nodes: migrate every array p=4 -> p=2.
    for name in ("A", "LEFT", "RIGHT"):
        session.relayout(name, None, new_p=SHRINK_TO)
    assert vm.p == SHRINK_TO
    moved = sum(r.stats.remote_elements for r in session.migrations)
    print(f"shrank p={P} -> p={vm.p}: {len(session.migrations)} migrations, "
          f"{moved} elements moved remotely; ranks {SHRINK_TO}..{P - 1} "
          f"retired after the last array left them")

    for _ in range(SWEEPS_AFTER):
        sweep(vm, session)

    # --- Verify against the sequential sweep.
    ref = host.copy()
    for _ in range(SWEEPS_BEFORE + SWEEPS_AFTER):
        ref[1:-1] = 0.5 * (ref[:-2] + ref[2:])
    got = collect(vm, session.arrays["A"])
    assert np.array_equal(got, ref), "elastic sweep diverged from reference"
    print(f"{SWEEPS_BEFORE + SWEEPS_AFTER} sweeps across crash + shrink match "
          "the sequential reference exactly  [ok]")

    counters = obs.metrics.snapshot()["counters"]
    print(f"observability: {counters.get('elastic.migrations', 0)} migrations, "
          f"{counters.get('elastic.commits', 0)} commits, "
          f"{counters.get('resilient.checkpoints', 0)} checkpoints taken, "
          f"{counters.get('elastic.rollbacks', 0)} rollbacks")


if __name__ == "__main__":
    main()
