#!/usr/bin/env python
"""Why cyclic(k): load balance of triangular workloads + redistribution.

The paper's introduction motivates cyclic(k) through Dongarra, van de
Geijn & Walker's scalable dense linear algebra: factorizations shrink
their active region every step, so BLOCK distributions idle more and
more processors, while block-scattered (cyclic(k)) mappings keep the
shrinking triangle spread over everyone.  This example quantifies that
with the trapezoid machinery, then performs the classic supporting
runtime operation -- redistributing an array from cyclic(1) to BLOCK --
and prints the traffic matrix the communication sets induce.

Run:  python examples/lu_panel_workload.py
"""

import numpy as np

from repro.distribution import (
    AxisMap,
    Block,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.machine import VirtualMachine
from repro.runtime import (
    Trapezoid,
    collect,
    distribute,
    plan_redistribution,
    redistribute,
    traffic_matrix,
    trapezoid_local_counts,
)

N = 96  # matrix order
PR = PC = 2


def build(name: str, kr: int, kc: int) -> DistributedArray:
    grid = ProcessorGrid("G", (PR, PC))
    return DistributedArray(
        name, (N, N), grid,
        (AxisMap(CyclicK(kr), grid_axis=0), AxisMap(CyclicK(kc), grid_axis=1)),
    )


def main() -> None:
    # --- Part 1: trailing-submatrix load balance over LU steps.
    cyclic = build("C", 4, 4)
    blocky = build("B", N // PR, N // PC)  # BLOCK x BLOCK
    print(f"{N}x{N} matrix on a {PR}x{PC} grid; trailing submatrix "
          f"A(step:, step:) work per rank:\n")
    print(f"{'step':>6} {'cyclic(4) max/min':>20} {'BLOCK max/min':>16}")
    for step in (0, N // 4, N // 2, 3 * N // 4):
        trap = Trapezoid(
            RegularSection(step, N - 1, 1), 0, step, 0, N - 1
        )  # full trailing rows x [step, N)
        c = trapezoid_local_counts(cyclic, trap)
        b = trapezoid_local_counts(blocky, trap)
        c_ratio = max(c) / max(min(c), 1)
        b_ratio = max(b) / max(min(b), 1)
        print(f"{step:>6} {c_ratio:>20.2f} {b_ratio:>16.2f}")
    print("\ncyclic(k) keeps the shrinking active region balanced; BLOCK "
          "degenerates\n(idle ranks -> min goes to 0, shown as a huge ratio).")

    # --- Part 2: redistribute a vector cyclic(1) -> BLOCK for a solve phase.
    p = PR * PC
    grid1 = ProcessorGrid("P", (p,))
    src = DistributedArray("x_cyc", (N,), grid1, (AxisMap(CyclicK(1), grid_axis=0),))
    dst = DistributedArray("x_blk", (N,), grid1, (AxisMap(Block(), grid_axis=0),))
    schedule, stats = plan_redistribution(dst, src)
    vm = VirtualMachine(p)
    host = np.arange(N, dtype=float)
    distribute(vm, src, host)
    distribute(vm, dst, np.zeros(N))
    redistribute(vm, dst, src, schedule=schedule)
    assert np.array_equal(collect(vm, dst), host)

    print(f"\nredistribution cyclic(1) -> BLOCK of {N} elements: "
          f"{stats.remote_elements} moved remotely "
          f"({100 * (1 - stats.locality):.0f}%), {stats.messages} messages, "
          f"max fan-out {stats.max_fan_out}")
    print("element traffic matrix (senders x receivers):")
    print(traffic_matrix(schedule, p))


if __name__ == "__main__":
    main()
