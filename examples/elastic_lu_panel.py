#!/usr/bin/env python
"""Elastic LU panel factorization: grow the machine mid-factorization.

The LU workload example (``lu_panel_workload.py``) shows *why* cyclic(k)
keeps the shrinking trailing submatrix balanced.  This example runs the
factorization itself -- a right-looking, unpivoted LU on rows
distributed cyclic(k) -- and halfway through **grows the machine from 2
to 4 ranks live**, using :func:`repro.runtime.relayout`:

* the migration is one planned communication schedule (old layout ->
  new layout) pulled from the plan cache;
* it executes through the resilient exchange with a migration-epoch
  checkpoint as the rollback point, so a crash mid-migration can never
  leave a half-migrated arena;
* membership commits atomically (new ranks join, plans keyed to the old
  ``p`` are invalidated) and the factorization simply continues on the
  bigger machine.

The factors computed across the membership change are verified
bit-for-bit against the same elimination run sequentially in NumPy.

Run:  python examples/elastic_lu_panel.py
"""

import numpy as np

from repro.distribution import (
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
)
from repro.machine import VirtualMachine
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.obs import Observability
from repro.runtime import collect, distribute, relayout

N = 64          # matrix order
K = 4           # cyclic block of rows per shard
P0, P1 = 2, 4   # starting and grown rank counts
GROW_AT = N // 2


def build(p: int) -> DistributedArray:
    # Rows cyclic(K) over p ranks; columns "cyclic(N)" on a size-1 grid
    # axis, i.e. every rank holds full rows.
    grid = ProcessorGrid("P", (p, 1))
    return DistributedArray(
        "A", (N, N), grid,
        (AxisMap(CyclicK(K), grid_axis=0), AxisMap(CyclicK(N), grid_axis=1)),
    )


def eliminate(vm: VirtualMachine, a: DistributedArray, k: int) -> None:
    """One right-looking panel step: scale column k below the pivot and
    update the trailing submatrix, each rank on its own rows."""
    owner = a.owner((k, 0))
    proc = vm.processors[owner]
    row_slot = a.local_slots((k, 0), owner)[0]
    pivot = np.array(
        proc.memory("A").reshape(a.local_shape(owner))[row_slot], copy=True
    )

    def update(ctx):
        mem = ctx.memory("A").reshape(a.local_shape(ctx.rank))
        for r in range(mem.shape[0]):
            gi = a.global_index((r, 0), ctx.rank)[0]
            if gi > k:
                mem[r, k] /= pivot[k]
                mem[r, k + 1:] -= mem[r, k] * pivot[k + 1:]

    vm.run(update)


def main() -> None:
    rng = np.random.default_rng(17)
    host = rng.random((N, N)) + N * np.eye(N)  # diagonally dominant: no pivoting

    obs = Observability(enabled=True)
    vm = VirtualMachine(P0, obs=obs)
    store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
    a = build(P0)
    distribute(vm, a, host)

    print(f"factorizing {N}x{N} (rows cyclic({K})) on p={P0}...")
    for k in range(GROW_AT):
        eliminate(vm, a, k)

    # --- The cluster hands us two more nodes: live re-layout 2 -> 4.
    a, report = relayout(
        vm, a, None, new_p=P1, checkpoints=store, grid_shape=(P1, 1)
    )
    assert report.committed and vm.p == P1
    print(
        f"grew p={report.old_p} -> p={report.new_p} at panel {GROW_AT}: "
        f"moved {report.stats.remote_elements} of {report.stats.elements} "
        f"elements remotely ({report.moved_bytes} bytes) in "
        f"{report.supersteps} supersteps, {report.attempts} attempt(s)"
    )

    print(f"continuing factorization on p={P1}...")
    for k in range(GROW_AT, N - 1):
        eliminate(vm, a, k)

    # --- Verify against the identical elimination done sequentially.
    ref = host.copy()
    for k in range(N - 1):
        ref[k + 1:, k] /= ref[k, k]
        ref[k + 1:, k + 1:] -= np.outer(ref[k + 1:, k], ref[k, k + 1:])
    got = collect(vm, a)
    assert np.array_equal(got, ref), "factors differ from sequential LU"
    lower = np.tril(got, -1) + np.eye(N)
    upper = np.triu(got)
    assert np.allclose(lower @ upper, host)
    print("in-place LU factors match the sequential elimination exactly  [ok]")

    spans = obs.trace.spans("migration")
    counters = obs.metrics.snapshot()["counters"]
    print(
        f"observability: {len(spans)} migration span(s), "
        f"{counters.get('elastic.commits', 0)} commit(s), "
        f"{counters.get('elastic.rollbacks', 0)} rollback(s)"
    )


if __name__ == "__main__":
    main()
