#!/usr/bin/env python
"""Quickstart: compute a memory access sequence the paper's way.

Reproduces the paper's worked example (Section 5 / Figure 6): array
distributed cyclic(8) over 4 processors, section A(4:u:9), processor 1.
Shows the three API levels:

1. the raw algorithm (`compute_access_table`);
2. the offset-indexed tables node code 8(d) consumes;
3. the table-free R/L cursor (Section 6.2).

Run:  python examples/quickstart.py
"""

from repro.core import (
    RLCursor,
    compute_access_table,
    compute_offset_tables,
    compute_rl_basis,
)
from repro.core.baselines import sorting_access_table

P, K, L, S, M = 4, 8, 4, 9, 1


def main() -> None:
    print(f"Distribution: cyclic({K}) over {P} processors; section A({L}::{S}); "
          f"processor {M}\n")

    # 1. The linear-time algorithm (Figure 5).
    table = compute_access_table(P, K, L, S, M)
    print(f"start location (global index) : {table.start}")
    print(f"start local address           : {table.start_local}")
    print(f"cycle length                  : {table.length}")
    print(f"Delta-M table (memory gaps)   : {list(table.gaps)}")
    print(f"index gaps                    : {list(table.index_gaps)}")

    basis = compute_rl_basis(P, K, S)
    print(f"basis vectors                 : R = {basis.r.vector}, "
          f"L = {basis.l.vector}")

    # The paper's numbers: start=13, AM=[3,12,15,12,3,12,3,12],
    # R=(4,1), L=(5,-1).
    assert table.start == 13
    assert list(table.gaps) == [3, 12, 15, 12, 3, 12, 3, 12]

    # First few local addresses / global indices of the traversal.
    print(f"\nfirst 9 global indices        : {table.global_indices(9)}")
    print(f"first 9 local addresses       : {table.local_addresses(9)}")

    # 2. Offset-indexed tables for node-code shape 8(d).
    offs = compute_offset_tables(P, K, L, S, M)
    print(f"\nshape-(d) startoffset         : {offs.start_offset}")
    print(f"shape-(d) deltaM by offset    : {list(offs.delta_m)}")
    print(f"shape-(d) NextOffset          : {list(offs.next_offset)}")

    # 3. Table-free generation from R and L alone (O(1) memory).
    cursor = RLCursor(P, K, L, S, M)
    stream = []
    for _ in range(5):
        stream.append((cursor.index, cursor.local))
        cursor.advance()
    print(f"\nR/L cursor stream             : {stream}")

    # Cross-check against the Chatterjee et al. sorting baseline.
    baseline = sorting_access_table(P, K, L, S, M)
    assert baseline.gaps == table.gaps
    print("\nsorting baseline agrees with the lattice method  [ok]")


if __name__ == "__main__":
    main()
