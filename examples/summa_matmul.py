#!/usr/bin/env python
"""SUMMA-style distributed matrix multiply on block-cyclic arrays.

The paper's introduction motivates cyclic(k) via Dongarra, van de Geijn
& Walker's scalable dense linear algebra; van de Geijn's SUMMA is the
canonical algorithm on exactly this data layout.  C = A @ B on a
``pr x pc`` grid with all three matrices distributed
``(cyclic(k), cyclic(k))``:

  for each width-``w`` panel of the summation index:
    * the grid column owning those columns of A broadcasts its local
      rows of the panel along each grid row;
    * the grid row owning those rows of B broadcasts its local columns
      of the panel along each grid column;
    * every rank accumulates ``C_local += Apanel @ Bpanel``.

The per-rank panel extraction uses the access-sequence machinery
(which local column/row slots hold a global index range), the exchange
runs on the BSP machine, and the result is verified against NumPy.

Run:  python examples/summa_matmul.py
"""

import numpy as np

from repro.distribution import (
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.distribution.localize import localized_elements
from repro.machine import VirtualMachine, machine_report

N = 48          # matrix order
PR, PC = 2, 2   # grid
K = 4           # block size in both dimensions
W = K           # panel width (aligned with the block size)


def build(name: str, grid: ProcessorGrid) -> DistributedArray:
    return DistributedArray(
        name, (N, N), grid,
        (AxisMap(CyclicK(K), grid_axis=0), AxisMap(CyclicK(K), grid_axis=1)),
    )


def local_matrix(vm, array, rank):
    return vm.processors[rank].memory(array.name).reshape(array.local_shape(rank))


def dim_slots(array, dim, lo, hi, coord):
    """Local slots along ``dim`` holding global indices [lo, hi] on the
    given grid coordinate (ascending global order)."""
    d = array._dims[dim]
    pairs = localized_elements(
        d.layout.p, d.layout.k, d.extent, d.axis_map.alignment,
        RegularSection(lo, hi, 1), coord,
    )
    return [slot for _, slot in pairs]


def main() -> None:
    grid = ProcessorGrid("G", (PR, PC))
    a = build("A", grid)
    b = build("B", grid)
    c = build("C", grid)

    rng = np.random.default_rng(42)
    host_a = rng.random((N, N))
    host_b = rng.random((N, N))

    vm = VirtualMachine(PR * PC)
    from repro.runtime import collect, distribute

    distribute(vm, a, host_a)
    distribute(vm, b, host_b)
    distribute(vm, c, np.zeros((N, N)))

    col_layout = a.dim_layout(1)   # owner of A's columns
    row_layout = b.dim_layout(0)   # owner of B's rows

    for panel_lo in range(0, N, W):
        panel_hi = min(panel_lo + W - 1, N - 1)
        a_owner_col = col_layout.owner(panel_lo)   # grid column holding A panel
        b_owner_row = row_layout.owner(panel_lo)   # grid row holding B panel

        def broadcast_panels(ctx):
            pr, pc = grid.coordinates(ctx.rank)
            if pc == a_owner_col:
                slots = dim_slots(a, 1, panel_lo, panel_hi, pc)
                panel = local_matrix(vm, a, ctx.rank)[:, slots].copy()
                for dest_pc in range(PC):
                    ctx.send(grid.linearize((pr, dest_pc)), "Apanel", panel)
            if pr == b_owner_row:
                slots = dim_slots(b, 0, panel_lo, panel_hi, pr)
                panel = local_matrix(vm, b, ctx.rank)[slots, :].copy()
                for dest_pr in range(PR):
                    ctx.send(grid.linearize((dest_pr, pc)), "Bpanel", panel)

        def accumulate(ctx):
            pr, pc = grid.coordinates(ctx.rank)
            a_panel = ctx.recv(grid.linearize((pr, a_owner_col)), "Apanel")
            b_panel = ctx.recv(grid.linearize((b_owner_row, pc)), "Bpanel")
            c_local = local_matrix(vm, c, ctx.rank)
            c_local += a_panel @ b_panel

        vm.bsp(broadcast_panels, accumulate)

    got = collect(vm, c)
    want = host_a @ host_b
    assert np.allclose(got, want), np.abs(got - want).max()
    report = machine_report(vm)
    print(f"SUMMA C = A @ B, {N}x{N}, cyclic({K}) x cyclic({K}) on a "
          f"{PR}x{PC} grid  [ok]")
    print(f"max |error| = {np.abs(got - want).max():.3e}")
    print(f"panels: {N // W}; messages: {report['messages']}; "
          f"bytes: {report['bytes']}")


if __name__ == "__main__":
    main()
