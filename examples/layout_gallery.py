#!/usr/bin/env python
"""Reproduce the paper's illustrations (Figures 1-4 and 6) as ASCII art.

* Figure 1: cyclic(8) layout over 4 processors with the section
  A(0::9) boxed;
* Figure 2/3: the section lattice on the (offset, row) plane and the
  basis vectors R = (4,1), L = (5,-1);
* Figure 4: the R/L line segments (described textually);
* Figure 6: the points the algorithm visits for p=4, k=8, l=4, s=9, m=1.

Run:  python examples/layout_gallery.py
"""

from repro.distribution import RegularSection
from repro.viz import (
    describe_basis,
    render_lattice_plane,
    render_layout,
    render_walk,
)


def main() -> None:
    print("=" * 72)
    print("Figure 1: cyclic(8) over 4 processors, section l=0, s=9 boxed")
    print("=" * 72)
    print(render_layout(4, 8, 160, section=RegularSection(0, 159, 9)))

    print()
    print("=" * 72)
    print("Figures 2-3: the section lattice {(b,a): 32a + b = 9i} and its basis")
    print("=" * 72)
    print(render_lattice_plane(4, 8, 9, rows=10))
    print()
    print(describe_basis(4, 8, 9))

    print()
    print("=" * 72)
    print("Figure 6: points visited by the algorithm (p=4, k=8, l=4, s=9, m=1)")
    print("          {x} = visited on processor 1, [x] = other section elements")
    print("=" * 72)
    print(render_walk(4, 8, 4, 9, 1, 320))


if __name__ == "__main__":
    main()
