#!/usr/bin/env python
"""Compile and run a mini-HPF program end to end.

The program below exercises the paper's whole pipeline: templates,
affine alignments, a cyclic(k) distribution, a strided fill (which uses
the ΔM tables and node-code shape (d)), and a section-to-section copy
whose communication sets are generated at compile time.

Run:  python examples/hpf_program.py
"""

import numpy as np

from repro.lang import compile_source
from repro.machine import machine_report
from repro.runtime import distribute

SOURCE = """
! Mini-HPF: the paper's setting
PROCESSORS P(4)
TEMPLATE   T(640)
REAL       A(320)
REAL       B(320)
ALIGN      A(i) WITH T(i)        ! identity alignment
ALIGN      B(j) WITH T(2*j+1)    ! affine alignment onto odd cells
DISTRIBUTE T(CYCLIC(8)) ONTO P

A(4:319:9)  = 100.0              ! the paper's strided fill
A(0:312:8)  = B(3:237:6)         ! block-size-preserving strided copy
"""


def main() -> None:
    program = compile_source(SOURCE)
    print("Compiled statements:")
    for stmt in program.statements:
        extra = ""
        if stmt.schedule is not None:
            extra = (f"   [commsets: {stmt.schedule.communicated_elements} "
                     f"remote / {stmt.schedule.total_elements} total]")
        print(f"  {stmt.description}{extra}")

    vm = program.make_machine()
    host_b = np.arange(320, dtype=float)
    distribute(vm, program.arrays["B"], host_b)

    program.run(vm)

    got = program.image(vm, "A")
    ref = np.zeros(320)
    ref[4:320:9] = 100.0
    ref[0:313:8] = host_b[3:238:6]
    assert np.array_equal(got, ref)

    report = machine_report(vm)
    print("\nRun verified against sequential semantics  [ok]")
    print(f"machine: {report['ranks']} ranks, {report['messages']} messages, "
          f"{report['bytes']} bytes moved")
    print(f"A[0:40] = {got[:40]}")


if __name__ == "__main__":
    main()
