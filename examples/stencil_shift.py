#!/usr/bin/env python
"""Shift-style communication: a 1-D Jacobi sweep over a cyclic(k) array.

The update ``A(1:n-2) = (B(0:n-3) + B(2:n-1)) / 2`` needs the two
shifted copies of ``B`` -- precisely the array statements whose
communication sets the access-sequence machinery generates.  With a
cyclic(k) distribution the shifts cross block boundaries every k
elements, so the generated schedules are non-trivial; the example
prints the traffic they induce and verifies several sweeps against a
sequential NumPy reference.

Run:  python examples/stencil_shift.py
"""

import numpy as np

from repro.distribution import (
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.machine import VirtualMachine
from repro.runtime import collect, compute_comm_schedule, distribute, execute_copy

P, K, N, SWEEPS = 4, 8, 256, 5


def build(name: str) -> DistributedArray:
    grid = ProcessorGrid("P", (P,))
    return DistributedArray(name, (N,), grid, (AxisMap(CyclicK(K), grid_axis=0),))


def main() -> None:
    a = build("A")
    left = build("LEFT")   # holds B shifted left
    right = build("RIGHT")  # holds B shifted right

    vm = VirtualMachine(P)
    rng = np.random.default_rng(11)
    host = rng.random(N)
    distribute(vm, a, host)
    distribute(vm, left, np.zeros(N))
    distribute(vm, right, np.zeros(N))

    interior = RegularSection(1, N - 2, 1)
    from_left = RegularSection(0, N - 3, 1)
    from_right = RegularSection(2, N - 1, 1)

    # Compile-time schedules (reused every sweep, as the paper's
    # Section 6.1 recommends for compile-time-constant parameters).
    sched_l = compute_comm_schedule(left, interior, a, from_left)
    sched_r = compute_comm_schedule(right, interior, a, from_right)
    print(f"shift schedules: left moves {sched_l.communicated_elements} "
          f"elements remotely, right moves {sched_r.communicated_elements} "
          f"(of {sched_l.total_elements} each)")

    ref = host.copy()
    for sweep in range(SWEEPS):
        execute_copy(vm, left, interior, a, from_left, schedule=sched_l)
        execute_copy(vm, right, interior, a, from_right, schedule=sched_r)

        # Local compute phase: average the two shifted copies.
        def jacobi(ctx):
            mem_a = ctx.memory("A")
            mem_l = ctx.memory("LEFT")
            mem_r = ctx.memory("RIGHT")
            for idx, addr in a.local_section_elements((interior,), ctx.rank):
                mem_a[addr] = 0.5 * (mem_l[addr] + mem_r[addr])

        vm.run(jacobi)
        ref[1:-1] = 0.5 * (ref[:-2] + ref[2:])

    got = collect(vm, a)
    assert np.allclose(got, ref)
    print(f"{SWEEPS} Jacobi sweeps verified against NumPy  [ok]")
    print(f"total network traffic: {vm.network.stats.messages} messages, "
          f"{vm.network.stats.bytes} bytes")


if __name__ == "__main__":
    main()
