"""Ablation A3: lattice algorithm vs Hiranandani special case.

Both are O(k) when ``s mod pk < k``; the comparison shows the general
lattice method costs about the same as the restricted prior method on
the inputs where the latter applies (s = k//2 + 1 here).
"""

import pytest

from repro.bench.workloads import PAPER_P, TABLE1_BLOCK_SIZES
from repro.core.access import compute_access_table
from repro.core.baselines.special import special_access_table

RANK = PAPER_P // 2


@pytest.mark.parametrize("k", [k for k in TABLE1_BLOCK_SIZES if k >= 8])
@pytest.mark.parametrize("alg", ["lattice", "special"])
@pytest.mark.benchmark(max_time=0.25, min_rounds=3)
def test_special_case(benchmark, k, alg):
    benchmark.group = f"ablation-special k={k}"
    s = k // 2 + 1
    fn = compute_access_table if alg == "lattice" else special_access_table
    benchmark(fn, PAPER_P, k, 0, s, RANK)
