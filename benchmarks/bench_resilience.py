"""Resilient-exchange benchmarks: protocol overhead and fault recovery.

Not a paper table -- robustness instrumentation for the machine layer
(see docs/FAULT_MODEL.md).  The headline number is the zero-fault-rate
overhead of the acknowledged-delivery protocol over the plain executor:
one extra superstep plus checksum/ACK bookkeeping.  A second group
measures recovery cost under a moderate drop rate.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.obs import Observability, set_ambient
from repro.runtime.exec import distribute
from repro.runtime.redistribute import plan_redistribution, redistribute
from repro.runtime.resilient import RetryPolicy, redistribute_resilient

P, N = 8, 8192

# Every VM in this module shares one enabled observability handle so the
# whole suite's counters (retries, repairs, checkpoints, fault kinds)
# accumulate into a single snapshot dumped next to BENCH_resilience.json.
OBS = Observability()
METRICS_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience_metrics.json"


@pytest.fixture(scope="module", autouse=True)
def _dump_metrics():
    OBS.clear()
    prev = set_ambient(OBS)
    try:
        yield
    finally:
        set_ambient(prev)
        METRICS_PATH.write_text(json.dumps(OBS.snapshot(), indent=1) + "\n")

PAIRS = [
    ("cyclic1-to-block32", CyclicK(1), CyclicK(N // P)),
    ("cyclic4-to-cyclic32", CyclicK(4), CyclicK(32)),
]
IDS = [name for name, _, _ in PAIRS]


def _setup(src_dist, dst_dist, fault_plan=None):
    grid = ProcessorGrid("P", (P,))
    src = DistributedArray("S", (N,), grid, (AxisMap(src_dist, grid_axis=0),))
    dst = DistributedArray("D", (N,), grid, (AxisMap(dst_dist, grid_axis=0),))
    schedule, _ = plan_redistribution(dst, src)
    vm = VirtualMachine(P, fault_plan=fault_plan, obs=OBS)
    distribute(vm, src, np.arange(N, dtype=float))
    distribute(vm, dst, np.zeros(N))
    return vm, dst, src, schedule


@pytest.mark.parametrize(("name", "src_dist", "dst_dist"), PAIRS, ids=IDS)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_plain_baseline(benchmark, name, src_dist, dst_dist):
    benchmark.group = f"resilience-overhead {name}"
    vm, dst, src, schedule = _setup(src_dist, dst_dist)
    benchmark(redistribute, vm, dst, src, schedule)


@pytest.mark.parametrize(("name", "src_dist", "dst_dist"), PAIRS, ids=IDS)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_resilient_zero_fault(benchmark, name, src_dist, dst_dist):
    """The acceptance-criteria datum: protocol cost with no faults."""
    benchmark.group = f"resilience-overhead {name}"
    vm, dst, src, schedule = _setup(src_dist, dst_dist)

    def run():
        _, report = redistribute_resilient(vm, dst, src, schedule=schedule)
        assert report.retries == 0 and report.extra_supersteps < 2
        return report

    benchmark(run)


@pytest.mark.parametrize("drop", [0.1, 0.3], ids=["drop10", "drop30"])
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_resilient_under_drops(benchmark, drop):
    """Recovery cost: retransmission rounds under message loss."""
    benchmark.group = f"resilience-recovery drop={drop}"
    plan = FaultPlan(seed=1, drop=drop)
    vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32), fault_plan=plan)
    policy = RetryPolicy(max_retries=16, max_supersteps=128)

    def run():
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, policy=policy
        )
        return report

    report = benchmark(run)
    assert report.converged and report.verified


CKPT_INTERVALS = [
    ("no-checkpoints", None),
    ("every-4", 4),
    ("every-2", 2),
    ("every-1", 1),
]


@pytest.mark.parametrize(
    ("label", "every"), CKPT_INTERVALS, ids=[n for n, _ in CKPT_INTERVALS]
)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_checkpoint_overhead_zero_crash(benchmark, label, every):
    """The acceptance-criteria datum: what checkpointing costs when no
    crash ever happens, per checkpoint interval.  The no-checkpoints row
    is the baseline; denser intervals pay more snapshot bytes."""
    from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore

    benchmark.group = "checkpoint-overhead zero-crash"
    vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32))

    def run():
        store = (
            CheckpointStore(CheckpointPolicy(every=every, retention=2))
            if every is not None
            else None
        )
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, checkpoints=store
        )
        assert report.retries == 0 and report.crashes == []
        return report

    report = benchmark(run)
    benchmark.extra_info["checkpoints_taken"] = report.checkpoints_taken
    benchmark.extra_info["checkpoint_bytes"] = report.checkpoint_bytes


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_crash_recovery(benchmark):
    """Full crash-recovery cycle: one rank dies mid-exchange, restores
    from its checkpoint, replays, and the exchange still verifies."""
    from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore

    benchmark.group = "checkpoint-recovery forced-crash"
    plan = FaultPlan(forced_crashes=frozenset({(1, 3)}), crash_downtime=2)
    policy = RetryPolicy(max_retries=16, max_supersteps=128)

    def run():
        vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32), fault_plan=plan)
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, policy=policy, checkpoints=store
        )
        assert report.converged and report.verified
        assert report.recoveries
        return report

    report = benchmark(run)
    benchmark.extra_info["replayed_transfers"] = report.replayed_transfers
    benchmark.extra_info["parked_rounds"] = report.parked_rounds


AUDIT_CHUNKS = [
    ("no-audit", None),
    ("chunk-16", 16),
    ("chunk-64", 64),
    ("chunk-256", 256),
]


@pytest.mark.parametrize(
    ("label", "chunk"), AUDIT_CHUNKS, ids=[n for n, _ in AUDIT_CHUNKS]
)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_audit_overhead_zero_fault(benchmark, label, chunk):
    """What the integrity audit ledger costs per exchange when nothing
    is ever corrupted, per chunk size (docs/FAULT_MODEL.md §5).  The
    no-audit row is the baseline; smaller chunks localize divergences
    more tightly but re-checksum more blocks per barrier."""
    from repro.machine.audit import IntegrityAuditor

    benchmark.group = "audit-overhead zero-fault"
    vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32))

    def run():
        auditor = (
            IntegrityAuditor(chunk_size=chunk) if chunk is not None else None
        )
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, auditor=auditor
        )
        assert report.scribbles_detected == 0
        return report

    report = benchmark(run)
    benchmark.extra_info["audits"] = report.audits
    benchmark.extra_info["audit_chunks_checked"] = report.audit_chunks_checked


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_scribble_chunk_repair(benchmark):
    """Repair-latency datum: localized scribbles healed chunk-by-chunk
    from the retransmit buffer / newest checkpoint, without escalating
    to a whole-rank restore.  Compare against the full-restore group
    below -- the escalation ladder exists because this row is cheaper."""
    from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore

    benchmark.group = "scribble-repair localized-vs-full"
    plan = FaultPlan(
        seed=3,
        scribble_width=2,
        forced_scribbles=frozenset({(2, r, "D") for r in range(P)}),
    )
    policy = RetryPolicy(max_retries=16, max_supersteps=128)

    def run():
        vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32), fault_plan=plan)
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, policy=policy,
            checkpoints=store, auditor=True,
        )
        assert report.converged and report.verified
        assert report.scribbles_detected and report.chunks_repaired
        return report

    report = benchmark(run)
    benchmark.extra_info["chunks_repaired"] = report.chunks_repaired
    benchmark.extra_info["from_retransmit"] = report.repaired_from_retransmit
    benchmark.extra_info["from_checkpoint"] = report.repaired_from_checkpoint
    benchmark.extra_info["escalations"] = report.audit_escalations


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_scribble_full_restore(benchmark):
    """Repair-latency datum, other end of the ladder: the same exchange
    healed by restoring whole ranks from checkpoints (a forced crash
    wipes the arena, so localization has nothing to patch)."""
    from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore

    benchmark.group = "scribble-repair localized-vs-full"
    plan = FaultPlan(
        seed=3,
        scribble_width=2,
        forced_scribbles=frozenset({(2, r, "D") for r in range(P)}),
        forced_crashes=frozenset({(2, 1), (2, 5)}),
        crash_downtime=2,
    )
    policy = RetryPolicy(max_retries=16, max_supersteps=128)

    def run():
        vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32), fault_plan=plan)
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, policy=policy,
            checkpoints=store, auditor=True,
        )
        assert report.converged and report.verified
        assert report.recoveries
        return report

    report = benchmark(run)
    benchmark.extra_info["rank_restores"] = len(report.recoveries)
    benchmark.extra_info["chunks_repaired"] = report.chunks_repaired
    benchmark.extra_info["escalations"] = report.audit_escalations
