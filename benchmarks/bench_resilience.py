"""Resilient-exchange benchmarks: protocol overhead and fault recovery.

Not a paper table -- robustness instrumentation for the machine layer
(see docs/FAULT_MODEL.md).  The headline number is the zero-fault-rate
overhead of the acknowledged-delivery protocol over the plain executor:
one extra superstep plus checksum/ACK bookkeeping.  A second group
measures recovery cost under a moderate drop rate.
"""

import numpy as np
import pytest

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import distribute
from repro.runtime.redistribute import plan_redistribution, redistribute
from repro.runtime.resilient import RetryPolicy, redistribute_resilient

P, N = 8, 8192

PAIRS = [
    ("cyclic1-to-block32", CyclicK(1), CyclicK(N // P)),
    ("cyclic4-to-cyclic32", CyclicK(4), CyclicK(32)),
]
IDS = [name for name, _, _ in PAIRS]


def _setup(src_dist, dst_dist, fault_plan=None):
    grid = ProcessorGrid("P", (P,))
    src = DistributedArray("S", (N,), grid, (AxisMap(src_dist, grid_axis=0),))
    dst = DistributedArray("D", (N,), grid, (AxisMap(dst_dist, grid_axis=0),))
    schedule, _ = plan_redistribution(dst, src)
    vm = VirtualMachine(P, fault_plan=fault_plan)
    distribute(vm, src, np.arange(N, dtype=float))
    distribute(vm, dst, np.zeros(N))
    return vm, dst, src, schedule


@pytest.mark.parametrize(("name", "src_dist", "dst_dist"), PAIRS, ids=IDS)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_plain_baseline(benchmark, name, src_dist, dst_dist):
    benchmark.group = f"resilience-overhead {name}"
    vm, dst, src, schedule = _setup(src_dist, dst_dist)
    benchmark(redistribute, vm, dst, src, schedule)


@pytest.mark.parametrize(("name", "src_dist", "dst_dist"), PAIRS, ids=IDS)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_resilient_zero_fault(benchmark, name, src_dist, dst_dist):
    """The acceptance-criteria datum: protocol cost with no faults."""
    benchmark.group = f"resilience-overhead {name}"
    vm, dst, src, schedule = _setup(src_dist, dst_dist)

    def run():
        _, report = redistribute_resilient(vm, dst, src, schedule=schedule)
        assert report.retries == 0 and report.extra_supersteps < 2
        return report

    benchmark(run)


@pytest.mark.parametrize("drop", [0.1, 0.3], ids=["drop10", "drop30"])
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_resilient_under_drops(benchmark, drop):
    """Recovery cost: retransmission rounds under message loss."""
    benchmark.group = f"resilience-recovery drop={drop}"
    plan = FaultPlan(seed=1, drop=drop)
    vm, dst, src, schedule = _setup(CyclicK(4), CyclicK(32), fault_plan=plan)
    policy = RetryPolicy(max_retries=16, max_supersteps=128)

    def run():
        _, report = redistribute_resilient(
            vm, dst, src, schedule=schedule, policy=policy
        )
        return report

    report = benchmark(run)
    assert report.converged and report.verified
