"""Shared configuration for the pytest-benchmark suites.

Each ``bench_*.py`` regenerates one table/figure of the paper (see
DESIGN.md's per-experiment index).  Benchmarks are capped to keep the
whole suite runnable in a few minutes; the ``repro.bench`` harness
modules produce the paper-formatted tables from the same workloads.
"""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks never need hypothesis; keep collection tidy.
    pass


@pytest.fixture(scope="session")
def paper_p():
    from repro.bench.workloads import PAPER_P

    return PAPER_P
