#!/usr/bin/env python
"""Benchmark the planning service and write BENCH_service.json.

Boots a real :class:`repro.service.PlanServer` on a unix socket (the
asyncio loop on its own thread) and drives it with concurrent
:class:`repro.service.PlanClient` workers over a seeded workload with
realistic key reuse.  Four groups:

* ``latency`` -- p50/p99 request latency, throughput, and cache hit
  rate over 12,000+ requests against the default 8-shard result cache;
* ``shards``  -- the same workload against 1/4/8 result-cache shards
  (the lock-contention ablation for the sharded plan cache);
* ``chaos``   -- the workload under seeded fault injection (compute
  stalls, failures, worker deaths) with tight deadlines: the robustness
  column -- sheds, deadline hits, breaker trips, degraded serves, and
  the no-crash/no-hang guarantee;
* ``snapshot`` -- stop/boot cycle: entries persisted, warm-start count,
  and that a warm boot serves without recomputing.

Every served plan in the verification sample is compared bit-identically
(canonical JSON bytes) against direct in-process computation; the script
**exits nonzero on any mismatch or protocol violation**, so CI runs it
with ``--quick`` as a correctness smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full size
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.environment import environment_metadata
from repro.service import PlanClient, PlanServer, ServiceChaos, ServiceConfig
from repro.service.protocol import RETRYABLE_CODES, ServiceError
from repro.service.queries import evaluate

KNOWN_CODES = RETRYABLE_CODES | {"BAD_REQUEST", "INTERNAL"}


def canonical(obj) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


class ServerThread:
    """A PlanServer running its asyncio loop on a dedicated thread."""

    def __init__(self, config: ServiceConfig) -> None:
        self.loop = asyncio.new_event_loop()
        self.server: PlanServer | None = None
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.server = PlanServer(config)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(timeout=10.0):
            raise SystemExit("server failed to start within 10s")

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


def build_pool(rng: random.Random, distinct: int) -> list[tuple[str, dict]]:
    """A pool of distinct queries; the workload samples it with reuse."""
    pool: list[tuple[str, dict]] = []
    while len(pool) < distinct:
        kind = rng.random()
        if kind < 0.7:
            p = rng.choice([2, 4, 8])
            pool.append(("plan", {
                "p": p, "k": rng.choice([4, 8, 16, 64]),
                "l": rng.randrange(0, 8), "s": rng.randrange(1, 40),
                "m": rng.randrange(0, p),
            }))
        elif kind < 0.9:
            p = rng.choice([2, 4])
            pool.append(("localize", {
                "p": p, "k": rng.choice([4, 8]), "extent": 256,
                "align_a": rng.choice([1, 2, -1]), "align_b": rng.randrange(0, 4),
                "lower": 0, "upper": 255, "stride": rng.randrange(1, 9),
                "rank": rng.randrange(0, p),
            }))
        else:
            n = 128
            stride = rng.choice([1, 2, 4])
            upper = n - 1 - (n - 1) % stride
            side = lambda: {"k": rng.choice([4, 8]), "align_a": 1, "align_b": 0,
                            "lower": 0, "upper": upper, "stride": stride}
            pool.append(("schedule", {"n": n, "p": 4, "lhs": side(), "rhs": side()}))
    return pool


def drive(
    address: str,
    pool: list,
    total_requests: int,
    workers: int,
    seed: int,
    deadline_ms: int,
) -> dict:
    """Hammer the server from ``workers`` client threads; returns
    latency percentiles and outcome counts.  Protocol violations (an
    unknown error code, a crash, a response past deadline+slack) are
    collected and fail the benchmark."""
    per_worker = total_requests // workers
    latencies_ns: list[list[int]] = [[] for _ in range(workers)]
    outcomes: list[dict] = [
        {"ok": 0, "degraded": 0, "errors": {}, "violations": []}
        for _ in range(workers)
    ]

    def work(w: int) -> None:
        rng = random.Random((seed << 8) ^ w)
        out = outcomes[w]
        with PlanClient(address, default_deadline_ms=deadline_ms,
                        max_retries=0) as client:
            for _ in range(per_worker):
                op, params = rng.choice(pool)
                t0 = time.perf_counter_ns()
                try:
                    resp = client.call(op, params)
                except ServiceError as exc:
                    if exc.code not in KNOWN_CODES:
                        out["violations"].append(f"unknown code {exc.code}")
                    out["errors"][exc.code] = out["errors"].get(exc.code, 0) + 1
                except Exception as exc:  # noqa: BLE001 - a violation
                    out["violations"].append(f"{type(exc).__name__}: {exc}")
                    return
                else:
                    out["ok"] += 1
                    if resp["degraded"]:
                        out["degraded"] += 1
                latencies_ns[w].append(time.perf_counter_ns() - t0)

    threads = [threading.Thread(target=work, args=(w,)) for w in range(workers)]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start

    lat = sorted(x for bucket in latencies_ns for x in bucket)
    errors: dict = {}
    for out in outcomes:
        for code, n in out["errors"].items():
            errors[code] = errors.get(code, 0) + n
    violations = [v for out in outcomes for v in out["violations"]]

    def pct(q: float) -> float:
        return lat[min(len(lat) - 1, int(q * len(lat)))] / 1e6 if lat else 0.0

    return {
        "requests": len(lat),
        "ok": sum(o["ok"] for o in outcomes),
        "degraded": sum(o["degraded"] for o in outcomes),
        "errors": errors,
        "violations": violations,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(len(lat) / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(pct(0.50), 3),
        "p99_ms": round(pct(0.99), 3),
        "max_ms": round(lat[-1] / 1e6, 3) if lat else 0.0,
    }


def verify_sample(address: str, pool: list, sample: int, rng: random.Random) -> int:
    """Served results must be bit-identical to direct computation --
    including any served degraded.  Returns the number verified."""
    checked = 0
    with PlanClient(address, default_deadline_ms=10000, max_retries=3) as client:
        for op, params in rng.sample(pool, min(sample, len(pool))):
            resp = client.call(op, params)
            if canonical(resp["result"]) != canonical(evaluate(op, params)):
                raise SystemExit(
                    f"MISMATCH: served {op} plan differs from direct "
                    f"computation for {params}"
                )
            checked += 1
    return checked


def hit_rate(server: PlanServer) -> float:
    c = server.counters
    served = c.cache_hits + c.computed
    return round(c.cache_hits / served, 4) if served else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke testing")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_service.json")
    args = parser.parse_args(argv)

    requests_main = 1_000 if args.quick else 12_000
    requests_sweep = 500 if args.quick else 3_000
    workers = 4
    distinct = 100 if args.quick else 300
    rng = random.Random(args.seed)
    pool = build_pool(rng, distinct)
    rows = []

    with tempfile.TemporaryDirectory() as tmp:
        sock = f"{tmp}/bench.sock"
        snap = f"{tmp}/bench.snap"

        print(f"== latency: {requests_main} requests, {workers} workers, "
              f"{distinct} distinct queries ==")
        cfg = ServiceConfig(unix_path=sock, snapshot_path=snap,
                            snapshot_interval_s=600.0, max_inflight=64)
        st = ServerThread(cfg)
        row = drive(sock, pool, requests_main, workers, args.seed, 5000)
        row |= {"benchmark": "latency", "variant": "shards-8",
                "hit_rate": hit_rate(st.server),
                "verified": verify_sample(sock, pool, 50, rng)}
        rows.append(row)
        print(f"  p50 {row['p50_ms']:.2f} ms  p99 {row['p99_ms']:.2f} ms  "
              f"{row['throughput_rps']:.0f} req/s  hit-rate {row['hit_rate']:.1%}  "
              f"verified {row['verified']} bit-identical")
        persisted = len(st.server._cache.hot_entries(cfg.snapshot_limit))
        st.stop()

        print("== snapshot: warm-start cycle ==")
        st = ServerThread(cfg)
        warm = st.server.warm_started_entries
        warm_row = drive(sock, pool, requests_sweep, workers, args.seed + 1, 5000)
        rows.append(warm_row | {
            "benchmark": "snapshot", "variant": "warm-boot",
            "persisted_entries": persisted, "warm_started_entries": warm,
            "hit_rate": hit_rate(st.server),
        })
        print(f"  persisted {persisted}, warm-started {warm}, "
              f"hit-rate {rows[-1]['hit_rate']:.1%} (cold compute skipped)")
        st.stop()

        for shards in (1, 4, 8):
            sock_s = f"{tmp}/bench-{shards}.sock"
            st = ServerThread(ServiceConfig(unix_path=sock_s, cache_shards=shards,
                                            max_inflight=64))
            row = drive(sock_s, pool, requests_sweep, workers, args.seed + 2, 5000)
            row |= {"benchmark": "shards", "variant": f"shards-{shards}",
                    "hit_rate": hit_rate(st.server)}
            rows.append(row)
            print(f"  shards={shards}: p50 {row['p50_ms']:.2f} ms  "
                  f"p99 {row['p99_ms']:.2f} ms  {row['throughput_rps']:.0f} req/s")
            st.stop()

        print("== chaos: stalls + failures + kills under tight deadlines ==")
        chaos = ServiceChaos(seed=args.seed, stall_rate=0.02, fail_rate=0.05,
                             kill_rate=0.02, stall_s=0.4)
        sock_c = f"{tmp}/bench-chaos.sock"
        st = ServerThread(ServiceConfig(
            unix_path=sock_c, chaos=chaos, max_inflight=16,
            breaker_threshold=5, breaker_reset_s=0.25, cache_shards=8,
        ))
        row = drive(sock_c, pool, requests_sweep, workers, args.seed + 3, 250)
        server = st.server
        row |= {
            "benchmark": "chaos", "variant": "stall2-fail5-kill2",
            "hit_rate": hit_rate(server),
            "injected": dict(chaos.injected),
            "breaker_trips": sum(b.trips for b in server._breakers),
            "degraded_stale": server.counters.degraded_stale,
            "degraded_reference": server.counters.degraded_reference,
            "shed_overload": server.counters.shed_overload,
            "deadline_exceeded": server.counters.deadline_exceeded,
            "verified": verify_sample(sock_c, pool, 25, rng),
        }
        rows.append(row)
        st.stop()
        print(f"  injected {row['injected']}  breaker trips {row['breaker_trips']}  "
              f"degraded {row['degraded']}  deadline {row['deadline_exceeded']}  "
              f"shed {row['shed_overload']}")
        print(f"  p99 {row['p99_ms']:.2f} ms under chaos; every response ok or "
              f"diagnostic; verified {row['verified']} bit-identical")

    violations = [v for r in rows for v in r.get("violations", [])]
    if violations:
        for v in violations[:10]:
            print(f"VIOLATION: {v}", file=sys.stderr)
        raise SystemExit(f"{len(violations)} protocol violations")

    report = {
        "config": {"quick": args.quick, "seed": args.seed, "workers": workers,
                   "distinct_queries": distinct,
                   "requests_main": requests_main,
                   "requests_sweep": requests_sweep},
        "environment": environment_metadata(),
        "rows": rows,
    }
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
