"""Figure 7: the s=7 construction-time series (paper Section 6.1).

The s=7 column of Table 1 as its own benchmark series, matching the
figure the paper plots.  ``python -m repro.bench.figure7`` draws the
ASCII version of the plot from the same workload.
"""

import pytest

from repro.bench.workloads import PAPER_P, TABLE1_BLOCK_SIZES
from repro.core.access import compute_access_table
from repro.core.baselines.sorting import sorting_access_table

RANK = PAPER_P // 2


@pytest.mark.parametrize("k", TABLE1_BLOCK_SIZES)
@pytest.mark.benchmark(max_time=0.25, min_rounds=3)
def test_figure7_lattice(benchmark, k):
    benchmark.group = f"figure7 k={k}"
    benchmark(compute_access_table, PAPER_P, k, 0, 7, RANK)


@pytest.mark.parametrize("k", TABLE1_BLOCK_SIZES)
@pytest.mark.benchmark(max_time=0.25, min_rounds=3)
def test_figure7_sorting(benchmark, k):
    benchmark.group = f"figure7 k={k}"
    benchmark(sorting_access_table, PAPER_P, k, 0, 7, RANK)
