"""Ablation A1: sort routine inside the sorting baseline.

The paper's footnote says the comparison implementation used a
linear-time radix sort for k >= 64 (flattening the lattice advantage to
a constant factor).  In Python the trade-off inverts -- timsort runs in
C while our radix sort is interpreted -- which is exactly the kind of
platform effect EXPERIMENTS.md documents.
"""

import pytest

from repro.bench.workloads import PAPER_P, TABLE1_BLOCK_SIZES
from repro.core.baselines.sorting import sorting_access_table

RANK = PAPER_P // 2


@pytest.mark.parametrize("k", TABLE1_BLOCK_SIZES)
@pytest.mark.parametrize("sort", ["timsort", "radix"])
@pytest.mark.benchmark(max_time=0.25, min_rounds=3)
def test_sort_choice(benchmark, k, sort):
    benchmark.group = f"ablation-sort k={k}"
    benchmark(sorting_access_table, PAPER_P, k, 0, 99, RANK, sort=sort)
