"""FSM amortization: one transition table vs per-section reconstruction.

Section 6.1 notes that when distribution parameters are compile-time
constants the basis computation "would have to be executed only once".
The FSM module carries that further: transitions depend only on
``(p, k, s)``, so a compiler handling many sections (different ``l``,
all processors) can pay the construction once.  These benchmarks
measure the break-even.
"""

import pytest

from repro.bench.workloads import PAPER_P
from repro.core.access import compute_access_table
from repro.core.fsm import AccessFSM

K, S = 64, 9
LOWER_BOUNDS = list(range(0, 160, 10))  # 16 sections sharing (p, k, s)


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_fsm_construction(benchmark):
    benchmark.group = "fsm"
    fsm = benchmark(AccessFSM, PAPER_P, K, S)
    assert len(fsm.states) == PAPER_P * K


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_many_sections_via_fsm(benchmark):
    """16 sections x 32 ranks through one shared FSM."""
    benchmark.group = "fsm-many-sections"
    fsm = AccessFSM(PAPER_P, K, S)

    def run():
        total = 0
        for l in LOWER_BOUNDS:
            for m in range(PAPER_P):
                _, gaps = fsm.table_for(l, m)
                total += len(gaps)
        return total

    total = benchmark(run)
    assert total == len(LOWER_BOUNDS) * PAPER_P * K


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_many_sections_via_full_algorithm(benchmark):
    """The same 16 x 32 tables, each built from scratch by Figure 5."""
    benchmark.group = "fsm-many-sections"

    def run():
        total = 0
        for l in LOWER_BOUNDS:
            for m in range(PAPER_P):
                table = compute_access_table(PAPER_P, K, l, S, m)
                total += table.length
        return total

    total = benchmark(run)
    assert total == len(LOWER_BOUNDS) * PAPER_P * K
