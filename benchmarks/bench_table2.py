"""Table 2: node-code shapes 8(a)-(d) + vectorized ablation (Section 6.2).

One benchmark per (shape, k, s) cell; every shape performs ~10,000
strided assignments into one rank's local memory, with the upper bound
scaled to the stride exactly as in the paper.
"""

import numpy as np
import pytest

from repro.bench.workloads import table2_cases
from repro.core.counting import local_allocation_size
from repro.runtime.address import make_plan
from repro.runtime.codegen import SHAPES

CASES = table2_cases()
IDS = [f"k{c.k}-s{c.s}" for c in CASES]

_prepared = {}


def _get(case):
    key = (case.k, case.s)
    if key not in _prepared:
        rank = case.p // 2
        plan = make_plan(case.p, case.k, case.l, case.upper, case.s, rank)
        memory = np.zeros(local_allocation_size(case.p, case.k, case.upper + 1, rank))
        _prepared[key] = (plan, memory)
    return _prepared[key]


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("case", CASES, ids=IDS)
@pytest.mark.benchmark(max_time=0.3, min_rounds=3)
def test_node_code(benchmark, case, shape):
    benchmark.group = f"table2 k={case.k} s={case.s}"
    plan, memory = _get(case)
    fn = SHAPES[shape]
    written = benchmark(fn, memory, plan, 100.0)
    # ~10,000 per processor, exact up to ownership rounding.
    assert abs(written - case.accesses_per_proc) <= case.k
