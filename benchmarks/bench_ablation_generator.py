"""Ablation A2: materialized ΔM table vs table-free R/L cursor.

Section 6.2's time/space trade-off: the algorithm "can be modified to
return only vectors R and L, without storing any tables ... with only a
small penalty in the execution time."
"""

import numpy as np
import pytest

from repro.bench.workloads import PAPER_P
from repro.core.counting import local_allocation_size, local_count
from repro.core.generator import RLCursor
from repro.runtime.address import make_plan
from repro.runtime.codegen import fill_shape_b

K, S = 64, 9
RANK = PAPER_P // 2
ACCESSES = 10_000
UPPER = (ACCESSES * PAPER_P - 1) * S


@pytest.fixture(scope="module")
def workload():
    plan = make_plan(PAPER_P, K, 0, UPPER, S, RANK)
    memory = np.zeros(local_allocation_size(PAPER_P, K, UPPER + 1, RANK))
    count = local_count(PAPER_P, K, 0, UPPER, S, RANK)
    return plan, memory, count


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_materialized_table(benchmark, workload):
    benchmark.group = "ablation-generator"
    plan, memory, _ = workload
    benchmark(fill_shape_b, memory, plan, 100.0)


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_rl_cursor(benchmark, workload):
    benchmark.group = "ablation-generator"
    _, memory, count = workload

    def run():
        cursor = RLCursor(PAPER_P, K, 0, S, RANK)
        for _ in range(count):
            memory[cursor.local] = 100.0
            cursor.advance()

    benchmark(run)
