"""Redistribution benchmarks: cyclic(k1) -> cyclic(k2) whole-array moves.

Not a paper table -- the downstream workload (ScaLAPACK-style
block-scattered libraries, cited in the paper's introduction) that the
access-sequence machinery enables.  Measures schedule construction and
execution for representative block-size changes.
"""

import numpy as np
import pytest

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Block, CyclicK, ProcessorGrid
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import distribute
from repro.runtime.redistribute import plan_redistribution, redistribute

P, N = 8, 8192

PAIRS = [
    ("cyclic1-to-block", CyclicK(1), Block()),
    ("block-to-cyclic1", Block(), CyclicK(1)),
    ("cyclic4-to-cyclic32", CyclicK(4), CyclicK(32)),
    ("cyclic32-to-cyclic4", CyclicK(32), CyclicK(4)),
]
IDS = [name for name, _, _ in PAIRS]


def _arrays(src_dist, dst_dist):
    grid = ProcessorGrid("P", (P,))
    src = DistributedArray("S", (N,), grid, (AxisMap(src_dist, grid_axis=0),))
    dst = DistributedArray("D", (N,), grid, (AxisMap(dst_dist, grid_axis=0),))
    return src, dst


@pytest.mark.parametrize(("name", "src_dist", "dst_dist"), PAIRS, ids=IDS)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_plan(benchmark, name, src_dist, dst_dist):
    benchmark.group = f"redistribution-plan {name}"
    src, dst = _arrays(src_dist, dst_dist)
    _, stats = benchmark(plan_redistribution, dst, src)
    assert stats.elements == N


@pytest.mark.parametrize(("name", "src_dist", "dst_dist"), PAIRS, ids=IDS)
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_execute(benchmark, name, src_dist, dst_dist):
    benchmark.group = f"redistribution-exec {name}"
    src, dst = _arrays(src_dist, dst_dist)
    schedule, _ = plan_redistribution(dst, src)
    vm = VirtualMachine(P)
    distribute(vm, src, np.arange(N, dtype=float))
    distribute(vm, dst, np.zeros(N))
    benchmark(redistribute, vm, dst, src, schedule)
