#!/usr/bin/env python
"""Benchmark the vectorized access-sequence kernels and the plan cache.

Times the runtime's hot paths and writes the results as
machine-readable rows to ``BENCH_kernels.json``:

* ``scalar``     -- the element-at-a-time reference implementations
  (``compute_comm_schedule_reference``, ``distribute_reference``,
  ``collect_reference``, ``localized_elements``, and the interpreted
  Figure 8 fill loops);
* ``vectorized`` -- the NumPy closed-form kernels with cold plan caches
  (every call constructs its plans afresh);
* ``cached``     -- the same calls with warm plan caches (the
  steady-state of an iterative solver re-running one statement);
* ``native``     -- the compiled-kernel subsystem
  (:mod:`repro.runtime.native`): the emitted Figure 8 node code as a
  cached .so, dispatched in-process.  The ``fill_*`` benchmarks run the
  Table 2 grid through both the interpreter and the native kernels;
  rows are skipped (with a note in the report) when no C compiler is
  usable.

Before timing anything the script cross-checks every vectorized path
against its scalar oracle over a sweep of randomized configurations
(including affine alignments, strided/negative-stride sections, empty
owners), cross-checks the compiled kernels against the interpreted
shapes on randomized plans, and **exits nonzero on any mismatch** -- CI
runs it with ``--quick`` as a correctness smoke test.  After the native
timings it re-runs every native fill from a cold process-state against
the warm on-disk cache and exits nonzero if that pass performed any
compilation (the cache contract: warm runs never invoke cc).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py           # full size
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.distribution import (
    Alignment,
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
    localized_arrays,
    localized_elements,
)
from repro.bench.environment import environment_metadata
from repro.bench.workloads import Table2Case, table2_cases
from repro.core.counting import local_allocation_size
from repro.machine.vm import VirtualMachine
from repro.runtime import (
    cache_stats,
    cached_comm_schedule,
    cached_localized_arrays,
    clear_plan_caches,
    collect,
    collect_reference,
    compute_comm_schedule,
    compute_comm_schedule_reference,
    distribute,
    distribute_reference,
    get_shape,
    make_plan,
    native_available,
)
from repro.runtime.native import get_runtime_kernels, reset_native_state


def make_1d(name: str, n: int, p: int, k: int, a: int = 1, b: int = 0) -> DistributedArray:
    return DistributedArray(
        name,
        (n,),
        ProcessorGrid("G", (p,)),
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


def timeit(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Correctness sweep (the CI gate)
# ----------------------------------------------------------------------

def verify(draws: int, seed: int = 20260806) -> list[str]:
    """Cross-check vectorized paths against scalar oracles; returns a
    list of mismatch descriptions (empty = all good)."""
    rng = np.random.default_rng(seed)
    failures: list[str] = []
    for i in range(draws):
        p = int(rng.integers(1, 6))
        k = int(rng.integers(1, 8))
        n = int(rng.integers(1, 120))
        a = int(rng.choice([1, 1, 1, 2, 3, -1]))
        b = int(rng.integers(0, 5))
        align = Alignment(a, b)
        lo = int(rng.integers(0, n))
        hi = int(rng.integers(0, n))
        stride = int(rng.choice([1, 1, 2, 3, 5, -1, -2]))
        sec = (
            RegularSection(min(lo, hi), max(lo, hi), abs(stride))
            if stride > 0
            else RegularSection(max(lo, hi), min(lo, hi), stride)
        )
        tag = f"draw {i}: p={p} k={k} n={n} align=({a},{b}) sec={sec}"
        for m in range(p):
            pairs = localized_elements(p, k, n, align, sec, m)
            idx, slots = localized_arrays(p, k, n, align, sec, m)
            if [g for g, _ in pairs] != idx.tolist() or [
                s for _, s in pairs
            ] != slots.tolist():
                failures.append(f"localized_arrays mismatch: {tag} m={m}")

        # Schedules: random (k, alignment) on each side, same extent.
        k2 = int(rng.integers(1, 8))
        bsec_len = len(sec)
        if bsec_len and bsec_len <= n:
            asec = RegularSection(0, bsec_len - 1, 1)
            lhs = make_1d("A", n, p, k2)
            rhs = make_1d("B", n, p, k, a, b)
            vec = compute_comm_schedule(lhs, asec, rhs, sec)
            ref = compute_comm_schedule_reference(lhs, asec, rhs, sec)
            if [t.astuples() for t in vec.locals_ + vec.transfers] != [
                t.astuples() for t in ref.locals_ + ref.transfers
            ]:
                failures.append(f"comm schedule mismatch: {tag} k2={k2}")

        # distribute/collect round trip vs the scalar sweep.
        arr_v = make_1d("V", n, p, k, a, b)
        arr_s = make_1d("S", n, p, k, a, b)
        host = rng.standard_normal(n)
        vm_v, vm_s = VirtualMachine(p), VirtualMachine(p)
        distribute(vm_v, arr_v, host)
        distribute_reference(vm_s, arr_s, host)
        for m in range(p):
            got = vm_v.processors[m].memory("V")
            want = vm_s.processors[m].memory("S")
            if not np.array_equal(got, want):
                failures.append(f"distribute mismatch: {tag} m={m}")
        if not np.array_equal(collect(vm_v, arr_v), host):
            failures.append(f"collect round-trip mismatch: {tag}")
        if not np.array_equal(
            collect_reference(vm_v, arr_v), collect(vm_v, arr_v)
        ):
            failures.append(f"collect vs reference mismatch: {tag}")
    return failures


def verify_native(draws: int, seed: int = 20260807) -> list[str]:
    """Cross-check the compiled kernels against the interpreted Figure 8
    shapes on randomized plans; empty list when no compiler is usable
    (nothing to check -- dispatch falls back to the verified paths)."""
    kernels = get_runtime_kernels()
    if kernels is None:
        return []
    rng = np.random.default_rng(seed)
    failures: list[str] = []
    for i in range(draws):
        p = int(rng.integers(1, 9))
        k = int(rng.integers(1, 17))
        l = int(rng.integers(0, 40))
        s = int(rng.integers(1, 120))
        u = l + int(rng.integers(0, 500))
        m = int(rng.integers(0, p))
        plan = make_plan(p, k, l, u, s, m)
        size = local_allocation_size(p, k, u + 1, m)
        tag = f"native draw {i}: p={p} k={k} l={l} u={u} s={s} m={m}"
        value = float(rng.standard_normal())
        for shape in "abcdv":
            ref = np.zeros(size)
            want = get_shape(shape, native=False)(ref, plan, value)
            got_mem = np.zeros(size)
            got = kernels.fill(got_mem, plan, value, shape)
            if got != want or not np.array_equal(got_mem, ref):
                failures.append(f"fill mismatch: {tag} shape={shape}")
        if size:
            src = rng.standard_normal(size)
            idx = rng.integers(0, size, size=int(rng.integers(0, 64)))
            packed = kernels.gather(src, idx)
            if packed is None or not np.array_equal(packed, src[idx]):
                failures.append(f"gather mismatch: {tag}")
            dst_n, dst_c = np.zeros(size), np.zeros(size)
            vals = rng.standard_normal(len(idx))
            dst_n[idx] = vals
            if not kernels.scatter(dst_c, idx, vals) or not np.array_equal(
                dst_c, dst_n
            ):
                failures.append(f"scatter mismatch: {tag}")
    return failures


# ----------------------------------------------------------------------
# Timed rows
# ----------------------------------------------------------------------

def bench_comm_schedule(n: int, p: int, repeats: int) -> list[dict]:
    lhs = make_1d("A", n, p, 7)
    rhs = make_1d("B", n, p, 3)
    sec_a = RegularSection(0, n - 2, 1)
    sec_b = RegularSection(1, n - 1, 1)
    rows = []

    t = timeit(lambda: compute_comm_schedule_reference(lhs, sec_a, rhs, sec_b), 1)
    rows.append({"benchmark": "comm_schedule", "variant": "scalar", "seconds": t})

    clear_plan_caches()
    t = timeit(lambda: compute_comm_schedule(lhs, sec_a, rhs, sec_b), repeats)
    rows.append({"benchmark": "comm_schedule", "variant": "vectorized", "seconds": t})

    cached_comm_schedule(lhs, sec_a, rhs, sec_b)  # warm
    t = timeit(lambda: cached_comm_schedule(lhs, sec_a, rhs, sec_b), max(repeats, 10))
    rows.append({"benchmark": "comm_schedule", "variant": "cached", "seconds": t})

    for row in rows:
        row.update(n=n, p=p)
    return rows


def bench_distribute_collect(n: int, p: int, repeats: int) -> list[dict]:
    arr = make_1d("X", n, p, 5)
    host = np.arange(n, dtype=float)
    rows = []

    vm = VirtualMachine(p)
    t = timeit(lambda: distribute_reference(vm, arr, host), 1)
    rows.append({"benchmark": "distribute", "variant": "scalar", "seconds": t})
    t = timeit(lambda: collect_reference(vm, arr), 1)
    rows.append({"benchmark": "collect", "variant": "scalar", "seconds": t})

    vm = VirtualMachine(p)

    def cold_distribute():
        clear_plan_caches()
        distribute(vm, arr, host)

    t = timeit(cold_distribute, repeats)
    rows.append({"benchmark": "distribute", "variant": "vectorized", "seconds": t})

    def cold_collect():
        clear_plan_caches()
        return collect(vm, arr)

    t = timeit(cold_collect, repeats)
    rows.append({"benchmark": "collect", "variant": "vectorized", "seconds": t})

    distribute(vm, arr, host)  # warm the localized-array cache
    t = timeit(lambda: distribute(vm, arr, host), repeats)
    rows.append({"benchmark": "distribute", "variant": "cached", "seconds": t})
    t = timeit(lambda: collect(vm, arr), repeats)
    rows.append({"benchmark": "collect", "variant": "cached", "seconds": t})

    for row in rows:
        row.update(n=n, p=p)
    return rows


def bench_localized(n: int, p: int, repeats: int) -> list[dict]:
    k = 6
    align = Alignment(1, 0)
    sec = RegularSection(0, n - 1, 3)
    rows = []
    t = timeit(lambda: [localized_elements(p, k, n, align, sec, m) for m in range(p)], 1)
    rows.append({"benchmark": "localized", "variant": "scalar", "seconds": t})
    t = timeit(lambda: [localized_arrays(p, k, n, align, sec, m) for m in range(p)], repeats)
    rows.append({"benchmark": "localized", "variant": "vectorized", "seconds": t})
    [cached_localized_arrays(p, k, n, align, sec, m) for m in range(p)]
    t = timeit(
        lambda: [cached_localized_arrays(p, k, n, align, sec, m) for m in range(p)],
        max(repeats, 10),
    )
    rows.append({"benchmark": "localized", "variant": "cached", "seconds": t})
    for row in rows:
        row.update(n=n, p=p, k=k)
    return rows


def _fill_cells(cases: list[Table2Case]) -> list[tuple]:
    """(bench-name, plan, arena) for every (Table 2 cell, Figure 8 shape)."""
    cells = []
    for case in cases:
        rank = case.p // 2
        plan = make_plan(case.p, case.k, case.l, case.upper, case.s, rank)
        size = local_allocation_size(case.p, case.k, case.upper + 1, rank)
        memory = np.zeros(size)
        for shape in "abcd":
            cells.append((f"fill_{shape}[k={case.k},s={case.s}]", shape, plan, memory))
    return cells


def bench_fill_shapes(cases: list[Table2Case], repeats: int) -> list[dict]:
    """The Table 2 experiment through this runtime: every Figure 8 shape
    on every grid cell, interpreted vs compiled.  Native rows are
    omitted when no compiler is usable."""
    rows = []
    with_native = native_available()
    for bench, shape, plan, memory in _fill_cells(cases):
        interp = get_shape(shape, native=False)
        t = timeit(lambda: interp(memory, plan, 100.0), repeats)
        rows.append({"benchmark": bench, "variant": "scalar", "seconds": t,
                     "n": plan.count, "p": plan.p})
        if with_native:
            nat = get_shape(shape, native=True)
            t = timeit(lambda: nat(memory, plan, 100.0), max(repeats, 20))
            rows.append({"benchmark": bench, "variant": "native", "seconds": t,
                         "n": plan.count, "p": plan.p})
    return rows


def warm_cache_check(cases: list[Table2Case]) -> list[str]:
    """Re-run every native fill after dropping all in-process native
    state: the on-disk cache is warm, so the pass must dlopen existing
    artifacts and perform **zero** compilations.  Returns violations."""
    if not native_available():
        return []
    from repro.obs import Observability, set_ambient

    reset_native_state()  # forget handles; disk cache stays
    obs = Observability()
    prev = set_ambient(obs)
    try:
        for _, shape, plan, memory in _fill_cells(cases):
            get_shape(shape, native=True)(memory, plan, 100.0)
    finally:
        set_ambient(prev)
    problems = []
    compiles = obs.metrics.value("native.compile")
    if compiles:
        problems.append(
            f"warm-cache pass performed {compiles} compilations "
            "(cache key instability or a broken install path)"
        )
    if not obs.metrics.value("native.dispatch_native"):
        problems.append("warm-cache pass never dispatched a native kernel")
    return problems


def collect_metrics(n: int, p: int) -> dict:
    """One instrumented warm pass over the benched workloads.

    Runs *after* the timed rows (never during them -- the timings above
    are taken with observability disabled, which is the configuration
    the <5% overhead budget in docs/OBSERVABILITY.md is measured
    against) and returns an ``Observability.snapshot()`` for the
    ``BENCH_kernels_metrics.json`` sidecar."""
    from repro.obs import Observability, set_ambient

    obs = Observability()
    prev = set_ambient(obs)
    try:
        clear_plan_caches()
        lhs, rhs = make_1d("A", n, p, 7), make_1d("B", n, p, 3)
        sec_a, sec_b = RegularSection(0, n - 2, 1), RegularSection(1, n - 1, 1)
        cached_comm_schedule(lhs, sec_a, rhs, sec_b)  # miss
        cached_comm_schedule(lhs, sec_a, rhs, sec_b)  # hit
        arr = make_1d("X", n, p, 5)
        vm = VirtualMachine(p, obs=obs)
        distribute(vm, arr, np.arange(n, dtype=float))
        collect(vm, arr)
        for m in range(p):
            cached_localized_arrays(p, 6, n, Alignment(1, 0),
                                    RegularSection(0, n - 1, 3), m)
    finally:
        set_ambient(prev)
        clear_plan_caches()
    return obs.snapshot()


def speedups(rows: list[dict]) -> dict:
    by = {(r["benchmark"], r["variant"]): r["seconds"] for r in rows}
    out: dict[str, dict] = {}
    for bench in {r["benchmark"] for r in rows}:
        scalar = by.get((bench, "scalar"))
        entry = {}
        for variant in ("vectorized", "cached", "native"):
            sec = by.get((bench, variant))
            if scalar and sec:
                entry[variant] = round(scalar / sec, 2)
        out[bench] = entry
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes + fewer draws (CI smoke test)")
    parser.add_argument("--n", type=int, default=None,
                        help="array size (default 100000, quick 8000)")
    parser.add_argument("-p", "--procs", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--draws", type=int, default=None,
                        help="verification sweep size (default 60, quick 25)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json")
    args = parser.parse_args(argv)

    n = args.n or (8_000 if args.quick else 100_000)
    repeats = args.repeats or (3 if args.quick else 5)
    draws = args.draws if args.draws is not None else (25 if args.quick else 60)

    print(f"verifying vectorized kernels against scalar oracles ({draws} draws)...")
    failures = verify(draws)
    if failures:
        for f in failures:
            print(f"MISMATCH: {f}", file=sys.stderr)
        print(f"{len(failures)} scalar-vs-vectorized mismatches", file=sys.stderr)
        return 1
    print("ok: vectorized kernels bit-identical to scalar paths")

    if native_available():
        print(f"verifying compiled kernels against interpreted shapes "
              f"({draws} draws)...")
        failures = verify_native(draws)
        if failures:
            for f in failures:
                print(f"MISMATCH: {f}", file=sys.stderr)
            print(f"{len(failures)} native-vs-interpreted mismatches",
                  file=sys.stderr)
            return 1
        print("ok: compiled kernels bit-identical to interpreted shapes")
    else:
        print("note: no usable C compiler -- native rows skipped, "
              "NumPy fallback covers dispatch")

    fill_cases = table2_cases()
    if args.quick:
        fill_cases = [c for c in fill_cases if c.k <= 32 and c.s <= 15]

    clear_plan_caches()
    rows = []
    rows += bench_localized(n, args.procs, repeats)
    rows += bench_comm_schedule(n, args.procs, repeats)
    rows += bench_distribute_collect(n, args.procs, repeats)
    rows += bench_fill_shapes(fill_cases, repeats)

    problems = warm_cache_check(fill_cases)
    if problems:
        for prob in problems:
            print(f"CACHE VIOLATION: {prob}", file=sys.stderr)
        return 1
    if native_available():
        print("ok: warm-cache native pass performed zero compilations")
        # The perf gate: compiled Figure 8 shapes must beat the
        # interpreter by >=5x on every Table 2 cell (typical: 15-100x).
        by = {(r["benchmark"], r["variant"]): r["seconds"] for r in rows}
        slow = [
            (bench, by[bench, "scalar"] / sec)
            for (bench, variant), sec in by.items()
            if variant == "native" and by[bench, "scalar"] / sec < 5.0
        ]
        if slow:
            for bench, ratio in slow:
                print(f"PERF GATE: {bench} native only {ratio:.1f}x over "
                      "interpreted (need >=5x)", file=sys.stderr)
            return 1
        print("ok: native fill columns >=5x over the interpreter")

    report = {
        "config": {"n": n, "p": args.procs, "repeats": repeats,
                   "quick": args.quick, "verify_draws": draws,
                   "native": native_available()},
        "environment": environment_metadata(),
        "rows": rows,
        "speedups": speedups(rows),
        "cache_stats": cache_stats(),
    }
    args.output.write_text(json.dumps(report, indent=1) + "\n")

    metrics_path = args.output.with_name(args.output.stem + "_metrics.json")
    metrics_path.write_text(json.dumps(
        {"config": report["config"], "snapshot": collect_metrics(n, args.procs)},
        indent=1,
    ) + "\n")

    print(f"\n{'benchmark':<14} {'variant':<11} {'seconds':>12}")
    for row in rows:
        print(f"{row['benchmark']:<14} {row['variant']:<11} {row['seconds']:>12.6f}")
    print("\nspeedups over scalar:")
    for bench, entry in sorted(report["speedups"].items()):
        pretty = ", ".join(f"{v}: {x}x" for v, x in entry.items())
        print(f"  {bench:<14} {pretty}")
    print(f"\nwrote {args.output}")
    print(f"wrote {metrics_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
