#!/usr/bin/env python
"""Benchmark profile-driven cost-model calibration; write BENCH_profile.json.

Runs a seeded redistribution workload on the in-process oracle across
several sizes and block-size pairs with a
:class:`repro.obs.profile.ProfileCollector` attached, fits the cost
model to the measured supersteps (:func:`repro.obs.calibrate.fit`), and
records how much the fitted model reduces the mean absolute residual
against the default iPSC/860 constants.  **Exits nonzero if calibration
fails to improve on the default model** (``mae_calibrated >
mae_default``) -- the acceptance gate for the observability PR -- or if
any run measures zero traffic (a silently-unattached collector).

Usage::

    PYTHONPATH=src python benchmarks/bench_profile.py           # full size
    PYTHONPATH=src python benchmarks/bench_profile.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.bench.environment import environment_metadata
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.costmodel import CostModel
from repro.machine.topology import CrossbarTopology
from repro.machine.vm import VirtualMachine
from repro.obs import Observability
from repro.obs.calibrate import fit, replay
from repro.obs.profile import ProfileCollector, RunProfile
from repro.runtime.exec import collect, distribute
from repro.runtime.redistribute import redistribute


def _vector(name: str, n: int, p: int, k: int) -> DistributedArray:
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))


def run_workload(p: int, sizes: list[int], pairs: list[tuple[int, int]],
                 seed: int) -> RunProfile:
    """One seeded oracle run per (size, k-pair); pooled supersteps."""
    rng = np.random.default_rng(seed)
    supersteps = []
    total_counters: dict[str, int] = {}
    for n in sizes:
        for k_src, k_dst in pairs:
            obs = Observability(enabled=True)
            vm = VirtualMachine(p, obs=obs)
            collector = ProfileCollector()
            with collector.attach(vm):
                src = _vector("S", n, p, k_src)
                dst = _vector("D", n, p, k_dst)
                distribute(vm, src, rng.standard_normal(n))
                distribute(vm, dst, np.zeros(n))
                redistribute(vm, dst, src)
                collect(vm, dst)
            profile = collector.build(n=n, k_src=k_src, k_dst=k_dst, seed=seed)
            if profile.total_sent_bytes == 0:
                raise SystemExit(
                    f"bench_profile: zero traffic for n={n} "
                    f"k={k_src}->{k_dst} (collector unattached?)"
                )
            supersteps.extend(profile.supersteps)
            for name, value in profile.counters.items():
                total_counters[name] = total_counters.get(name, 0) + value
    return RunProfile(
        p=p, backend="inprocess", supersteps=supersteps, counters=total_counters,
        meta={"sizes": sizes, "pairs": pairs, "seed": seed},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for the CI smoke run")
    parser.add_argument("--p", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_profile.json",
    )
    args = parser.parse_args(argv)

    sizes = [240, 960] if args.quick else [240, 960, 3840, 15360]
    pairs = [(3, 7), (1, 8)] if args.quick else [(3, 7), (1, 8), (8, 1), (5, 5)]

    profile = run_workload(args.p, sizes, pairs, args.seed)
    topology = CrossbarTopology(args.p)
    result = fit(profile, topology)
    default_rows = replay(profile, topology, CostModel())

    report = {
        "environment": environment_metadata(),
        "workload": {
            "p": args.p, "sizes": sizes, "pairs": pairs, "seed": args.seed,
            "supersteps": len(profile.supersteps),
            "measured_supersteps": len(profile.measured_steps),
            "total_sent_bytes": profile.total_sent_bytes,
        },
        "model": result.model.to_json(),
        "mae_default_us": result.mae_default_us,
        "mae_calibrated_us": result.mae_calibrated_us,
        "improvement_us": result.improvement_us,
        "max_abs_residual_us": result.max_abs_residual_us,
    }
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(
        f"calibrated {result.n_steps} supersteps: "
        f"MAE {result.mae_default_us:.1f}us -> {result.mae_calibrated_us:.1f}us "
        f"(improvement {result.improvement_us:.1f}us); wrote {args.output}"
    )
    if result.mae_calibrated_us > result.mae_default_us:
        print(
            "bench_profile: FAIL -- calibration did not improve on the "
            "default model", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
