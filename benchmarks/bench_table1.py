"""Table 1: ΔM-table construction, Lattice vs Sorting (paper Section 6.1).

One benchmark per (algorithm, k, stride-column) cell of the paper's
grid.  Groups are per-(k, stride) so ``--benchmark-group-by=group``
shows the head-to-head comparison the paper tabulates.
"""

import pytest

from repro.bench.workloads import PAPER_P, TABLE1_BLOCK_SIZES, table1_strides
from repro.core.access import compute_access_table
from repro.core.baselines.sorting import sorting_access_table

CASES = [
    (k, label, s)
    for k in TABLE1_BLOCK_SIZES
    for label, s in table1_strides(k).items()
]
IDS = [f"k{k}-{label}" for k, label, _ in CASES]

#: The rank measured; construction cost is essentially rank-independent
#: and the harness module reports the max over all ranks.
RANK = PAPER_P // 2


@pytest.mark.parametrize(("k", "label", "s"), CASES, ids=IDS)
@pytest.mark.benchmark(max_time=0.25, min_rounds=3)
def test_lattice(benchmark, k, label, s):
    benchmark.group = f"table1 k={k} {label}"
    table = benchmark(compute_access_table, PAPER_P, k, 0, s, RANK)
    assert table.length <= k


@pytest.mark.parametrize(("k", "label", "s"), CASES, ids=IDS)
@pytest.mark.benchmark(max_time=0.25, min_rounds=3)
def test_sorting(benchmark, k, label, s):
    benchmark.group = f"table1 k={k} {label}"
    table = benchmark(sorting_access_table, PAPER_P, k, 0, s, RANK)
    assert table.length <= k
