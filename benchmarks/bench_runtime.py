"""Runtime-level benchmarks: alignment localization, communication-set
generation, and whole-statement execution on the virtual machine.

Not tables from the paper -- these measure the surrounding system the
paper's algorithm is designed to serve (schedule construction cost,
two-application alignment overhead, end-to-end statement cost), so the
reproduction's claims about "suitable for inclusion in compilers and
run-time systems" can be judged.
"""

import numpy as np
import pytest

from repro.bench.workloads import PAPER_P
from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.localize import localize_section
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets import compute_comm_schedule
from repro.runtime.exec import distribute, execute_copy, execute_fill


def _array(name, n, p, k, a=1, b=0, textent=None):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0, template_extent=textent),),
    )


@pytest.mark.parametrize("alignment", ["identity", "affine"])
@pytest.mark.benchmark(max_time=0.3, min_rounds=3)
def test_localize_section(benchmark, alignment):
    """Two-application scheme vs plain identity localization."""
    benchmark.group = "runtime-localize"
    a, b = (1, 0) if alignment == "identity" else (3, 2)
    align = Alignment(a, b)
    sec = RegularSection(0, 9999, 7)
    benchmark(localize_section, PAPER_P, 16, 10_000, align, sec, PAPER_P // 2)


@pytest.mark.parametrize("kb", [4, 8])
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_comm_schedule(benchmark, kb):
    """Communication-set generation for a block-size-changing copy."""
    benchmark.group = "runtime-commsets"
    p, n = 8, 4096
    a = _array("A", n, p, 16)
    b = _array("B", n, p, kb)
    sec = RegularSection(0, n - 1, 3)
    sched = benchmark(compute_comm_schedule, a, sec, b, sec)
    assert sched.total_elements == len(sec)


@pytest.mark.parametrize("shape", ["b", "d", "v"])
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_statement_fill(benchmark, shape):
    """Whole A(l:u:s) = scalar statement on an 8-rank machine."""
    benchmark.group = "runtime-fill"
    p, n = 8, 65_536
    arr = _array("A", n, p, 16)
    vm = VirtualMachine(p)
    distribute(vm, arr, np.zeros(n))
    sec = RegularSection(3, n - 1, 7)
    written = benchmark(execute_fill, vm, arr, (sec,), 1.0, shape)
    assert written == len(sec)


@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_statement_copy(benchmark):
    """Whole A(sec) = B(sec) statement including pack/exchange/unpack."""
    benchmark.group = "runtime-copy"
    p, n = 8, 16_384
    a = _array("A", n, p, 16)
    b = _array("B", n, p, 4)
    vm = VirtualMachine(p)
    distribute(vm, a, np.zeros(n))
    distribute(vm, b, np.arange(n, dtype=float))
    sec_a = RegularSection(0, n - 2, 3)
    sec_b = RegularSection(1, n - 1, 3)
    sched = compute_comm_schedule(a, sec_a, b, sec_b)
    benchmark(execute_copy, vm, a, sec_a, b, sec_b, sched)


@pytest.mark.parametrize("k", [1, 4, 16])
@pytest.mark.benchmark(max_time=0.5, min_rounds=3)
def test_transpose(benchmark, k):
    """Distributed transpose on a 2x2 grid (plan reused, execution timed)."""
    from repro.runtime.commsets2d import compute_comm_schedule_2d
    from repro.runtime.exec import execute_transpose

    benchmark.group = f"runtime-transpose k={k}"
    n = 128
    grid = ProcessorGrid("G", (2, 2))
    a = DistributedArray(
        "TA", (n, n), grid,
        (AxisMap(CyclicK(k), grid_axis=0), AxisMap(CyclicK(k), grid_axis=1)),
    )
    b = DistributedArray(
        "TB", (n, n), grid,
        (AxisMap(CyclicK(k), grid_axis=0), AxisMap(CyclicK(k), grid_axis=1)),
    )
    sec = (RegularSection(0, n - 1, 1), RegularSection(0, n - 1, 1))
    schedule = compute_comm_schedule_2d(a, sec, b, sec, rhs_dims=(1, 0))
    vm = VirtualMachine(4)
    distribute(vm, a, np.zeros((n, n)))
    distribute(vm, b, np.arange(n * n, dtype=float).reshape(n, n))
    benchmark(execute_transpose, vm, a, b, schedule)
