#!/usr/bin/env python
"""Benchmark live re-layout (elastic membership) and write BENCH_elastic.json.

Times :func:`repro.runtime.relayout` -- the planned, crash-tolerant
migration that moves an array between distributions and rank counts
mid-program -- and records alongside each wall time the communication
volume its schedule induces (elements moved remotely, bytes on the
wire, supersteps).  Three groups:

* ``scale``  -- migration cost vs array size ``n`` for one fixed
  grow shape (cyclic(3) on p -> cyclic(8) on p');
* ``shapes`` -- fixed ``n`` across membership shapes: grow, shrink,
  and same-p redistribution;
* ``faults`` -- the same grow with a forced mid-migration crash, i.e.
  the price of one checkpoint restore + replay (or epoch rollback)
  relative to the clean run.

Every migration is verified bit-identical against a freshly built
static-``p'`` machine before its timing is reported; the script **exits
nonzero on any mismatch** so CI can run it with ``--quick`` as a
correctness smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_elastic.py           # full size
    PYTHONPATH=src python benchmarks/bench_elastic.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.environment import environment_metadata
from repro.distribution import AxisMap, CyclicK, DistributedArray, ProcessorGrid
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.runtime import clear_plan_caches, collect, distribute, relayout


def make_1d(name: str, n: int, p: int, k: int) -> DistributedArray:
    return DistributedArray(
        name, (n,), ProcessorGrid("P", (p,)), (AxisMap(CyclicK(k), grid_axis=0),)
    )


def static_image(n: int, p: int, k: int, host: np.ndarray) -> np.ndarray:
    vm = VirtualMachine(p)
    arr = make_1d("REF", n, p, k)
    distribute(vm, arr, host)
    return collect(vm, arr)


def run_one(
    n: int,
    old_p: int,
    old_k: int,
    new_p: int,
    new_k: int,
    repeats: int,
    fault_plan: FaultPlan | None = None,
) -> dict:
    """Best-of-``repeats`` relayout; returns a result row.  Each repeat
    rebuilds the machine (migration is a one-shot event, so there is no
    warm-cache steady state to measure -- but the plan cache is cleared
    too, making every repeat a full plan + exchange)."""
    host = np.arange(n, dtype=float)
    best = float("inf")
    report = None
    for _ in range(repeats):
        clear_plan_caches()
        vm = VirtualMachine(old_p, fault_plan=fault_plan)
        a = make_1d("A", n, old_p, old_k)
        distribute(vm, a, host)
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        t0 = time.perf_counter()
        a2, report = relayout(
            vm, a, CyclicK(new_k), new_p=new_p, checkpoints=store
        )
        best = min(best, time.perf_counter() - t0)
        got = collect(vm, a2)
        if not np.array_equal(got, static_image(n, new_p, new_k, host)):
            raise SystemExit(
                f"MISMATCH: relayout n={n} p={old_p}->{new_p} "
                f"k={old_k}->{new_k} differs from the static oracle"
            )
    return {
        "n": n,
        "old_p": old_p,
        "new_p": new_p,
        "old_k": old_k,
        "new_k": new_k,
        "seconds": best,
        "moved_elements": report.stats.remote_elements,
        "total_elements": report.stats.elements,
        "moved_bytes": report.moved_bytes,
        "supersteps": report.supersteps,
        "attempts": report.attempts,
        "rollbacks": report.rollbacks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke testing")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repeats per configuration (default 3, quick 2)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_elastic.json")
    args = parser.parse_args(argv)

    repeats = args.repeats or (2 if args.quick else 3)
    sizes = [2_000, 8_000] if args.quick else [10_000, 50_000, 200_000]
    n_shapes = 8_000 if args.quick else 50_000

    rows = []

    print("== scale: grow 4 -> 6 (cyclic(3) -> cyclic(8)) vs n ==")
    for n in sizes:
        row = run_one(n, 4, 3, 6, 8, repeats) | {"benchmark": "scale",
                                                 "variant": "grow-4-to-6"}
        rows.append(row)
        print(f"  n={n:>7}: {row['seconds'] * 1e3:8.2f} ms, "
              f"{row['moved_elements']}/{row['total_elements']} moved, "
              f"{row['supersteps']} supersteps")

    print("== shapes: membership changes at fixed n ==")
    shapes = [
        ("grow-4-to-8", 4, 3, 8, 3),
        ("shrink-8-to-4", 8, 3, 4, 3),
        ("shrink-4-to-2", 4, 5, 2, 5),
        ("redist-same-p", 4, 3, 4, 8),
    ]
    for variant, old_p, old_k, new_p, new_k in shapes:
        row = run_one(n_shapes, old_p, old_k, new_p, new_k, repeats) | {
            "benchmark": "shapes", "variant": variant}
        rows.append(row)
        print(f"  {variant:>14}: {row['seconds'] * 1e3:8.2f} ms, "
              f"{row['moved_elements']}/{row['total_elements']} moved")

    print("== faults: grow 4 -> 6 with a mid-migration crash ==")
    plan = FaultPlan(forced_crashes=frozenset({(2, 1)}), crash_downtime=1)
    clean = run_one(n_shapes, 4, 3, 6, 8, repeats) | {
        "benchmark": "faults", "variant": "clean"}
    faulted = run_one(n_shapes, 4, 3, 6, 8, repeats, fault_plan=plan) | {
        "benchmark": "faults", "variant": "crash-recover"}
    rows.extend([clean, faulted])
    overhead = faulted["seconds"] / max(clean["seconds"], 1e-12)
    print(f"  clean {clean['seconds'] * 1e3:.2f} ms vs crash+recover "
          f"{faulted['seconds'] * 1e3:.2f} ms ({overhead:.2f}x, "
          f"{faulted['rollbacks']} rollback(s), "
          f"{faulted['supersteps']} supersteps)")

    report = {
        "config": {"sizes": sizes, "n_shapes": n_shapes, "repeats": repeats,
                   "quick": args.quick},
        "environment": environment_metadata(),
        "rows": rows,
    }
    args.output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
