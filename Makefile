# Convenience targets for the PPoPP '95 reproduction.

.PHONY: install test bench bench-kernels bench-native bench-elastic \
	bench-service faults soak mp-soak elastic-soak service-soak reproduce \
	examples trace profile clean clean-reports

# Seeds the fault-injection sweep runs under (space separated).
FAULT_SEED_SWEEP ?= 0 1 2 7 42
# Wider seed pool + more property draws for the soak sweep.
SOAK_SEED_SWEEP ?= 0 1 2 3 5 7 11 13 42 97
SOAK_DRAWS ?= 5
# Seeds for the multiprocess-backend soak (real processes per rank, so
# each seed costs more wall-clock than the in-process sweeps).
MP_SEED_SWEEP ?= 0 1 7
# Seeds for the elastic-membership soak (grow/shrink/migrate sweeps on
# both backends, SIGKILL-during-migration included).
ELASTIC_SEED_SWEEP ?= 0 1 7
# Seeds for the planning-service soak (server + client + cache suites
# plus a seeded chaos benchmark run per seed).
SERVICE_SEED_SWEEP ?= 0 1 7
# Where the sweep leaves its per-seed logs and junit reports (CI
# uploads this directory as an artifact when the sweep fails).
FAULT_REPORT_DIR ?= fault-reports

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Vectorized-kernel + plan-cache benchmark; verifies the vectorized
# paths against the scalar oracles and writes BENCH_kernels.json
# (includes the native fill columns when a C compiler is present).
bench-kernels:
	python benchmarks/bench_kernels.py

# Native-kernel focus (docs/NATIVE.md): the compiled-kernel tests, the
# kernels benchmark with native dispatch forced on, and the compiled
# Table 1/2 reproductions through the hashed artifact cache.
bench-native:
	pytest -q tests/runtime/test_native.py tests/runtime/test_emit_c.py
	REPRO_NATIVE=on python benchmarks/bench_kernels.py
	python -m repro table1c
	python -m repro table2c

# Live re-layout benchmark; verifies every migration against a
# static-p' oracle and writes BENCH_elastic.json.
bench-elastic:
	python benchmarks/bench_elastic.py

# Planning-service benchmark (docs/SERVICE.md): boots a real server,
# drives 12k+ concurrent requests plus a seeded-chaos run, verifies
# served plans bit-identically, and writes BENCH_service.json.
bench-service:
	python benchmarks/bench_service.py

# Fault-injection + resilient-protocol suites at several seeds
# (docs/FAULT_MODEL.md): same seed => same fault trace, so any failure
# here is replayable with FAULT_SEEDS=<seed>.
faults:
	mkdir -p $(FAULT_REPORT_DIR)
	for seed in $(FAULT_SEED_SWEEP); do \
		echo "== fault sweep, seed $$seed"; \
		if ! FAULT_SEEDS=$$seed pytest -q \
			tests/machine/test_faults.py \
			tests/machine/test_checkpoint.py \
			tests/runtime/test_resilient.py \
			tests/runtime/test_property_sweep.py \
			--junitxml=$(FAULT_REPORT_DIR)/seed-$$seed.xml \
			> $(FAULT_REPORT_DIR)/seed-$$seed.log 2>&1; then \
			cat $(FAULT_REPORT_DIR)/seed-$$seed.log; \
			echo "fault sweep FAILED at seed $$seed (replay: FAULT_SEEDS=$$seed)"; \
			exit 1; \
		fi; \
		tail -n 1 $(FAULT_REPORT_DIR)/seed-$$seed.log; \
	done

# Long-form soak: ~10 seeds x extra property draws over the fault,
# audit, and resilient-exchange suites (scribble + crash + wire faults).
# Flight-recorder dumps from any ExchangeFailure land in
# $(FAULT_REPORT_DIR)/ alongside the junit logs, so CI uploads them
# together.  Replay a failure with FAULT_SEEDS=<seed> SOAK_DRAWS=$(SOAK_DRAWS).
soak:
	mkdir -p $(FAULT_REPORT_DIR)
	for seed in $(SOAK_SEED_SWEEP); do \
		echo "== soak sweep, seed $$seed"; \
		if ! FAULT_SEEDS=$$seed SOAK_DRAWS=$(SOAK_DRAWS) pytest -q \
			tests/machine/test_faults.py \
			tests/machine/test_audit.py \
			tests/machine/test_checkpoint.py \
			tests/runtime/test_resilient.py \
			tests/runtime/test_property_sweep.py \
			--junitxml=$(FAULT_REPORT_DIR)/soak-$$seed.xml \
			> $(FAULT_REPORT_DIR)/soak-$$seed.log 2>&1; then \
			cat $(FAULT_REPORT_DIR)/soak-$$seed.log; \
			echo "soak sweep FAILED at seed $$seed (replay: FAULT_SEEDS=$$seed SOAK_DRAWS=$(SOAK_DRAWS))"; \
			exit 1; \
		fi; \
		tail -n 1 $(FAULT_REPORT_DIR)/soak-$$seed.log; \
	done

# Multiprocess-backend soak (docs/BACKENDS.md): the differential
# oracle-vs-real-process suites plus the SIGKILL crash scenarios, swept
# over several seeds.  Real worker processes per rank; any failure
# leaves per-PID flight-recorder/observability dumps plus junit logs in
# $(FAULT_REPORT_DIR)/ and replays with FAULT_SEEDS=<seed>.
mp-soak:
	mkdir -p $(FAULT_REPORT_DIR)
	for seed in $(MP_SEED_SWEEP); do \
		echo "== mp backend soak, seed $$seed"; \
		if ! FAULT_SEEDS=$$seed pytest -q \
			tests/machine/mp \
			tests/runtime/test_differential.py \
			--junitxml=$(FAULT_REPORT_DIR)/mp-$$seed.xml \
			> $(FAULT_REPORT_DIR)/mp-$$seed.log 2>&1; then \
			cat $(FAULT_REPORT_DIR)/mp-$$seed.log; \
			echo "mp soak FAILED at seed $$seed (replay: FAULT_SEEDS=$$seed)"; \
			exit 1; \
		fi; \
		tail -n 1 $(FAULT_REPORT_DIR)/mp-$$seed.log; \
	done

# Elastic-membership soak (docs/FAULT_MODEL.md §6): randomized p -> p'
# migration sweeps on the oracle plus the real-process grow/shrink and
# SIGKILL-during-migration suites, swept over several seeds.  Any
# failure leaves flight-recorder/observability dumps plus junit logs in
# $(FAULT_REPORT_DIR)/ and replays with FAULT_SEEDS=<seed>.
elastic-soak:
	mkdir -p $(FAULT_REPORT_DIR)
	for seed in $(ELASTIC_SEED_SWEEP); do \
		echo "== elastic soak, seed $$seed"; \
		if ! FAULT_SEEDS=$$seed pytest -q \
			tests/runtime/test_elastic.py \
			tests/machine/mp/test_mp_elastic.py \
			--junitxml=$(FAULT_REPORT_DIR)/elastic-$$seed.xml \
			> $(FAULT_REPORT_DIR)/elastic-$$seed.log 2>&1; then \
			cat $(FAULT_REPORT_DIR)/elastic-$$seed.log; \
			echo "elastic soak FAILED at seed $$seed (replay: FAULT_SEEDS=$$seed)"; \
			exit 1; \
		fi; \
		tail -n 1 $(FAULT_REPORT_DIR)/elastic-$$seed.log; \
	done

# Planning-service soak (docs/SERVICE.md, docs/FAULT_MODEL.md §7): the
# full server/client/protocol suites and the concurrent-cache hammering
# tests, then a seeded chaos benchmark run per seed (stalls, failures,
# worker deaths under tight deadlines; fails on any non-bit-identical
# served plan).  Junit + logs land in $(FAULT_REPORT_DIR)/ and any
# failure replays with the printed seed.
service-soak:
	mkdir -p $(FAULT_REPORT_DIR)
	for seed in $(SERVICE_SEED_SWEEP); do \
		echo "== service soak, seed $$seed"; \
		if ! pytest -q \
			tests/service \
			tests/runtime/test_plancache_concurrent.py \
			tests/obs/test_handle_limits.py \
			--junitxml=$(FAULT_REPORT_DIR)/service-$$seed.xml \
			> $(FAULT_REPORT_DIR)/service-$$seed.log 2>&1; then \
			cat $(FAULT_REPORT_DIR)/service-$$seed.log; \
			echo "service soak FAILED at seed $$seed"; \
			exit 1; \
		fi; \
		tail -n 1 $(FAULT_REPORT_DIR)/service-$$seed.log; \
		if ! python benchmarks/bench_service.py --quick --seed $$seed \
			--output $(FAULT_REPORT_DIR)/service-bench-$$seed.json \
			>> $(FAULT_REPORT_DIR)/service-$$seed.log 2>&1; then \
			cat $(FAULT_REPORT_DIR)/service-$$seed.log; \
			echo "service chaos bench FAILED at seed $$seed (replay: --seed $$seed)"; \
			exit 1; \
		fi; \
	done

# Capture a Chrome trace + metrics summary of an instrumented run
# (docs/OBSERVABILITY.md).  Load trace.json at https://ui.perfetto.dev.
trace:
	python -m repro trace copy redistribute resilient --drop 0.2 \
		--out trace.json --summary trace-summary.txt

# Measured superstep profiles + cost-model calibration on both backends
# (docs/OBSERVABILITY.md "Profiles & calibration").  --require-traffic
# makes a silently-unattached collector a hard failure; the calibration
# gate itself is benchmarks/bench_profile.py (BENCH_profile.json).
profile:
	python -m repro profile copy redistribute --backend inprocess \
		--out PROFILE.json --require-traffic
	python -m repro profile copy redistribute --backend mp \
		--out PROFILE_mp.json --require-traffic
	python benchmarks/bench_profile.py --quick

# Regenerate every table/figure of the paper (writes to stdout).
reproduce:
	python -m repro table1
	python -m repro figure7
	python -m repro table2
	python -m repro ablations
	python -m repro opcounts
	python -m repro claims
	python -m repro costs
	python -m repro table1c
	python -m repro table2c

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean: clean-reports
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	rm -rf .repro-native-cache
	find . -name __pycache__ -type d -exec rm -rf {} +

# Drop run artifacts: fault/soak sweep logs, flight-recorder and
# observability dumps, traces, and bench metric sidecars.
clean-reports:
	rm -rf $(FAULT_REPORT_DIR)
	rm -f trace.json trace.jsonl trace-summary.txt BENCH_*_metrics.json
	rm -f PROFILE.json PROFILE_mp.json
