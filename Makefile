# Convenience targets for the PPoPP '95 reproduction.

.PHONY: install test bench faults reproduce examples clean

# Seeds the fault-injection sweep runs under (space separated).
FAULT_SEED_SWEEP ?= 0 1 2 7 42

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fault-injection + resilient-protocol suites at several seeds
# (docs/FAULT_MODEL.md): same seed => same fault trace, so any failure
# here is replayable with FAULT_SEEDS=<seed>.
faults:
	for seed in $(FAULT_SEED_SWEEP); do \
		echo "== fault sweep, seed $$seed"; \
		FAULT_SEEDS=$$seed pytest -q tests/machine/test_faults.py tests/runtime/test_resilient.py || exit 1; \
	done

# Regenerate every table/figure of the paper (writes to stdout).
reproduce:
	python -m repro table1
	python -m repro figure7
	python -m repro table2
	python -m repro ablations
	python -m repro opcounts
	python -m repro claims
	python -m repro costs
	python -m repro table1c
	python -m repro table2c

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
