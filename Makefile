# Convenience targets for the PPoPP '95 reproduction.

.PHONY: install test bench reproduce examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every table/figure of the paper (writes to stdout).
reproduce:
	python -m repro table1
	python -m repro figure7
	python -m repro table2
	python -m repro ablations
	python -m repro opcounts
	python -m repro claims
	python -m repro costs
	python -m repro table1c
	python -m repro table2c

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
