"""Tests for the SPMD virtual machine."""

import numpy as np
import pytest

from repro.machine.vm import VirtualMachine


class TestRun:
    def test_per_rank_execution(self):
        vm = VirtualMachine(4)
        results = vm.run(lambda ctx: ctx.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_extra_args(self):
        vm = VirtualMachine(2)
        assert vm.run(lambda ctx, x, y: ctx.rank + x + y, 5, 10) == [15, 16]

    def test_run_spmd_per_rank_args(self):
        vm = VirtualMachine(3)
        got = vm.run_spmd(lambda ctx, v: v * 2, [(1,), (2,), (3,)])
        assert got == [2, 4, 6]

    def test_run_spmd_arg_count_mismatch(self):
        vm = VirtualMachine(3)
        with pytest.raises(ValueError, match="need 3 argument tuples, got 1"):
            vm.run_spmd(lambda ctx: None, [()])
        with pytest.raises(ValueError, match="need 3 argument tuples, got 4"):
            vm.run_spmd(lambda ctx, v: v, [(1,), (2,), (3,), (4,)])
        # No per-rank args at all is fine.
        assert vm.run_spmd(lambda ctx: ctx.rank) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one rank"):
            VirtualMachine(0)
        with pytest.raises(ValueError, match="at least one phase"):
            VirtualMachine(2).bsp()


class TestMessaging:
    def test_ring_shift(self):
        vm = VirtualMachine(4)

        def send_phase(ctx):
            ctx.send((ctx.rank + 1) % ctx.p, "ring", ctx.rank)

        def recv_phase(ctx):
            return ctx.recv((ctx.rank - 1) % ctx.p, "ring")

        _, got = vm.bsp(send_phase, recv_phase)
        assert got == [3, 0, 1, 2]

    def test_probe_and_drain_in_context(self):
        vm = VirtualMachine(2)

        def send_phase(ctx):
            if ctx.rank == 0:
                ctx.send(1, "t", "data")

        def recv_phase(ctx):
            if ctx.rank == 1:
                assert ctx.probe(0, "t")
                return ctx.drain("t")
            return None

        _, got = vm.bsp(send_phase, recv_phase)
        assert got[1] == [(0, "data")]


class TestMemory:
    def test_allocate_and_access(self):
        vm = VirtualMachine(2)
        vm.allocate_all("A", [10, 20])
        assert len(vm.processors[0].memory("A")) == 10
        assert len(vm.processors[1].memory("A")) == 20
        assert all(isinstance(m, np.ndarray) for m in vm.memories("A"))

    def test_allocate_all_validation(self):
        vm = VirtualMachine(2)
        with pytest.raises(ValueError, match="sizes"):
            vm.allocate_all("A", [10])

    def test_context_memory(self):
        vm = VirtualMachine(2)

        def node(ctx):
            arena = ctx.allocate("buf", 4)
            arena[ctx.rank] = 1.0
            return float(ctx.memory("buf").sum())

        assert vm.run(node) == [1.0, 1.0]

    def test_reset_stats(self):
        vm = VirtualMachine(2)
        vm.run(lambda ctx: ctx.send(0, "t", 1))
        assert vm.network.stats.messages == 2
        vm.reset_stats()
        assert vm.network.stats.messages == 0
