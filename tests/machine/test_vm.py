"""Tests for the SPMD virtual machine."""

import numpy as np
import pytest

from repro.machine.vm import VirtualMachine


class TestRun:
    def test_per_rank_execution(self):
        vm = VirtualMachine(4)
        results = vm.run(lambda ctx: ctx.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_extra_args(self):
        vm = VirtualMachine(2)
        assert vm.run(lambda ctx, x, y: ctx.rank + x + y, 5, 10) == [15, 16]

    def test_run_spmd_per_rank_args(self):
        vm = VirtualMachine(3)
        got = vm.run_spmd(lambda ctx, v: v * 2, [(1,), (2,), (3,)])
        assert got == [2, 4, 6]

    def test_run_spmd_arg_count_mismatch(self):
        vm = VirtualMachine(3)
        with pytest.raises(ValueError, match="need 3 argument tuples, got 1"):
            vm.run_spmd(lambda ctx: None, [()])
        with pytest.raises(ValueError, match="need 3 argument tuples, got 4"):
            vm.run_spmd(lambda ctx, v: v, [(1,), (2,), (3,), (4,)])
        # No per-rank args at all is fine.
        assert vm.run_spmd(lambda ctx: ctx.rank) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one rank"):
            VirtualMachine(0)
        with pytest.raises(ValueError, match="at least one phase"):
            VirtualMachine(2).bsp()


class TestMessaging:
    def test_ring_shift(self):
        vm = VirtualMachine(4)

        def send_phase(ctx):
            ctx.send((ctx.rank + 1) % ctx.p, "ring", ctx.rank)

        def recv_phase(ctx):
            return ctx.recv((ctx.rank - 1) % ctx.p, "ring")

        _, got = vm.bsp(send_phase, recv_phase)
        assert got == [3, 0, 1, 2]

    def test_probe_and_drain_in_context(self):
        vm = VirtualMachine(2)

        def send_phase(ctx):
            if ctx.rank == 0:
                ctx.send(1, "t", "data")

        def recv_phase(ctx):
            if ctx.rank == 1:
                assert ctx.probe(0, "t")
                return ctx.drain("t")
            return None

        _, got = vm.bsp(send_phase, recv_phase)
        assert got[1] == [(0, "data")]


class TestMemory:
    def test_allocate_and_access(self):
        vm = VirtualMachine(2)
        vm.allocate_all("A", [10, 20])
        assert len(vm.processors[0].memory("A")) == 10
        assert len(vm.processors[1].memory("A")) == 20
        assert all(isinstance(m, np.ndarray) for m in vm.memories("A"))

    def test_allocate_all_validation(self):
        vm = VirtualMachine(2)
        with pytest.raises(ValueError, match="sizes"):
            vm.allocate_all("A", [10])

    def test_context_memory(self):
        vm = VirtualMachine(2)

        def node(ctx):
            arena = ctx.allocate("buf", 4)
            arena[ctx.rank] = 1.0
            return float(ctx.memory("buf").sum())

        assert vm.run(node) == [1.0, 1.0]

    def test_reset_stats(self):
        vm = VirtualMachine(2)
        vm.run(lambda ctx: ctx.send(0, "t", 1))
        assert vm.network.stats.messages == 2
        vm.reset_stats()
        assert vm.network.stats.messages == 0


class TestCrashLifecycle:
    def test_forced_crash_fires_at_barrier(self):
        from repro.machine.faults import FaultPlan

        plan = FaultPlan(forced_crashes=frozenset({(1, 2)}), crash_downtime=1)
        vm = VirtualMachine(4, fault_plan=plan)
        vm.run(lambda ctx: ctx.rank)  # superstep 0: everyone fine
        assert vm.dead_ranks == ()
        vm.run(lambda ctx: ctx.rank)  # barrier at step 1 kills rank 2
        assert vm.dead_ranks == (2,)
        assert vm.crash_log == [(2, 1)]

    def test_dead_rank_skips_execution_and_yields_none(self):
        vm = VirtualMachine(3)
        vm.crash_rank(1, downtime=100)
        got = vm.run(lambda ctx: ctx.rank * 10)
        assert got == [0, None, 20]
        got = vm.run_spmd(lambda ctx, v: v, [(7,), (8,), (9,)])
        assert got == [7, None, 9]

    def test_crash_quarantines_in_flight_sends(self):
        vm = VirtualMachine(2)

        # Send from both ranks, then crash rank 1 before the barrier.
        vm.network.send(0, 1, "t", "to-dead")
        vm.network.send(1, 0, "t", "from-dead")
        vm.crash_rank(1, downtime=1)
        assert vm.network.stats.quarantined == 2
        vm.run(lambda ctx: None)
        assert not vm.network.probe(0, 1, "t")

    def test_restart_wipes_memory_and_bumps_incarnation(self):
        vm = VirtualMachine(2)
        vm.allocate_all("A", [4, 4])
        vm.processors[1].memory("A")[:] = 5.0
        vm.crash_rank(1, downtime=1)
        assert vm.processors[1].incarnation == 0
        while not vm.processors[1].alive:
            vm.run(lambda ctx: None)
        assert vm.processors[1].incarnation == 1
        assert vm.processors[1].memory_names == ()
        # Rank 0 untouched.
        assert vm.processors[0].memory("A").shape == (4,)

    def test_crash_and_restart_events_are_traced(self):
        vm = VirtualMachine(2)
        vm.crash_rank(0, downtime=1)
        while not vm.processors[0].alive:
            vm.run(lambda ctx: None)
        kinds = [ev.kind for ev in vm.network.fault_events]
        assert kinds.count("crash") == 1
        assert kinds.count("restart") == 1
        restart = next(ev for ev in vm.network.fault_events if ev.kind == "restart")
        assert restart.seq == 1  # incarnation number rides in seq

    def test_machine_report_carries_crash_facts(self):
        from repro.machine.trace import machine_report

        vm = VirtualMachine(3)
        vm.crash_rank(2, downtime=100)
        report = machine_report(vm)
        assert report["crashes"] == [(2, 0)]
        assert report["dead_ranks"] == [2]
        assert report["incarnations"] == [0, 0, 0]
