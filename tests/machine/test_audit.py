"""Tests for the integrity auditor, divergence localization, and the
flight recorder (docs/FAULT_MODEL.md §5).

The auditor's contract: writes the runtime vouches for (``note_write``)
are never divergences; any other byte change -- a scribble, a stray
host-side poke, an un-noted reallocation -- is localized to
``(rank, arena, chunk, slots)``.
"""

import json

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.audit import (
    WHOLE_ARENA,
    Divergence,
    IntegrityAuditor,
    localize_divergence,
)
from repro.machine.faults import FaultPlan
from repro.machine.trace import FlightRecorder
from repro.machine.vm import VirtualMachine


def make_vm(p=2, n=16):
    vm = VirtualMachine(p)

    def alloc(ctx):
        mem = ctx.allocate("x", n)
        mem[:] = np.arange(n, dtype=float) + 100.0 * ctx.rank

    vm.run(alloc)
    return vm


def noop(ctx):
    pass


class TestLedger:
    def test_clean_machine_audits_clean(self):
        vm = make_vm()
        auditor = IntegrityAuditor(chunk_size=4)
        auditor.attach(vm)
        vm.run(noop)
        assert auditor.audit(vm) == []
        assert auditor.stats.audits == 1
        assert auditor.stats.chunks_checked > 0
        auditor.detach(vm)
        assert auditor.commit not in vm.barrier_hooks

    def test_unnoted_write_is_localized_divergence(self):
        vm = make_vm(p=2, n=16)
        auditor = IntegrityAuditor(chunk_size=4)
        auditor.attach(vm)
        vm.processors[1].memory("x")[9] = -1.0  # un-vouched byte change
        divs = auditor.audit(vm)
        assert len(divs) == 1
        div = divs[0]
        assert (div.rank, div.arena) == (1, "x")
        assert div.chunk == 9 // 4 and div.slots == (9,)
        assert div.localized
        lo, hi = auditor.chunk_range(1, "x", div.chunk)
        assert lo <= 9 < hi

    def test_noted_write_commits_at_barrier(self):
        vm = make_vm()
        auditor = IntegrityAuditor(chunk_size=4)
        auditor.attach(vm)

        def write(ctx):
            ctx.memory("x")[3] = -7.0
            auditor.note_write(ctx.rank, "x", [3])

        vm.run(write)  # commit hook folds the note at the barrier
        assert auditor.audit(vm) == []
        assert auditor.stats.slots_refreshed == 2  # one slot per rank

    def test_note_without_commit_is_still_divergence(self):
        # A write noted but not yet folded (no barrier crossed) diverges:
        # the ledger only trusts what survived a commit.
        vm = make_vm()
        auditor = IntegrityAuditor(chunk_size=4)
        auditor.attach(vm)
        vm.processors[0].memory("x")[5] = -3.0
        auditor.note_write(0, "x", [5])
        assert len(auditor.audit(vm)) == 1

    def test_expected_values_restore_cleanliness(self):
        vm = make_vm()
        auditor = IntegrityAuditor(chunk_size=8)
        auditor.attach(vm)
        arena = vm.processors[0].memory("x")
        arena[[2, 3, 11]] = -9.0
        divs = auditor.audit(vm)
        slots = sorted(s for d in divs for s in d.slots)
        assert slots == [2, 3, 11]
        for div in divs:
            arena[list(div.slots)] = auditor.expected_values(
                0, "x", list(div.slots)
            )
        assert auditor.audit(vm) == []

    def test_unnoted_reallocation_is_whole_arena(self):
        vm = make_vm(n=16)
        auditor = IntegrityAuditor(chunk_size=4)
        auditor.attach(vm)
        vm.processors[0].allocate("x", 8)  # layout changed, never noted
        divs = auditor.audit(vm)
        assert any(
            d.rank == 0 and d.chunk == WHOLE_ARENA and not d.localized
            for d in divs
        )

    def test_scribble_detected_and_repairable(self):
        plan = FaultPlan(seed=6, forced_scribbles=frozenset({(1, 0, "x")}))
        vm = VirtualMachine(2, fault_plan=plan)

        def alloc(ctx):
            ctx.allocate("x", 32)[:] = 1.5

        vm.run(alloc)  # superstep 0: allocate (no scribble yet)
        auditor = IntegrityAuditor(chunk_size=8)
        auditor.attach(vm)
        vm.run(noop)  # superstep 1: the forced scribble fires post-commit
        divs = auditor.audit(vm)
        assert len(divs) == 1 and divs[0].rank == 0 and divs[0].slots
        arena = vm.processors[0].memory("x")
        arena[list(divs[0].slots)] = auditor.expected_values(
            0, "x", list(divs[0].slots)
        )
        assert auditor.audit(vm) == []
        assert np.array_equal(arena, np.full(32, 1.5))

    def test_capture_rank_resets_truth(self):
        vm = make_vm()
        auditor = IntegrityAuditor(chunk_size=4)
        auditor.attach(vm)
        vm.processors[0].memory("x")[0] = -1.0
        assert auditor.audit(vm)
        auditor.capture_rank(vm.processors[0])  # adopt current bytes
        assert auditor.audit(vm) == []

    def test_attach_elsewhere_raises(self):
        vm_a, vm_b = make_vm(), make_vm()
        auditor = IntegrityAuditor()
        auditor.attach(vm_a)
        with pytest.raises(ValueError, match="another machine"):
            auditor.attach(vm_b)

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError, match="chunk_size"):
            IntegrityAuditor(chunk_size=0)


class TestLocalizeDivergence:
    def make_1d(self, name, n, p, k):
        grid = ProcessorGrid("P", (p,))
        return DistributedArray(
            name, (n,), grid,
            (AxisMap(CyclicK(k), Alignment(1, 0), grid_axis=0),),
        )

    def test_slots_map_to_owned_global_indices(self):
        n, p, k = 48, 3, 4
        array = self.make_1d("A", n, p, k)
        for rank in range(p):
            slots = tuple(range(array.local_size(rank)))
            div = Divergence(0, rank, "A", 0, slots)
            mapping = localize_divergence(div, array)
            assert mapping  # every rank owns something at this size
            for slot, index in mapping.items():
                assert array.is_local(index, rank)
                assert array.local_address(index, rank) == slot

    def test_unowned_slots_omitted(self):
        array = self.make_1d("A", 24, 2, 4)
        huge = array.local_size(0) + 100
        div = Divergence(0, 0, "A", 99, (huge,))
        assert localize_divergence(div, array) == {}

    def test_empty_slots_empty_mapping(self):
        array = self.make_1d("A", 24, 2, 4)
        assert localize_divergence(Divergence(0, 0, "A", 0, ()), array) == {}


class TestFlightRecorder:
    def traffic(self, ctx):
        ctx.send((ctx.rank + 1) % ctx.p, "t", float(ctx.rank))

    def test_sends_and_deliveries_land_in_the_right_rings(self):
        vm = VirtualMachine(2)
        rec = FlightRecorder()
        rec.attach(vm)
        vm.run(self.traffic)
        vm.run(lambda ctx: list(ctx.drain("t")))
        snap = rec.snapshot()
        kinds0 = [r["kind"] for r in snap["ranks"]["0"]]
        assert "send" in kinds0 and "deliver" in kinds0
        rec.detach()
        # Detaching restores the event log's previous (disabled) state.
        assert not vm.obs.events.enabled

    def test_capacity_bound_and_eviction_count(self):
        vm = VirtualMachine(2)
        rec = FlightRecorder(capacity=4)
        rec.attach(vm)
        for _ in range(8):
            vm.run(self.traffic)
        snap = rec.snapshot()
        assert all(len(ring) <= 4 for ring in snap["ranks"].values())
        assert snap["dropped_records"] > 0

    def test_fault_events_folded_into_victim_ring(self):
        vm = VirtualMachine(2, fault_plan=FaultPlan(drop=1.0))
        rec = FlightRecorder()
        rec.attach(vm)
        vm.run(self.traffic)
        vm.run(noop)
        snap = rec.snapshot()
        assert any(
            r["kind"] == "drop"
            for ring in snap["ranks"].values()
            for r in ring
        )

    def test_dump_writes_json(self, tmp_path):
        vm = VirtualMachine(2)
        rec = FlightRecorder()
        rec.attach(vm)
        vm.run(self.traffic)
        rec.record(0, vm.superstep, "audit", "synthetic entry")
        path = rec.dump(tmp_path, label="unit")
        assert path.exists() and path.name.startswith("flight-unit-")
        data = json.loads(path.read_text())
        assert data["capacity"] == rec.capacity
        assert "0" in data["ranks"]
        assert any(r["kind"] == "audit" for r in data["ranks"]["0"])

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
