"""Property tests for the BSP machine: determinism and collective laws."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.collectives import allgather, allreduce, alltoall, broadcast, gather
from repro.machine.vm import VirtualMachine

ranks = st.integers(min_value=1, max_value=6)


class TestDeterminism:
    @given(ranks, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_repeated_runs_identical(self, p, seed):
        """The same BSP program produces identical results on every run
        (the property that makes the simulator a usable test substrate)."""
        def program(vm):
            def phase1(ctx):
                rng = np.random.default_rng(seed + ctx.rank)
                ctx.send((ctx.rank + 1) % ctx.p, "t", float(rng.random()))

            def phase2(ctx):
                return ctx.recv((ctx.rank - 1) % ctx.p, "t")

            return vm.bsp(phase1, phase2)[1]

        first = program(VirtualMachine(p))
        second = program(VirtualMachine(p))
        assert first == second


class TestCollectiveLaws:
    @given(ranks, st.data())
    @settings(max_examples=40, deadline=None)
    def test_allgather_equals_gather_plus_broadcast(self, p, data):
        values = data.draw(
            st.lists(st.integers(-100, 100), min_size=p, max_size=p)
        )
        vm = VirtualMachine(p)
        ag = allgather(vm, values)
        vm2 = VirtualMachine(p)
        gathered = gather(vm2, values, root=0)
        bc = broadcast(vm2, [gathered] * p, root=0)
        assert ag == bc
        assert all(row == values for row in ag)

    @given(ranks, st.data())
    @settings(max_examples=40, deadline=None)
    def test_allreduce_sum(self, p, data):
        values = data.draw(
            st.lists(st.integers(-100, 100), min_size=p, max_size=p)
        )
        vm = VirtualMachine(p)
        got = allreduce(vm, values, operator.add)
        assert got == [sum(values)] * p

    @given(ranks, st.data())
    @settings(max_examples=30, deadline=None)
    def test_alltoall_is_matrix_transpose(self, p, data):
        matrix = data.draw(
            st.lists(
                st.lists(st.integers(0, 9), min_size=p, max_size=p),
                min_size=p, max_size=p,
            )
        )
        vm = VirtualMachine(p)
        got = alltoall(vm, matrix)
        want = [[matrix[src][dst] for src in range(p)] for dst in range(p)]
        assert got == want

    @given(ranks, st.data())
    @settings(max_examples=30, deadline=None)
    def test_network_drains_clean(self, p, data):
        """After any collective, no undelivered messages linger."""
        values = data.draw(
            st.lists(st.integers(0, 9), min_size=p, max_size=p)
        )
        vm = VirtualMachine(p)
        allgather(vm, values)
        assert vm.network.idle
