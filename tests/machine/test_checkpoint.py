"""Tests for superstep checkpointing (repro.machine.checkpoint)."""

import numpy as np
import pytest

from repro.machine.checkpoint import (
    ArenaSnapshot,
    CheckpointError,
    CheckpointPolicy,
    CheckpointStore,
    RankSnapshot,
)
from repro.machine.vm import VirtualMachine


def make_vm(p=3):
    vm = VirtualMachine(p)
    for rank in range(p):
        proc = vm.processors[rank]
        proc.allocate("A", 8, dtype=np.float64)
        proc.memory("A")[:] = np.arange(8) * (rank + 1)
        proc.allocate("B", 4, dtype=np.int64)
        proc.memory("B")[:] = rank
    return vm


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="every"):
            CheckpointPolicy(every=0)
        with pytest.raises(ValueError, match="retention"):
            CheckpointPolicy(retention=0)

    def test_due(self):
        assert CheckpointPolicy(every=2).due(2)
        assert not CheckpointPolicy(every=2).due(1)
        assert not CheckpointPolicy(every=None).due(100)  # on-demand only


class TestSnapshotRoundTrip:
    def test_save_and_restore_rank(self):
        vm = make_vm()
        store = CheckpointStore()
        ckpt = store.save(vm, states={1: {"applied": frozenset({3, 4})}})
        assert ckpt.ranks == (0, 1, 2)
        assert ckpt.nbytes == 3 * (8 * 8 + 4 * 8)

        # Wreck rank 1's memory, then restore: bit-identical arenas and
        # the opaque state back out.
        vm.processors[1].memory("A")[:] = -1.0
        vm.processors[1].free("B")
        state = store.restore_rank(vm, 1)
        assert state == {"applied": frozenset({3, 4})}
        assert np.array_equal(vm.processors[1].memory("A"), np.arange(8) * 2)
        assert np.array_equal(vm.processors[1].memory("B"), np.full(4, 1))
        assert store.restores == 1

    def test_restore_after_crash_and_restart(self):
        vm = make_vm()
        store = CheckpointStore()
        store.save(vm)
        vm.crash_rank(0, downtime=1)
        assert not vm.processors[0].alive
        # Restoring into a dead rank is an error; restart first.
        with pytest.raises(CheckpointError, match="dead rank"):
            store.restore_rank(vm, 0)
        while not vm.processors[0].alive:  # downtime elapses at a barrier
            vm.run(lambda ctx: None)
        assert vm.superstep <= 4  # downtime=1: back within a few supersteps
        assert vm.processors[0].memory_names == ()
        store.restore_rank(vm, 0)
        assert np.array_equal(vm.processors[0].memory("A"), np.arange(8) * 1.0)

    def test_corrupted_arena_is_hard_error(self):
        vm = make_vm(1)
        snap = RankSnapshot.capture(vm.processors[0])
        data = snap.arenas[0].data
        bad = ArenaSnapshot(
            snap.arenas[0].name,
            snap.arenas[0].dtype,
            bytes([data[0] ^ 0xFF]) + data[1:],  # definite bit rot
            snap.arenas[0].checksum,
        )
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            bad.restore()

    def test_mutated_state_is_hard_error(self):
        vm = make_vm(1)
        state = {"applied": [1, 2]}
        snap = RankSnapshot.capture(vm.processors[0], state)
        state["applied"].append(3)  # mutation between save and restore
        with pytest.raises(CheckpointError, match="state checksum"):
            snap.restore_into(vm.processors[0])


class TestStore:
    def test_bounded_retention(self):
        vm = make_vm()
        store = CheckpointStore(CheckpointPolicy(retention=2))
        for i in range(5):
            vm.processors[0].memory("A")[0] = float(i)
            store.save(vm)
        assert len(store.checkpoints) == 2
        assert store.saved == 5
        # The newest retained checkpoint wins.
        _, snap = store.latest_for(0)
        assert snap.arenas[0].restore()[0] == 4.0

    def test_latest_for_skips_checkpoints_missing_the_rank(self):
        vm = make_vm()
        store = CheckpointStore(CheckpointPolicy(retention=4))
        store.save(vm)  # covers everyone
        vm.crash_rank(2, downtime=100)
        mid = store.save(vm)  # rank 2 dead: omitted
        assert 2 not in mid.snapshots
        ckpt, _ = store.latest_for(2)
        assert ckpt.superstep == 0
        assert store.latest_for(2, before=0) is None

    def test_no_live_ranks_is_error(self):
        vm = make_vm(1)
        vm.crash_rank(0, downtime=100)
        with pytest.raises(CheckpointError, match="no live ranks"):
            CheckpointStore().save(vm)
