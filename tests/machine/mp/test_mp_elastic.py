"""Elastic membership on the real-process backend.

Growing spawns real worker processes mid-program; shrinking drains,
fences, and reaps them (no orphans, no leaked shared memory); and a
``SIGKILL`` landing mid-migration is absorbed -- either by the resilient
exchange's checkpoint recovery or by a full epoch rollback and retry --
with the committed result bit-identical to a static-``p'`` run.
"""

import os

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.faults import FaultPlan
from repro.machine.mp import MpConfig, MpMachine
from repro.machine.vm import VirtualMachine
from repro.runtime.elastic import ElasticPolicy, relayout
from repro.runtime.exec import collect, distribute

CFG = MpConfig(mark_timeout=1.5, barrier_grace=1.5, suspect_after=1.0)


def make_1d(name, n, p, k):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid, (AxisMap(CyclicK(k), Alignment(1, 0), grid_axis=0),)
    )


def static_image(n, p, k, host):
    vm = VirtualMachine(p)
    arr = make_1d("R", n, p, k)
    distribute(vm, arr, host)
    return collect(vm, arr)


def alive(pid):
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False


class TestMpMembership:
    def test_grow_spawns_real_workers(self):
        with MpMachine(2, config=CFG) as vm:
            pids_before = {r: vm.supervisor.pid(r) for r in range(2)}
            vm.grow_to(4)
            assert vm.p == 4
            new_pids = {r: vm.supervisor.pid(r) for r in range(4)}
            assert all(pid is not None and alive(pid) for pid in new_pids.values())
            assert new_pids[0] == pids_before[0]  # old ranks untouched
            # The grown machine exchanges across old/new rank boundary.
            vm.run(lambda ctx: ctx.send((ctx.rank + 1) % 4, "t", ctx.rank))
            got = vm.run(lambda ctx: ctx.recv((ctx.rank - 1) % 4, "t"))
            assert got == [3, 0, 1, 2]

    def test_retire_reaps_workers_without_orphans(self):
        with MpMachine(4, config=CFG) as vm:
            retired_pids = [vm.supervisor.pid(r) for r in (2, 3)]
            vm.retire_to(2)
            assert vm.p == 2
            for pid in retired_pids:
                assert pid is not None and not alive(pid)
            assert 2 not in vm.supervisor.procs and 3 not in vm.supervisor.procs
            # Survivors keep exchanging at the shrunk world size.
            vm.run(lambda ctx: ctx.send(1 - ctx.rank, "t", ctx.rank * 5))
            got = vm.run(lambda ctx: ctx.recv(1 - ctx.rank, "t"))
            assert got == [5, 0]

    def test_retired_rank_messages_are_dropped_by_resize(self):
        with MpMachine(3, config=CFG) as vm:
            # Deliver a message from rank 2, then retire it before the
            # receiver drains: the resize op discards the orphan.
            vm.run(lambda ctx: ctx.send(0, "t", 99) if ctx.rank == 2 else None)
            vm.run(lambda ctx: None)  # barrier delivers
            vm.retire_to(2)
            drained = vm.drain(0, "t")
            assert drained == []


class TestMpRelayout:
    def test_grow_bit_identical(self):
        n = 60
        host = np.arange(n, dtype=float)
        with MpMachine(3, config=CFG) as vm:
            a = make_1d("A", n, 3, 4)
            distribute(vm, a, host)
            a2, report = relayout(vm, a, CyclicK(7), new_p=5)
            assert vm.p == 5 and report.committed
            assert np.array_equal(collect(vm, a2), host)
            assert np.array_equal(collect(vm, a2), static_image(n, 5, 7, host))

    def test_shrink_bit_identical(self):
        n = 60
        host = np.linspace(0.0, 2.0, n)
        with MpMachine(5, config=CFG) as vm:
            a = make_1d("A", n, 5, 3)
            distribute(vm, a, host)
            a2, report = relayout(vm, a, CyclicK(4), new_p=2)
            assert vm.p == 2 and report.committed
            assert np.array_equal(collect(vm, a2), static_image(n, 2, 4, host))

    def test_sigkill_mid_migration_recovers_bit_identical(self):
        """A real SIGKILL lands on a worker during the migration
        exchange; the epoch machinery must still commit the exact
        static-p' image (checkpoint recovery or rollback + retry)."""
        n = 48
        host = np.arange(n, dtype=float) * 0.5
        plan = FaultPlan(forced_crashes=frozenset({(2, 1)}), crash_downtime=1)
        with MpMachine(3, fault_plan=plan, config=CFG) as vm:
            a = make_1d("A", n, 3, 2)
            distribute(vm, a, host)
            incarnation_before = vm.processors[1].incarnation
            a2, report = relayout(
                vm, a, CyclicK(3), new_p=4,
                policy=ElasticPolicy(max_attempts=3, revive_wait=8),
            )
            assert report.committed
            # The kill really happened: rank 1 runs a later incarnation.
            assert vm.processors[1].incarnation > incarnation_before
            assert np.array_equal(collect(vm, a2), static_image(n, 4, 3, host))

    def test_small_random_sweep(self):
        rng = np.random.default_rng(5)
        for _ in range(3):
            n = int(rng.integers(20, 64))
            old_p = int(rng.integers(2, 5))
            new_p = int(rng.integers(2, 5))
            new_k = int(rng.integers(1, 6))
            host = rng.standard_normal(n)
            with MpMachine(old_p, config=CFG) as vm:
                a = make_1d("A", n, old_p, 3)
                distribute(vm, a, host)
                a2, report = relayout(vm, a, CyclicK(new_k), new_p=new_p)
                assert report.committed and vm.p == new_p
                assert np.array_equal(
                    collect(vm, a2), static_image(n, new_p, new_k, host)
                )
