"""Unit tests for the multiprocess backend's plumbing: monotonic
deadlines, deterministic backoff, and checksummed frame transport."""

import socket
import struct
import time
import zlib

import numpy as np
import pytest

from repro.machine.mp.framing import (
    MAGIC,
    MAX_FRAME,
    FrameClosed,
    FrameError,
    FrameTimeout,
    connect_framed,
    recv_frame,
    send_frame,
)
from repro.machine.mp.timeouts import Backoff, Deadline

_HEADER = struct.Struct("<2sII")


class TestDeadline:
    def test_remaining_clamps_to_zero(self):
        deadline = Deadline(0.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_negative_budget_is_already_expired(self):
        assert Deadline(-5.0).expired()

    def test_counts_down_on_the_monotonic_clock(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        first = deadline.remaining()
        assert 0.0 < first <= 60.0
        assert deadline.remaining() <= first


class TestBackoff:
    def test_schedule_doubles_to_ceiling(self):
        backoff = Backoff(initial=0.01, factor=2.0, ceiling=0.05)
        seen = []
        for _ in range(5):
            seen.append(backoff.peek())
            backoff.sleep(Deadline(0.0))  # truncated: advances, no sleep
        assert seen == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_reset_restores_the_initial_delay(self):
        backoff = Backoff(initial=0.01, factor=2.0, ceiling=0.05)
        backoff.sleep(Deadline(0.0))
        backoff.reset()
        assert backoff.peek() == 0.01

    def test_sleep_is_truncated_by_the_deadline(self):
        backoff = Backoff(initial=10.0, factor=2.0, ceiling=10.0)
        start = time.monotonic()
        slept = backoff.sleep(Deadline(0.01))
        assert time.monotonic() - start < 1.0
        assert slept <= 0.011

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(initial=0.0),
            dict(initial=-1.0),
            dict(factor=0.5),
            dict(initial=0.5, ceiling=0.1),
        ],
    )
    def test_rejects_bad_schedules(self, kwargs):
        with pytest.raises(ValueError):
            Backoff(**kwargs)


@pytest.fixture()
def pair():
    left, right = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    yield left, right
    left.close()
    right.close()


class TestFrames:
    def test_round_trips_arbitrary_objects(self, pair):
        left, right = pair
        payload = {"arr": np.arange(7, dtype=float), "meta": ("x", 3)}
        send_frame(left, payload)
        out = recv_frame(right, Deadline(2.0))
        assert np.array_equal(out["arr"], payload["arr"])
        assert out["meta"] == payload["meta"]

    def test_frames_arrive_in_fifo_order(self, pair):
        left, right = pair
        for i in range(5):
            send_frame(left, i)
        assert [recv_frame(right, Deadline(2.0)) for _ in range(5)] == list(range(5))

    def test_crc_mismatch_is_a_frame_error(self, pair):
        left, right = pair
        body = b"not the bytes the crc covers"
        left.sendall(_HEADER.pack(MAGIC, len(body), zlib.crc32(b"other")) + body)
        with pytest.raises(FrameError, match="CRC"):
            recv_frame(right, Deadline(2.0))

    def test_bad_magic_is_a_frame_error(self, pair):
        left, right = pair
        left.sendall(_HEADER.pack(b"XX", 1, zlib.crc32(b"a")) + b"a")
        with pytest.raises(FrameError, match="magic"):
            recv_frame(right, Deadline(2.0))

    def test_oversized_length_is_refused_without_allocating(self, pair):
        left, right = pair
        left.sendall(_HEADER.pack(MAGIC, MAX_FRAME + 1, 0))
        with pytest.raises(FrameError, match="exceeds"):
            recv_frame(right, Deadline(2.0))

    def test_clean_eof_between_frames_is_frame_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(FrameClosed):
            recv_frame(right, Deadline(2.0))

    def test_death_mid_frame_is_a_frame_error_not_a_hang(self, pair):
        left, right = pair
        body = b"truncated"
        frame = _HEADER.pack(MAGIC, len(body) + 10, zlib.crc32(body)) + body
        left.sendall(frame)
        left.close()
        with pytest.raises(FrameError):
            recv_frame(right, Deadline(2.0))

    def test_silence_surfaces_as_timeout_not_a_hang(self, pair):
        _, right = pair
        start = time.monotonic()
        with pytest.raises(FrameTimeout):
            recv_frame(right, Deadline(0.1))
        assert time.monotonic() - start < 2.0


class TestConnectFramed:
    def test_absent_listener_times_out_with_the_path_named(self, tmp_path):
        path = str(tmp_path / "nobody.sock")
        start = time.monotonic()
        with pytest.raises(FrameTimeout, match="nobody.sock"):
            connect_framed(path, Deadline(0.2))
        assert time.monotonic() - start < 5.0

    def test_connects_once_the_listener_exists(self, tmp_path):
        path = str(tmp_path / "peer.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)
        try:
            sock = connect_framed(path, Deadline(2.0))
            conn, _ = listener.accept()
            send_frame(sock, "hello")
            assert recv_frame(conn, Deadline(2.0)) == "hello"
            sock.close()
            conn.close()
        finally:
            listener.close()
