"""Acceptance tests for the real-process backend.

The headline properties from docs/BACKENDS.md: a rank worker killed
with ``SIGKILL`` mid-exchange is detected within a bounded monotonic
deadline and the run recovers bit-identically through checkpoints;
without checkpoints the failure is a clean diagnostic, never a hang;
teardown leaves no orphan processes and no leaked shared-memory
segments.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine import Machine, create_machine
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.mp import MpConfig, MpMachine
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import collect, distribute
from repro.runtime.resilient import ExchangeFailure, redistribute_resilient

# Tight enough that a hang would fail fast, loose enough for loaded CI.
CFG = MpConfig(mark_timeout=1.5, barrier_grace=1.5, suspect_after=1.0)


def make_1d(name, n, p, k, a=1, b=0):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid, (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),)
    )


def alive(pid):
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False


class TestBasics:
    def test_messaging_round_trip(self):
        with MpMachine(3, config=CFG) as vm:
            vm.run(lambda ctx: ctx.send((ctx.rank + 1) % 3, "t", ctx.rank * 10))
            got = vm.run(lambda ctx: ctx.recv((ctx.rank - 1) % 3, "t"))
        assert got == [20, 0, 10]

    def test_satisfies_the_machine_protocol(self):
        with MpMachine(2, config=CFG) as vm:
            assert isinstance(vm, Machine)

    def test_create_machine_resolves_the_mp_backend(self):
        vm = create_machine(2, "mp", config=CFG)
        try:
            assert isinstance(vm, MpMachine)
        finally:
            vm.close()

    def test_close_is_idempotent(self):
        vm = MpMachine(2, config=CFG)
        vm.close()
        vm.close()

    def test_spawn_start_method_works(self):
        cfg = MpConfig(start_method="spawn", mark_timeout=3.0, suspect_after=5.0)
        with MpMachine(2, config=cfg) as vm:
            vm.run(lambda ctx: ctx.send((ctx.rank + 1) % 2, "t", ctx.rank))
            got = vm.run(lambda ctx: ctx.recv((ctx.rank + 1) % 2, "t"))
        assert got == [1, 0]


class TestSharedMemory:
    def test_worker_side_scribble_is_visible_to_the_driver(self):
        # The scribble command executes *inside the worker process*; the
        # driver seeing the flipped bits proves the arena is genuinely
        # one shared segment, not a copy.
        plan = FaultPlan(forced_scribbles=frozenset({(0, 1, "x")}))
        with MpMachine(2, fault_plan=plan, config=CFG) as vm:
            vm.processors[1].allocate("x", 16, fill=3.0)
            before = vm.processors[1].memory("x").copy()
            vm.run(lambda ctx: None)
            after = vm.processors[1].memory("x")
            assert not np.array_equal(before, after)
        assert [e for e in vm.fault_events if e.kind == "scribble"]


class TestCrashTolerance:
    def test_sigkill_mid_exchange_recovers_bit_identically(self):
        # Reference: the same program on the in-process oracle, no
        # faults at all.
        n, p = 60, 3
        host = np.arange(n, dtype=float) + 0.25
        oracle = VirtualMachine(p)
        distribute(oracle, make_1d("S", n, p, 3), host)
        distribute(oracle, make_1d("D", n, p, 5), np.zeros(n))
        redistribute_resilient(oracle, make_1d("D", n, p, 5), make_1d("S", n, p, 3))
        reference = collect(oracle, make_1d("D", n, p, 5))

        with MpMachine(p, config=CFG) as vm:
            src, dst = make_1d("S", n, p, 3), make_1d("D", n, p, 5)
            distribute(vm, src, host)
            distribute(vm, dst, np.zeros(n))
            store = CheckpointStore(CheckpointPolicy(every=1, retention=6))
            fired = []

            def killer(machine, step):
                # A real, external SIGKILL once the exchange is in
                # flight -- not a simulated crash flag.
                if not fired and machine.superstep >= 1:
                    fired.append(machine.superstep)
                    os.kill(machine.supervisor.pid(2), signal.SIGKILL)

            vm.barrier_hooks.append(killer)
            stats, report = redistribute_resilient(vm, dst, src, checkpoints=store)
            out = collect(vm, dst)

        assert fired, "the kill hook never fired; the scenario is vacuous"
        assert out.tobytes() == reference.tobytes()
        assert vm.crash_log and vm.crash_log[0][0] == 2
        assert report.recoveries
        assert vm.supervisor.exit_codes[(2, 0)] == -signal.SIGKILL

    def test_external_sigkill_is_detected_and_rank_restarts(self):
        with MpMachine(3, config=CFG) as vm:
            os.kill(vm.supervisor.pid(1), signal.SIGKILL)
            vm.run(lambda ctx: None)  # barrier folds the death in
            assert vm.crash_log == [(1, 0)]
            assert vm.dead_ranks == (1,)
            assert vm.supervisor.exit_codes[(1, 0)] == -signal.SIGKILL
            # Downtime elapses; the next superstep revives a fresh
            # incarnation under the same rank.
            vm.run(lambda ctx: None)
            vm.run(lambda ctx: None)
            assert vm.processors[1].alive
            assert vm.processors[1].incarnation == 1
            restarts = [e for e in vm.fault_events if e.kind == "restart"]
            assert restarts and restarts[0].source == 1

    def test_no_checkpoint_failure_is_a_diagnostic_not_a_hang(self):
        n, p = 40, 2
        with MpMachine(p, config=CFG) as vm:
            src, dst = make_1d("S", n, p, 2), make_1d("D", n, p, 5)
            distribute(vm, src, np.arange(n, dtype=float))
            distribute(vm, dst, np.zeros(n))
            fired = []

            def killer(machine, step):
                if not fired and machine.superstep >= 1:
                    fired.append(machine.superstep)
                    os.kill(machine.supervisor.pid(1), signal.SIGKILL)

            vm.barrier_hooks.append(killer)
            start = time.monotonic()
            with pytest.raises(ExchangeFailure, match="checkpointing is disabled") as exc:
                redistribute_resilient(vm, dst, src)
            elapsed = time.monotonic() - start
        assert fired
        assert elapsed < 20.0, f"diagnostic took {elapsed:.1f}s; deadline regressed"
        assert exc.value.report.unrecoverable is not None
        assert exc.value.report.unrecoverable[0] == 1


class TestTeardown:
    def test_close_leaves_no_processes_no_shm_no_session_dir(self):
        vm = MpMachine(3, config=CFG)
        for rank in range(3):
            vm.processors[rank].allocate("a", 32, fill=float(rank))
        vm.run(lambda ctx: ctx.send((ctx.rank + 1) % 3, "t", ctx.rank))
        pids = [vm.supervisor.pid(rank) for rank in range(3)]
        shm_names = {
            handle.shm_arena(name).shm_name
            for handle in vm.processors
            for name in handle.memory_names
        }
        session_dir = vm._session_dir
        assert all(alive(pid) for pid in pids)
        vm.close()
        deadline = time.monotonic() + 5.0
        while any(alive(pid) for pid in pids) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(alive(pid) for pid in pids), "leaked worker processes"
        if os.path.isdir("/dev/shm"):
            leaked = shm_names & set(os.listdir("/dev/shm"))
            assert not leaked, f"leaked shared-memory segments: {leaked}"
        assert not os.path.exists(session_dir)

    def test_dead_rank_arenas_are_unlinked_on_crash(self):
        with MpMachine(2, config=CFG) as vm:
            vm.processors[1].allocate("x", 8)
            name = vm.processors[1].shm_arena("x").shm_name
            vm.crash_rank(1)
            assert not vm.processors[1].alive
            if os.path.isdir("/dev/shm"):
                assert name not in os.listdir("/dev/shm")
