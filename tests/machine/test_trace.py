"""Tests for tracing and machine reports."""

import numpy as np

from repro.machine.trace import AccessTrace, TracingMemory, machine_report
from repro.machine.vm import VirtualMachine


class TestTracingMemory:
    def test_scalar_accesses(self):
        mem = TracingMemory(np.zeros(10))
        mem[3] = 1.0
        mem[7] = 2.0
        _ = mem[3]
        assert mem.trace.writes == [3, 7]
        assert mem.trace.reads == [3]
        assert len(mem) == 10
        assert mem.arena[3] == 1.0

    def test_array_indexing(self):
        mem = TracingMemory(np.zeros(10))
        mem[np.array([1, 4, 6])] = 5.0
        assert mem.trace.writes == [1, 4, 6]
        assert mem.trace.addresses == [1, 4, 6]

    def test_addresses_prefers_writes(self):
        trace = AccessTrace(reads=[1], writes=[2])
        assert trace.addresses == [2]
        assert AccessTrace(reads=[1]).addresses == [1]

    def test_shared_trace(self):
        trace = AccessTrace()
        a = TracingMemory(np.zeros(4), trace)
        b = TracingMemory(np.zeros(4), trace)
        a[0] = 1
        b[1] = 1
        assert trace.writes == [0, 1]


class TestMachineReport:
    def test_report_structure(self):
        vm = VirtualMachine(2)

        def node(ctx):
            ctx.allocate("A", 8)
            ctx.processor.store("A", 0, 1.0)
            ctx.processor.load("A", 0)
            ctx.send(1 - ctx.rank, "t", b"abcd")

        vm.run(node)
        report = machine_report(vm)
        assert report["ranks"] == 2
        assert report["messages"] == 2
        assert report["bytes"] == 8
        assert report["memory"][0]["writes"] == 1
        assert report["memory"][0]["reads"] == 1
        assert report["memory"][0]["allocated_cells"] == 8
        assert report["channels"][(0, 1)] == 1
