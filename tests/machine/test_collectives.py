"""Tests for the BSP collectives."""

import operator

import pytest

from repro.machine.collectives import (
    allgather,
    allreduce,
    alltoall,
    broadcast,
    gather,
    reduce,
    scatter,
)
from repro.machine.vm import VirtualMachine


@pytest.fixture
def vm():
    return VirtualMachine(4)


class TestBroadcastScatter:
    def test_broadcast(self, vm):
        got = broadcast(vm, ["a", "b", "c", "d"], root=2)
        assert got == ["c"] * 4

    def test_scatter(self, vm):
        got = scatter(vm, [10, 20, 30, 40], root=0)
        assert got == [10, 20, 30, 40]

    def test_scatter_validation(self, vm):
        with pytest.raises(ValueError, match="chunks"):
            scatter(vm, [1, 2], root=0)

    def test_bad_root(self, vm):
        with pytest.raises(ValueError, match="root"):
            broadcast(vm, [1] * 4, root=4)


class TestGather:
    def test_gather(self, vm):
        got = gather(vm, [r * r for r in range(4)], root=1)
        assert got == [0, 1, 4, 9]

    def test_allgather(self, vm):
        got = allgather(vm, list("wxyz"))
        assert got == [list("wxyz")] * 4


class TestReduce:
    def test_reduce_sum(self, vm):
        assert reduce(vm, [1, 2, 3, 4], operator.add, root=0) == 10

    def test_allreduce_max(self, vm):
        got = allreduce(vm, [3, 9, 1, 7], max)
        assert got == [9] * 4


class TestAllToAll:
    def test_personalized_exchange(self, vm):
        matrix = [[f"{src}->{dst}" for dst in range(4)] for src in range(4)]
        got = alltoall(vm, matrix)
        for dst in range(4):
            assert got[dst] == [f"{src}->{dst}" for src in range(4)]

    def test_validation(self, vm):
        with pytest.raises(ValueError, match="matrix"):
            alltoall(vm, [[1, 2]])

    def test_network_stats(self, vm):
        alltoall(vm, [[0] * 4 for _ in range(4)])
        assert vm.network.stats.messages == 16
