"""Tests for the analytic communication cost model."""

import pytest

from repro.machine.costmodel import CostModel, estimate_superstep
from repro.machine.topology import CrossbarTopology, HypercubeTopology
from repro.runtime.commsets import Transfer


def make_transfer(src, dst, n):
    return Transfer(src, dst, tuple(range(n)), tuple(range(n)), tuple(range(n)))


class TestCostModel:
    def test_message_formula(self):
        model = CostModel(alpha_us=10.0, beta_us_per_byte=0.5,
                          gamma_us_per_hop=2.0, word_bytes=8)
        assert model.message_us(4, 1) == 10.0 + 0.5 * 32
        assert model.message_us(4, 3) == 10.0 + 0.5 * 32 + 2.0 * 2

    def test_validation(self):
        model = CostModel()
        with pytest.raises(ValueError, match="nonnegative"):
            model.message_us(-1, 1)
        with pytest.raises(ValueError, match="hop"):
            model.message_us(4, 0)


class TestEstimate:
    def test_locals_are_free(self):
        est = estimate_superstep(
            [make_transfer(0, 0, 100)], 2, CrossbarTopology(2)
        )
        assert est.time_us == 0.0
        assert est.messages == ()

    def test_bottleneck(self):
        model = CostModel(alpha_us=1.0, beta_us_per_byte=0.0,
                          gamma_us_per_hop=0.0)
        # Rank 0 sends to everyone: it is the bottleneck.
        transfers = [make_transfer(0, r, 1) for r in range(1, 4)]
        est = estimate_superstep(transfers, 4, CrossbarTopology(4), model)
        assert est.bottleneck_rank == 0
        assert est.per_rank_us[0] == 3.0
        assert est.per_rank_us[1] == 1.0
        # makespan = bottleneck load + slowest single transit.
        assert est.time_us == 3.0 + 1.0

    def test_hypercube_distance_matters(self):
        model = CostModel(alpha_us=0.0, beta_us_per_byte=0.0,
                          gamma_us_per_hop=5.0)
        cube = HypercubeTopology(3)
        far = estimate_superstep([make_transfer(0, 7, 1)], 8, cube, model)
        near = estimate_superstep([make_transfer(0, 1, 1)], 8, cube, model)
        assert far.messages[0].hops == 3
        assert far.time_us > near.time_us

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one rank"):
            estimate_superstep([], 0, CrossbarTopology(1))

    def test_on_real_schedule(self):
        from repro.distribution import (AxisMap, Block, CyclicK,
                                        DistributedArray, ProcessorGrid)
        from repro.runtime.redistribute import plan_redistribution

        grid = ProcessorGrid("P", (8,))
        src = DistributedArray("S", (256,), grid, (AxisMap(CyclicK(1), grid_axis=0),))
        dst = DistributedArray("D", (256,), grid, (AxisMap(Block(), grid_axis=0),))
        schedule, stats = plan_redistribution(dst, src)
        est = estimate_superstep(schedule.transfers, 8, HypercubeTopology(3))
        assert len(est.messages) == stats.messages
        assert sum(m.elements for m in est.messages) == stats.remote_elements
        assert est.time_us > 0
