"""Tests for deterministic fault injection at the network layer.

``make faults`` runs this file (and the resilient-protocol suite) under
several seeds via the ``FAULT_SEEDS`` environment variable.
"""

import os

import numpy as np
import pytest

from repro.machine.faults import (
    FAULT_KINDS,
    FaultDecision,
    FaultPlan,
    corrupt_payload,
    scribble_arena,
)
from repro.machine.network import Network
from repro.machine.trace import fault_report, machine_report
from repro.machine.vm import VirtualMachine

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2").split(",")]


def flood(net, rounds=6, per_round=8):
    """Drive a deterministic traffic pattern through the network."""
    for _ in range(rounds):
        for i in range(per_round):
            net.send(i % net.p, (i + 1) % net.p, "t", float(i))
        net.deliver()


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_fault_trace(self, seed):
        def run():
            plan = FaultPlan(
                seed=seed, drop=0.3, duplicate=0.2, reorder=0.5,
                corrupt=0.2, stall=0.2,
            )
            net = Network(4, fault_plan=plan)
            flood(net)
            return net.fault_events, net.stats

        events_a, stats_a = run()
        events_b, stats_b = run()
        assert events_a == events_b
        assert stats_a == stats_b
        assert events_a  # at these rates the trace cannot be empty

    def test_different_seeds_differ(self):
        traces = []
        for seed in (0, 1):
            net = Network(4, fault_plan=FaultPlan(seed=seed, drop=0.4))
            flood(net)
            traces.append(net.fault_events)
        assert traces[0] != traces[1]

    def test_decisions_are_pure_functions(self):
        plan = FaultPlan(seed=7, drop=0.5, duplicate=0.5, corrupt=0.5)
        first = [plan.decide(3, 0, 1, s) for s in range(20)]
        again = [plan.decide(3, 0, 1, s) for s in range(20)]
        assert first == again
        assert any(not d.clean for d in first)
        assert any(d.clean for d in first)


class TestPlanConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="drop rate"):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError, match="stall rate"):
            FaultPlan(stall=-0.1)
        with pytest.raises(ValueError, match="crash rate"):
            FaultPlan(crash=2.0)
        with pytest.raises(ValueError, match="crash_downtime"):
            FaultPlan(crash=0.1, crash_downtime=0)

    def test_every_rate_field_is_validated(self):
        # No fault kind may silently accept a nonsense rate.
        for kind in FAULT_KINDS:
            with pytest.raises(ValueError, match=f"{kind} rate"):
                FaultPlan(**{kind: -0.5})
            with pytest.raises(ValueError, match=f"{kind} rate"):
                FaultPlan(**{kind: "high"})

    def test_from_rates_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match=r"unknown fault kind.*'drp'"):
            FaultPlan.from_rates(drp=0.3)
        with pytest.raises(ValueError, match="known kinds"):
            FaultPlan.from_rates(seed=1, drop=0.1, crashes=0.2)

    def test_from_rates_builds_equivalent_plan(self):
        plan = FaultPlan.from_rates(
            seed=5, drop=0.2, crash=0.1, crash_downtime=3,
            forced_stalls=frozenset({(0, 1)}),
        )
        assert plan == FaultPlan(
            seed=5, drop=0.2, crash=0.1, crash_downtime=3,
            forced_stalls=frozenset({(0, 1)}),
        )

    def test_zero_rates_are_clean(self):
        plan = FaultPlan(seed=3)
        assert all(
            plan.decide(t, 0, 1, s).clean for t in range(5) for s in range(5)
        )
        assert not plan.stalled(0, 0)
        assert plan.permutation(0, 0, 1, 4) == [0, 1, 2, 3]

    def test_superstep_window(self):
        plan = FaultPlan(seed=0, drop=1.0, supersteps=(2, 4))
        assert not plan.decide(1, 0, 1, 0).drop
        assert plan.decide(2, 0, 1, 0).drop
        assert plan.decide(3, 0, 1, 0).drop
        assert not plan.decide(4, 0, 1, 0).drop

    def test_channel_restriction(self):
        plan = FaultPlan(seed=0, drop=1.0, channels=frozenset({(0, 1)}))
        assert plan.decide(0, 0, 1, 0).drop
        assert not plan.decide(0, 1, 0, 0).drop

    def test_forced_schedules(self):
        plan = FaultPlan(
            forced_drops=frozenset({(0, 0, 1, 0)}),
            forced_stalls=frozenset({(1, 2)}),
            forced_crashes=frozenset({(3, 1)}),
        )
        assert plan.decide(0, 0, 1, 0) == FaultDecision(drop=True)
        assert plan.decide(0, 0, 1, 1).clean
        assert plan.stalled(1, 2) and not plan.stalled(0, 2)
        assert plan.crashed(3, 1) and not plan.crashed(3, 0)
        assert not plan.crashed(2, 1)

    def test_crash_decisions_are_deterministic(self):
        plan = FaultPlan(seed=4, crash=0.3)
        first = [plan.crashed(t, r) for t in range(20) for r in range(4)]
        again = [plan.crashed(t, r) for t in range(20) for r in range(4)]
        assert first == again
        assert any(first) and not all(first)
        # Window restriction applies to crashes like any other kind.
        windowed = FaultPlan(seed=4, crash=1.0, supersteps=(5, 6))
        assert windowed.crashed(5, 0)
        assert not windowed.crashed(4, 0) and not windowed.crashed(6, 0)


class TestNetworkFaults:
    def test_drop_all(self):
        net = Network(2, fault_plan=FaultPlan(drop=1.0))
        net.send(0, 1, "t", 1.0)
        assert net.deliver() == 0
        assert not net.probe(1, 0, "t")
        assert net.stats.sent == 1
        assert net.stats.dropped == 1
        assert net.stats.delivered == 0

    def test_duplicate_all(self):
        net = Network(2, fault_plan=FaultPlan(duplicate=1.0))
        net.send(0, 1, "t", 42)
        assert net.deliver() == 2
        assert net.recv(1, 0, "t") == 42
        assert net.recv(1, 0, "t") == 42
        assert net.stats.duplicated == 1
        assert net.stats.delivered == 2

    def test_corrupt_all_changes_payload(self):
        net = Network(2, fault_plan=FaultPlan(corrupt=1.0))
        payload = np.arange(8, dtype=np.float64)
        net.send(0, 1, "t", payload)
        net.deliver()
        got = net.recv(1, 0, "t")
        assert not np.array_equal(got, payload)
        # The sender's buffer is never mutated in place.
        assert np.array_equal(payload, np.arange(8, dtype=np.float64))
        assert net.stats.corrupted == 1

    def test_stall_delays_by_one_superstep(self):
        plan = FaultPlan(forced_stalls=frozenset({(0, 0)}))
        net = Network(2, fault_plan=plan)
        net.send(0, 1, "t", "late")
        assert net.deliver() == 0  # held at superstep 0
        assert not net.probe(1, 0, "t")
        assert net.deliver() == 1  # released at superstep 1
        assert net.recv(1, 0, "t") == "late"
        assert net.stats.stalled == 1

    def test_reorder_permutes_within_channel(self):
        plan = FaultPlan(seed=5, reorder=1.0)
        net = Network(2, fault_plan=plan)
        for i in range(6):
            net.send(0, 1, "t", i)
        net.deliver()
        got = [net.recv(1, 0, "t") for _ in range(6)]
        assert sorted(got) == list(range(6))
        assert got != list(range(6))  # seed 5 shuffles a 6-batch

    def test_fault_free_plan_keeps_semantics(self):
        net = Network(2, fault_plan=FaultPlan(seed=9))
        for i in range(4):
            net.send(0, 1, "t", i)
        assert net.deliver() == 4
        assert [net.recv(1, 0, "t") for _ in range(4)] == list(range(4))
        assert net.fault_events == []

    def test_outstanding(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "b", 2)
        assert net.outstanding({"a"}) == 1
        net.deliver()
        assert net.outstanding({"a", "b"}) == 2
        net.recv(1, 0, "a")
        assert net.outstanding({"a", "b"}) == 1


class TestCorruptPayload:
    @pytest.mark.parametrize("salt", [0, 1, 17, 255])
    def test_ndarray(self, salt):
        arr = np.arange(10, dtype=np.float64)
        out = corrupt_payload(arr, salt)
        assert out.shape == arr.shape and out.dtype == arr.dtype
        assert not np.array_equal(out, arr)

    def test_bytes_and_str(self):
        assert corrupt_payload(b"abc", 1) != b"abc"
        assert corrupt_payload("abc", 2) != "abc"

    def test_scalars(self):
        assert corrupt_payload(5, 3) != 5
        assert corrupt_payload(2.5, 0) != 2.5
        assert corrupt_payload(0.0, 0) != 0.0
        assert corrupt_payload(True, 0) is False

    def test_containers_recurse_one_element(self):
        original = (1, 2, 3)
        out = corrupt_payload(original, 4)
        assert isinstance(out, tuple) and out != original
        assert sum(a != b for a, b in zip(out, original)) == 1

    def test_empty_payloads_unchanged(self):
        assert corrupt_payload(b"", 0) == b""
        assert corrupt_payload((), 0) == ()
        arr = np.zeros(0)
        assert corrupt_payload(arr, 0) is arr


class TestTracing:
    def test_fault_events_in_reports(self):
        plan = FaultPlan(seed=2, drop=0.5, duplicate=0.3)
        vm = VirtualMachine(3, fault_plan=plan)

        def node(ctx):
            for dest in range(ctx.p):
                if dest != ctx.rank:
                    ctx.send(dest, "t", float(ctx.rank))

        for _ in range(5):
            vm.run(node)
        report = machine_report(vm)
        net = report["network"]
        assert net["sent"] == 5 * 3 * 2
        assert net["sent"] == net["delivered"] - net["duplicated"] + net["dropped"]
        assert net["fault_events"] == len(vm.network.fault_events)
        faults = fault_report(vm)
        assert faults["plan"] is plan
        assert sum(faults["by_kind"].values()) == len(faults["events"])
        assert faults["by_kind"].get("drop", 0) == net["dropped"]

    def test_reset_stats_clears_fault_events(self):
        vm = VirtualMachine(2, fault_plan=FaultPlan(drop=1.0))
        vm.run(lambda ctx: ctx.send(1 - ctx.rank, "t", 1))
        assert vm.network.fault_events
        vm.reset_stats()
        assert vm.network.fault_events == []
        assert vm.network.stats.dropped == 0


class TestCorruptPayloadDeterminism:
    def test_dict_corrupts_one_value_deterministically(self):
        original = {"b": 2, "a": 1, "c": 3}
        first = corrupt_payload(dict(original), 5)
        again = corrupt_payload(dict(original), 5)
        assert first == again  # same salt -> same leaf, same mutation
        assert first != original
        assert set(first) == set(original)  # keys survive; a value rots
        assert sum(first[k] != original[k] for k in original) == 1

    def test_dict_different_salt_may_pick_other_victim(self):
        original = {"a": 1, "b": 2, "c": 3, "d": 4}
        victims = set()
        for salt in range(8):
            out = corrupt_payload(dict(original), salt)
            changed = [k for k in original if out[k] != original[k]]
            assert len(changed) == 1
            victims.add(changed[0])
        assert len(victims) > 1

    def test_nested_tuple_same_leaf_for_same_salt(self):
        original = ("hdr", (1, 2, (3, 4)), 7)
        outs = [corrupt_payload(original, 9) for _ in range(3)]
        assert outs[0] == outs[1] == outs[2]
        assert outs[0] != original
        flat_a = repr(outs[0])
        flat_b = repr(corrupt_payload(original, 10))
        assert flat_a != flat_b or outs[0] == corrupt_payload(original, 10)

    def test_namedtuple_type_preserved(self):
        from collections import namedtuple

        Header = namedtuple("Header", "tid seq crc")
        original = Header(3, 1, 0xDEAD)
        out = corrupt_payload(original, 2)
        assert isinstance(out, Header)
        assert out != original
        assert sum(a != b for a, b in zip(out, original)) == 1

    def test_empty_dict_unchanged(self):
        assert corrupt_payload({}, 0) == {}


class TestPermutationDeterminism:
    def test_same_seed_same_key_same_schedule(self):
        plan = FaultPlan(seed=11, reorder=1.0)
        first = plan.permutation(3, 0, 1, 8)
        again = plan.permutation(3, 0, 1, 8)
        assert first == again
        assert sorted(first) == list(range(8))
        assert first != list(range(8))  # reorder=1.0 must actually shuffle

    def test_same_seed_different_key_differs(self):
        plan = FaultPlan(seed=11, reorder=1.0)
        by_superstep = {tuple(plan.permutation(s, 0, 1, 8)) for s in range(8)}
        by_channel = {tuple(plan.permutation(3, s, s + 1, 8)) for s in range(3)}
        assert len(by_superstep | by_channel) > 1

    def test_different_seed_differs(self):
        first = FaultPlan(seed=1, reorder=1.0).permutation(3, 0, 1, 16)
        other = FaultPlan(seed=2, reorder=1.0).permutation(3, 0, 1, 16)
        assert sorted(first) == sorted(other) == list(range(16))
        assert first != other


class TestScribble:
    def test_flips_exactly_width_bits_in_place(self):
        pristine = np.arange(16, dtype=np.float64)
        arena = pristine.copy()
        touched = scribble_arena(arena, salt=12345, width=3)
        assert not np.array_equal(arena, pristine)
        diff = arena.view(np.uint8) ^ pristine.view(np.uint8)
        assert int(np.count_nonzero(diff)) == 3
        assert all(bin(int(b)).count("1") == 1 for b in diff[diff != 0])
        byte_slots = sorted({int(i) // 8 for i in np.nonzero(diff)[0]})
        assert touched == byte_slots

    def test_same_salt_replays_and_self_inverts(self):
        arena_a = np.arange(10, dtype=np.float64)
        arena_b = arena_a.copy()
        assert scribble_arena(arena_a, 77, 2) == scribble_arena(arena_b, 77, 2)
        assert np.array_equal(arena_a, arena_b)
        # XOR-flipping the same bits again restores the original.
        scribble_arena(arena_a, 77, 2)
        assert np.array_equal(arena_a, np.arange(10, dtype=np.float64))

    def test_harmless_on_empty_and_object_arenas(self):
        assert scribble_arena(np.zeros(0), 5) == []
        objs = np.array([None, "x"], dtype=object)
        assert scribble_arena(objs, 5) == []
        assert objs[1] == "x"

    def test_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            scribble_arena(np.zeros(4), 0, width=0)
        with pytest.raises(ValueError, match="scribble_width"):
            FaultPlan(scribble=0.1, scribble_width=0)

    def test_scribbled_is_deterministic_and_arena_keyed(self):
        plan = FaultPlan(seed=3, scribble=0.5)
        first = [plan.scribbled(s, 0, "x") for s in range(32)]
        again = [plan.scribbled(s, 0, "x") for s in range(32)]
        assert first == again
        assert any(first) and not all(first)
        other = [plan.scribbled(s, 0, "y") for s in range(32)]
        assert first != other
        salts = {plan.scribble_salt(s, 0, "x") for s in range(8)}
        assert len(salts) > 1
        assert plan.scribble_salt(2, 0, "x") == plan.scribble_salt(2, 0, "x")

    def test_forced_scribbles_fire_without_rate(self):
        plan = FaultPlan(seed=0, forced_scribbles=frozenset({(2, 1, "x")}))
        assert plan.scribbled(2, 1, "x")
        assert not plan.scribbled(2, 0, "x")
        assert not plan.scribbled(1, 1, "x")

    def test_vm_injects_and_traces_scribbles(self):
        plan = FaultPlan(seed=0, forced_scribbles=frozenset({(0, 1, "x")}))
        vm = VirtualMachine(2, fault_plan=plan)

        def alloc(ctx):
            mem = ctx.allocate("x", 8)
            mem[:] = float(ctx.rank + 1)

        vm.run(alloc)  # first barrier is superstep 0: the scribble fires
        pristine = np.full(8, 2.0)
        assert not np.array_equal(vm.processors[1].memory("x"), pristine)
        assert np.array_equal(vm.processors[0].memory("x"), np.full(8, 1.0))
        events = [e for e in vm.network.fault_events if e.kind == "scribble"]
        assert len(events) == 1
        assert events[0].source == 1 and events[0].tag == "x"
        assert vm.processors[1].stats.scribbles == 1
        report = machine_report(vm)
        assert report["memory"][1]["scribbles"] == 1
