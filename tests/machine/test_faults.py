"""Tests for deterministic fault injection at the network layer.

``make faults`` runs this file (and the resilient-protocol suite) under
several seeds via the ``FAULT_SEEDS`` environment variable.
"""

import os

import numpy as np
import pytest

from repro.machine.faults import (
    FAULT_KINDS,
    FaultDecision,
    FaultPlan,
    corrupt_payload,
)
from repro.machine.network import Network
from repro.machine.trace import fault_report, machine_report
from repro.machine.vm import VirtualMachine

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2").split(",")]


def flood(net, rounds=6, per_round=8):
    """Drive a deterministic traffic pattern through the network."""
    for _ in range(rounds):
        for i in range(per_round):
            net.send(i % net.p, (i + 1) % net.p, "t", float(i))
        net.deliver()


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_fault_trace(self, seed):
        def run():
            plan = FaultPlan(
                seed=seed, drop=0.3, duplicate=0.2, reorder=0.5,
                corrupt=0.2, stall=0.2,
            )
            net = Network(4, fault_plan=plan)
            flood(net)
            return net.fault_events, net.stats

        events_a, stats_a = run()
        events_b, stats_b = run()
        assert events_a == events_b
        assert stats_a == stats_b
        assert events_a  # at these rates the trace cannot be empty

    def test_different_seeds_differ(self):
        traces = []
        for seed in (0, 1):
            net = Network(4, fault_plan=FaultPlan(seed=seed, drop=0.4))
            flood(net)
            traces.append(net.fault_events)
        assert traces[0] != traces[1]

    def test_decisions_are_pure_functions(self):
        plan = FaultPlan(seed=7, drop=0.5, duplicate=0.5, corrupt=0.5)
        first = [plan.decide(3, 0, 1, s) for s in range(20)]
        again = [plan.decide(3, 0, 1, s) for s in range(20)]
        assert first == again
        assert any(not d.clean for d in first)
        assert any(d.clean for d in first)


class TestPlanConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="drop rate"):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError, match="stall rate"):
            FaultPlan(stall=-0.1)
        with pytest.raises(ValueError, match="crash rate"):
            FaultPlan(crash=2.0)
        with pytest.raises(ValueError, match="crash_downtime"):
            FaultPlan(crash=0.1, crash_downtime=0)

    def test_every_rate_field_is_validated(self):
        # No fault kind may silently accept a nonsense rate.
        for kind in FAULT_KINDS:
            with pytest.raises(ValueError, match=f"{kind} rate"):
                FaultPlan(**{kind: -0.5})
            with pytest.raises(ValueError, match=f"{kind} rate"):
                FaultPlan(**{kind: "high"})

    def test_from_rates_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match=r"unknown fault kind.*'drp'"):
            FaultPlan.from_rates(drp=0.3)
        with pytest.raises(ValueError, match="known kinds"):
            FaultPlan.from_rates(seed=1, drop=0.1, crashes=0.2)

    def test_from_rates_builds_equivalent_plan(self):
        plan = FaultPlan.from_rates(
            seed=5, drop=0.2, crash=0.1, crash_downtime=3,
            forced_stalls=frozenset({(0, 1)}),
        )
        assert plan == FaultPlan(
            seed=5, drop=0.2, crash=0.1, crash_downtime=3,
            forced_stalls=frozenset({(0, 1)}),
        )

    def test_zero_rates_are_clean(self):
        plan = FaultPlan(seed=3)
        assert all(
            plan.decide(t, 0, 1, s).clean for t in range(5) for s in range(5)
        )
        assert not plan.stalled(0, 0)
        assert plan.permutation(0, 0, 1, 4) == [0, 1, 2, 3]

    def test_superstep_window(self):
        plan = FaultPlan(seed=0, drop=1.0, supersteps=(2, 4))
        assert not plan.decide(1, 0, 1, 0).drop
        assert plan.decide(2, 0, 1, 0).drop
        assert plan.decide(3, 0, 1, 0).drop
        assert not plan.decide(4, 0, 1, 0).drop

    def test_channel_restriction(self):
        plan = FaultPlan(seed=0, drop=1.0, channels=frozenset({(0, 1)}))
        assert plan.decide(0, 0, 1, 0).drop
        assert not plan.decide(0, 1, 0, 0).drop

    def test_forced_schedules(self):
        plan = FaultPlan(
            forced_drops=frozenset({(0, 0, 1, 0)}),
            forced_stalls=frozenset({(1, 2)}),
            forced_crashes=frozenset({(3, 1)}),
        )
        assert plan.decide(0, 0, 1, 0) == FaultDecision(drop=True)
        assert plan.decide(0, 0, 1, 1).clean
        assert plan.stalled(1, 2) and not plan.stalled(0, 2)
        assert plan.crashed(3, 1) and not plan.crashed(3, 0)
        assert not plan.crashed(2, 1)

    def test_crash_decisions_are_deterministic(self):
        plan = FaultPlan(seed=4, crash=0.3)
        first = [plan.crashed(t, r) for t in range(20) for r in range(4)]
        again = [plan.crashed(t, r) for t in range(20) for r in range(4)]
        assert first == again
        assert any(first) and not all(first)
        # Window restriction applies to crashes like any other kind.
        windowed = FaultPlan(seed=4, crash=1.0, supersteps=(5, 6))
        assert windowed.crashed(5, 0)
        assert not windowed.crashed(4, 0) and not windowed.crashed(6, 0)


class TestNetworkFaults:
    def test_drop_all(self):
        net = Network(2, fault_plan=FaultPlan(drop=1.0))
        net.send(0, 1, "t", 1.0)
        assert net.deliver() == 0
        assert not net.probe(1, 0, "t")
        assert net.stats.sent == 1
        assert net.stats.dropped == 1
        assert net.stats.delivered == 0

    def test_duplicate_all(self):
        net = Network(2, fault_plan=FaultPlan(duplicate=1.0))
        net.send(0, 1, "t", 42)
        assert net.deliver() == 2
        assert net.recv(1, 0, "t") == 42
        assert net.recv(1, 0, "t") == 42
        assert net.stats.duplicated == 1
        assert net.stats.delivered == 2

    def test_corrupt_all_changes_payload(self):
        net = Network(2, fault_plan=FaultPlan(corrupt=1.0))
        payload = np.arange(8, dtype=np.float64)
        net.send(0, 1, "t", payload)
        net.deliver()
        got = net.recv(1, 0, "t")
        assert not np.array_equal(got, payload)
        # The sender's buffer is never mutated in place.
        assert np.array_equal(payload, np.arange(8, dtype=np.float64))
        assert net.stats.corrupted == 1

    def test_stall_delays_by_one_superstep(self):
        plan = FaultPlan(forced_stalls=frozenset({(0, 0)}))
        net = Network(2, fault_plan=plan)
        net.send(0, 1, "t", "late")
        assert net.deliver() == 0  # held at superstep 0
        assert not net.probe(1, 0, "t")
        assert net.deliver() == 1  # released at superstep 1
        assert net.recv(1, 0, "t") == "late"
        assert net.stats.stalled == 1

    def test_reorder_permutes_within_channel(self):
        plan = FaultPlan(seed=5, reorder=1.0)
        net = Network(2, fault_plan=plan)
        for i in range(6):
            net.send(0, 1, "t", i)
        net.deliver()
        got = [net.recv(1, 0, "t") for _ in range(6)]
        assert sorted(got) == list(range(6))
        assert got != list(range(6))  # seed 5 shuffles a 6-batch

    def test_fault_free_plan_keeps_semantics(self):
        net = Network(2, fault_plan=FaultPlan(seed=9))
        for i in range(4):
            net.send(0, 1, "t", i)
        assert net.deliver() == 4
        assert [net.recv(1, 0, "t") for _ in range(4)] == list(range(4))
        assert net.fault_events == []

    def test_outstanding(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "b", 2)
        assert net.outstanding({"a"}) == 1
        net.deliver()
        assert net.outstanding({"a", "b"}) == 2
        net.recv(1, 0, "a")
        assert net.outstanding({"a", "b"}) == 1


class TestCorruptPayload:
    @pytest.mark.parametrize("salt", [0, 1, 17, 255])
    def test_ndarray(self, salt):
        arr = np.arange(10, dtype=np.float64)
        out = corrupt_payload(arr, salt)
        assert out.shape == arr.shape and out.dtype == arr.dtype
        assert not np.array_equal(out, arr)

    def test_bytes_and_str(self):
        assert corrupt_payload(b"abc", 1) != b"abc"
        assert corrupt_payload("abc", 2) != "abc"

    def test_scalars(self):
        assert corrupt_payload(5, 3) != 5
        assert corrupt_payload(2.5, 0) != 2.5
        assert corrupt_payload(0.0, 0) != 0.0
        assert corrupt_payload(True, 0) is False

    def test_containers_recurse_one_element(self):
        original = (1, 2, 3)
        out = corrupt_payload(original, 4)
        assert isinstance(out, tuple) and out != original
        assert sum(a != b for a, b in zip(out, original)) == 1

    def test_empty_payloads_unchanged(self):
        assert corrupt_payload(b"", 0) == b""
        assert corrupt_payload((), 0) == ()
        arr = np.zeros(0)
        assert corrupt_payload(arr, 0) is arr


class TestTracing:
    def test_fault_events_in_reports(self):
        plan = FaultPlan(seed=2, drop=0.5, duplicate=0.3)
        vm = VirtualMachine(3, fault_plan=plan)

        def node(ctx):
            for dest in range(ctx.p):
                if dest != ctx.rank:
                    ctx.send(dest, "t", float(ctx.rank))

        for _ in range(5):
            vm.run(node)
        report = machine_report(vm)
        net = report["network"]
        assert net["sent"] == 5 * 3 * 2
        assert net["sent"] == net["delivered"] - net["duplicated"] + net["dropped"]
        assert net["fault_events"] == len(vm.network.fault_events)
        faults = fault_report(vm)
        assert faults["plan"] is plan
        assert sum(faults["by_kind"].values()) == len(faults["events"])
        assert faults["by_kind"].get("drop", 0) == net["dropped"]

    def test_reset_stats_clears_fault_events(self):
        vm = VirtualMachine(2, fault_plan=FaultPlan(drop=1.0))
        vm.run(lambda ctx: ctx.send(1 - ctx.rank, "t", 1))
        assert vm.network.fault_events
        vm.reset_stats()
        assert vm.network.fault_events == []
        assert vm.network.stats.dropped == 0
