"""Tests for the message-passing fabric."""

import numpy as np
import pytest

from repro.machine.network import Message, Network


class TestDelivery:
    def test_bsp_semantics(self):
        net = Network(2)
        net.send(0, 1, "t", "hello")
        # Not receivable until delivered.
        with pytest.raises(LookupError, match="no delivered message"):
            net.recv(1, 0, "t")
        assert net.deliver() == 1
        assert net.recv(1, 0, "t") == "hello"

    def test_fifo_per_channel(self):
        net = Network(2)
        for i in range(5):
            net.send(0, 1, "t", i)
        net.deliver()
        assert [net.recv(1, 0, "t") for _ in range(5)] == list(range(5))

    def test_tags_are_independent(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "b", 2)
        net.deliver()
        assert net.recv(1, 0, "b") == 2
        assert net.recv(1, 0, "a") == 1

    def test_probe_and_drain(self):
        net = Network(3)
        net.send(0, 2, "t", "x")
        net.send(1, 2, "t", "y")
        net.deliver()
        assert net.probe(2, 0, "t") and net.probe(2, 1, "t")
        assert net.drain(2, "t") == [(0, "x"), (1, "y")]
        assert not net.probe(2, 0, "t")

    def test_idle(self):
        net = Network(2)
        assert net.idle
        net.send(0, 1, "t", 1)
        assert not net.idle
        net.deliver()
        assert not net.idle
        net.recv(1, 0, "t")
        assert net.idle


class TestValidation:
    def test_bad_ranks(self):
        net = Network(2)
        with pytest.raises(ValueError, match="source"):
            net.send(2, 0, "t", 1)
        with pytest.raises(ValueError, match="destination"):
            net.send(0, 5, "t", 1)
        with pytest.raises(ValueError, match="at least one rank"):
            Network(0)


class TestStats:
    def test_counts_and_bytes(self):
        net = Network(2)
        payload = np.zeros(10, dtype=np.float64)
        net.send(0, 1, "t", payload)
        net.send(0, 1, "t", b"abcd")
        assert net.stats.messages == 2
        assert net.stats.bytes == 80 + 4
        assert net.stats.per_channel[(0, 1)] == 2

    def test_message_nbytes(self):
        assert Message(0, 1, "t", b"xyz").nbytes == 3
        assert Message(0, 1, "t", np.zeros(4, dtype=np.int32)).nbytes == 16
        assert Message(0, 1, "t", "text").nbytes > 0
