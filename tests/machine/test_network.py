"""Tests for the message-passing fabric."""

import numpy as np
import pytest

from repro.machine.network import Message, Network


class TestDelivery:
    def test_bsp_semantics(self):
        net = Network(2)
        net.send(0, 1, "t", "hello")
        # Not receivable until delivered.
        with pytest.raises(LookupError, match="no delivered message"):
            net.recv(1, 0, "t")
        assert net.deliver() == 1
        assert net.recv(1, 0, "t") == "hello"

    def test_fifo_per_channel(self):
        net = Network(2)
        for i in range(5):
            net.send(0, 1, "t", i)
        net.deliver()
        assert [net.recv(1, 0, "t") for _ in range(5)] == list(range(5))

    def test_tags_are_independent(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "b", 2)
        net.deliver()
        assert net.recv(1, 0, "b") == 2
        assert net.recv(1, 0, "a") == 1

    def test_probe_and_drain(self):
        net = Network(3)
        net.send(0, 2, "t", "x")
        net.send(1, 2, "t", "y")
        net.deliver()
        assert net.probe(2, 0, "t") and net.probe(2, 1, "t")
        assert net.drain(2, "t") == [(0, "x"), (1, "y")]
        assert not net.probe(2, 0, "t")

    def test_idle(self):
        net = Network(2)
        assert net.idle
        net.send(0, 1, "t", 1)
        assert not net.idle
        net.deliver()
        assert not net.idle
        net.recv(1, 0, "t")
        assert net.idle


class TestValidation:
    def test_bad_ranks(self):
        net = Network(2)
        with pytest.raises(ValueError, match="source"):
            net.send(2, 0, "t", 1)
        with pytest.raises(ValueError, match="destination"):
            net.send(0, 5, "t", 1)
        with pytest.raises(ValueError, match="at least one rank"):
            Network(0)

    def test_negative_ranks(self):
        net = Network(3)
        with pytest.raises(ValueError, match=r"source rank -1 out of range"):
            net.send(-1, 0, "t", 1)
        with pytest.raises(ValueError, match=r"destination rank -2 out of range"):
            net.send(0, -2, "t", 1)

    def test_recv_error_carries_bsp_hint(self):
        """The LookupError explains the BSP rule, not just 'not found'."""
        net = Network(2)
        with pytest.raises(LookupError, match="BSP programs may only receive"):
            net.recv(1, 0, "t")
        # Same after an unrelated delivery: wrong tag, wrong source.
        net.send(0, 1, "other", 1)
        net.deliver()
        with pytest.raises(LookupError, match=r"rank 1: no delivered message from 0"):
            net.recv(1, 0, "t")
        with pytest.raises(LookupError, match="BSP"):
            net.recv(0, 1, "other")  # reversed direction


class TestStats:
    def test_counts_and_bytes(self):
        net = Network(2)
        payload = np.zeros(10, dtype=np.float64)
        net.send(0, 1, "t", payload)
        net.send(0, 1, "t", b"abcd")
        assert net.stats.messages == 2
        assert net.stats.bytes == 80 + 4
        assert net.stats.per_channel[(0, 1)] == 2

    def test_message_nbytes(self):
        assert Message(0, 1, "t", b"xyz").nbytes == 3
        assert Message(0, 1, "t", np.zeros(4, dtype=np.int32)).nbytes == 16
        assert Message(0, 1, "t", "text").nbytes > 0

    def test_container_nbytes_counts_elements(self):
        """Regression: sys.getsizeof on a list ignores element sizes, so
        a list of arrays used to undercount by the full buffer sizes.
        One level of recursion charges the elements too."""
        arrays = [np.zeros(100, dtype=np.float64) for _ in range(3)]
        nbytes = Message(0, 1, "t", arrays).nbytes
        assert nbytes >= 3 * 800  # element buffers dominate
        assert Message(0, 1, "t", (b"abcd", b"efgh")).nbytes >= 8
        # Deeper nesting deliberately stays an approximation: the inner
        # list is measured as a container shell only.
        nested = [[np.zeros(100)]]
        assert Message(0, 1, "t", nested).nbytes < 800

    def test_dict_nbytes_counts_keys_and_values(self):
        # Dicts get the same one-level treatment as lists/tuples: keys
        # and values are both charged, so a header dict of buffers is
        # not measured as a pointer table.
        payload = {b"k" * 16: np.zeros(100, dtype=np.float64), "meta": b"x" * 64}
        nbytes = Message(0, 1, "t", payload).nbytes
        assert nbytes >= 800 + 64 + 16
        # Nested dicts stay shell-measured, like nested lists.
        assert Message(0, 1, "t", {"a": {"b": np.zeros(100)}}).nbytes < 800

    def test_split_counters_on_clean_network(self):
        net = Network(2)
        net.send(0, 1, "t", b"abcd")
        assert net.stats.sent == 1 and net.stats.delivered == 0
        net.deliver()
        assert net.stats.delivered == 1
        assert net.stats.dropped == 0
        assert net.stats.bytes_delivered == net.stats.bytes_sent == 4


class TestQuarantine:
    def test_mark_dead_quarantines_in_flight(self):
        net = Network(3)
        net.send(0, 1, "t", b"to-victim")  # pending, addressed to the victim
        net.send(1, 2, "t", b"from-victim")  # pending, sent by the victim
        net.send(0, 2, "t", b"bystander")
        gone = net.mark_dead(1)
        assert gone == 2
        assert net.stats.quarantined == 2
        assert net.stats.bytes_quarantined == len(b"to-victim") + len(b"from-victim")
        net.deliver()
        assert net.recv(2, 0, "t") == b"bystander"
        assert not net.probe(2, 1, "t")

    def test_mark_dead_purges_delivered_queues(self):
        net = Network(2)
        net.send(0, 1, "t", 1.0)
        net.deliver()  # sits in rank 1's receive queue
        net.mark_dead(1)
        assert net.stats.quarantined == 1
        assert not net.probe(1, 0, "t")

    def test_traffic_to_dead_rank_never_delivers(self):
        net = Network(2)
        net.mark_dead(1)
        net.send(0, 1, "t", 7)
        assert net.deliver() == 0
        assert net.stats.quarantined == 1
        net.mark_alive(1)
        net.send(0, 1, "t", 8)
        net.deliver()
        assert net.recv(1, 0, "t") == 8

    def test_quarantine_events_are_traced(self):
        net = Network(2)
        net.send(0, 1, "t", 1)
        net.mark_dead(1)
        kinds = [ev.kind for ev in net.fault_events]
        assert kinds == ["quarantine"]
