"""Tests for interconnect topology models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.network import Network
from repro.machine.topology import (
    CrossbarTopology,
    HypercubeTopology,
    RingTopology,
    weighted_traffic,
)


class TestHypercube:
    def test_ipsc_860(self):
        # The paper's machine: 32 nodes = 5-cube, diameter 5.
        cube = HypercubeTopology(5)
        assert cube.p == 32
        assert cube.diameter() == 5
        assert cube.distance(0, 31) == 5
        assert cube.distance(3, 3) == 0

    def test_neighbors(self):
        cube = HypercubeTopology(3)
        assert sorted(cube.neighbors(0)) == [1, 2, 4]
        assert sorted(cube.neighbors(5)) == [1, 4, 7]

    def test_route_is_dimension_ordered(self):
        cube = HypercubeTopology(3)
        path = cube.route(0, 5)  # flip bit 0, then bit 2
        assert path == [0, 1, 5]
        assert len(path) - 1 == cube.distance(0, 5)

    def test_validation(self):
        with pytest.raises(ValueError, match="nonnegative"):
            HypercubeTopology(-1)
        with pytest.raises(ValueError, match="out of range"):
            HypercubeTopology(2).distance(4, 0)

    @given(st.integers(min_value=0, max_value=6),
           st.data())
    def test_metric_properties(self, dim, data):
        cube = HypercubeTopology(dim)
        a = data.draw(st.integers(min_value=0, max_value=cube.p - 1))
        b = data.draw(st.integers(min_value=0, max_value=cube.p - 1))
        c = data.draw(st.integers(min_value=0, max_value=cube.p - 1))
        assert cube.distance(a, b) == cube.distance(b, a)
        assert (cube.distance(a, b) == 0) == (a == b)
        assert cube.distance(a, c) <= cube.distance(a, b) + cube.distance(b, c)

    @given(st.integers(min_value=1, max_value=6), st.data())
    def test_route_length(self, dim, data):
        cube = HypercubeTopology(dim)
        a = data.draw(st.integers(min_value=0, max_value=cube.p - 1))
        b = data.draw(st.integers(min_value=0, max_value=cube.p - 1))
        path = cube.route(a, b)
        assert path[0] == a and path[-1] == b
        assert len(path) - 1 == cube.distance(a, b)
        for u, v in zip(path, path[1:]):
            assert cube.distance(u, v) == 1


class TestRingAndCrossbar:
    def test_ring(self):
        ring = RingTopology(8)
        assert ring.distance(0, 1) == 1
        assert ring.distance(0, 7) == 1
        assert ring.distance(0, 4) == 4
        assert ring.diameter() == 4

    def test_crossbar(self):
        xbar = CrossbarTopology(8)
        assert xbar.distance(2, 2) == 0
        assert xbar.distance(0, 7) == 1
        assert xbar.diameter() == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            RingTopology(0)
        with pytest.raises(ValueError, match="at least one"):
            CrossbarTopology(0)


class TestWeightedTraffic:
    def test_counts_hops(self):
        net = Network(8)
        net.send(0, 7, "t", b"x")   # 3 hops on a 3-cube
        net.send(0, 1, "t", b"x")   # 1 hop
        net.send(0, 1, "t", b"x")   # 1 hop
        cube = HypercubeTopology(3)
        assert weighted_traffic(net.stats, cube) == 5
        assert weighted_traffic(net.stats, CrossbarTopology(8)) == 3
