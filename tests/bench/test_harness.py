"""Tests for the benchmark harness library (fast smoke versions)."""

import pytest
from hypothesis import given, settings

from repro.bench.report import ascii_plot, format_markdown, format_table
from repro.bench.timers import max_over_ranks, time_us
from repro.bench.workloads import (
    PAPER_P,
    Table2Case,
    table1_cases,
    table1_strides,
    table2_cases,
)

from ..conftest import access_params


class TestWorkloads:
    def test_table1_grid(self):
        strides = table1_strides(8)
        assert strides == {
            "s=7": 7, "s=99": 99, "s=k+1": 9, "s=pk-1": 255, "s=pk+1": 257
        }
        cases = table1_cases()
        assert len(cases) == 8 * 5
        assert all(c.p == PAPER_P and c.l == 0 for c in cases)

    def test_table2_grid(self):
        cases = table2_cases()
        assert len(cases) == 9
        case = Table2Case(4, 3)
        # Upper bound scaled so total accesses = 10000 * p.
        assert case.upper == (10_000 * 32 - 1) * 3


class TestTimers:
    def test_time_us_positive(self):
        t = time_us(lambda: sum(range(100)), repeats=2)
        assert t.best_us > 0
        assert t.mean_us >= t.best_us
        assert t.repeats == 2

    def test_explicit_number(self):
        t = time_us(lambda: None, repeats=2, number=10)
        assert t.best_us >= 0

    def test_repeats_validation(self):
        with pytest.raises(ValueError, match="positive"):
            time_us(lambda: None, repeats=0)

    def test_max_over_ranks(self):
        t = max_over_ranks(lambda m: (lambda: sum(range(m * 100))), 3,
                           repeats=1, number=5)
        assert t.best_us >= 0


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.5" in text and "30" in text

    def test_format_markdown(self):
        text = format_markdown(["x"], [[1]])
        assert text.splitlines()[0] == "| x |"
        assert "---" in text

    def test_ascii_plot(self):
        text = ascii_plot(
            {"A": [(1, 10), (2, 100)], "B": [(1, 20), (2, 50)]},
            logy=True, width=20, height=5, title="demo",
        )
        assert "demo" in text
        assert "o = A" in text and "x = B" in text

    def test_ascii_plot_errors(self):
        with pytest.raises(ValueError, match="nothing"):
            ascii_plot({})
        with pytest.raises(ValueError, match="positive y"):
            ascii_plot({"A": [(0, 0)]}, logy=True)

    def test_format_csv(self):
        from repro.bench.report import format_csv

        text = format_csv(["a", "b,c"], [[1, 'say "hi"'], [2.5, "plain"]])
        lines = text.splitlines()
        assert lines[0] == 'a,"b,c"'
        assert lines[1] == '1,"say ""hi"""'
        assert lines[2] == "2.5,plain"


class TestCostsHarness:
    def test_redistribution_costs(self):
        from repro.bench.costs import run_redistribution_costs

        rows = run_redistribution_costs(n=256, cube_dim=2)
        labels = [label for label, *_ in rows]
        assert "cyclic(8)->cyclic(8)" in labels
        for label, remote, messages, cube_us, xbar_us in rows:
            if label == "cyclic(8)->cyclic(8)":
                assert remote == 0 and cube_us == 0.0
            else:
                assert cube_us >= xbar_us > 0  # hops only add cost

    def test_transpose_costs(self):
        from repro.bench.costs import run_transpose_costs

        rows = run_transpose_costs(n=32)
        assert len(rows) == 4
        for label, remote, us in rows:
            if label == "cyclic(64)":
                # k >= n: the whole matrix sits on one coordinate pair and
                # its transpose is local.
                assert remote == 0 and us == 0.0
            else:
                assert remote > 0 and us > 0


class TestOpCounts:
    @given(access_params())
    @settings(max_examples=80, deadline=None)
    def test_lattice_bound(self, params):
        """Section 5.1: the walk examines at most 2k+1 points."""
        from repro.bench.opcounts import lattice_op_counts

        p, k, l, s, m = params
        counts = lattice_op_counts(p, k, l, s, m)
        assert counts["points_examined"] <= 2 * k + 1
        assert counts["length"] <= k

    @given(access_params())
    @settings(max_examples=50, deadline=None)
    def test_sorting_counts_consistent(self, params):
        from repro.bench.opcounts import sorting_op_counts

        p, k, l, s, m = params
        counts = sorting_op_counts(p, k, l, s, m)
        assert counts["length"] <= k
        assert counts["comparisons"] >= 0
        assert counts["total"] == (
            counts["comparisons"] + counts["scan_iterations"]
        )

    def test_opcount_inputs_match_production_tables(self):
        """The counting walkers must describe the *same* algorithms: the
        sorted index list the counter builds equals the production one."""
        from repro.bench.opcounts import run_opcounts

        rows = run_opcounts(block_sizes=(4, 8, 16), p=4, s=9)
        ks = [k for k, *_ in rows]
        assert ks == [4, 8, 16]
        for _, lat, srt, ratio in rows:
            assert lat > 0 and srt > 0 and ratio > 0


class TestHarnessSmoke:
    def test_table1_tiny(self):
        from repro.bench.table1 import render, render_speedups, run_table1

        rows = run_table1(p=4, block_sizes=(4,), full=False, repeats=1)
        assert len(rows) == 1
        text = render(rows)
        assert "k=4" in text
        assert "speedup" in render_speedups(rows)

    def test_figure7_tiny(self):
        from repro.bench.figure7 import run_figure7

        data = run_figure7(p=4, block_sizes=(4, 8), full=False, repeats=1)
        assert [k for k, _, _ in data] == [4, 8]

    def test_table2_tiny(self):
        from repro.bench.table2 import render, run_table2
        from repro.bench.workloads import Table2Case

        rows = run_table2(
            cases=[Table2Case(4, 3, p=4, accesses_per_proc=50)],
            shapes="bd", repeats=1,
        )
        # Per-rank count is ~accesses_per_proc (exact up to ownership
        # rounding across the p ranks).
        assert 40 <= rows[0]["accesses"] <= 60
        assert "shape (b)" in render(rows, "bd")

    def test_table2_c_tiny(self):
        import shutil

        import pytest as _pytest

        from repro.bench.table2_c import compiler_available, render, run_table2_c
        from repro.bench.workloads import Table2Case

        if compiler_available() is None:
            _pytest.skip("no C compiler on host")
        rows = run_table2_c(
            cases=[Table2Case(4, 3, p=4, accesses_per_proc=100)],
            shapes="bd", reps=20,
        )
        assert rows[0]["b"] > 0 and rows[0]["d"] > 0
        assert "shape (b)" in render(rows, "bd")

    def test_table1_c_tiny(self):
        import pytest as _pytest

        from repro.bench.table1_c import compiler_available, render, run_table1_c

        if compiler_available() is None:
            _pytest.skip("no C compiler on host")
        rows = run_table1_c(p=4, block_sizes=(4, 8), reps=50)
        assert [row["k"] for row in rows] == [4, 8]
        text = render(rows)
        assert "Lattice" in text and "Sorting" in text
        # The embedded C cross-checks both algorithms' tables on every
        # invocation and aborts on mismatch, so reaching here means the
        # C transcriptions agree with each other.
        for row in rows:
            for lat, srt in row["results"].values():
                assert lat > 0 and srt > 0

    def test_ablations_tiny(self):
        from repro.bench.ablations import (
            run_generator_ablation,
            run_sort_ablation,
            run_special_ablation,
        )

        assert len(run_sort_ablation(p=4, block_sizes=(4,), repeats=1)) == 1
        gen = run_generator_ablation(p=4, k=4, s=3, accesses=50, repeats=1)
        assert gen["accesses"] > 0
        assert len(run_special_ablation(p=4, block_sizes=(8,), repeats=1)) == 1
