"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import re

import pytest
from hypothesis import strategies as st


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On any test failure, dump every live enabled observability handle
    into ``fault-reports/`` so the trace that was being recorded when
    things went wrong sits next to the flight-recorder dumps (CI uploads
    the directory on failure)."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        from repro.obs import dump_active

        label = re.sub(r"[^A-Za-z0-9_.-]+", "-", item.name)[:60]
        try:
            dump_active("fault-reports", label=label)
        except OSError:  # pragma: no cover - dump dir unwritable
            pass

# ---------------------------------------------------------------------------
# Hypothesis strategies for distribution / section parameters.
# Kept small enough that the brute-force oracles stay fast.
# ---------------------------------------------------------------------------

procs = st.integers(min_value=1, max_value=8)
blocks = st.integers(min_value=1, max_value=24)
strides = st.integers(min_value=1, max_value=120)
lowers = st.integers(min_value=0, max_value=60)


@st.composite
def access_params(draw):
    """Random ``(p, k, l, s, m)`` for the 1-D access problem."""
    p = draw(procs)
    k = draw(blocks)
    l = draw(lowers)
    s = draw(strides)
    m = draw(st.integers(min_value=0, max_value=p - 1))
    return p, k, l, s, m


@st.composite
def bounded_access_params(draw):
    """Random ``(p, k, l, u, s, m)`` with a bounded section."""
    p, k, l, s, m = draw(access_params())
    length = draw(st.integers(min_value=0, max_value=120))
    u = l + (length - 1) * s if length else l - 1
    return p, k, l, u, s, m


@pytest.fixture
def paper_params():
    """The paper's running example: p=4, k=8, l=4, s=9, m=1 (Figure 6)."""
    return dict(p=4, k=8, l=4, s=9, m=1)
