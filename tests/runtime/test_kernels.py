"""Property tests: vectorized kernels bit-identical to the scalar paths.

The vectorized kernel layer (:mod:`repro.core.kernels`) and its
consumers replace element-at-a-time Python with NumPy closed forms; the
scalar implementations remain in the tree as oracles, and every test
here asserts exact (bitwise) agreement over randomized configurations,
including empty-owner processors and single-element cycles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import compute_access_table
from repro.core.kernels import (
    expand_table,
    local_addresses_of,
    local_slots_of,
    owners_of,
    periodic_floor_rank_of,
    periodic_rank_of,
)
from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.layout import CyclicLayout
from repro.distribution.localize import (
    RankFunction,
    localize_section,
    localized_arrays,
    localized_elements,
)
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets import (
    compute_comm_schedule,
    compute_comm_schedule_reference,
)
from repro.runtime.exec import (
    collect,
    collect_reference,
    distribute,
    distribute_reference,
)


@st.composite
def draw_params(draw):
    """Randomized ``(p, k, n, alignment, section, m)`` draws, biased
    toward the identity alignment but covering affine (incl. negative
    ``a``) cases; sections may be strided or negative-stride."""
    p = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=10))
    a = draw(st.sampled_from([1, 1, 1, 2, 3, -1, -2]))
    n = draw(st.integers(min_value=1, max_value=60))
    b = draw(st.integers(min_value=0, max_value=8)) + (-a * (n - 1) if a < 0 else 0)
    l = draw(st.integers(min_value=0, max_value=n - 1))
    u = draw(st.integers(min_value=l, max_value=n - 1))
    s = draw(st.sampled_from([1, 1, 2, 3, 5, 12, -1, -3]))
    sec = RegularSection(l, u, s) if s > 0 else RegularSection(u, l, s)
    m = draw(st.integers(min_value=0, max_value=p - 1))
    return p, k, n, Alignment(a, b), sec, m


class TestExpandTable:
    def scalar(self, start, gaps, count):
        out, val = [], start
        for t in range(count):
            out.append(val)
            val += gaps[t % len(gaps)]
        return out

    @given(
        st.integers(min_value=-50, max_value=50),
        st.lists(st.integers(min_value=-9, max_value=9), min_size=1, max_size=7),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_recurrence(self, start, gaps, count):
        got = expand_table(start, gaps, count)
        assert got.dtype == np.int64
        assert got.tolist() == self.scalar(start, gaps, count)

    def test_count_zero_and_one(self):
        assert expand_table(5, (3,), 0).tolist() == []
        assert expand_table(5, (3,), 1).tolist() == [5]

    def test_single_element_cycle(self):
        # Length-1 gap table: pure arithmetic progression.
        assert expand_table(2, (7,), 5).tolist() == [2, 9, 16, 23, 30]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            expand_table(0, (1,), -1)
        with pytest.raises(ValueError):
            expand_table(0, (), 3)


class TestCoordinateKernels:
    @given(draw_params())
    @settings(max_examples=150, deadline=None)
    def test_owners_and_addresses_match_layout(self, params):
        p, k, n, align, _sec, _m = params
        layout = CyclicLayout(p, k)
        idx = np.arange(n, dtype=np.int64)
        cells = [align.apply(i) for i in range(n)]
        assert owners_of(idx, p, k, align.a, align.b).tolist() == [
            layout.owner(c) for c in cells
        ]
        assert local_addresses_of(idx, p, k, align.a, align.b).tolist() == [
            layout.local_address(c) for c in cells
        ]

    def test_identity_slots_are_addresses(self):
        idx = np.arange(40, dtype=np.int64)
        assert np.array_equal(
            local_slots_of(idx, 4, 3), local_addresses_of(idx, 4, 3)
        )

    def test_affine_slots_need_rank_structure(self):
        with pytest.raises(ValueError):
            local_slots_of(np.arange(4), 2, 3, a=2, b=1)


class TestPeriodicRank:
    @given(draw_params())
    @settings(max_examples=150, deadline=None)
    def test_rank_and_floor_match_scalar(self, params):
        p, k, n, align, _sec, m = params
        alloc = align.allocation_section(n).normalized()
        table = compute_access_table(p, k, alloc.lower, alloc.stride, m)
        if table.is_empty:
            return  # empty-owner processor: no rank function exists
        ranks = RankFunction(table)
        addrs = np.asarray(table.local_addresses(3 * table.length + 1))
        assert ranks.rank_array(addrs).tolist() == [
            ranks.rank(int(x)) for x in addrs
        ]
        # floor_rank over a dense probe range straddling `first`.
        probe = np.arange(ranks.first - 3, int(addrs[-1]) + 3)
        assert ranks.floor_rank_array(probe).tolist() == [
            ranks.floor_rank(int(x)) for x in probe
        ]

    def test_strict_raises_nonstrict_flags(self):
        table = compute_access_table(2, 4, 1, 2, 0)  # odds on proc 0
        ranks = RankFunction(table)
        bad = np.asarray([ranks.first + 1])
        with pytest.raises(KeyError):
            periodic_rank_of(bad, ranks.first, ranks.period_span, ranks._rel_arr)
        got = periodic_rank_of(
            bad, ranks.first, ranks.period_span, ranks._rel_arr, strict=False
        )
        assert got.tolist() == [-1]

    def test_single_point_cycle(self):
        # k=1: exactly one offset per period on each processor.
        table = compute_access_table(3, 1, 0, 1, 1)
        assert table.length == 1
        ranks = RankFunction(table)
        addrs = np.asarray(table.local_addresses(6))
        assert ranks.rank_array(addrs).tolist() == list(range(6))

    def test_rejects_empty_offsets(self):
        with pytest.raises(ValueError):
            periodic_rank_of(np.asarray([0]), 0, 4, np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            periodic_floor_rank_of(np.asarray([0]), 0, 4, np.empty(0, dtype=np.int64))


class TestLocalizedArrays:
    @given(draw_params())
    @settings(max_examples=200, deadline=None)
    def test_matches_localized_elements(self, params):
        p, k, n, align, sec, m = params
        pairs = localized_elements(p, k, n, align, sec, m)
        indices, slots = localized_arrays(p, k, n, align, sec, m)
        assert indices.tolist() == [g for g, _ in pairs]
        assert slots.tolist() == [s for _, s in pairs]
        assert not indices.flags.writeable and not slots.flags.writeable

    @given(draw_params(), st.integers(min_value=0, max_value=40))
    @settings(max_examples=100, deadline=None)
    def test_table_arrays_match_scalar_expansion(self, params, count):
        p, k, n, align, sec, m = params
        table = localize_section(p, k, n, align, sec, m)
        if table.is_empty:
            count = 0
        assert table.slots_array(count).tolist() == table.slots(count)
        assert table.indices_array(count).tolist() == table.indices(count)

    def test_empty_owner(self):
        # p > n under cyclic(1): processor 3 owns nothing of a
        # 3-element array (owners are 0, 1, 2).
        indices, slots = localized_arrays(
            4, 1, 3, Alignment(1, 0), RegularSection(0, 2, 1), 3
        )
        assert indices.size == 0 and slots.size == 0


def make_1d(name, n, p, k, a=1, b=0):
    return DistributedArray(
        name,
        (n,),
        ProcessorGrid("G", (p,)),
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


@st.composite
def schedule_params(draw):
    p = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=1, max_value=48))
    k1 = draw(st.integers(min_value=1, max_value=8))
    k2 = draw(st.integers(min_value=1, max_value=8))
    length = draw(st.integers(min_value=0, max_value=n))
    if length == 0:
        sec_a = sec_b = RegularSection(0, -1, 1)
    else:
        sa = draw(st.integers(min_value=1, max_value=max(1, (n - 1) // max(length - 1, 1))))
        la = draw(st.integers(min_value=0, max_value=n - 1 - (length - 1) * sa))
        sb = draw(st.integers(min_value=1, max_value=max(1, (n - 1) // max(length - 1, 1))))
        lb = draw(st.integers(min_value=0, max_value=n - 1 - (length - 1) * sb))
        sec_a = RegularSection(la, la + (length - 1) * sa, sa)
        sec_b = RegularSection(lb, lb + (length - 1) * sb, sb)
    return p, n, k1, k2, sec_a, sec_b


class TestVectorizedSchedule:
    @given(schedule_params())
    @settings(max_examples=150, deadline=None)
    def test_matches_reference(self, params):
        p, n, k1, k2, sec_a, sec_b = params
        a = make_1d("A", n, p, k1)
        b = make_1d("B", n, p, k2)
        vec = compute_comm_schedule(a, sec_a, b, sec_b)
        ref = compute_comm_schedule_reference(a, sec_a, b, sec_b)
        assert vec.n_iterations == ref.n_iterations
        assert [t.astuples() for t in vec.locals_] == [
            t.astuples() for t in ref.locals_
        ]
        assert [t.astuples() for t in vec.transfers] == [
            t.astuples() for t in ref.transfers
        ]

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=36),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_affine_lhs(self, p, n, k, a_coef, b_off):
        lhs = make_1d("A", n, p, k, a_coef, b_off)
        rhs = make_1d("B", n, p, 2)
        sec = RegularSection(0, n - 1, 1)
        vec = compute_comm_schedule(lhs, sec, rhs, sec)
        ref = compute_comm_schedule_reference(lhs, sec, rhs, sec)
        assert [t.astuples() for t in vec.locals_ + vec.transfers] == [
            t.astuples() for t in ref.locals_ + ref.transfers
        ]


class TestVectorizedDistributeCollect:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=7),
        st.sampled_from([(1, 0), (2, 1), (-1, None)]),
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip_matches_reference(self, p, n, k, ab):
        a_coef, b_off = ab
        if b_off is None:
            b_off = n - 1  # keep negative-alignment cells nonnegative
        arr_v = make_1d("V", n, p, k, a_coef, b_off)
        arr_s = make_1d("S", n, p, k, a_coef, b_off)
        host = np.arange(n, dtype=float) + 0.5
        vm_v, vm_s = VirtualMachine(p), VirtualMachine(p)
        distribute(vm_v, arr_v, host)
        distribute_reference(vm_s, arr_s, host)
        for m in range(p):
            assert np.array_equal(
                vm_v.processors[m].memory("V"), vm_s.processors[m].memory("S")
            )
        assert np.array_equal(collect(vm_v, arr_v), host)
        assert np.array_equal(collect_reference(vm_v, arr_v), host)

    def test_2d_replicated_matches_reference(self):
        # Rank-2 array on a 2x2 grid distributing only dim 0: the array
        # is replicated across grid axis 1, exercising the lowest-owner
        # filtering in the vectorized collect.
        from repro.distribution.dist import Collapsed

        grid = ProcessorGrid("G", (2, 2))
        arr = DistributedArray(
            "R",
            (8, 5),
            grid,
            (AxisMap(CyclicK(3), grid_axis=0), AxisMap(Collapsed())),
        )
        ref = DistributedArray(
            "Q",
            (8, 5),
            grid,
            (AxisMap(CyclicK(3), grid_axis=0), AxisMap(Collapsed())),
        )
        host = np.arange(40, dtype=float).reshape(8, 5)
        vm_v, vm_s = VirtualMachine(4), VirtualMachine(4)
        distribute(vm_v, arr, host)
        distribute_reference(vm_s, ref, host)
        for m in range(4):
            assert np.array_equal(
                vm_v.processors[m].memory("R"), vm_s.processors[m].memory("Q")
            )
        assert np.array_equal(collect(vm_v, arr), host)
        assert np.array_equal(collect_reference(vm_v, arr), host)
