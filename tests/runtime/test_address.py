"""Tests for access plans."""

import pytest
from hypothesis import given, settings

from repro.core.baselines.naive import enumerate_local_elements
from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.runtime.address import make_array_plan, make_plan
from repro.runtime.codegen import materialize_addresses

from ..conftest import bounded_access_params


class TestMakePlan:
    def test_paper_case(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        plan = make_plan(p, k, l, 319, s, m)
        assert plan.delta_m == (3, 12, 15, 12, 3, 12, 3, 12)
        assert plan.start_local == 5
        assert plan.count == len(enumerate_local_elements(p, k, l, 319, s, m))

    def test_empty_section(self):
        plan = make_plan(4, 8, 10, 5, 1, 0)
        assert plan.is_empty
        assert plan.start_local is None and plan.last_local is None

    def test_negative_stride_normalized(self):
        up = make_plan(4, 8, 10, 100, 9, 1)
        down = make_plan(4, 8, 100, 10, -9, 1)
        assert up == down

    @given(bounded_access_params())
    @settings(max_examples=150, deadline=None)
    def test_plan_covers_owned_elements(self, params):
        p, k, l, u, s, m = params
        plan = make_plan(p, k, l, u, s, m)
        want = [a for _, a in enumerate_local_elements(p, k, l, u, s, m)]
        assert plan.count == len(want)
        got = list(materialize_addresses(plan))
        assert got == want
        if want:
            assert plan.start_local == want[0]
            assert plan.last_local == want[-1]


class TestMakeArrayPlan:
    def _array(self, a=1, b=0, n=320, k=8, p=4, textent=None):
        grid = ProcessorGrid("P", (p,))
        return DistributedArray(
            "A", (n,), grid,
            (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0,
                     template_extent=textent),),
        )

    def test_identity_matches_make_plan(self):
        arr = self._array()
        sec = RegularSection(4, 319, 9)
        for rank in range(4):
            got = make_array_plan(arr, 0, sec, rank)
            want = make_plan(4, 8, 4, 319, 9, rank)
            assert got == want

    def test_aligned_plan(self):
        arr = self._array(a=2, b=1, n=100, textent=256)
        sec = RegularSection(0, 99, 7)
        total = 0
        for rank in range(4):
            plan = make_array_plan(arr, 0, sec, rank)
            total += plan.count
            if plan.is_empty:
                continue
            assert plan.start_offset is None  # shape (d) unsupported
            addrs = list(materialize_addresses(plan))
            want = [
                arr.local_address((i,), rank)
                for i in sec
                if arr.owner((i,)) == rank
            ]
            assert addrs == want
        assert total == len(sec)

    def test_empty_section(self):
        arr = self._array()
        plan = make_array_plan(arr, 0, RegularSection(5, 4, 1), 0)
        assert plan.is_empty

    def test_bounded_empty_but_cycle_nonempty(self):
        """Regression (found by differential testing): the unbounded cycle
        touches the rank, but the bounded section ends before the rank's
        first owned element."""
        # A(12) aligned i -> i+1, cyclic(1) over 2 ranks: element 0 sits on
        # template cell 1 (rank 1).  Rank 0's cycle is non-empty for the
        # unbounded stride-1 image, but the one-element section gives it
        # nothing.
        arr = self._array(a=1, b=1, n=12, k=1, p=2, textent=64)
        plan = make_array_plan(arr, 0, RegularSection(0, 0, 1), 0)
        assert plan.is_empty
        plan1 = make_array_plan(arr, 0, RegularSection(0, 0, 1), 1)
        assert plan1.count == 1

    def test_undistributed_dim(self):
        from repro.distribution.dist import Collapsed, Cyclic

        grid = ProcessorGrid("P", (2,))
        arr = DistributedArray(
            "M", (4, 6), grid,
            (AxisMap(Cyclic(), grid_axis=0), AxisMap(Collapsed())),
        )
        with pytest.raises(ValueError, match="not distributed"):
            make_array_plan(arr, 1, RegularSection(0, 5, 1), 0)
