"""Tests for scaled-sum statements (execute_combine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets import compute_comm_schedule
from repro.runtime.exec import collect, distribute, execute_combine


def make_1d(name, n, p, k):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))


class TestBasics:
    def test_requires_terms(self):
        a = make_1d("A", 10, 2, 2)
        vm = VirtualMachine(2)
        distribute(vm, a, np.zeros(10))
        with pytest.raises(ValueError, match="at least one term"):
            execute_combine(vm, a, RegularSection(0, 9, 1), [])

    def test_schedule_count_mismatch(self):
        a = make_1d("A", 10, 2, 2)
        b = make_1d("B", 10, 2, 3)
        vm = VirtualMachine(2)
        distribute(vm, a, np.zeros(10))
        distribute(vm, b, np.zeros(10))
        sec = RegularSection(0, 9, 1)
        with pytest.raises(ValueError, match="one schedule per term"):
            execute_combine(vm, a, sec, [(1.0, b, sec)], schedules=[])

    def test_scaled_copy(self):
        a = make_1d("A", 40, 4, 2)
        b = make_1d("B", 40, 4, 3)
        vm = VirtualMachine(4)
        host_b = np.arange(40, dtype=float)
        distribute(vm, a, np.zeros(40))
        distribute(vm, b, host_b)
        sec = RegularSection(0, 39, 2)
        execute_combine(vm, a, sec, [(2.5, b, sec)])
        ref = np.zeros(40)
        ref[0:40:2] = 2.5 * host_b[0:40:2]
        assert np.array_equal(collect(vm, a), ref)

    def test_axpy_two_terms(self):
        a = make_1d("A", 60, 3, 4)
        b = make_1d("B", 60, 3, 5)
        c = make_1d("C", 60, 3, 2)
        vm = VirtualMachine(3)
        host_b = np.arange(60, dtype=float)
        host_c = np.arange(60, dtype=float)[::-1].copy()
        distribute(vm, a, np.full(60, 9.0))  # overwritten, not accumulated
        distribute(vm, b, host_b)
        distribute(vm, c, host_c)
        sec = RegularSection(1, 58, 3)
        execute_combine(vm, a, sec, [(2.0, b, sec), (-1.0, c, sec)])
        ref = np.full(60, 9.0)
        ref[1:59:3] = 2.0 * host_b[1:59:3] - host_c[1:59:3]
        assert np.array_equal(collect(vm, a), ref)

    def test_precomputed_schedules(self):
        a = make_1d("A", 30, 2, 3)
        b = make_1d("B", 30, 2, 4)
        sec = RegularSection(0, 29, 1)
        sched = compute_comm_schedule(a, sec, b, sec)
        vm = VirtualMachine(2)
        distribute(vm, a, np.zeros(30))
        distribute(vm, b, np.ones(30))
        got = execute_combine(vm, a, sec, [(3.0, b, sec)], schedules=[sched])
        assert got == [sched]
        assert np.array_equal(collect(vm, a), np.full(30, 3.0))


class TestAliasing:
    def test_self_referential_stencil(self):
        """A(1:n-2) = 0.5*A(0:n-3) + 0.5*A(2:n-1) reads A's old values."""
        n = 64
        a = make_1d("A", n, 4, 4)
        vm = VirtualMachine(4)
        rng = np.random.default_rng(3)
        host = rng.random(n)
        distribute(vm, a, host)
        execute_combine(
            vm, a, RegularSection(1, n - 2, 1),
            [
                (0.5, a, RegularSection(0, n - 3, 1)),
                (0.5, a, RegularSection(2, n - 1, 1)),
            ],
        )
        ref = host.copy()
        ref[1:-1] = 0.5 * (host[:-2] + host[2:])
        assert np.allclose(collect(vm, a), ref)

    def test_shift_in_place(self):
        """A(0:n-2) = A(1:n-1): every element reads its old right neighbor."""
        n = 48
        a = make_1d("A", n, 3, 4)
        vm = VirtualMachine(3)
        host = np.arange(n, dtype=float)
        distribute(vm, a, host)
        execute_combine(
            vm, a, RegularSection(0, n - 2, 1),
            [(1.0, a, RegularSection(1, n - 1, 1))],
        )
        ref = host.copy()
        ref[:-1] = host[1:]
        assert np.array_equal(collect(vm, a), ref)


class TestRandomized:
    @given(
        st.integers(min_value=1, max_value=4),   # p
        st.integers(min_value=1, max_value=5),   # ka
        st.integers(min_value=1, max_value=5),   # kb
        st.integers(min_value=1, max_value=5),   # kc
        st.integers(min_value=1, max_value=12),  # count
        st.integers(min_value=1, max_value=4),   # strides...
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy(self, p, ka, kb, kc, count, sa, sb, sc):
        n = (count - 1) * max(sa, sb, sc) + 8
        a = make_1d("A", n, p, ka)
        b = make_1d("B", n, p, kb)
        c = make_1d("C", n, p, kc)
        sec_a = RegularSection(0, (count - 1) * sa, sa)
        sec_b = RegularSection(1, 1 + (count - 1) * sb, sb)
        sec_c = RegularSection(2, 2 + (count - 1) * sc, sc)
        vm = VirtualMachine(p)
        rng = np.random.default_rng(count)
        host_b, host_c = rng.random(n), rng.random(n)
        distribute(vm, a, np.zeros(n))
        distribute(vm, b, host_b)
        distribute(vm, c, host_c)
        execute_combine(vm, a, sec_a, [(1.5, b, sec_b), (-0.5, c, sec_c)])
        ref = np.zeros(n)
        ref[0 : (count - 1) * sa + 1 : sa] = (
            1.5 * host_b[1 : 2 + (count - 1) * sb : sb]
            - 0.5 * host_c[2 : 3 + (count - 1) * sc : sc]
        )
        assert np.allclose(collect(vm, a), ref)
