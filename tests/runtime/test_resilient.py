"""Tests for the resilient exchange protocol.

The acceptance property: for every fault seed in a sweep (drop rates up
to 0.5, duplication, corruption, stalls), ``redistribute_resilient``
either produces results bit-identical to the fault-free ``redistribute``
or raises ``ExchangeFailure`` -- never silently wrong data.  At zero
fault rate the resilient path adds < 2 extra supersteps and reports 0
retries.

``make faults`` re-runs this file under several seeds via the
``FAULT_SEEDS`` environment variable.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets import compute_comm_schedule
from repro.runtime.exec import collect, distribute, execute_copy
from repro.runtime.redistribute import plan_redistribution, redistribute
from repro.runtime.resilient import (
    ExchangeFailure,
    RetryPolicy,
    execute_copy_resilient,
    redistribute_resilient,
)

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2,3").split(",")]

FAULT_CONFIGS = [
    pytest.param(dict(drop=0.2), id="drop-0.2"),
    pytest.param(dict(drop=0.5), id="drop-0.5"),
    pytest.param(dict(duplicate=0.4), id="duplicate"),
    pytest.param(dict(corrupt=0.3), id="corrupt"),
    pytest.param(dict(reorder=0.8, duplicate=0.2), id="reorder-dup"),
    pytest.param(dict(stall=0.4), id="stall"),
    pytest.param(
        dict(drop=0.25, duplicate=0.2, corrupt=0.2, reorder=0.5, stall=0.2),
        id="everything",
    ),
]


def make_1d(name, n, p, k, a=1, b=0, textent=None):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0, template_extent=textent),),
    )


def faultfree_redistribution(n, p, k_src, k_dst, host):
    src, dst = make_1d("S", n, p, k_src), make_1d("D", n, p, k_dst)
    vm = VirtualMachine(p)
    distribute(vm, src, host)
    distribute(vm, dst, np.zeros(n))
    redistribute(vm, dst, src)
    return collect(vm, dst)


class TestZeroFault:
    def test_overhead_and_report(self):
        n, p = 120, 4
        host = np.arange(n, dtype=float) * 1.5
        src, dst = make_1d("S", n, p, 3), make_1d("D", n, p, 7)
        vm = VirtualMachine(p)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        stats, report = redistribute_resilient(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)
        assert report.retries == 0
        assert report.extra_supersteps < 2
        assert report.converged and report.verified
        assert report.detected_corruptions == 0
        assert report.retransmitted_bytes == 0
        assert stats.elements == n
        # The exchange drains its own channels completely.
        assert vm.network.idle

    def test_stats_match_plain_redistribute(self):
        n, p = 96, 4
        src, dst = make_1d("S", n, p, 1), make_1d("D", n, p, 8)
        vm = VirtualMachine(p)
        host = np.arange(n, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        schedule, expected_stats = plan_redistribution(dst, src)
        stats, report = redistribute_resilient(vm, dst, src, schedule=schedule)
        assert stats == expected_stats
        assert report.schedule is schedule

    def test_all_local_exchange_is_single_superstep(self):
        # Identity redistribution: no remote transfers, so the protocol
        # needs no ACK rounds at all.
        n, p = 64, 4
        src, dst = make_1d("S", n, p, 4), make_1d("D", n, p, 4)
        vm = VirtualMachine(p)
        host = np.arange(n, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        stats, report = redistribute_resilient(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)
        assert stats.remote_elements == 0
        assert report.transfers == 0
        assert report.supersteps == 1

    def test_copy_with_alignment_and_strides(self):
        a = make_1d("A", 60, 3, 4, a=2, b=1, textent=128)
        b = make_1d("B", 60, 3, 4)
        vm = VirtualMachine(3)
        host_b = np.arange(60, dtype=float) * 2
        distribute(vm, a, np.zeros(60))
        distribute(vm, b, host_b)
        report = execute_copy_resilient(
            vm, a, RegularSection(0, 59, 3), b, RegularSection(0, 59, 3)
        )
        ref = np.zeros(60)
        ref[0:60:3] = host_b[0:60:3]
        assert np.array_equal(collect(vm, a), ref)
        assert report.retries == 0 and report.verified


class TestPropertySweep:
    """The acceptance criterion: bit-identical or a hard error."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config", FAULT_CONFIGS)
    def test_redistribute_never_silently_wrong(self, seed, config):
        n, p, k_src, k_dst = 120, 4, 3, 7
        host = np.arange(n, dtype=float) + 0.25
        reference = faultfree_redistribution(n, p, k_src, k_dst, host)
        src, dst = make_1d("S", n, p, k_src), make_1d("D", n, p, k_dst)
        vm = VirtualMachine(p, fault_plan=FaultPlan(seed=seed, **config))
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        try:
            stats, report = redistribute_resilient(vm, dst, src)
        except ExchangeFailure:
            return  # a hard error is an acceptable outcome; silence is not
        assert report.converged and report.verified
        got = collect(vm, dst)
        assert got.tobytes() == reference.tobytes()  # bit-identical

    @pytest.mark.parametrize("seed", SEEDS)
    def test_self_copy_aliasing_survives_retransmission(self, seed):
        """Retransmits must come from payloads staged at pack time, or
        an aliased shift reads already-overwritten memory."""
        a = make_1d("A", 24, 2, 2)
        plan = FaultPlan(seed=seed, drop=0.4, duplicate=0.3)
        vm = VirtualMachine(2, fault_plan=plan)
        host = np.arange(24, dtype=float) * 3 + 1
        distribute(vm, a, host)
        try:
            execute_copy_resilient(
                vm, a, RegularSection(0, 22, 1), a, RegularSection(1, 23, 1)
            )
        except ExchangeFailure:
            return
        ref = host.copy()
        ref[0:23] = host[1:24]
        assert np.array_equal(collect(vm, a), ref)

    def test_deterministic_given_seed(self):
        def run(seed):
            src, dst = make_1d("S", 96, 4, 2), make_1d("D", 96, 4, 5)
            vm = VirtualMachine(4, fault_plan=FaultPlan(seed=seed, drop=0.3))
            host = np.arange(96, dtype=float)
            distribute(vm, src, host)
            distribute(vm, dst, np.zeros(96))
            stats, report = redistribute_resilient(vm, dst, src)
            return report.retries, report.supersteps, report.duplicates_ignored

        assert run(11) == run(11)


class TestFailureModes:
    def test_total_drop_raises(self):
        src, dst = make_1d("S", 60, 3, 1), make_1d("D", 60, 3, 5)
        vm = VirtualMachine(3, fault_plan=FaultPlan(seed=0, drop=1.0))
        distribute(vm, src, np.arange(60, dtype=float))
        distribute(vm, dst, np.zeros(60))
        policy = RetryPolicy(max_retries=2, max_supersteps=24)
        with pytest.raises(ExchangeFailure, match="retries exhausted|did not converge"):
            redistribute_resilient(vm, dst, src, policy=policy)

    def test_failure_carries_report(self):
        src, dst = make_1d("S", 40, 2, 1), make_1d("D", 40, 2, 4)
        vm = VirtualMachine(2, fault_plan=FaultPlan(seed=3, drop=1.0))
        distribute(vm, src, np.arange(40, dtype=float))
        distribute(vm, dst, np.zeros(40))
        with pytest.raises(ExchangeFailure) as excinfo:
            redistribute_resilient(
                vm, dst, src, policy=RetryPolicy(max_retries=1, max_supersteps=16)
            )
        report = excinfo.value.report
        assert not report.converged
        assert report.retries > 0

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="max_supersteps"):
            RetryPolicy(max_supersteps=1)

    def test_shape_mismatch(self):
        src, dst = make_1d("S", 40, 2, 2), make_1d("D", 44, 2, 2)
        vm = VirtualMachine(2)
        with pytest.raises(ValueError, match="shape mismatch"):
            redistribute_resilient(vm, dst, src)


class TestProtocolInternals:
    def test_corruption_detected_and_repaired(self):
        # Corrupt only the first data superstep: initial packets arrive
        # damaged, retransmissions go through clean.
        plan = FaultPlan(seed=0, corrupt=1.0, supersteps=(0, 1))
        src, dst = make_1d("S", 60, 3, 1), make_1d("D", 60, 3, 5)
        vm = VirtualMachine(3, fault_plan=plan)
        host = np.arange(60, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(60))
        stats, report = redistribute_resilient(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)
        assert report.detected_corruptions > 0
        assert report.retries > 0

    def test_duplicates_are_idempotent(self):
        plan = FaultPlan(seed=0, duplicate=1.0)
        src, dst = make_1d("S", 60, 3, 1), make_1d("D", 60, 3, 5)
        vm = VirtualMachine(3, fault_plan=plan)
        host = np.arange(60, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(60))
        stats, report = redistribute_resilient(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)
        assert report.duplicates_ignored > 0
        assert report.retries == 0

    def test_precomputed_schedule_not_replanned(self, monkeypatch):
        src, dst = make_1d("S", 60, 3, 2), make_1d("D", 60, 3, 7)
        schedule = compute_comm_schedule(
            dst, RegularSection(0, 59, 1), src, RegularSection(0, 59, 1)
        )
        import repro.runtime.resilient as resilient_mod

        def boom(*args, **kwargs):
            raise AssertionError("schedule should not be recomputed")

        monkeypatch.setattr(resilient_mod, "cached_comm_schedule", boom)
        vm = VirtualMachine(3)
        host = np.arange(60, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(60))
        stats, report = redistribute_resilient(vm, dst, src, schedule=schedule)
        assert np.array_equal(collect(vm, dst), host)

    def test_matches_execute_copy_on_clean_network(self):
        a1, b1 = make_1d("A", 200, 4, 8), make_1d("B", 200, 4, 5)
        sec_a, sec_b = RegularSection(0, 198, 2), RegularSection(1, 199, 2)
        host_b = np.arange(200, dtype=float)

        vm1 = VirtualMachine(4)
        distribute(vm1, a1, np.zeros(200))
        distribute(vm1, b1, host_b)
        execute_copy(vm1, a1, sec_a, b1, sec_b)

        vm2 = VirtualMachine(4)
        distribute(vm2, a1, np.zeros(200))
        distribute(vm2, b1, host_b)
        execute_copy_resilient(vm2, a1, sec_a, b1, sec_b)
        assert collect(vm1, a1).tobytes() == collect(vm2, a1).tobytes()


def crash_plan(kill_step, victim, downtime=1):
    return FaultPlan(
        forced_crashes=frozenset({(kill_step, victim)}), crash_downtime=downtime
    )


class TestCrashRecovery:
    """Tentpole acceptance: a crash at any single superstep recovers
    from checkpoint and completes bit-identical to the fault-free run."""

    @pytest.mark.parametrize("victim", [0, 2])
    @pytest.mark.parametrize("kill_step", range(7))
    def test_single_crash_recovers_bit_identical(self, kill_step, victim):
        n, p, k_src, k_dst = 120, 4, 3, 7
        host = np.arange(n, dtype=float) + 0.5
        reference = faultfree_redistribution(n, p, k_src, k_dst, host)
        src, dst = make_1d("S", n, p, k_src), make_1d("D", n, p, k_dst)
        vm = VirtualMachine(p, fault_plan=crash_plan(kill_step, victim))
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        stats, report = redistribute_resilient(vm, dst, src, checkpoints=store)
        assert report.converged and report.verified
        assert collect(vm, dst).tobytes() == reference.tobytes()
        if vm.crash_log:  # late kill steps may land after convergence
            assert report.crashes == [(victim, kill_step)]
            assert report.recoveries
            ev = report.recoveries[0]
            assert ev.rank == victim
            assert ev.checkpoint_superstep <= ev.crash_superstep

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_crashes_never_silently_wrong(self, seed):
        n, p, k_src, k_dst = 120, 4, 3, 7
        host = np.arange(n, dtype=float) * 2
        reference = faultfree_redistribution(n, p, k_src, k_dst, host)
        src, dst = make_1d("S", n, p, k_src), make_1d("D", n, p, k_dst)
        plan = FaultPlan(seed=seed, crash=0.05, drop=0.1)
        vm = VirtualMachine(p, fault_plan=plan)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        store = CheckpointStore(CheckpointPolicy(every=2, retention=4))
        try:
            stats, report = redistribute_resilient(vm, dst, src, checkpoints=store)
        except ExchangeFailure as exc:
            assert exc.report is not None
            return
        assert report.converged and report.verified
        assert collect(vm, dst).tobytes() == reference.tobytes()

    def test_crash_without_checkpoints_is_hard_failure(self):
        n, p = 120, 4
        src, dst = make_1d("S", n, p, 3), make_1d("D", n, p, 7)
        vm = VirtualMachine(p, fault_plan=crash_plan(1, 1))
        distribute(vm, src, np.arange(n, dtype=float))
        distribute(vm, dst, np.zeros(n))
        with pytest.raises(ExchangeFailure, match="checkpointing is disabled") as excinfo:
            redistribute_resilient(vm, dst, src)
        report = excinfo.value.report
        assert report.unrecoverable == (1, 1)  # (rank, superstep)
        assert not report.converged

    def test_recovery_report_accounting(self):
        n, p = 120, 4
        src, dst = make_1d("S", n, p, 3), make_1d("D", n, p, 7)
        # Long downtime: survivors must suspect the dead rank and park
        # its retransmissions until it reboots.
        vm = VirtualMachine(p, fault_plan=crash_plan(1, 2, downtime=6))
        host = np.arange(n, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        stats, report = redistribute_resilient(vm, dst, src, checkpoints=store)
        assert np.array_equal(collect(vm, dst), host)
        assert report.crashes == [(2, 1)]
        assert len(report.recoveries) == 1
        assert report.checkpoints_taken == store.saved > 0
        assert report.checkpoint_bytes == store.bytes_saved > 0
        assert report.parked_rounds > 0  # survivors held fire for the suspect
        # Trace shows the full lifecycle.
        kinds = [ev.kind for ev in vm.network.fault_events]
        assert "crash" in kinds and "restart" in kinds

    def test_suspect_after_validation(self):
        with pytest.raises(ValueError, match="suspect_after"):
            RetryPolicy(suspect_after=0)

    def test_entry_with_dead_rank_rejected(self):
        src, dst = make_1d("S", 40, 2, 1), make_1d("D", 40, 2, 4)
        vm = VirtualMachine(2)
        distribute(vm, src, np.arange(40, dtype=float))
        distribute(vm, dst, np.zeros(40))
        vm.crash_rank(1, downtime=100)
        with pytest.raises(ValueError, match="dead"):
            redistribute_resilient(vm, dst, src)


def scribble_everywhere(seed, rate=0.25, width=2, **extra):
    return FaultPlan(seed=seed, scribble=rate, scribble_width=width, **extra)


class TestVerifiedMode:
    """The silent-corruption defense (docs/FAULT_MODEL.md §5): with the
    auditor on, in-arena scribbles are detected and repaired and the
    exchange finishes bit-identical; with it off, at least one pinned
    configuration silently corrupts the result -- the detector is
    load-bearing, not decorative."""

    N, P, K_A, K_B = 64, 4, 4, 6
    SEC_A = RegularSection(3, 58, 5)
    SEC_B = RegularSection(1, 56, 5)

    def build(self, plan=None):
        vm = VirtualMachine(self.P, fault_plan=plan)
        a = make_1d("A", self.N, self.P, self.K_A)
        b = make_1d("B", self.N, self.P, self.K_B)
        distribute(vm, a, np.zeros(self.N))
        distribute(vm, b, np.arange(self.N, dtype=float) * 1.5)
        return vm, a, b

    def baseline(self):
        vm, a, b = self.build()
        execute_copy(vm, a, self.SEC_A, b, self.SEC_B)
        return collect(vm, a)

    # A-arena scribbles two supersteps in, on every rank: pinned so the
    # silent-corruption demo below is deterministic.
    def forced_a_plan(self, seed):
        return FaultPlan(
            seed=seed, scribble_width=2,
            forced_scribbles=frozenset({(2, r, "A") for r in range(self.P)}),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scribbles_heal_bit_identical(self, seed):
        expected = self.baseline()
        vm, a, b = self.build(plan=scribble_everywhere(seed))
        store = CheckpointStore(CheckpointPolicy(every=2, retention=3))
        report = execute_copy_resilient(
            vm, a, self.SEC_A, b, self.SEC_B,
            checkpoints=store, auditor=True,
        )
        assert np.array_equal(collect(vm, a), expected)
        assert report.verified
        assert report.audits > 0 and report.audit_chunks_checked > 0
        assert report.scribbles_detected > 0  # rate 0.25 always fires here
        assert report.chunks_repaired + report.audit_escalations > 0
        # The auditor's barrier hook and ledgers are cleaned up.
        assert vm.barrier_hooks == []

    def test_audit_off_silently_corrupts(self):
        # Seed 0 places the forced A scribbles outside the copied
        # section, where destination self-verification cannot see them:
        # the exchange "succeeds" with a wrong result.  This is the
        # configuration that proves the auditor is load-bearing.
        expected = self.baseline()
        vm, a, b = self.build(plan=self.forced_a_plan(0))
        report = execute_copy_resilient(vm, a, self.SEC_A, b, self.SEC_B)
        assert report.verified  # protocol saw nothing wrong...
        assert not np.array_equal(collect(vm, a), expected)  # ...yet rot

    def test_audit_on_heals_the_same_configuration(self):
        expected = self.baseline()
        vm, a, b = self.build(plan=self.forced_a_plan(0))
        store = CheckpointStore(CheckpointPolicy(every=2, retention=3))
        report = execute_copy_resilient(
            vm, a, self.SEC_A, b, self.SEC_B,
            checkpoints=store, auditor=True,
        )
        assert np.array_equal(collect(vm, a), expected)
        assert report.scribbles_detected >= 1
        assert report.repaired_from_retransmit + report.repaired_from_checkpoint > 0
        assert report.unrecoverable_chunk is None

    def test_unrecoverable_chunk_without_checkpoints(self, tmp_path):
        # A scribble on B (never a copy destination) cannot be repaired
        # from the retransmit buffer, and with no checkpoint store the
        # ladder has nowhere to go: hard failure naming the chunk, with
        # a flight-recorder dump for the post-mortem.
        plan = FaultPlan(seed=7, forced_scribbles=frozenset({(2, 1, "B")}))
        vm, a, b = self.build(plan=plan)
        from repro.machine.audit import IntegrityAuditor

        with pytest.raises(ExchangeFailure, match="unrecoverable") as excinfo:
            execute_copy_resilient(
                vm, a, self.SEC_A, b, self.SEC_B,
                auditor=IntegrityAuditor(chunk_size=8),
                flight_dir=tmp_path,
            )
        report = excinfo.value.report
        assert report.unrecoverable_chunk is not None
        rank, arena, chunk = report.unrecoverable_chunk
        assert arena == "B" and rank == 1 and chunk >= 0
        assert report.flight_dump is not None
        dump = json.loads(Path(report.flight_dump).read_text())
        assert str(rank) in dump["ranks"]
        assert any(
            rec["kind"] == "audit" for rec in dump["ranks"][str(rank)]
        )

    def test_b_scribble_repairs_from_checkpoint(self):
        expected = self.baseline()
        plan = FaultPlan(seed=7, forced_scribbles=frozenset({(2, 1, "B")}))
        vm, a, b = self.build(plan=plan)
        store = CheckpointStore(CheckpointPolicy(every=2, retention=3))
        report = execute_copy_resilient(
            vm, a, self.SEC_A, b, self.SEC_B,
            checkpoints=store, auditor=True,
        )
        assert np.array_equal(collect(vm, a), expected)
        assert report.repaired_from_checkpoint > 0

    def test_verified_mode_clean_network_no_false_alarms(self):
        expected = self.baseline()
        vm, a, b = self.build()
        report = execute_copy_resilient(
            vm, a, self.SEC_A, b, self.SEC_B, auditor=True,
        )
        assert np.array_equal(collect(vm, a), expected)
        assert report.scribbles_detected == 0
        assert report.chunks_repaired == 0
        assert report.audits > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scribbles_with_crashes_and_wire_faults(self, seed):
        # The full gauntlet: bit rot, a mid-exchange crash, and a lossy
        # wire.  Either bit-identical or a hard failure -- never silent.
        expected = self.baseline()
        plan = scribble_everywhere(
            seed, rate=0.1, drop=0.15, corrupt=0.1, crash=0.05,
            crash_downtime=2,
        )
        vm, a, b = self.build(plan=plan)
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        try:
            report = execute_copy_resilient(
                vm, a, self.SEC_A, b, self.SEC_B,
                checkpoints=store, auditor=True,
                policy=RetryPolicy(max_retries=16, max_supersteps=128),
            )
        except ExchangeFailure:
            return
        assert report.verified
        assert np.array_equal(collect(vm, a), expected)
