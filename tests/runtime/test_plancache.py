"""Tests for the runtime plan/schedule caches (:mod:`repro.runtime.plancache`)."""

import os

import numpy as np
import pytest

from repro.distribution import (
    Alignment,
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.machine.trace import machine_report
from repro.machine.vm import VirtualMachine
from repro.runtime import execute_copy
from repro.runtime.address import make_array_plan
from repro.runtime.commsets import compute_comm_schedule
from repro.runtime.plancache import (
    PlanCache,
    cache_stats,
    cached_array_plan,
    cached_comm_schedule,
    cached_comm_schedule_2d,
    cached_localized_arrays,
    clear_plan_caches,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


def make_1d(name, n, p, k, a=1, b=0):
    return DistributedArray(
        name,
        (n,),
        ProcessorGrid("G", (p,)),
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache("t", maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert len(cache) == 2
        sentinel = object()
        assert cache.get_or_compute("b", lambda: sentinel) is sentinel
        assert cache.hits == 1
        assert cache.misses == 4

    def test_counters_and_clear(self):
        cache = PlanCache("t", maxsize=4)
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache("t", maxsize=0)


class TestCachedLocalizedArrays:
    def test_hit_returns_same_objects(self):
        args = (3, 4, 50, Alignment(1, 0), RegularSection(0, 49, 2), 1)
        first = cached_localized_arrays(*args)
        second = cached_localized_arrays(*args)
        assert first[0] is second[0] and first[1] is second[1]
        assert not first[0].flags.writeable
        stats = cache_stats()["localized_arrays"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_distinct_keys_distinct_entries(self):
        sec = RegularSection(0, 29, 1)
        cached_localized_arrays(3, 4, 30, Alignment(1, 0), sec, 0)
        cached_localized_arrays(3, 4, 30, Alignment(1, 0), sec, 1)
        cached_localized_arrays(3, 5, 30, Alignment(1, 0), sec, 0)
        assert cache_stats()["localized_arrays"]["entries"] == 3


class TestCachedPlans:
    def test_identical_to_fresh_plan(self):
        arr = make_1d("A", 60, 4, 3)
        sec = RegularSection(2, 57, 5)
        for rank in range(4):
            assert cached_array_plan(arr, 0, sec, rank) == make_array_plan(
                arr, 0, sec, rank
            )

    def test_keyed_on_descriptor_not_name(self):
        sec = RegularSection(0, 59, 1)
        a = make_1d("A", 60, 4, 3)
        b = make_1d("B", 60, 4, 3)  # same layout, different name
        assert cached_array_plan(a, 0, sec, 1) is cached_array_plan(b, 0, sec, 1)
        c = make_1d("C", 60, 4, 5)  # different block size
        assert cached_array_plan(a, 0, sec, 1) is not cached_array_plan(c, 0, sec, 1)


class TestCachedSchedules:
    def test_identical_to_fresh_schedule(self):
        a = make_1d("A", 80, 4, 3)
        b = make_1d("B", 80, 4, 7)
        sec_a = RegularSection(0, 78, 2)
        sec_b = RegularSection(1, 79, 2)
        cached = cached_comm_schedule(a, sec_a, b, sec_b)
        fresh = compute_comm_schedule(a, sec_a, b, sec_b)
        assert cached.n_iterations == fresh.n_iterations
        assert [t.astuples() for t in cached.locals_ + cached.transfers] == [
            t.astuples() for t in fresh.locals_ + fresh.transfers
        ]
        # Second call is a pure cache hit returning the same object.
        assert cached_comm_schedule(a, sec_a, b, sec_b) is cached
        stats = cache_stats()["comm_schedules"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_2d_schedule_cached(self):
        grid = ProcessorGrid("G", (2, 2))

        def make2d(name):
            return DistributedArray(
                name,
                (12, 10),
                grid,
                (
                    AxisMap(CyclicK(2), grid_axis=0),
                    AxisMap(CyclicK(3), grid_axis=1),
                ),
            )

        a, b = make2d("A"), make2d("B")
        secs = (RegularSection(0, 11, 1), RegularSection(0, 9, 1))
        s1 = cached_comm_schedule_2d(a, secs, b, secs)
        s2 = cached_comm_schedule_2d(a, secs, b, secs)
        assert s1 is s2
        assert cache_stats()["comm_schedules_2d"]["entries"] == 1

    def test_executor_reuses_schedule_across_statements(self):
        p, n = 3, 40
        a = make_1d("A", n, p, 2)
        b = make_1d("B", n, p, 5)
        sec = RegularSection(0, n - 1, 1)
        vm = VirtualMachine(p)
        from repro.runtime import distribute

        host = np.arange(n, dtype=float)
        distribute(vm, b, host)
        distribute(vm, a, np.zeros(n))
        s1 = execute_copy(vm, a, sec, b, sec)
        s2 = execute_copy(vm, a, sec, b, sec)  # steady state: cache hit
        assert s1 is s2
        from repro.runtime import collect

        assert np.array_equal(collect(vm, a), host)


class TestReporting:
    def test_machine_report_surfaces_cache_stats(self):
        vm = VirtualMachine(2)
        report = machine_report(vm)
        assert "plan_caches" in report
        for name in (
            "localized_arrays",
            "array_plans",
            "comm_schedules",
            "comm_schedules_2d",
        ):
            entry = report["plan_caches"][name]
            assert set(entry) == {
                "entries", "maxsize", "shards", "hits", "misses",
                "evictions", "invalidations", "expirations", "coalesced",
            }

    def test_clear_resets_all(self):
        a = make_1d("A", 30, 3, 2)
        cached_array_plan(a, 0, RegularSection(0, 29, 1), 0)
        cached_localized_arrays(3, 2, 30, Alignment(1, 0), RegularSection(0, 29, 1), 0)
        assert any(c["entries"] for c in cache_stats().values())
        clear_plan_caches()
        assert all(
            c["entries"] == 0 and c["hits"] == 0 and c["misses"] == 0
            for c in cache_stats().values()
        )


class TestForkSafety:
    def test_forked_children_start_with_pristine_caches(self):
        # The multiprocess backend forks workers while the driver's
        # caches are warm (and possibly mid-lookup): a child must see
        # empty caches with fresh locks and zeroed counters, never the
        # parent's entries or hit/miss history.
        import multiprocessing

        a = make_1d("A", 30, 3, 2)
        cached_array_plan(a, 0, RegularSection(0, 29, 1), 0)
        cached_localized_arrays(3, 2, 30, Alignment(1, 0), RegularSection(0, 29, 1), 0)
        parent_stats = cache_stats()
        assert any(c["entries"] for c in parent_stats.values())

        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()

        def child(queue):
            from repro.runtime.plancache import cache_stats

            queue.put(cache_stats())

        proc = ctx.Process(target=child, args=(queue,))
        proc.start()
        child_stats = queue.get()
        proc.join(10.0)
        assert proc.exitcode == 0
        for name, entry in child_stats.items():
            assert entry["entries"] == 0, f"{name} leaked entries into the child"
            assert entry["hits"] == 0 and entry["misses"] == 0
        # The parent's caches are untouched by the child's reset.
        assert cache_stats() == parent_stats

    def test_pid_guard_resets_state_inherited_without_fork_hooks(self):
        # Backstop for processes created without running the at-fork
        # hooks: the first lookup under a new PID starts clean.
        from repro.runtime import plancache

        a = make_1d("A", 30, 3, 2)
        cached_array_plan(a, 0, RegularSection(0, 29, 1), 0)
        assert cache_stats()["array_plans"]["entries"] == 1
        original = plancache._owner_pid
        try:
            plancache._owner_pid = original - 1  # simulate an inherited pid
            cached_array_plan(a, 0, RegularSection(0, 29, 1), 0)
            stats = cache_stats()["array_plans"]
            # The stale entry was discarded and this lookup recomputed.
            assert stats["entries"] == 1
            assert stats["hits"] == 0 and stats["misses"] == 1
        finally:
            assert plancache._owner_pid == os.getpid()
