"""Tests for the Figure 8 C code emitter.

Structure checks always run; if a C compiler is available on the host,
the emitted harness is compiled and executed and its address stream is
compared against the Python shapes (full closed-loop validation).
"""

import shutil
import subprocess
import sys

import numpy as np
import pytest

from repro.core.baselines.naive import enumerate_local_elements
from repro.runtime.address import make_plan
from repro.runtime.emit_c import emit_harness, emit_node_code

PAPER = dict(p=4, k=8, l=4, u=319, s=9, m=1)


def paper_plan():
    return make_plan(**PAPER)


class TestStructure:
    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown shape"):
            emit_node_code(paper_plan(), "z")

    def test_shape_a_uses_mod(self):
        code = emit_node_code(paper_plan(), "a")
        assert "i = (i + 1) % LENGTH;" in code
        assert "#define STARTMEM 5" in code
        assert "deltaM[1] = " not in code
        assert "{3, 12, 15, 12, 3, 12, 3, 12}" in code

    def test_shape_b_resets(self):
        code = emit_node_code(paper_plan(), "b")
        assert "if (i == LENGTH) i = 0;" in code
        assert "%" not in code.split("Figure 8(b)")[1]

    def test_shape_c_goto(self):
        code = emit_node_code(paper_plan(), "c")
        assert "goto done;" in code
        assert "while (1)" in code

    def test_shape_d_two_tables(self):
        code = emit_node_code(paper_plan(), "d")
        assert "NextOffset" in code
        assert "#define STARTOFFSET 5" in code
        assert "i = NextOffset[i];" in code
        # The paper's offset-indexed tables for the worked example.
        assert "{12, 12, 12, 12, 15, 3, 3, 3}" in code
        assert "{4, 5, 6, 7, 3, 0, 1, 2}" in code

    def test_empty_plan(self):
        plan = make_plan(2, 1, 0, 100, 4, 1)
        code = emit_node_code(plan, "b")
        assert "owns no section elements" in code

    def test_shape_d_needs_offsets(self):
        from repro.distribution.align import Alignment
        from repro.distribution.array import AxisMap, DistributedArray
        from repro.distribution.dist import CyclicK, ProcessorGrid
        from repro.distribution.section import RegularSection
        from repro.runtime.address import make_array_plan

        grid = ProcessorGrid("P", (4,))
        arr = DistributedArray(
            "A", (100,), grid,
            (AxisMap(CyclicK(8), Alignment(2, 1), grid_axis=0,
                     template_extent=256),),
        )
        plan = make_array_plan(arr, 0, RegularSection(0, 99, 3), 0)
        with pytest.raises(ValueError, match="offset-indexed"):
            emit_node_code(plan, "d")

    def test_harness_structure(self):
        text = emit_harness(paper_plan(), "b", memory_size=128)
        assert "#include <stdio.h>" in text
        assert "int main(void)" in text
        assert "calloc(128" in text


needs_cc = pytest.mark.skipif(
    shutil.which("cc") is None and shutil.which("gcc") is None,
    reason="no C compiler on host",
)


@needs_cc
class TestCompiledAddressStream:
    @pytest.mark.parametrize("shape", ["a", "b", "c", "d"])
    def test_c_matches_python(self, shape, tmp_path):
        plan = paper_plan()
        want = [a for _, a in enumerate_local_elements(**PAPER)]
        size = max(want) + 1
        source = tmp_path / "node.c"
        binary = tmp_path / "node"
        source.write_text(emit_harness(plan, shape, memory_size=size))
        cc = shutil.which("cc") or shutil.which("gcc")
        subprocess.run([cc, "-O2", "-o", str(binary), str(source)], check=True)
        out = subprocess.run([str(binary)], capture_output=True, text=True,
                             check=True)
        got = [int(line) for line in out.stdout.split()]
        assert got == sorted(want)
