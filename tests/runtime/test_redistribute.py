"""Tests for block-cyclic redistribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Block, Collapsed, CyclicK, ProcessorGrid
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import collect, distribute
from repro.runtime.redistribute import (
    plan_redistribution,
    redistribute,
    traffic_matrix,
)


def make_1d(name, n, p, k_or_dist):
    grid = ProcessorGrid("P", (p,))
    dist = k_or_dist if not isinstance(k_or_dist, int) else CyclicK(k_or_dist)
    return DistributedArray(name, (n,), grid, (AxisMap(dist, grid_axis=0),))


class TestPlan:
    def test_identity_is_all_local(self):
        a = make_1d("A", 96, 4, 8)
        b = make_1d("B", 96, 4, 8)
        _, stats = plan_redistribution(a, b)
        assert stats.remote_elements == 0
        assert stats.locality == 1.0
        assert stats.elements == 96

    def test_shape_mismatch(self):
        a = make_1d("A", 10, 2, 2)
        b = make_1d("B", 12, 2, 2)
        with pytest.raises(ValueError, match="shape mismatch"):
            plan_redistribution(a, b)

    def test_rank1_required(self):
        grid = ProcessorGrid("P", (2,))
        m2 = DistributedArray(
            "M", (4, 4), grid,
            (AxisMap(CyclicK(1), grid_axis=0), AxisMap(Collapsed())),
        )
        with pytest.raises(ValueError, match="rank-1"):
            plan_redistribution(m2, m2)

    def test_cyclic1_to_block_moves_most(self):
        n, p = 64, 4
        src = make_1d("S", n, p, 1)
        dst = make_1d("D", n, p, Block())
        _, stats = plan_redistribution(dst, src)
        # cyclic(1) -> block keeps only ~n/p^2 elements local.
        assert stats.remote_elements >= n * (p - 1) // p - p
        assert 0 < stats.locality < 0.5
        assert stats.max_fan_out <= p - 1


class TestExecute:
    @pytest.mark.parametrize("k_src,k_dst", [(1, 8), (8, 1), (3, 5), (8, 8)])
    def test_values_preserved(self, k_src, k_dst):
        n, p = 120, 4
        src = make_1d("S", n, p, k_src)
        dst = make_1d("D", n, p, k_dst)
        vm = VirtualMachine(p)
        host = np.arange(n, dtype=float) * 1.5
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        stats = redistribute(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)
        assert stats.elements == n

    def test_precomputed_schedule(self):
        n, p = 60, 3
        src = make_1d("S", n, p, 2)
        dst = make_1d("D", n, p, 7)
        schedule, _ = plan_redistribution(dst, src)
        vm = VirtualMachine(p)
        host = np.random.default_rng(0).random(n)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        redistribute(vm, dst, src, schedule=schedule)
        assert np.allclose(collect(vm, dst), host)

    def test_precomputed_schedule_skips_replanning(self, monkeypatch):
        """Regression: a passed schedule used to be ignored for the stats
        and the whole communication plan recomputed just to derive them."""
        import sys

        from repro.runtime.redistribute import stats_from_schedule

        # The package re-exports a `redistribute` *function*, which wins
        # over the submodule in `import ... as`; go through sys.modules.
        redistribute_mod = sys.modules["repro.runtime.redistribute"]

        n, p = 60, 3
        src = make_1d("S", n, p, 2)
        dst = make_1d("D", n, p, 7)
        schedule, planned_stats = plan_redistribution(dst, src)

        def boom(*args, **kwargs):
            raise AssertionError("redistribute(schedule=...) must not replan")

        monkeypatch.setattr(redistribute_mod, "plan_redistribution", boom)
        monkeypatch.setattr(redistribute_mod, "cached_comm_schedule", boom)
        vm = VirtualMachine(p)
        host = np.arange(n, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        stats = redistribute(vm, dst, src, schedule=schedule)
        assert stats == planned_stats
        assert stats == stats_from_schedule(schedule)
        assert np.array_equal(collect(vm, dst), host)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_redistributions(self, p, k1, k2, n):
        src = make_1d("S", n, p, k1)
        dst = make_1d("D", n, p, k2)
        vm = VirtualMachine(p)
        host = np.arange(n, dtype=float) + 0.5
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        stats = redistribute(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)
        assert stats.local_elements + stats.remote_elements == n


class TestTrafficMatrix:
    def test_row_sums_are_source_ownership(self):
        n, p = 64, 4
        src = make_1d("S", n, p, 2)
        dst = make_1d("D", n, p, Block())
        schedule, stats = plan_redistribution(dst, src)
        matrix = traffic_matrix(schedule, p)
        assert matrix.sum() == n
        for q in range(p):
            assert matrix[q].sum() == src.local_size(q)
        for r in range(p):
            assert matrix[:, r].sum() == dst.local_size(r)
        assert np.trace(matrix) == stats.local_elements
