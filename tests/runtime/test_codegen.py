"""Tests for the Figure 8 node-code shapes."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.baselines.naive import enumerate_local_elements
from repro.machine.trace import TracingMemory
from repro.runtime.address import make_plan
from repro.runtime.codegen import SHAPES, get_shape, materialize_addresses

from ..conftest import bounded_access_params

ALL_SHAPES = sorted(SHAPES)


class TestRegistry:
    def test_known_shapes(self):
        assert set(SHAPES) == {"a", "b", "c", "d", "v"}
        for name in SHAPES:
            # An interpreter pin bypasses native dispatch entirely; the
            # default may return a native wrapper under REPRO_NATIVE=on.
            assert get_shape(name, native=False) is SHAPES[name]

    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown node-code shape"):
            get_shape("z")


class TestShapesAgainstOracle:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_paper_case(self, shape, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        plan = make_plan(p, k, l, 319, s, m)
        want = [a for _, a in enumerate_local_elements(p, k, l, 319, s, m)]
        mem = TracingMemory(np.zeros(max(want) + 1))
        written = SHAPES[shape](mem, plan, 100.0)
        assert written == len(want)
        # Shapes a-d visit strictly in increasing-address order; the
        # vectorized shape writes once with the whole index vector.
        assert mem.trace.writes == want
        assert np.all(mem.arena[want] == 100.0)

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_empty_plan(self, shape):
        plan = make_plan(4, 8, 10, 5, 1, 0)
        mem = np.zeros(4)
        assert SHAPES[shape](mem, plan, 1.0) == 0
        assert not mem.any()

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_single_element(self, shape):
        plan = make_plan(4, 8, 0, 0, 1, 0)
        mem = np.zeros(4)
        assert SHAPES[shape](mem, plan, 1.0) == 1
        assert mem[0] == 1.0 and mem[1:].sum() == 0

    @given(bounded_access_params())
    @settings(max_examples=80, deadline=None)
    def test_all_shapes_equivalent(self, params):
        p, k, l, u, s, m = params
        plan = make_plan(p, k, l, u, s, m)
        want = [a for _, a in enumerate_local_elements(p, k, l, u, s, m)]
        size = (max(want) + 1) if want else 1
        images = []
        for shape in ALL_SHAPES:
            mem = np.zeros(size)
            written = SHAPES[shape](mem, plan, 42.0)
            assert written == len(want)
            images.append(mem)
        for other in images[1:]:
            assert np.array_equal(images[0], other)
        assert sorted(np.nonzero(images[0])[0].tolist()) == sorted(set(want))


class TestMaterialize:
    def test_empty(self):
        plan = make_plan(4, 8, 10, 5, 1, 0)
        assert materialize_addresses(plan).size == 0

    def test_dtype(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        addrs = materialize_addresses(make_plan(p, k, l, 319, s, m))
        assert addrs.dtype == np.int64

    @given(bounded_access_params())
    @settings(max_examples=80, deadline=None)
    def test_monotone_increasing(self, params):
        p, k, l, u, s, m = params
        addrs = materialize_addresses(make_plan(p, k, l, u, s, m))
        assert np.all(np.diff(addrs) > 0)
