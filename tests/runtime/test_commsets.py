"""Tests for communication-set generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Collapsed, CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.runtime.commsets import compute_comm_schedule


def make_array(name, n, p, k, a=1, b=0, textent=None):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0, template_extent=textent),),
    )


@st.composite
def statement_params(draw):
    p = draw(st.integers(min_value=1, max_value=5))
    ka = draw(st.integers(min_value=1, max_value=8))
    kb = draw(st.integers(min_value=1, max_value=8))
    count = draw(st.integers(min_value=1, max_value=15))
    sa = draw(st.integers(min_value=1, max_value=6))
    sb = draw(st.integers(min_value=1, max_value=6))
    span = (count - 1) * max(sa, sb)
    n = draw(st.integers(min_value=span + 1, max_value=span + 40))
    la = draw(st.integers(min_value=0, max_value=n - 1 - (count - 1) * sa))
    lb = draw(st.integers(min_value=0, max_value=n - 1 - (count - 1) * sb))
    sec_a = RegularSection(la, la + (count - 1) * sa, sa)
    sec_b = RegularSection(lb, lb + (count - 1) * sb, sb)
    return p, ka, kb, n, sec_a, sec_b


class TestValidation:
    def test_non_conformable(self):
        a = make_array("A", 100, 4, 8)
        b = make_array("B", 100, 4, 8)
        with pytest.raises(ValueError, match="non-conformable"):
            compute_comm_schedule(a, RegularSection(0, 9, 1), b, RegularSection(0, 8, 1))

    def test_requires_rank1(self):
        grid = ProcessorGrid("P", (2,))
        m2 = DistributedArray(
            "M", (4, 4), grid,
            (AxisMap(CyclicK(1), grid_axis=0), AxisMap(Collapsed())),
        )
        b = make_array("B", 16, 2, 2)
        with pytest.raises(ValueError, match="rank-1"):
            compute_comm_schedule(m2, RegularSection(0, 3, 1), b, RegularSection(0, 3, 1))

    def test_requires_distributed(self):
        grid = ProcessorGrid("P", (2,))
        undist = DistributedArray("U", (10,), grid, (AxisMap(Collapsed()),))
        b = make_array("B", 10, 2, 2)
        with pytest.raises(ValueError, match="not distributed"):
            compute_comm_schedule(undist, RegularSection(0, 3, 1), b, RegularSection(0, 3, 1))


class TestSchedule:
    def test_same_mapping_is_all_local(self):
        a = make_array("A", 100, 4, 8)
        b = make_array("B", 100, 4, 8)
        sec = RegularSection(0, 99, 3)
        sched = compute_comm_schedule(a, sec, b, sec)
        assert sched.communicated_elements == 0
        assert sched.total_elements == len(sec)

    def test_shifted_sections_communicate(self):
        a = make_array("A", 100, 4, 8)
        b = make_array("B", 100, 4, 8)
        sched = compute_comm_schedule(
            a, RegularSection(0, 89, 1), b, RegularSection(10, 99, 1)
        )
        assert sched.communicated_elements > 0
        assert sched.total_elements == 90

    def test_sends_receives_views(self):
        a = make_array("A", 64, 2, 4)
        b = make_array("B", 64, 2, 8)
        sched = compute_comm_schedule(
            a, RegularSection(0, 63, 1), b, RegularSection(0, 63, 1)
        )
        for rank in range(2):
            for tr in sched.sends_from(rank):
                assert tr.source == rank and tr.dest != rank
            for tr in sched.receives_at(rank):
                assert tr.dest == rank and tr.source != rank

    @given(statement_params())
    @settings(max_examples=100, deadline=None)
    def test_conservation_and_correct_slots(self, params):
        """Every iteration appears exactly once, with correct local slots
        at both ends."""
        p, ka, kb, n, sec_a, sec_b = params
        a = make_array("A", n, p, ka)
        b = make_array("B", n, p, kb)
        sched = compute_comm_schedule(a, sec_a, b, sec_b)
        seen = []
        for tr in sched.locals_ + sched.transfers:
            for t, bs, asl in zip(tr.iterations, tr.src_slots, tr.dst_slots):
                seen.append(t)
                b_index = sec_b.element(t)
                a_index = sec_a.element(t)
                assert b.owner((b_index,)) == tr.source
                assert a.owner((a_index,)) == tr.dest
                assert b.local_address((b_index,), tr.source) == bs
                assert a.local_address((a_index,), tr.dest) == asl
        assert sorted(seen) == list(range(len(sec_a)))

    @given(statement_params())
    @settings(max_examples=50, deadline=None)
    def test_local_transfers_have_equal_endpoints(self, params):
        p, ka, kb, n, sec_a, sec_b = params
        a = make_array("A", n, p, ka)
        b = make_array("B", n, p, kb)
        sched = compute_comm_schedule(a, sec_a, b, sec_b)
        for tr in sched.locals_:
            assert tr.source == tr.dest
        for tr in sched.transfers:
            assert tr.source != tr.dest

    def test_aligned_arrays(self):
        a = make_array("A", 50, 3, 4, a=2, b=1, textent=128)
        b = make_array("B", 50, 3, 4, a=3, b=0, textent=256)
        sec = RegularSection(0, 49, 7)
        sched = compute_comm_schedule(a, sec, b, sec)
        seen = sorted(
            t
            for tr in sched.locals_ + sched.transfers
            for t in tr.iterations
        )
        assert seen == list(range(len(sec)))
