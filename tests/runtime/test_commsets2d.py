"""Tests for 2-D communication schedules and statement execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Collapsed, CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets2d import compute_comm_schedule_2d
from repro.runtime.exec import collect, distribute, execute_copy_2d


def make_2d(name, shape, grid_shape, k0, k1, a0=1, b0=0, a1=1, b1=0, t0=None, t1=None):
    grid = ProcessorGrid("G", grid_shape)
    return DistributedArray(
        name, shape, grid,
        (
            AxisMap(CyclicK(k0), Alignment(a0, b0), grid_axis=0, template_extent=t0),
            AxisMap(CyclicK(k1), Alignment(a1, b1), grid_axis=1, template_extent=t1),
        ),
    )


class TestValidation:
    def test_rank2_required(self):
        grid = ProcessorGrid("G", (2, 2))
        v = DistributedArray("V", (8,), grid, (AxisMap(CyclicK(2), grid_axis=0),))
        m = make_2d("M", (8, 8), (2, 2), 2, 2)
        with pytest.raises(ValueError, match="rank-2"):
            compute_comm_schedule_2d(
                v, (RegularSection(0, 7, 1),) * 2, m, (RegularSection(0, 7, 1),) * 2
            )

    def test_swapped_grid_axes_supported(self):
        """An array may map dim 0 onto grid axis 1 and vice versa."""
        grid = ProcessorGrid("G", (2, 2))
        swapped = DistributedArray(
            "S", (8, 8), grid,
            (AxisMap(CyclicK(2), grid_axis=1), AxisMap(CyclicK(2), grid_axis=0)),
        )
        m = make_2d("M", (8, 8), (2, 2), 2, 2)
        sec = (RegularSection(0, 7, 1), RegularSection(0, 7, 1))
        sched = compute_comm_schedule_2d(swapped, sec, m, sec)
        assert sched.total_elements == 64

    def test_bad_rhs_dims(self):
        m = make_2d("M", (8, 8), (2, 2), 2, 2)
        sec = (RegularSection(0, 7, 1), RegularSection(0, 7, 1))
        with pytest.raises(ValueError, match="permutation"):
            compute_comm_schedule_2d(m, sec, m, sec, rhs_dims=(0, 0))

    def test_non_conformable(self):
        m = make_2d("M", (8, 8), (2, 2), 2, 2)
        with pytest.raises(ValueError, match="non-conformable"):
            compute_comm_schedule_2d(
                m, (RegularSection(0, 7, 1), RegularSection(0, 7, 1)),
                m, (RegularSection(0, 6, 1), RegularSection(0, 7, 1)),
            )

    def test_cross_p_grids(self):
        """Grids of different total size are allowed (elastic re-layout
        migrates between rank counts): executed at p = max(sizes), the
        cross-p copy is exact."""
        a = make_2d("A", (8, 8), (2, 2), 2, 2)
        b = make_2d("B", (8, 8), (3, 2), 2, 2)
        sec = (RegularSection(0, 7, 1), RegularSection(0, 7, 1))
        sched = compute_comm_schedule_2d(a, sec, b, sec)
        assert sched.total_elements == 64
        vm = VirtualMachine(6)
        host_b = np.arange(64, dtype=float).reshape(8, 8)
        distribute(vm, a, np.zeros((8, 8)))
        distribute(vm, b, host_b)
        execute_copy_2d(vm, a, sec, b, sec, schedule=sched)
        assert np.array_equal(collect(vm, a), host_b)

    def test_different_grid_shapes_same_size(self):
        """A 2x2-mapped array may copy from a 4x1-mapped one: the grids
        share the machine's 4 ranks."""
        a = make_2d("A", (8, 8), (2, 2), 2, 2)
        b = make_2d("B", (8, 8), (4, 1), 2, 2)
        sec = (RegularSection(0, 7, 1), RegularSection(0, 7, 1))
        sched = compute_comm_schedule_2d(a, sec, b, sec)
        assert sched.total_elements == 64
        vm = VirtualMachine(4)
        host_b = np.arange(64, dtype=float).reshape(8, 8)
        distribute(vm, a, np.zeros((8, 8)))
        distribute(vm, b, host_b)
        execute_copy_2d(vm, a, sec, b, sec, schedule=sched)
        assert np.array_equal(collect(vm, a), host_b)


class TestSchedule:
    def test_conservation(self):
        a = make_2d("A", (12, 10), (2, 2), 2, 3)
        b = make_2d("B", (12, 10), (2, 2), 3, 2)
        secs_a = (RegularSection(0, 11, 2), RegularSection(1, 9, 2))
        secs_b = (RegularSection(1, 11, 2), RegularSection(0, 9, 2))
        sched = compute_comm_schedule_2d(a, secs_a, b, secs_b)
        assert sched.total_elements == len(secs_a[0]) * len(secs_a[1])
        # Every destination slot appears exactly once across transfers.
        seen = set()
        for tr in sched.locals_ + sched.transfers:
            for slot in tr.dst_slots:
                key = (tr.dest, slot)
                assert key not in seen
                seen.add(key)

    def test_identity_all_local(self):
        a = make_2d("A", (12, 12), (2, 2), 2, 2)
        b = make_2d("B", (12, 12), (2, 2), 2, 2)
        sec = (RegularSection(0, 11, 1), RegularSection(0, 11, 1))
        sched = compute_comm_schedule_2d(a, sec, b, sec)
        assert sched.communicated_elements == 0
        assert sched.total_elements == 144


class TestExecution:
    def _run(self, a, b, secs_a, secs_b, host_b):
        vm = VirtualMachine(a.grid.size)
        distribute(vm, a, np.zeros(a.shape))
        distribute(vm, b, host_b)
        execute_copy_2d(vm, a, secs_a, b, secs_b)
        return collect(vm, a)

    def test_matches_numpy(self):
        a = make_2d("A", (12, 10), (2, 2), 2, 3)
        b = make_2d("B", (12, 10), (2, 2), 3, 2)
        secs_a = (RegularSection(0, 10, 2), RegularSection(1, 9, 2))
        secs_b = (RegularSection(1, 11, 2), RegularSection(0, 8, 2))
        host_b = np.arange(120, dtype=float).reshape(12, 10)
        got = self._run(a, b, secs_a, secs_b, host_b)
        ref = np.zeros((12, 10))
        ref[0:11:2, 1:10:2] = host_b[1:12:2, 0:9:2]
        assert np.array_equal(got, ref)

    def test_aligned_2d(self):
        a = make_2d("A", (10, 8), (2, 2), 2, 2, a0=2, b0=1, t0=64, t1=16)
        b = make_2d("B", (10, 8), (2, 2), 3, 3)
        secs = (RegularSection(0, 9, 3), RegularSection(0, 7, 2))
        host_b = np.arange(80, dtype=float).reshape(10, 8)
        got = self._run(a, b, secs, secs, host_b)
        ref = np.zeros((10, 8))
        ref[0:10:3, 0:8:2] = host_b[0:10:3, 0:8:2]
        assert np.array_equal(got, ref)

    @given(
        st.integers(min_value=1, max_value=3),  # grid rows
        st.integers(min_value=1, max_value=3),  # grid cols
        st.integers(min_value=1, max_value=4),  # k's
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=5),  # counts
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=3),  # strides
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_2d_copies(self, g0, g1, ka0, ka1, kb0, kb1, c0, c1, s0, s1):
        n0 = (c0 - 1) * s0 + 3
        n1 = (c1 - 1) * s1 + 3
        a = make_2d("A", (n0, n1), (g0, g1), ka0, ka1)
        b = make_2d("B", (n0, n1), (g0, g1), kb0, kb1)
        secs_a = (
            RegularSection(0, (c0 - 1) * s0, s0),
            RegularSection(0, (c1 - 1) * s1, s1),
        )
        secs_b = (
            RegularSection(2, 2 + (c0 - 1) * s0, s0),
            RegularSection(1, 1 + (c1 - 1) * s1, s1),
        )
        host_b = np.random.default_rng(c0 * 7 + c1).random((n0, n1))
        got = self._run(a, b, secs_a, secs_b, host_b)
        ref = np.zeros((n0, n1))
        ref[0 : (c0 - 1) * s0 + 1 : s0, 0 : (c1 - 1) * s1 + 1 : s1] = host_b[
            2 : 3 + (c0 - 1) * s0 : s0, 1 : 2 + (c1 - 1) * s1 : s1
        ]
        assert np.allclose(got, ref)
