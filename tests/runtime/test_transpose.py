"""Tests for the distributed transpose."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets2d import compute_comm_schedule_2d
from repro.runtime.exec import collect, distribute, execute_copy_2d, execute_transpose


def make_2d(name, shape, grid_shape, k0, k1, axes=(0, 1)):
    grid = ProcessorGrid("G", grid_shape)
    return DistributedArray(
        name, shape, grid,
        (
            AxisMap(CyclicK(k0), grid_axis=axes[0]),
            AxisMap(CyclicK(k1), grid_axis=axes[1]),
        ),
    )


class TestValidation:
    def test_shape_mismatch(self):
        a = make_2d("A", (6, 8), (2, 2), 2, 2)
        b = make_2d("B", (6, 8), (2, 2), 2, 2)
        vm = VirtualMachine(4)
        with pytest.raises(ValueError, match="transpose"):
            execute_transpose(vm, a, b)

    def test_rank2_required(self):
        grid = ProcessorGrid("G", (2, 2))
        v = DistributedArray("V", (8,), grid, (AxisMap(CyclicK(2), grid_axis=0),))
        a = make_2d("A", (8, 8), (2, 2), 2, 2)
        vm = VirtualMachine(4)
        with pytest.raises(ValueError, match="rank-2"):
            execute_transpose(vm, a, v)


class TestTranspose:
    def test_square(self):
        a = make_2d("A", (12, 12), (2, 2), 2, 3)
        b = make_2d("B", (12, 12), (2, 2), 3, 2)
        vm = VirtualMachine(4)
        host_b = np.arange(144, dtype=float).reshape(12, 12)
        distribute(vm, a, np.zeros((12, 12)))
        distribute(vm, b, host_b)
        execute_transpose(vm, a, b)
        assert np.array_equal(collect(vm, a), host_b.T)

    def test_rectangular(self):
        a = make_2d("A", (10, 6), (2, 2), 2, 2)
        b = make_2d("B", (6, 10), (2, 2), 3, 3)
        vm = VirtualMachine(4)
        host_b = np.arange(60, dtype=float).reshape(6, 10)
        distribute(vm, a, np.zeros((10, 6)))
        distribute(vm, b, host_b)
        execute_transpose(vm, a, b)
        assert np.array_equal(collect(vm, a), host_b.T)

    def test_sectioned_transpose(self):
        """A(0:5, 0:3) = B(0:3, 0:5)^T via explicit rhs_dims."""
        a = make_2d("A", (8, 8), (2, 2), 2, 2)
        b = make_2d("B", (8, 8), (2, 2), 2, 2)
        secs_a = (RegularSection(0, 5, 1), RegularSection(0, 3, 1))
        secs_b = (RegularSection(0, 3, 1), RegularSection(0, 5, 1))
        vm = VirtualMachine(4)
        host_b = np.arange(64, dtype=float).reshape(8, 8)
        distribute(vm, a, np.zeros((8, 8)))
        distribute(vm, b, host_b)
        execute_copy_2d(vm, a, secs_a, b, secs_b, rhs_dims=(1, 0))
        ref = np.zeros((8, 8))
        ref[0:6, 0:4] = host_b[0:4, 0:6].T
        assert np.array_equal(collect(vm, a), ref)

    def test_swapped_axis_mapping(self):
        a = make_2d("A", (9, 9), (2, 2), 2, 2, axes=(1, 0))
        b = make_2d("B", (9, 9), (2, 2), 2, 2)
        vm = VirtualMachine(4)
        host_b = np.arange(81, dtype=float).reshape(9, 9)
        distribute(vm, a, np.zeros((9, 9)))
        distribute(vm, b, host_b)
        execute_transpose(vm, a, b)
        assert np.array_equal(collect(vm, a), host_b.T)

    def test_transpose_conformability_via_rhs_dims(self):
        a = make_2d("A", (8, 8), (2, 2), 2, 2)
        secs_a = (RegularSection(0, 5, 1), RegularSection(0, 3, 1))
        secs_b = (RegularSection(0, 5, 1), RegularSection(0, 3, 1))
        with pytest.raises(ValueError, match="non-conformable"):
            compute_comm_schedule_2d(a, secs_a, a, secs_b, rhs_dims=(1, 0))

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_transposes(self, g0, g1, ka0, ka1, kb0, kb1, n0, n1):
        a = make_2d("A", (n0, n1), (g0, g1), ka0, ka1)
        b = make_2d("B", (n1, n0), (g0, g1), kb0, kb1)
        vm = VirtualMachine(g0 * g1)
        host_b = np.random.default_rng(n0 * 11 + n1).random((n1, n0))
        distribute(vm, a, np.zeros((n0, n1)))
        distribute(vm, b, host_b)
        execute_transpose(vm, a, b)
        assert np.allclose(collect(vm, a), host_b.T)
