"""Randomized property sweep for the resilient exchange.

Draws random paper parameters -- processor count ``p``, cyclic block
sizes ``k``, and regular sections ``l:u:s`` -- crossed with fault seeds
(including crash seeds), and checks the one property the protocol
promises: the result is bit-identical to the fault-free exchange, or an
:class:`ExchangeFailure` is raised.  Silent corruption is the only
forbidden outcome.

Every draw is a pure function of the pytest parameters, so a failing
case replays exactly from its test id.  ``make faults`` re-runs this
file under several seeds via ``FAULT_SEEDS``.
"""

import os

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import collect, distribute, execute_copy
from repro.runtime.redistribute import redistribute
from repro.runtime.resilient import (
    ExchangeFailure,
    execute_copy_resilient,
    redistribute_resilient,
)

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2,3").split(",")]
# ``make soak`` widens the sweep without editing the file.
DRAWS = range(int(os.environ.get("SOAK_DRAWS", "3")))


def make_1d(name, n, p, k, a=1, b=0):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


def draw_fault_config(rng, scribbles=False):
    """A random fault mix; roughly half the draws include crash faults.

    ``scribbles=True`` adds in-arena bit rot -- only meaningful for
    exchanges running in verified mode (an auditor), since without one
    a scribble outside the copied section corrupts silently by design.
    """
    config = dict(
        drop=round(float(rng.uniform(0.0, 0.35)), 3),
        duplicate=round(float(rng.uniform(0.0, 0.25)), 3),
        corrupt=round(float(rng.uniform(0.0, 0.25)), 3),
        reorder=round(float(rng.uniform(0.0, 0.8)), 3),
        stall=round(float(rng.uniform(0.0, 0.25)), 3),
    )
    if rng.random() < 0.5:
        config["crash"] = 0.04
        config["crash_downtime"] = int(rng.integers(1, 4))
    if scribbles:
        config["scribble"] = round(float(rng.uniform(0.05, 0.3)), 3)
        config["scribble_width"] = int(rng.integers(1, 4))
    return config


def checkpoint_store(rng):
    return CheckpointStore(
        CheckpointPolicy(every=int(rng.integers(1, 4)), retention=4)
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("draw", DRAWS)
def test_sectioned_copy_bit_identical_or_hard_error(seed, draw):
    rng = np.random.default_rng(1009 * seed + draw)
    p = int(rng.integers(2, 5))
    n = int(rng.integers(48, 192))
    k_a, k_b = int(rng.integers(1, 9)), int(rng.integers(1, 9))
    s = int(rng.integers(1, 5))
    l = int(rng.integers(0, n // 3))
    count = int(rng.integers(2, max(3, (n - l) // s)))
    u = min(n - 1, l + (count - 1) * s)
    sec = RegularSection(l, u, s)

    host_b = rng.standard_normal(n)
    a, b = make_1d("A", n, p, k_a), make_1d("B", n, p, k_b)

    clean = VirtualMachine(p)
    distribute(clean, a, np.zeros(n))
    distribute(clean, b, host_b)
    execute_copy(clean, a, sec, b, sec)
    reference = collect(clean, a)

    plan = FaultPlan.from_rates(seed=seed, **draw_fault_config(rng))
    vm = VirtualMachine(p, fault_plan=plan)
    distribute(vm, a, np.zeros(n))
    distribute(vm, b, host_b)
    try:
        report = execute_copy_resilient(
            vm, a, sec, b, sec, checkpoints=checkpoint_store(rng)
        )
    except ExchangeFailure as exc:
        assert exc.report is not None  # failures carry their evidence
        return
    assert report.converged and report.verified
    assert collect(vm, a).tobytes() == reference.tobytes()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("draw", DRAWS)
def test_redistribution_bit_identical_or_hard_error(seed, draw):
    rng = np.random.default_rng(2003 * seed + draw)
    p = int(rng.integers(2, 5))
    n = int(rng.integers(48, 192))
    k_src, k_dst = int(rng.integers(1, 9)), int(rng.integers(1, 9))
    host = rng.standard_normal(n)

    src, dst = make_1d("S", n, p, k_src), make_1d("D", n, p, k_dst)
    clean = VirtualMachine(p)
    distribute(clean, src, host)
    distribute(clean, dst, np.zeros(n))
    redistribute(clean, dst, src)
    reference = collect(clean, dst)

    plan = FaultPlan.from_rates(seed=seed, **draw_fault_config(rng))
    vm = VirtualMachine(p, fault_plan=plan)
    distribute(vm, src, host)
    distribute(vm, dst, np.zeros(n))
    try:
        stats, report = redistribute_resilient(
            vm, dst, src, checkpoints=checkpoint_store(rng)
        )
    except ExchangeFailure as exc:
        assert exc.report is not None
        return
    assert report.converged and report.verified
    assert collect(vm, dst).tobytes() == reference.tobytes()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("draw", DRAWS)
def test_detector_sensitivity_no_silent_divergence(seed, draw):
    """Detector-sensitivity property for the verified exchange: every
    injected wire ``corrupt`` and in-arena ``scribble`` fault is either
    *detected* or provably harmless, and the result is bit-identical to
    the fault-free run (or the failure is hard).

    Accounting, from the deterministic fault trace:

    * a corrupted *data* packet is harmless only if it never reached a
      live receiver (quarantined by a crash) -- every drained one must
      show up in ``detected_corruptions``, including late stragglers
      swept up by the cleanup phase;
    * corrupted *control* traffic (ACK/NACK/heartbeat) is harmless by
      checksummed discard, which the bit-identical result proves;
    * every scribble whose victim survived its barrier (a same-superstep
      crash wipes the evidence along with the arena -- harmless, the
      restore replaces the arena wholesale) must show up as a ledger
      divergence in ``scribbles_detected``.
    """
    rng = np.random.default_rng(4001 * seed + draw)
    p = int(rng.integers(2, 5))
    n = int(rng.integers(48, 160))
    k_a, k_b = int(rng.integers(1, 9)), int(rng.integers(1, 9))
    s = int(rng.integers(1, 5))
    l = int(rng.integers(0, n // 3))
    count = int(rng.integers(2, max(3, (n - l) // s)))
    u = min(n - 1, l + (count - 1) * s)
    sec = RegularSection(l, u, s)

    host_b = rng.standard_normal(n)
    a, b = make_1d("A", n, p, k_a), make_1d("B", n, p, k_b)

    clean = VirtualMachine(p)
    distribute(clean, a, np.zeros(n))
    distribute(clean, b, host_b)
    execute_copy(clean, a, sec, b, sec)
    reference = collect(clean, a)

    plan = FaultPlan.from_rates(
        seed=seed, **draw_fault_config(rng, scribbles=True)
    )
    vm = VirtualMachine(p, fault_plan=plan)
    distribute(vm, a, np.zeros(n))
    distribute(vm, b, host_b)
    try:
        report = execute_copy_resilient(
            vm, a, sec, b, sec,
            checkpoints=checkpoint_store(rng), auditor=True,
        )
    except ExchangeFailure as exc:
        assert exc.report is not None
        return

    # The headline property: nothing diverged silently.
    assert report.converged and report.verified
    assert collect(vm, a).tobytes() == reference.tobytes()

    events = vm.network.fault_events
    data_corrupts = sum(
        1 for ev in events
        if ev.kind == "corrupt"
        and isinstance(ev.tag, tuple) and ev.tag and ev.tag[0] == "rxd"
    )
    data_quarantines = sum(
        1 for ev in events
        if ev.kind == "quarantine"
        and isinstance(ev.tag, tuple) and ev.tag and ev.tag[0] == "rxd"
    )
    assert report.detected_corruptions >= data_corrupts - data_quarantines

    crashed_at = set(vm.crash_log)
    surviving_scribbles = sum(
        1 for ev in events
        if ev.kind == "scribble" and (ev.source, ev.superstep) not in crashed_at
    )
    assert report.scribbles_detected >= surviving_scribbles
    # Detection is not decorative: everything found was healed (or the
    # exchange would have raised above).
    if report.scribbles_detected:
        assert (
            report.chunks_repaired + report.audit_escalations > 0
        )
