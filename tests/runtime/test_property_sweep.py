"""Randomized property sweep for the resilient exchange.

Draws random paper parameters -- processor count ``p``, cyclic block
sizes ``k``, and regular sections ``l:u:s`` -- crossed with fault seeds
(including crash seeds), and checks the one property the protocol
promises: the result is bit-identical to the fault-free exchange, or an
:class:`ExchangeFailure` is raised.  Silent corruption is the only
forbidden outcome.

Every draw is a pure function of the pytest parameters, so a failing
case replays exactly from its test id.  ``make faults`` re-runs this
file under several seeds via ``FAULT_SEEDS``.
"""

import os

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import collect, distribute, execute_copy
from repro.runtime.redistribute import redistribute
from repro.runtime.resilient import (
    ExchangeFailure,
    execute_copy_resilient,
    redistribute_resilient,
)

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1,2,3").split(",")]
DRAWS = range(3)


def make_1d(name, n, p, k, a=1, b=0):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


def draw_fault_config(rng):
    """A random fault mix; roughly half the draws include crash faults."""
    config = dict(
        drop=round(float(rng.uniform(0.0, 0.35)), 3),
        duplicate=round(float(rng.uniform(0.0, 0.25)), 3),
        corrupt=round(float(rng.uniform(0.0, 0.25)), 3),
        reorder=round(float(rng.uniform(0.0, 0.8)), 3),
        stall=round(float(rng.uniform(0.0, 0.25)), 3),
    )
    if rng.random() < 0.5:
        config["crash"] = 0.04
        config["crash_downtime"] = int(rng.integers(1, 4))
    return config


def checkpoint_store(rng):
    return CheckpointStore(
        CheckpointPolicy(every=int(rng.integers(1, 4)), retention=4)
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("draw", DRAWS)
def test_sectioned_copy_bit_identical_or_hard_error(seed, draw):
    rng = np.random.default_rng(1009 * seed + draw)
    p = int(rng.integers(2, 5))
    n = int(rng.integers(48, 192))
    k_a, k_b = int(rng.integers(1, 9)), int(rng.integers(1, 9))
    s = int(rng.integers(1, 5))
    l = int(rng.integers(0, n // 3))
    count = int(rng.integers(2, max(3, (n - l) // s)))
    u = min(n - 1, l + (count - 1) * s)
    sec = RegularSection(l, u, s)

    host_b = rng.standard_normal(n)
    a, b = make_1d("A", n, p, k_a), make_1d("B", n, p, k_b)

    clean = VirtualMachine(p)
    distribute(clean, a, np.zeros(n))
    distribute(clean, b, host_b)
    execute_copy(clean, a, sec, b, sec)
    reference = collect(clean, a)

    plan = FaultPlan.from_rates(seed=seed, **draw_fault_config(rng))
    vm = VirtualMachine(p, fault_plan=plan)
    distribute(vm, a, np.zeros(n))
    distribute(vm, b, host_b)
    try:
        report = execute_copy_resilient(
            vm, a, sec, b, sec, checkpoints=checkpoint_store(rng)
        )
    except ExchangeFailure as exc:
        assert exc.report is not None  # failures carry their evidence
        return
    assert report.converged and report.verified
    assert collect(vm, a).tobytes() == reference.tobytes()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("draw", DRAWS)
def test_redistribution_bit_identical_or_hard_error(seed, draw):
    rng = np.random.default_rng(2003 * seed + draw)
    p = int(rng.integers(2, 5))
    n = int(rng.integers(48, 192))
    k_src, k_dst = int(rng.integers(1, 9)), int(rng.integers(1, 9))
    host = rng.standard_normal(n)

    src, dst = make_1d("S", n, p, k_src), make_1d("D", n, p, k_dst)
    clean = VirtualMachine(p)
    distribute(clean, src, host)
    distribute(clean, dst, np.zeros(n))
    redistribute(clean, dst, src)
    reference = collect(clean, dst)

    plan = FaultPlan.from_rates(seed=seed, **draw_fault_config(rng))
    vm = VirtualMachine(p, fault_plan=plan)
    distribute(vm, src, host)
    distribute(vm, dst, np.zeros(n))
    try:
        stats, report = redistribute_resilient(
            vm, dst, src, checkpoints=checkpoint_store(rng)
        )
    except ExchangeFailure as exc:
        assert exc.report is not None
        return
    assert report.converged and report.verified
    assert collect(vm, dst).tobytes() == reference.tobytes()
