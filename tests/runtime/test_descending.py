"""Tests for descending traversal plans and flat multi-dim addressing."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.baselines.naive import enumerate_local_elements
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Collapsed, Cyclic, CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.runtime.address import flat_local_addresses, make_plan
from repro.runtime.codegen import fill_descending

from ..conftest import bounded_access_params


class TestDescendingPlan:
    def test_empty(self):
        plan = make_plan(4, 8, 10, 5, 1, 0)
        assert plan.descending() is plan

    def test_paper_case_reversed(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        plan = make_plan(p, k, l, 319, s, m)
        desc = plan.descending()
        assert desc.start_local == plan.last_local
        assert desc.last_local == plan.start_local
        assert all(g < 0 for g in desc.delta_m)
        assert desc.start_offset is None

    @given(bounded_access_params())
    @settings(max_examples=120, deadline=None)
    def test_descending_walk_reverses_ascending(self, params):
        p, k, l, u, s, m = params
        plan = make_plan(p, k, l, u, s, m)
        desc = plan.descending()
        want = [a for _, a in enumerate_local_elements(p, k, l, u, s, m)]
        if not want:
            assert desc.is_empty
            return
        # Walk the descending table count steps.
        got = []
        addr = desc.start_local
        for t in range(desc.count):
            got.append(addr)
            addr += desc.delta_m[t % desc.length]
        assert got == list(reversed(want))


class TestFillDescending:
    def test_matches_ascending_image(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        plan = make_plan(p, k, l, 319, s, m)
        want = [a for _, a in enumerate_local_elements(p, k, l, 319, s, m)]
        mem = np.zeros(max(want) + 1)
        written = fill_descending(mem, plan.descending(), 7.0)
        assert written == len(want)
        assert sorted(np.nonzero(mem)[0].tolist()) == want

    def test_rejects_ascending_plan(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        plan = make_plan(p, k, l, 319, s, m)
        with pytest.raises(ValueError, match="descending"):
            fill_descending(np.zeros(100), plan, 1.0)

    def test_empty(self):
        plan = make_plan(4, 8, 10, 5, 1, 0)
        assert fill_descending(np.zeros(4), plan.descending(), 1.0) == 0

    def test_single_element(self):
        plan = make_plan(4, 8, 5, 5, 1, 0)
        mem = np.zeros(8)
        assert fill_descending(mem, plan.descending(), 3.0) == 1
        assert mem[plan.start_local] == 3.0


class TestFlatLocalAddresses:
    def test_matches_enumeration_2d(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "M", (10, 12), grid,
            (AxisMap(CyclicK(3), grid_axis=0), AxisMap(CyclicK(2), grid_axis=1)),
        )
        secs = (RegularSection(1, 9, 2), RegularSection(0, 11, 3))
        for rank in range(4):
            want = [addr for _, addr in arr.local_section_elements(secs, rank)]
            got = flat_local_addresses(arr, secs, rank).tolist()
            assert got == want

    def test_collapsed_dim(self):
        grid = ProcessorGrid("P", (2,))
        arr = DistributedArray(
            "M", (6, 10), grid,
            (AxisMap(Cyclic(), grid_axis=0), AxisMap(Collapsed())),
        )
        secs = (RegularSection(0, 5, 2), RegularSection(1, 9, 4))
        for rank in range(2):
            want = [addr for _, addr in arr.local_section_elements(secs, rank)]
            assert flat_local_addresses(arr, secs, rank).tolist() == want

    def test_collapsed_out_of_bounds(self):
        grid = ProcessorGrid("P", (2,))
        arr = DistributedArray(
            "M", (6, 10), grid,
            (AxisMap(Cyclic(), grid_axis=0), AxisMap(Collapsed())),
        )
        with pytest.raises(IndexError, match="outside"):
            flat_local_addresses(
                arr, (RegularSection(0, 5, 1), RegularSection(0, 10, 1)), 0
            )

    def test_empty_section(self):
        grid = ProcessorGrid("P", (2,))
        arr = DistributedArray("A", (10,), grid, (AxisMap(CyclicK(2), grid_axis=0),))
        got = flat_local_addresses(arr, (RegularSection(5, 4, 1),), 0)
        assert got.size == 0

    def test_wrong_section_count(self):
        grid = ProcessorGrid("P", (2,))
        arr = DistributedArray("A", (10,), grid, (AxisMap(CyclicK(2), grid_axis=0),))
        with pytest.raises(ValueError, match="one section per dimension"):
            flat_local_addresses(arr, (), 0)
