"""Tests for elastic rank membership (:mod:`repro.runtime.elastic`).

The headline contract: ``relayout`` migrates an array between rank
counts as one planned, resilient, all-or-nothing exchange -- the result
is bit-identical to distributing onto the new layout from scratch, a
crash mid-migration rolls the whole machine back to the pre-migration
epoch, and a rank lost past checkpoint retention either degrades to
``p - 1`` (opt-in) or raises an :class:`ExchangeFailure` naming the
retention window -- never a silent wrong answer.
"""

import numpy as np
import pytest

from repro.distribution import (
    Alignment,
    AxisMap,
    Block,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.runtime import (
    ElasticPolicy,
    ElasticSession,
    MigrationFailure,
    collect,
    distribute,
    execute_copy,
    relayout,
)
from repro.runtime.elastic import image_from_snapshot, make_relayout_target
from repro.runtime.plancache import (
    cache_stats,
    cached_array_plan,
    clear_plan_caches,
    invalidate_for_p,
)
from repro.runtime.resilient import ExchangeFailure, RetryPolicy


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


def make_1d(name, n, p, k, a=1, b=0):
    return DistributedArray(
        name,
        (n,),
        ProcessorGrid("G", (p,)),
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


def static_image(n, p, k, host, name="R"):
    """The oracle: distribute ``host`` onto a fresh static-``p`` layout
    and collect it back (what a migrated array must match bit for bit)."""
    vm = VirtualMachine(p)
    arr = make_1d(name, n, p, k)
    distribute(vm, arr, host)
    return collect(vm, arr)


# ---------------------------------------------------------------------------
# Machine-layer membership
# ---------------------------------------------------------------------------


class TestVmMembership:
    def test_grow_appends_fresh_ranks(self):
        vm = VirtualMachine(2)
        vm.grow_to(5)
        assert vm.p == 5
        assert len(vm.processors) == 5
        assert [proc.rank for proc in vm.processors] == [0, 1, 2, 3, 4]
        assert vm.dead_ranks == ()
        # New ranks are usable immediately.
        got = vm.run(lambda ctx: ctx.rank)
        assert got == [0, 1, 2, 3, 4]

    def test_grow_must_increase(self):
        vm = VirtualMachine(3)
        with pytest.raises(ValueError):
            vm.grow_to(3)
        with pytest.raises(ValueError):
            vm.grow_to(2)

    def test_retire_truncates_and_quarantines(self):
        vm = VirtualMachine(4)
        # Stage traffic touching a rank about to retire.
        vm.network.send(0, 3, "t", 1.0)
        vm.network.send(0, 1, "t", 2.0)
        quarantined_before = vm.network.stats.quarantined
        vm.retire_to(2)
        assert vm.p == 2
        assert len(vm.processors) == 2
        assert vm.network.stats.quarantined == quarantined_before + 1
        # Surviving traffic still delivers.
        vm.run(lambda ctx: None)
        assert vm.network.recv(1, 0, "t") == pytest.approx(2.0)

    def test_retire_bounds(self):
        vm = VirtualMachine(3)
        with pytest.raises(ValueError):
            vm.retire_to(0)
        with pytest.raises(ValueError):
            vm.retire_to(3)

    def test_retired_dead_rank_never_revives(self):
        plan = FaultPlan(forced_crashes=frozenset({(0, 2)}), crash_downtime=1)
        vm = VirtualMachine(3, fault_plan=plan)
        vm.run(lambda ctx: None)  # superstep 0: rank 2 crashes
        assert vm.dead_ranks == (2,)
        vm.retire_to(2)
        for _ in range(4):
            vm.run(lambda ctx: None)
        assert vm.p == 2 and vm.dead_ranks == ()

    def test_membership_events_recorded(self):
        vm = VirtualMachine(2)
        vm.grow_to(4)
        vm.retire_to(3)
        kinds = [e.kind for e in vm.network.fault_events]
        assert "grow" in kinds and "retire" in kinds


# ---------------------------------------------------------------------------
# make_relayout_target
# ---------------------------------------------------------------------------


class TestRelayoutTarget:
    def test_keeps_shape_and_alignment(self):
        a = make_1d("A", 50, 3, 4, a=2, b=1)
        t = make_relayout_target(a, CyclicK(6), 5)
        assert t.shape == a.shape
        assert t.grid.size == 5
        assert t.axis_maps[0].alignment == a.axis_maps[0].alignment
        assert t.axis_maps[0].distribution == CyclicK(6)

    def test_none_keeps_format(self):
        a = make_1d("A", 50, 3, 4)
        t = make_relayout_target(a, None, 7)
        assert t.axis_maps[0].distribution == a.axis_maps[0].distribution

    def test_2d_requires_grid_shape(self):
        grid = ProcessorGrid("G", (2, 2))
        a = DistributedArray(
            "A", (8, 8), grid,
            (AxisMap(CyclicK(2), grid_axis=0), AxisMap(CyclicK(2), grid_axis=1)),
        )
        with pytest.raises(ValueError):
            make_relayout_target(a, None, 6)
        t = make_relayout_target(a, None, 6, grid_shape=(3, 2))
        assert t.grid.shape == (3, 2)

    def test_grid_shape_must_multiply(self):
        a = make_1d("A", 50, 3, 4)
        with pytest.raises(ValueError):
            make_relayout_target(a, None, 6, grid_shape=(2, 2))


# ---------------------------------------------------------------------------
# relayout: the tentpole
# ---------------------------------------------------------------------------


class TestRelayout:
    def test_grow_bit_identical_to_static(self):
        n = 97
        host = np.arange(n, dtype=float) * 1.5
        vm = VirtualMachine(3)
        a = make_1d("A", n, 3, 4)
        distribute(vm, a, host)
        a2, report = relayout(vm, a, CyclicK(7), new_p=5)
        assert vm.p == 5
        assert report.committed and report.attempts == 1
        assert np.array_equal(collect(vm, a2), host)
        # Shard-exact: every rank holds exactly the static layout's shard.
        vm_ref = VirtualMachine(5)
        ref = make_1d("A", n, 5, 7)
        distribute(vm_ref, ref, host)
        for rank in range(5):
            assert np.array_equal(
                vm.processors[rank].memory("A"),
                vm_ref.processors[rank].memory("A"),
            )

    def test_shrink_bit_identical_to_static(self):
        n = 80
        host = np.linspace(0.0, 1.0, n)
        vm = VirtualMachine(6)
        a = make_1d("A", n, 6, 5)
        distribute(vm, a, host)
        a2, report = relayout(vm, a, CyclicK(3), new_p=2)
        assert vm.p == 2 and report.committed
        assert np.array_equal(collect(vm, a2), host)

    def test_pure_redistribution_same_p(self):
        n = 60
        host = np.arange(n, dtype=float)
        vm = VirtualMachine(4)
        a = make_1d("A", n, 4, 2)
        distribute(vm, a, host)
        a2, report = relayout(vm, a, CyclicK(9), new_p=4)
        assert vm.p == 4 and report.old_p == report.new_p == 4
        assert np.array_equal(collect(vm, a2), host)

    def test_block_to_cyclic_across_p(self):
        n = 66
        host = np.arange(n, dtype=float)
        vm = VirtualMachine(3)
        a = DistributedArray(
            "A", (n,), ProcessorGrid("G", (3,)),
            (AxisMap(Block(), grid_axis=0),),
        )
        distribute(vm, a, host)
        a2, _ = relayout(vm, a, CyclicK(4), new_p=5)
        assert np.array_equal(collect(vm, a2), host)

    def test_2d_grow_and_shrink(self):
        host = np.arange(120, dtype=float).reshape(12, 10)
        grid = ProcessorGrid("G", (2, 2))
        a = DistributedArray(
            "A", (12, 10), grid,
            (AxisMap(CyclicK(2), grid_axis=0), AxisMap(CyclicK(3), grid_axis=1)),
        )
        vm = VirtualMachine(4)
        distribute(vm, a, host)
        a2, _ = relayout(vm, a, (CyclicK(4), CyclicK(2)), new_p=6,
                         grid_shape=(3, 2))
        assert vm.p == 6
        assert np.array_equal(collect(vm, a2), host)
        a3, _ = relayout(vm, a2, None, new_p=2, grid_shape=(2, 1))
        assert vm.p == 2
        assert np.array_equal(collect(vm, a3), host)

    def test_report_counts_comm_volume(self):
        n = 64
        vm = VirtualMachine(4)
        a = make_1d("A", n, 4, 2)
        distribute(vm, a, np.arange(n, dtype=float))
        _, report = relayout(vm, a, CyclicK(5), new_p=3)
        assert report.stats is not None
        assert report.stats.elements == n
        assert report.moved_bytes == report.stats.remote_elements * 8
        assert report.supersteps > 0

    def test_retire_can_be_deferred(self):
        n = 40
        vm = VirtualMachine(4)
        a = make_1d("A", n, 4, 2)
        distribute(vm, a, np.arange(n, dtype=float))
        policy = ElasticPolicy(retire_on_commit=False)
        a2, _ = relayout(vm, a, None, new_p=2, policy=policy)
        assert vm.p == 4  # ranks kept for other arrays
        assert np.array_equal(collect(vm, a2), np.arange(n, dtype=float))
        vm.retire_to(2)
        assert np.array_equal(collect(vm, a2), np.arange(n, dtype=float))


class TestRelayoutSweep:
    """Randomized p -> p' sweep: every migration bit-identical to the
    static-p' oracle (the acceptance criterion of the elastic PR)."""

    def test_randomized_sweep(self):
        rng = np.random.default_rng(7)
        for trial in range(12):
            n = int(rng.integers(16, 120))
            old_p = int(rng.integers(1, 7))
            new_p = int(rng.integers(1, 7))
            old_k = int(rng.integers(1, 9))
            new_k = int(rng.integers(1, 9))
            host = rng.standard_normal(n)
            vm = VirtualMachine(old_p)
            a = make_1d("A", n, old_p, old_k)
            distribute(vm, a, host)
            a2, report = relayout(vm, a, CyclicK(new_k), new_p=new_p)
            assert vm.p == new_p
            assert report.committed
            got = collect(vm, a2)
            ref = static_image(n, new_p, new_k, host)
            assert np.array_equal(got, ref), (
                f"trial {trial}: {old_p}(k={old_k}) -> {new_p}(k={new_k}), n={n}"
            )

    def test_sweep_with_crashes(self):
        """Same sweep with a forced crash landing mid-migration: the
        resilient exchange (or a full epoch rollback + retry) must still
        deliver the bit-identical result."""
        rng = np.random.default_rng(11)
        for trial in range(8):
            n = int(rng.integers(24, 96))
            old_p = int(rng.integers(2, 6))
            new_p = int(rng.integers(2, 6))
            new_k = int(rng.integers(1, 7))
            victim = int(rng.integers(0, min(old_p, new_p)))
            crash_step = int(rng.integers(1, 5))
            host = rng.standard_normal(n)
            plan = FaultPlan(
                forced_crashes=frozenset({(crash_step, victim)}),
                crash_downtime=1,
            )
            vm = VirtualMachine(old_p, fault_plan=plan)
            a = make_1d("A", n, old_p, 3)
            distribute(vm, a, host)
            a2, report = relayout(vm, a, CyclicK(new_k), new_p=new_p)
            assert report.committed
            got = collect(vm, a2)
            ref = static_image(n, new_p, new_k, host)
            assert np.array_equal(got, ref), (
                f"trial {trial}: crash r{victim}@{crash_step}, "
                f"{old_p} -> {new_p}, n={n}"
            )


class TestRollback:
    def test_failed_attempt_rolls_back_then_retries(self):
        n = 48
        host = np.arange(n, dtype=float)
        # Crashes on every odd superstep in a window long enough to sink
        # attempt 1 (max_supersteps=6) but clear for attempt 2.
        crashes = frozenset((s, 1) for s in range(1, 10, 2))
        vm = VirtualMachine(3, fault_plan=FaultPlan(
            forced_crashes=crashes, crash_downtime=1))
        a = make_1d("A", n, 3, 2)
        distribute(vm, a, host)
        a2, report = relayout(
            vm, a, CyclicK(3), new_p=4,
            retry=RetryPolicy(max_supersteps=6),
            policy=ElasticPolicy(max_attempts=3, revive_wait=8),
        )
        assert report.attempts == 2 and report.rollbacks == 1
        assert np.array_equal(collect(vm, a2), host)
        assert np.array_equal(collect(vm, a2), static_image(n, 4, 3, host))

    def test_exhausted_attempts_leave_premigration_state(self):
        """All-or-nothing: when every attempt fails the machine is back
        at the old p with the old layout's exact values."""
        n = 48
        host = np.arange(n, dtype=float)
        crashes = frozenset((s, 1) for s in range(1, 400))
        vm = VirtualMachine(3, fault_plan=FaultPlan(
            forced_crashes=crashes, crash_downtime=1))
        a = make_1d("A", n, 3, 2)
        distribute(vm, a, host)
        before = [np.array(vm.processors[r].memory("A")) for r in range(3)]
        with pytest.raises(MigrationFailure) as info:
            relayout(
                vm, a, CyclicK(3), new_p=4,
                retry=RetryPolicy(max_supersteps=6),
                policy=ElasticPolicy(max_attempts=2, revive_wait=3),
            )
        assert vm.p == 3  # grown rank was retired again
        report = info.value.report
        assert not report.committed and report.attempts >= 1
        # No staging arena survives anywhere.
        for rank in range(3):
            proc = vm.processors[rank]
            if proc.alive:
                assert all("mig" not in name for name in proc.memory_names)
        # Survivor arenas hold the pre-migration values verbatim.
        for rank in range(3):
            if vm.processors[rank].alive:
                assert np.array_equal(
                    vm.processors[rank].memory("A"), before[rank]
                )

    def test_rollback_restores_after_partial_staging(self):
        """The epoch checkpoint, not the exchange's rolling checkpoints,
        is the rollback point: even values already staged under the new
        layout vanish on rollback."""
        n = 60
        host = np.arange(n, dtype=float)
        vm = VirtualMachine(3)
        a = make_1d("A", n, 3, 4)
        distribute(vm, a, host)
        store = CheckpointStore(CheckpointPolicy(every=1, retention=2))
        a2, report = relayout(vm, a, CyclicK(2), new_p=5, checkpoints=store)
        assert report.committed
        assert np.array_equal(collect(vm, a2), host)
        # Post-commit the newest retained checkpoint reflects the
        # committed state (no staging arenas).
        newest = store.checkpoints[-1]
        for rank, snap in newest.snapshots.items():
            assert all("mig" not in a.name for a in snap.arenas)


# ---------------------------------------------------------------------------
# Plan-cache keying across membership epochs (satellite)
# ---------------------------------------------------------------------------


class TestPlanCacheEpochs:
    def test_migration_never_hits_stale_p_entry(self):
        n = 60
        host = np.arange(n, dtype=float)
        vm = VirtualMachine(4)
        a = make_1d("A", n, 4, 3)
        distribute(vm, a, host)
        sec = RegularSection(0, n - 1, 1)
        b = make_1d("B", n, 4, 3)
        distribute(vm, b, np.zeros(n))
        execute_copy(vm, b, sec, a, sec)  # warm the p=4 caches
        warm = cache_stats()
        assert warm["comm_schedules"]["entries"] >= 1
        hits_before = {name: s["hits"] for name, s in warm.items()}

        a2, _ = relayout(vm, a, CyclicK(3), new_p=3,
                         policy=ElasticPolicy(retire_on_commit=False))
        # The migration schedule is keyed ((3, 4), ...): it can never be
        # served from (or collide with) a (4, 4) entry.  Committing the
        # migration already invalidated the retired epoch's plans
        # (invalidate_plans_on_commit), so an explicit sweep finds
        # nothing left and no surviving entry is tagged with the old p.
        stats_after = cache_stats()
        assert sum(s["invalidations"] for s in stats_after.values()) >= 1
        assert invalidate_for_p(4) == 0
        from repro.runtime import plancache

        for cache in plancache._CACHES:
            for key in cache._data:
                tags = cache._ps.get(key) or plancache._ps_from_key(key)
                assert 4 not in tags, (cache.name, key)
        # The p=3 copy still works and misses (its plans were fresh).
        vm.retire_to(3)
        c = make_1d("C", n, 3, 3)
        distribute(vm, c, np.zeros(n))
        execute_copy(vm, c, sec, a2, sec)
        assert np.array_equal(collect(vm, c), host)
        del hits_before

    def test_invalidate_for_p_counts(self):
        a4 = make_1d("A", 30, 4, 2)
        a3 = make_1d("A", 30, 3, 2)
        sec = RegularSection(0, 29, 1)
        cached_array_plan(a4, 0, sec, 0)
        cached_array_plan(a3, 0, sec, 0)
        assert invalidate_for_p(4) == 1
        stats = cache_stats()["array_plans"]
        assert stats["entries"] == 1 and stats["invalidations"] == 1
        assert invalidate_for_p(4) == 0


# ---------------------------------------------------------------------------
# Degraded-mode shrink / retention eviction (satellite)
# ---------------------------------------------------------------------------


class HoleStore(CheckpointStore):
    """Simulates the cross-statement retention-eviction scenario: after
    the first (epoch) save, every checkpoint entering the store omits
    ``drop_rank``, and with ``retention=1`` the full epoch checkpoint is
    evicted from the *store* -- though the session still holds it by
    reference, exactly the situation after heavy cross-statement
    checkpoint traffic."""

    def __init__(self, policy, drop_rank):
        super().__init__(policy)
        self.drop_rank = drop_rank
        self._saves = 0

    def save(self, vm, states=None):
        ckpt = super().save(vm, states)
        self._saves += 1
        if self._saves > 1:
            ckpt.snapshots.pop(self.drop_rank, None)
        return ckpt


class TestRetentionEviction:
    N, P = 60, 4
    SEC = RegularSection(0, N - 1, 1)

    def _build(self, p, plan=None):
        vm = VirtualMachine(p, fault_plan=plan)
        a = make_1d("A", self.N, p, 3)
        b = make_1d("B", self.N, p, 5)
        return vm, a, b

    def _oracle(self, p):
        vm, a, b = self._build(p)
        distribute(vm, a, np.zeros(self.N))
        distribute(vm, b, np.arange(self.N, dtype=float))
        execute_copy(vm, a, self.SEC, b, self.SEC)
        return collect(vm, a)

    def test_degraded_shrink_completes_at_p_minus_1(self):
        plan = FaultPlan(forced_crashes=frozenset({(2, 1)}), crash_downtime=1)
        vm, a, b = self._build(self.P, plan)
        store = HoleStore(CheckpointPolicy(every=None, retention=1), drop_rank=1)
        session = ElasticSession(
            vm, checkpoints=store, policy=ElasticPolicy(degraded_shrink=True)
        )
        session.register(a, np.zeros(self.N))
        session.register(b, np.arange(self.N, dtype=float))
        session.copy("A", self.SEC, "B", self.SEC)
        assert session.degraded_shrinks == [(1, self.P, self.P - 1)]
        assert vm.p == self.P - 1
        got = collect(vm, session.arrays["A"])
        assert np.array_equal(got, self._oracle(self.P - 1))
        # B was rebuilt too, bit-identically.
        assert np.array_equal(
            collect(vm, session.arrays["B"]), np.arange(self.N, dtype=float)
        )

    def test_disabled_policy_raises_enriched_failure(self):
        plan = FaultPlan(forced_crashes=frozenset({(2, 1)}), crash_downtime=1)
        vm, a, b = self._build(self.P, plan)
        store = HoleStore(CheckpointPolicy(every=None, retention=1), drop_rank=1)
        session = ElasticSession(vm, checkpoints=store)  # degraded off
        session.register(a, np.zeros(self.N))
        session.register(b, np.arange(self.N, dtype=float))
        with pytest.raises(ExchangeFailure) as info:
            session.copy("A", self.SEC, "B", self.SEC)
        msg = str(info.value)
        # Names the rank, the superstep, and the retention window.
        assert "rank 1" in msg
        assert "superstep" in msg
        assert "retained supersteps" in msg or "no checkpoints retained" in msg
        assert "policy every" in msg
        assert info.value.report.unrecoverable is not None
        rank, step = info.value.report.unrecoverable
        assert rank == 1 and step >= 0

    def test_never_a_silent_wrong_answer(self):
        """Property form: across several victims and crash steps, the
        outcome is either a degraded p-1 run matching the static p-1
        oracle, or an ExchangeFailure -- never a completed copy whose
        values differ from an oracle."""
        rng = np.random.default_rng(3)
        for _ in range(6):
            victim = int(rng.integers(0, self.P))
            crash_step = int(rng.integers(1, 4))
            degraded = bool(rng.integers(0, 2))
            plan = FaultPlan(
                forced_crashes=frozenset({(crash_step, victim)}),
                crash_downtime=1,
            )
            vm, a, b = self._build(self.P, plan)
            store = HoleStore(
                CheckpointPolicy(every=None, retention=1), drop_rank=victim
            )
            session = ElasticSession(
                vm, checkpoints=store,
                policy=ElasticPolicy(degraded_shrink=degraded),
            )
            session.register(a, np.zeros(self.N))
            session.register(b, np.arange(self.N, dtype=float))
            try:
                session.copy("A", self.SEC, "B", self.SEC)
            except ExchangeFailure:
                assert not degraded or vm.p == self.P
                continue
            got = collect(vm, session.arrays["A"])
            oracle = self._oracle(vm.p)
            assert np.array_equal(got, oracle), (
                f"victim={victim} step={crash_step} degraded={degraded}"
            )


# ---------------------------------------------------------------------------
# ElasticSession orchestration
# ---------------------------------------------------------------------------


class TestElasticSession:
    def test_relayout_defers_retire_until_last_array(self):
        n = 40
        vm = VirtualMachine(4)
        session = ElasticSession(vm)
        host_a = np.arange(n, dtype=float)
        host_b = host_a * 2
        session.register(make_1d("A", n, 4, 2), host_a)
        session.register(make_1d("B", n, 4, 3), host_b)
        session.relayout("A", CyclicK(5), new_p=2)
        assert vm.p == 4  # B still lives on ranks 2..3
        session.relayout("B", CyclicK(5), new_p=2)
        assert vm.p == 2  # last array left: membership shrank
        assert np.array_equal(collect(vm, session.arrays["A"]), host_a)
        assert np.array_equal(collect(vm, session.arrays["B"]), host_b)

    def test_image_from_snapshot_matches_collect(self):
        n = 53
        vm = VirtualMachine(3)
        a = make_1d("A", n, 3, 4, a=2, b=1)
        host = np.arange(n, dtype=float)
        distribute(vm, a, host)
        store = CheckpointStore()
        ckpt = store.save(vm)
        assert np.array_equal(image_from_snapshot(ckpt, a), collect(vm, a))

    def test_obs_records_migration_spans(self):
        from repro.obs import Observability

        obs = Observability(enabled=True)
        vm = VirtualMachine(3, obs=obs)
        a = make_1d("A", 30, 3, 2)
        distribute(vm, a, np.arange(30, dtype=float))
        relayout(vm, a, CyclicK(3), new_p=4)
        assert [s.name for s in obs.trace.spans("migration")]
        assert [s.name for s in obs.trace.instants("migration_commit")]
        assert obs.metrics.snapshot()["counters"]["elastic.migrations"] == 1
        assert obs.metrics.snapshot()["counters"]["elastic.commits"] == 1
