"""Tests for the compiled-kernel subsystem (:mod:`repro.runtime.native`).

Three layers:

* differential -- the compiled Figure 8 shapes and pack/unpack kernels
  must be bit-identical to the interpreted Python shapes (the semantics
  of record) over randomized plan sweeps, and the executors must produce
  identical machine states with ``native=True`` and ``native=False``;
* cache -- one compilation ever per descriptor, disk hits after the
  handle cache is dropped, corrupt artifacts rejected and rebuilt;
* degradation -- a missing or broken compiler falls back to NumPy with
  one warning and a counter, never an exception, never wrong results.

Compiler-dependent tests skip when the host has no cc/gcc; the
degradation tests run everywhere (they *hide* the compiler on purpose).
"""

import os
import shutil
import warnings

import numpy as np
import pytest

from repro.distribution import (
    Alignment,
    AxisMap,
    CyclicK,
    DistributedArray,
    ProcessorGrid,
    RegularSection,
)
from repro.machine.vm import VirtualMachine
from repro.obs import Observability, set_ambient
from repro.runtime import (
    clear_plan_caches,
    collect,
    distribute,
    execute_copy,
    execute_fill,
    get_shape,
    make_plan,
)
from repro.runtime.native import (
    get_runtime_kernels,
    kernels_for,
    native_available,
    native_mode,
    reset_native_state,
    set_native_mode,
)
from repro.runtime.native.build import (
    NativeBuildError,
    build_cached,
    clear_handle_cache,
    compiler_id,
    descriptor_hash,
    find_compiler,
    load_library,
)

needs_cc = pytest.mark.skipif(
    shutil.which("cc") is None and shutil.which("gcc") is None,
    reason="no C compiler on host",
)

TINY_C = "long forty_two(void) { return 42; }\n"


@pytest.fixture
def native_env(tmp_path, monkeypatch):
    """Fresh cache dir + fresh in-process native state per test."""
    cache = tmp_path / "native-cache"
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
    monkeypatch.delenv("REPRO_NATIVE_CC", raising=False)
    reset_native_state()
    yield cache
    reset_native_state()


@pytest.fixture
def obs():
    """An enabled Observability installed as ambient for the test."""
    ob = Observability()
    prev = set_ambient(ob)
    yield ob
    set_ambient(prev)


def random_plan(rng):
    p = int(rng.integers(1, 9))
    k = int(rng.integers(1, 17))
    l = int(rng.integers(0, 40))
    s = int(rng.integers(1, 120))
    u = l + int(rng.integers(0, 500))
    m = int(rng.integers(0, p))
    from repro.core.counting import local_allocation_size

    return make_plan(p, k, l, u, s, m), local_allocation_size(p, k, u + 1, m)


def make_1d(name, n, p, k, a=1, b=0):
    return DistributedArray(
        name, (n,), ProcessorGrid("G", (p,)),
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),),
    )


# ---------------------------------------------------------------------------
# Differential: compiled kernels vs the interpreted semantics of record
# ---------------------------------------------------------------------------

@needs_cc
class TestDifferential:
    def test_fill_shapes_bit_identical(self, native_env):
        kernels = get_runtime_kernels()
        assert kernels is not None
        rng = np.random.default_rng(42)
        for _ in range(30):
            plan, size = random_plan(rng)
            value = float(rng.standard_normal())
            for shape in "abcdv":
                ref = np.zeros(size)
                want = get_shape(shape, native=False)(ref, plan, value)
                got_mem = np.zeros(size)
                got = kernels.fill(got_mem, plan, value, shape)
                assert got == want, (plan, shape)
                assert np.array_equal(got_mem, ref), (plan, shape)

    def test_paper_worked_example(self, native_env):
        kernels = get_runtime_kernels()
        plan = make_plan(4, 8, 4, 319, 9, 1)
        for shape in "abcd":
            mem = np.zeros(80)
            assert kernels.fill(mem, plan, 100.0, shape) == 9
            assert np.flatnonzero(mem).tolist() == [
                5, 8, 20, 35, 47, 50, 62, 65, 77
            ]

    def test_gather_scatter_match_fancy_indexing(self, native_env):
        kernels = get_runtime_kernels()
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(1, 300))
            src = rng.standard_normal(n)
            idx = rng.integers(0, n, size=int(rng.integers(0, 80)))
            assert np.array_equal(kernels.gather(src, idx), src[idx])
            vals = rng.standard_normal(len(idx))
            dst_native, dst_numpy = np.zeros(n), np.zeros(n)
            assert kernels.scatter(dst_native, idx, vals)
            dst_numpy[idx] = vals  # duplicate slots: last write wins, both paths
            assert np.array_equal(dst_native, dst_numpy)

    def test_non_contiguous_memory_declined(self, native_env):
        kernels = get_runtime_kernels()
        plan = make_plan(4, 8, 4, 319, 9, 1)
        strided = np.zeros(160)[::2]
        assert kernels.fill(strided, plan, 1.0, "b") is None
        assert kernels.gather(strided, np.array([0, 1])) is None
        assert not kernels.scatter(strided, np.array([0]), np.array([1.0]))

    def test_executors_bit_identical(self, native_env):
        rng = np.random.default_rng(11)
        for n, p, k in [(257, 4, 5), (64, 3, 1), (100, 5, 8)]:
            host = rng.standard_normal(n)
            arr_n, arr_i = make_1d("X", n, p, k), make_1d("X", n, p, k)
            vm_n, vm_i = VirtualMachine(p), VirtualMachine(p)
            distribute(vm_n, arr_n, host, native=True)
            distribute(vm_i, arr_i, host, native=False)
            for m in range(p):
                assert np.array_equal(
                    vm_n.processors[m].memory("X"),
                    vm_i.processors[m].memory("X"),
                )
            sec = RegularSection(1, n - 2, 3)
            for shape in "abcd":
                assert execute_fill(
                    vm_n, arr_n, (sec,), 5.0, shape=shape, native=True
                ) == execute_fill(
                    vm_i, arr_i, (sec,), 5.0, shape=shape, native=False
                )
            assert np.array_equal(
                collect(vm_n, arr_n, native=True),
                collect(vm_i, arr_i, native=False),
            )

    def test_execute_copy_bit_identical(self, native_env):
        clear_plan_caches()
        n, p = 200, 4
        host = np.arange(n, dtype=float)
        a_n, b_n = make_1d("A", n, p, 7), make_1d("B", n, p, 3)
        a_i, b_i = make_1d("A", n, p, 7), make_1d("B", n, p, 3)
        vm_n, vm_i = VirtualMachine(p), VirtualMachine(p)
        for vm, a, b, native in ((vm_n, a_n, b_n, True), (vm_i, a_i, b_i, False)):
            distribute(vm, a, np.zeros(n), native=native)
            distribute(vm, b, host, native=native)
            execute_copy(vm, a, RegularSection(0, n - 2, 1),
                         b, RegularSection(1, n - 1, 1), native=native)
        assert np.array_equal(collect(vm_n, a_n), collect(vm_i, a_i))


# ---------------------------------------------------------------------------
# Cache behavior
# ---------------------------------------------------------------------------

@needs_cc
class TestCache:
    def test_compile_once_then_disk_hits(self, native_env, obs):
        build_cached(TINY_C, {"unit": "t1"})
        assert obs.metrics.value("native.compile") == 1
        build_cached(TINY_C, {"unit": "t1"})
        build_cached(TINY_C, {"unit": "t1"})
        assert obs.metrics.value("native.compile") == 1
        assert obs.metrics.value("native.disk_hit") == 2

    def test_descriptor_and_source_key_the_artifact(self, native_env):
        a = build_cached(TINY_C, {"unit": "t1"})
        b = build_cached(TINY_C, {"unit": "t2"})
        c = build_cached(TINY_C.replace("42", "43"), {"unit": "t1"})
        assert len({a, b, c}) == 3
        for artifact in (a, b, c):
            assert artifact.exists()
            assert artifact.with_suffix(".c").exists()  # source kept alongside

    def test_handle_cache_and_disk_reload(self, native_env, obs):
        lib = load_library(TINY_C, {"unit": "h"}, required_symbols=("forty_two",))
        assert lib.forty_two() == 42
        load_library(TINY_C, {"unit": "h"})
        assert obs.metrics.value("native.handle_hit") == 1
        clear_handle_cache()
        load_library(TINY_C, {"unit": "h"})
        assert obs.metrics.value("native.compile") == 1  # never recompiled
        assert obs.metrics.value("native.disk_hit") >= 2

    def test_corrupt_artifact_rejected_and_rebuilt(self, native_env, obs):
        artifact = build_cached(TINY_C, {"unit": "c"})
        artifact.write_bytes(b"\x7fELF truncated garbage")
        clear_handle_cache()
        lib = load_library(TINY_C, {"unit": "c"}, required_symbols=("forty_two",))
        assert lib.forty_two() == 42
        assert obs.metrics.value("native.rebuild_corrupt") == 1
        assert obs.metrics.value("native.compile") == 2

    def test_missing_symbol_rebuilds_once_then_raises(self, native_env, obs):
        # A library that genuinely lacks the symbol is indistinguishable
        # from corruption: rejected, rebuilt once, and -- still lacking
        # it -- surfaced as a hard build error rather than a loop.
        with pytest.raises(NativeBuildError, match="still unloadable"):
            load_library(
                TINY_C, {"unit": "s"}, required_symbols=("no_such_symbol",)
            )
        assert obs.metrics.value("native.rebuild_corrupt") == 1
        assert obs.metrics.value("native.compile") == 2

    def test_warm_runtime_kernels_zero_compiles(self, native_env, obs):
        assert native_available()
        first = obs.metrics.value("native.compile")
        assert first == 1
        reset_native_state()  # drop handles; the .so stays on disk
        assert native_available()
        assert obs.metrics.value("native.compile") == first
        assert obs.metrics.value("native.disk_hit") >= 1

    def test_compiler_id_in_key(self, native_env):
        h1 = descriptor_hash({"unit": "x", "compiler": compiler_id()})
        h2 = descriptor_hash({"unit": "x", "compiler": "other cc 1.0"})
        assert h1 != h2


# ---------------------------------------------------------------------------
# Degradation: no compiler, broken compiler, kill switch
# ---------------------------------------------------------------------------

class TestDegradation:
    def test_missing_cc_falls_back_with_one_warning(
        self, native_env, obs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_CC", "/nonexistent/cc")
        reset_native_state()
        assert find_compiler() is None
        assert compiler_id() == "none"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert kernels_for(True) is None
            assert kernels_for(True) is None  # second call: no second warning
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1
        assert "falling back" in str(runtime_warnings[0].message)
        assert obs.metrics.value("native.fallback") == 2

    def test_missing_cc_results_still_correct(self, native_env, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CC", "/nonexistent/cc")
        reset_native_state()
        n, p = 100, 4
        host = np.arange(n, dtype=float)
        arr = make_1d("X", n, p, 5)
        vm = VirtualMachine(p)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            distribute(vm, arr, host, native=True)  # silently NumPy
            assert np.array_equal(collect(vm, arr, native=True), host)

    def test_broken_cc_falls_back(self, native_env, obs, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CC", "/bin/false")
        reset_native_state()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert kernels_for(True) is None
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        plan = make_plan(4, 8, 4, 319, 9, 1)
        mem = np.zeros(80)
        assert get_shape("b", native=True)(mem, plan, 100.0) == 9

    def test_broken_cc_build_error_message(self, native_env, monkeypatch):
        if not os.path.exists("/bin/false"):
            pytest.skip("no /bin/false on host")
        monkeypatch.setenv("REPRO_NATIVE_CC", "/bin/false")
        reset_native_state()
        with pytest.raises(NativeBuildError):
            build_cached(TINY_C, {"unit": "broken"})

    def test_mode_off_is_kill_switch(self, native_env):
        previous = set_native_mode("off")
        try:
            assert kernels_for(True) is None
            assert kernels_for(None) is None
        finally:
            set_native_mode(previous)

    @needs_cc
    def test_mode_on_serves_default_calls(self, native_env):
        previous = set_native_mode("on")
        try:
            assert kernels_for(None) is not None
            assert kernels_for(False) is None  # explicit False still wins
        finally:
            set_native_mode(previous)

    def test_mode_roundtrip_and_validation(self):
        assert native_mode() in ("auto", "on", "off")
        with pytest.raises(ValueError, match="unknown native mode"):
            set_native_mode("sometimes")
