"""Concurrency, TTL, and long-running hygiene for the sharded cache.

These tests hammer :class:`repro.runtime.plancache.ShardedPlanCache`
from many threads: coalescing must make concurrent identical misses
compute exactly once, invalidation must leave no stale entry behind,
and a week of uptime (simulated with a fake clock) must not leak
entries or overflow counters.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime.plancache import INT64_MAX, ShardedPlanCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        with self._lock:
            self.now += dt


def hammer(n_threads: int, work) -> list:
    """Run ``work(i)`` on n threads simultaneously; re-raise any error."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def runner(i: int) -> None:
        try:
            barrier.wait()
            results[i] = work(i)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestCoalescing:
    def test_concurrent_identical_misses_compute_once(self):
        cache = ShardedPlanCache("t", maxsize=64, shards=4)
        calls = []

        def compute():
            calls.append(1)
            time.sleep(0.05)  # hold the flight open so everyone piles on
            return "value"

        results = hammer(16, lambda i: cache.get_or_compute("k", compute))
        assert results == ["value"] * 16
        assert len(calls) == 1
        assert cache.coalesced == 15
        assert cache.misses == 1 and cache.hits == 0

    def test_failed_compute_propagates_to_all_waiters_then_retries_clean(self):
        cache = ShardedPlanCache("t", maxsize=64)
        boom = RuntimeError("compute exploded")

        def failing():
            time.sleep(0.05)
            raise boom

        outcomes = []

        def work(i):
            try:
                cache.get_or_compute("k", failing)
            except RuntimeError as exc:
                outcomes.append(exc)

        hammer(8, work)
        assert len(outcomes) == 8 and all(o is boom for o in outcomes)
        assert len(cache) == 0  # no residue
        # The next caller retries cleanly and succeeds.
        assert cache.get_or_compute("k", lambda: 42) == 42

    def test_distinct_keys_do_not_coalesce(self):
        cache = ShardedPlanCache("t", maxsize=64, shards=4)
        results = hammer(8, lambda i: cache.get_or_compute(("k", i), lambda: i))
        assert results == list(range(8))
        assert cache.coalesced == 0 and cache.misses == 8


class TestInvalidation:
    def test_no_stale_entry_after_invalidation(self):
        cache = ShardedPlanCache("t", maxsize=256, shards=4)
        generation = [0]

        def work(i):
            for _ in range(50):
                key = (4, i % 8)
                cache.get_or_compute(key, lambda: generation[0], ps=(4,))
        hammer(8, work)
        generation[0] = 1
        assert cache.invalidate_for(4) > 0
        # Every subsequent read recomputes at the new generation: the old
        # values are unreachable.
        for i in range(8):
            assert cache.get_or_compute((4, i), lambda: generation[0], ps=(4,)) == 1

    def test_concurrent_get_and_invalidate_stress(self):
        cache = ShardedPlanCache("t", maxsize=128, shards=8)

        def reader(i):
            for n in range(1000):
                cache.get_or_compute((i % 4, n % 32), lambda: n, ps=(i % 4,))
                cache.peek((i % 4, n % 32))

        def invalidator(i):
            for n in range(200):
                cache.invalidate_for(n % 4)
                cache.stats()

        hammer(6, lambda i: invalidator(i) if i == 5 else reader(i))
        stats = cache.stats()
        assert stats["entries"] <= 128
        assert stats["hits"] + stats["misses"] + stats["coalesced"] > 0


class TestTTL:
    def test_expired_entries_recompute_and_count(self):
        clock = FakeClock()
        cache = ShardedPlanCache("t", maxsize=16, ttl_s=10.0, clock=clock)
        assert cache.get_or_compute("k", lambda: "old") == "old"
        clock.advance(11.0)
        assert cache.get_or_compute("k", lambda: "new") == "new"
        assert cache.expirations == 1 and cache.misses == 2

    def test_peek_stale_vs_fresh(self):
        clock = FakeClock()
        cache = ShardedPlanCache("t", maxsize=16, ttl_s=10.0, clock=clock)
        cache.get_or_compute("k", lambda: "v")
        clock.advance(11.0)
        assert cache.peek("k", allow_stale=False) == (False, None)
        assert cache.peek("k", allow_stale=True) == (True, "v")

    def test_peek_touch_counts_hit_and_protects_from_eviction(self):
        cache = ShardedPlanCache("t", maxsize=2)
        cache.put("hot", 1)
        cache.put("cold", 2)
        for _ in range(5):
            assert cache.peek("hot", touch=True) == (True, 1)
        assert cache.hits == 5
        cache.put("newcomer", 3)  # evicts the low-freq entry, not "hot"
        assert cache.peek("hot") == (True, 1)
        assert cache.peek("cold") == (False, None)

    def test_evict_expired_returns_memory(self):
        clock = FakeClock()
        cache = ShardedPlanCache("t", maxsize=64, shards=4, ttl_s=5.0, clock=clock)
        for i in range(20):
            cache.get_or_compute(("k", i), lambda: i)
        clock.advance(6.0)
        for i in range(20, 24):  # fresh entries that must survive
            cache.get_or_compute(("k", i), lambda: i)
        assert cache.evict_expired() == 20
        assert len(cache) == 4
        assert cache.evict_expired() == 0  # idempotent

    def test_ttl_none_never_expires(self):
        clock = FakeClock()
        cache = ShardedPlanCache("t", maxsize=16, clock=clock)
        cache.get_or_compute("k", lambda: "v")
        clock.advance(1e9)
        assert cache.peek("k", allow_stale=False) == (True, "v")
        assert cache.evict_expired() == 0


class TestLongRunningStats:
    def test_reset_stats_keeps_every_entry(self):
        cache = ShardedPlanCache("t", maxsize=64, shards=4)
        for i in range(10):
            cache.get_or_compute(("k", i), lambda: i)
        cache.get_or_compute(("k", 0), lambda: 0)
        assert cache.hits == 1 and cache.misses == 10
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert len(cache) == 10
        # Entries survived: this is a hit, not a recompute.
        cache.get_or_compute(("k", 3), lambda: "WRONG")
        assert cache.hits == 1 and cache.peek(("k", 3)) == (True, 3)

    def test_stats_export_clamped_to_int64(self):
        cache = ShardedPlanCache("t", maxsize=4)
        cache._stats.hits = INT64_MAX + 12345
        assert cache.stats()["hits"] == INT64_MAX
        assert cache.hits == INT64_MAX + 12345  # the raw counter is not lost

    def test_hot_entries_orders_by_frequency(self):
        cache = ShardedPlanCache("t", maxsize=16, shards=2)
        cache.put("a", 1, freq=3)
        cache.put("b", 2, freq=9)
        cache.put("c", 3, freq=1)
        assert [k for k, _, _ in cache.hot_entries()] == ["b", "a", "c"]
        assert [k for k, _, _ in cache.hot_entries(limit=1)] == ["b"]

    def test_put_freq_seeds_lfu_standing(self):
        cache = ShardedPlanCache("t", maxsize=2)
        cache.put("restored-hot", 1, freq=50)
        cache.put("x", 2)
        cache.put("y", 3)  # overflow: the freq=1 entry loses, not the hot one
        assert cache.peek("restored-hot") == (True, 1)
