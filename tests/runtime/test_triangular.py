"""Tests for trapezoidal iteration spaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Collapsed, CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.runtime.triangular import (
    Trapezoid,
    trapezoid_local_counts,
    trapezoid_local_elements,
)


def make_2d(nrows, ncols, pr, pc, kr, kc):
    grid = ProcessorGrid("P", (pr, pc))
    return DistributedArray(
        "M", (nrows, ncols), grid,
        (AxisMap(CyclicK(kr), grid_axis=0), AxisMap(CyclicK(kc), grid_axis=1)),
    )


def brute(array, trap, rank):
    nrows, ncols = array.shape
    out = []
    for i in trap.rows.normalized():
        cols = trap.col_section(i, ncols)
        for j in cols:
            if array.is_local((i, j), rank):
                out.append(((i, j), array.local_address((i, j), rank)))
    return out


UPPER = Trapezoid(RegularSection(0, 15, 1), 1, 0, 0, 15)  # A(i, i:)
LOWER = Trapezoid(RegularSection(0, 15, 1), 0, 0, 1, 0)   # A(i, :i+1)


class TestValidation:
    def test_stride(self):
        with pytest.raises(ValueError, match="positive"):
            Trapezoid(RegularSection(0, 3, 1), 0, 0, 0, 3, col_stride=0)

    def test_rank2_required(self):
        grid = ProcessorGrid("P", (2,))
        v = DistributedArray("V", (8,), grid, (AxisMap(CyclicK(2), grid_axis=0),))
        with pytest.raises(ValueError, match="rank-2"):
            trapezoid_local_elements(v, UPPER, 0)

    def test_distributed_dims_required(self):
        grid = ProcessorGrid("P", (2,))
        m = DistributedArray(
            "M", (8, 8), grid,
            (AxisMap(CyclicK(2), grid_axis=0), AxisMap(Collapsed())),
        )
        with pytest.raises(ValueError, match="not distributed"):
            trapezoid_local_elements(m, UPPER, 0)

    def test_rows_out_of_bounds(self):
        arr = make_2d(8, 8, 2, 2, 2, 2)
        trap = Trapezoid(RegularSection(0, 8, 1), 1, 0, 0, 7)
        with pytest.raises(IndexError, match="outside"):
            trapezoid_local_elements(arr, trap, 0)
        with pytest.raises(IndexError, match="outside"):
            trapezoid_local_counts(arr, trap)


class TestTriangles:
    @pytest.mark.parametrize("trap", [UPPER, LOWER], ids=["upper", "lower"])
    def test_matches_brute_force(self, trap):
        arr = make_2d(16, 16, 2, 2, 3, 2)
        total = 0
        for rank in range(4):
            got = trapezoid_local_elements(arr, trap, rank)
            assert got == brute(arr, trap, rank)
            total += len(got)
        assert total == 16 * 17 // 2  # triangle size

    def test_counts_match_elements(self):
        arr = make_2d(16, 16, 2, 2, 3, 2)
        counts = trapezoid_local_counts(arr, UPPER)
        for rank in range(4):
            assert counts[rank] == len(trapezoid_local_elements(arr, UPPER, rank))

    def test_block_cyclic_balances_triangle(self):
        """The motivating property: cyclic(k) balances triangular work
        far better than block."""
        n = 64
        cyclic = make_2d(n, n, 2, 2, 2, 2)
        blocky = make_2d(n, n, 2, 2, n // 2, n // 2)
        trap = Trapezoid(RegularSection(0, n - 1, 1), 1, 0, 0, n - 1)
        c_counts = trapezoid_local_counts(cyclic, trap)
        b_counts = trapezoid_local_counts(blocky, trap)
        assert sum(c_counts) == sum(b_counts) == n * (n + 1) // 2
        c_imbalance = max(c_counts) / min(c_counts)
        # Block: one rank owns the empty corner -> min is tiny.
        b_imbalance = max(b_counts) / max(min(b_counts), 1)
        assert c_imbalance < 1.3 < b_imbalance


class TestProperty:
    @given(
        st.integers(min_value=1, max_value=3),  # pr
        st.integers(min_value=1, max_value=3),  # pc
        st.integers(min_value=1, max_value=4),  # kr
        st.integers(min_value=1, max_value=4),  # kc
        st.integers(min_value=1, max_value=20),  # nrows
        st.integers(min_value=1, max_value=20),  # ncols
        st.integers(min_value=1, max_value=3),  # col stride
        st.integers(min_value=-2, max_value=2),  # a_lo
        st.integers(min_value=-2, max_value=2),  # a_hi
        st.integers(min_value=0, max_value=10),  # b_hi
    )
    @settings(max_examples=60, deadline=None)
    def test_random_trapezoids(self, pr, pc, kr, kc, nrows, ncols, cs, a_lo, a_hi, b_hi):
        arr = make_2d(nrows, ncols, pr, pc, kr, kc)
        trap = Trapezoid(
            RegularSection(0, nrows - 1, 1), a_lo, 0, a_hi, b_hi, col_stride=cs
        )
        counts = trapezoid_local_counts(arr, trap)
        for rank in range(pr * pc):
            got = trapezoid_local_elements(arr, trap, rank)
            assert got == brute(arr, trap, rank)
            assert counts[rank] == len(got)
