"""End-to-end integration tests: statements on the virtual machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Block, Cyclic, CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.commsets import compute_comm_schedule
from repro.runtime.exec import collect, distribute, execute_copy, execute_fill


def make_1d(name, n, p, k, a=1, b=0, textent=None):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0, template_extent=textent),),
    )


class TestDistributeCollect:
    def test_roundtrip_1d(self):
        arr = make_1d("A", 100, 4, 8)
        vm = VirtualMachine(4)
        host = np.arange(100, dtype=float)
        distribute(vm, arr, host)
        assert np.array_equal(collect(vm, arr), host)

    def test_roundtrip_2d(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "M", (10, 12), grid,
            (AxisMap(CyclicK(3), grid_axis=0), AxisMap(Block(), grid_axis=1)),
        )
        vm = VirtualMachine(4)
        host = np.arange(120, dtype=float).reshape(10, 12)
        distribute(vm, arr, host)
        assert np.array_equal(collect(vm, arr), host)

    def test_shape_mismatch(self):
        arr = make_1d("A", 100, 4, 8)
        vm = VirtualMachine(4)
        with pytest.raises(ValueError, match="host image shape"):
            distribute(vm, arr, np.zeros(99))

    def test_shape_mismatch_2d(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "M", (10, 12), grid,
            (AxisMap(CyclicK(3), grid_axis=0), AxisMap(Block(), grid_axis=1)),
        )
        vm = VirtualMachine(4)
        # Transposed image: same element count, wrong shape -- must not
        # be accepted by a ravel-happy implementation.
        with pytest.raises(ValueError, match=r"host image shape \(12, 10\)"):
            distribute(vm, arr, np.zeros((12, 10)))
        # Rank mismatch.
        with pytest.raises(ValueError, match="host image shape"):
            distribute(vm, arr, np.zeros(120))

    def test_vm_size_mismatch(self):
        arr = make_1d("A", 100, 4, 8)
        vm = VirtualMachine(3)
        with pytest.raises(ValueError, match="ranks"):
            distribute(vm, arr, np.zeros(100))


class TestFill:
    @pytest.mark.parametrize("shape", ["a", "b", "c", "d", "v"])
    def test_fill_matches_numpy(self, shape):
        arr = make_1d("A", 320, 4, 8)
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(320))
        n = execute_fill(vm, arr, (RegularSection(4, 319, 9),), 100.0, shape=shape)
        ref = np.zeros(320)
        ref[4:320:9] = 100.0
        assert np.array_equal(collect(vm, arr), ref)
        assert n == len(range(4, 320, 9))

    def test_fill_negative_stride(self):
        arr = make_1d("A", 100, 4, 8)
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(100))
        execute_fill(vm, arr, (RegularSection(90, 10, -5),), 1.0, shape="b")
        ref = np.zeros(100)
        ref[10:91:5] = 1.0
        assert np.array_equal(collect(vm, arr), ref)

    def test_fill_aligned_rejects_shape_d(self):
        arr = make_1d("A", 100, 4, 8, a=2, b=1, textent=256)
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(100))
        with pytest.raises(ValueError, match="identity alignment"):
            execute_fill(vm, arr, (RegularSection(0, 99, 3),), 1.0, shape="d")
        execute_fill(vm, arr, (RegularSection(0, 99, 3),), 1.0, shape="b")
        ref = np.zeros(100)
        ref[0:100:3] = 1.0
        assert np.array_equal(collect(vm, arr), ref)

    def test_fill_2d(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "M", (8, 9), grid,
            (AxisMap(CyclicK(2), grid_axis=0), AxisMap(Cyclic(), grid_axis=1)),
        )
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros((8, 9)))
        n = execute_fill(
            vm, arr, (RegularSection(1, 7, 2), RegularSection(0, 8, 3)), 5.0
        )
        ref = np.zeros((8, 9))
        ref[1:8:2, 0:9:3] = 5.0
        assert np.array_equal(collect(vm, arr), ref)
        assert n == 4 * 3

    def test_section_count_mismatch(self):
        arr = make_1d("A", 100, 4, 8)
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(100))
        with pytest.raises(ValueError, match="sections"):
            execute_fill(vm, arr, (), 1.0)


class TestCopy:
    def test_different_block_sizes(self):
        a = make_1d("A", 200, 4, 8)
        b = make_1d("B", 200, 4, 5)
        vm = VirtualMachine(4)
        host_b = np.arange(200, dtype=float)
        distribute(vm, a, np.zeros(200))
        distribute(vm, b, host_b)
        sched = execute_copy(
            vm, a, RegularSection(0, 198, 2), b, RegularSection(1, 199, 2)
        )
        ref = np.zeros(200)
        ref[0:199:2] = host_b[1:200:2]
        assert np.array_equal(collect(vm, a), ref)
        assert sched.total_elements == 100

    def test_precomputed_schedule_reuse(self):
        a = make_1d("A", 64, 2, 4)
        b = make_1d("B", 64, 2, 8)
        sec_a = RegularSection(0, 62, 2)
        sec_b = RegularSection(1, 63, 2)
        sched = compute_comm_schedule(a, sec_a, b, sec_b)
        for trial in range(2):
            vm = VirtualMachine(2)
            host_b = np.random.default_rng(trial).random(64)
            distribute(vm, a, np.zeros(64))
            distribute(vm, b, host_b)
            got_sched = execute_copy(vm, a, sec_a, b, sec_b, schedule=sched)
            assert got_sched is sched
            ref = np.zeros(64)
            ref[0:63:2] = host_b[1:64:2]
            assert np.array_equal(collect(vm, a), ref)

    def test_aligned_copy(self):
        a = make_1d("A", 60, 3, 4, a=2, b=1, textent=128)
        b = make_1d("B", 60, 3, 4, a=1, b=0, textent=128)
        vm = VirtualMachine(3)
        host_b = np.arange(60, dtype=float) * 2
        distribute(vm, a, np.zeros(60))
        distribute(vm, b, host_b)
        execute_copy(vm, a, RegularSection(0, 59, 3), b, RegularSection(0, 59, 3))
        ref = np.zeros(60)
        ref[0:60:3] = host_b[0:60:3]
        assert np.array_equal(collect(vm, a), ref)

    def test_self_copy_shift_is_read_before_write(self):
        """Regression (found by differential testing): Fortran semantics
        require the RHS read in full before any store.  A rank with both
        a local copy and a remote send must pack the send AND stage the
        local reads before writing, or A(0:n-2) = A(1:n-1) corrupts."""
        a = make_1d("A", 12, 2, 2)
        vm = VirtualMachine(2)
        host = np.arange(12, dtype=float) * 3 + 1
        distribute(vm, a, host)
        execute_copy(vm, a, RegularSection(0, 10, 1), a, RegularSection(1, 11, 1))
        ref = host.copy()
        ref[0:11] = host[1:12]
        assert np.array_equal(collect(vm, a), ref)

    def test_self_copy_overlapping_strides(self):
        a = make_1d("A", 12, 1, 1)
        vm = VirtualMachine(1)
        host = np.arange(12, dtype=float)
        distribute(vm, a, host)
        execute_copy(vm, a, RegularSection(0, 4, 2), a, RegularSection(0, 2, 1))
        ref = host.copy()
        ref[[0, 2, 4]] = host[[0, 1, 2]]
        assert np.array_equal(collect(vm, a), ref)

    def test_self_transpose_2d(self):
        """In-place distributed transpose of a square array."""
        from repro.runtime.exec import execute_transpose

        grid = ProcessorGrid("G", (2, 2))
        m = DistributedArray(
            "M", (8, 8), grid,
            (AxisMap(CyclicK(2), grid_axis=0), AxisMap(CyclicK(2), grid_axis=1)),
        )
        vm = VirtualMachine(4)
        host = np.arange(64, dtype=float).reshape(8, 8)
        distribute(vm, m, host)
        execute_transpose(vm, m, m)
        assert np.array_equal(collect(vm, m), host.T)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_copies_match_numpy(self, p, ka, kb, sa, sb, la, lb, count):
        n = max(la + (count - 1) * sa, lb + (count - 1) * sb) + 1
        a = make_1d("A", n, p, ka)
        b = make_1d("B", n, p, kb)
        sec_a = RegularSection(la, la + (count - 1) * sa, sa)
        sec_b = RegularSection(lb, lb + (count - 1) * sb, sb)
        vm = VirtualMachine(p)
        host_b = np.arange(n, dtype=float) + 1
        distribute(vm, a, np.zeros(n))
        distribute(vm, b, host_b)
        execute_copy(vm, a, sec_a, b, sec_b)
        ref = np.zeros(n)
        ref[la : la + count * sa : sa] = host_b[lb : lb + count * sb : sb]
        assert np.array_equal(collect(vm, a), ref)
