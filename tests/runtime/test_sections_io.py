"""Tests for section gather/scatter/reduce."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import collect, distribute
from repro.runtime.sections_io import gather_section, reduce_section, scatter_section


def make_1d(name="A", n=64, p=4, k=4, a=1, b=0, textent=None):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid,
        (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0, template_extent=textent),),
    )


def make_2d(name="M", shape=(12, 10), grid_shape=(2, 2), k0=2, k1=3):
    grid = ProcessorGrid("G", grid_shape)
    return DistributedArray(
        name, shape, grid,
        (AxisMap(CyclicK(k0), grid_axis=0), AxisMap(CyclicK(k1), grid_axis=1)),
    )


class TestGather:
    def test_1d(self):
        arr = make_1d()
        vm = VirtualMachine(4)
        host = np.arange(64, dtype=float)
        distribute(vm, arr, host)
        got = gather_section(vm, arr, (RegularSection(3, 60, 7),), root=2)
        assert np.array_equal(got, host[3:61:7])

    def test_2d(self):
        arr = make_2d()
        vm = VirtualMachine(4)
        host = np.arange(120, dtype=float).reshape(12, 10)
        distribute(vm, arr, host)
        secs = (RegularSection(1, 11, 2), RegularSection(0, 9, 3))
        got = gather_section(vm, arr, secs)
        assert np.array_equal(got, host[1:12:2, 0:10:3])

    def test_aligned(self):
        arr = make_1d(a=2, b=1, n=40, textent=128)
        vm = VirtualMachine(4)
        host = np.arange(40, dtype=float) * 2
        distribute(vm, arr, host)
        got = gather_section(vm, arr, (RegularSection(0, 39, 3),))
        assert np.array_equal(got, host[0:40:3])

    def test_validation(self):
        arr = make_1d()
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(64))
        with pytest.raises(ValueError, match="root"):
            gather_section(vm, arr, (RegularSection(0, 9, 1),), root=4)
        with pytest.raises(ValueError, match="sections"):
            gather_section(vm, arr, ())


class TestScatter:
    def test_roundtrip(self):
        arr = make_1d()
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(64))
        sec = (RegularSection(2, 58, 4),)
        payload = np.arange(len(sec[0]), dtype=float) + 100
        scatter_section(vm, arr, sec, payload)
        assert np.array_equal(gather_section(vm, arr, sec), payload)
        ref = np.zeros(64)
        ref[2:59:4] = payload
        assert np.array_equal(collect(vm, arr), ref)

    def test_2d_roundtrip(self):
        arr = make_2d()
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros((12, 10)))
        secs = (RegularSection(0, 11, 3), RegularSection(1, 9, 2))
        payload = np.random.default_rng(0).random((4, 5))
        scatter_section(vm, arr, secs, payload)
        assert np.allclose(gather_section(vm, arr, secs), payload)

    def test_shape_validation(self):
        arr = make_1d()
        vm = VirtualMachine(4)
        distribute(vm, arr, np.zeros(64))
        with pytest.raises(ValueError, match="values shape"):
            scatter_section(vm, arr, (RegularSection(0, 9, 1),), np.zeros(5))


class TestReduce:
    def test_sum(self):
        arr = make_1d()
        vm = VirtualMachine(4)
        host = np.arange(64, dtype=float)
        distribute(vm, arr, host)
        got = reduce_section(vm, arr, (RegularSection(0, 63, 5),))
        assert got == host[0:64:5].sum()

    def test_max(self):
        arr = make_2d()
        vm = VirtualMachine(4)
        host = np.random.default_rng(3).random((12, 10))
        distribute(vm, arr, host)
        secs = (RegularSection(0, 11, 1), RegularSection(0, 9, 1))
        got = reduce_section(vm, arr, secs, op=np.max, combine=max)
        assert got == host.max()

    def test_empty_section(self):
        arr = make_1d()
        vm = VirtualMachine(4)
        distribute(vm, arr, np.ones(64))
        got = reduce_section(vm, arr, (RegularSection(5, 4, 1),))
        assert got is None


class TestRandomized:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_gather_matches_host_slice(self, p, k, s, count, seed):
        n = (count - 1) * s + 5
        arr = make_1d(n=n, p=p, k=k)
        vm = VirtualMachine(p)
        host = np.random.default_rng(seed).random(n)
        distribute(vm, arr, host)
        sec = RegularSection(0, (count - 1) * s, s)
        got = gather_section(vm, arr, (sec,), root=p - 1)
        assert np.allclose(got, host[0 : (count - 1) * s + 1 : s])
