"""Differential acceptance: the in-process oracle vs the real-process
backend.

The property (ISSUE 6, docs/BACKENDS.md): the same program under the
same fault seed produces **bit-identical** results on the in-process
:class:`VirtualMachine` and the multiprocess :class:`MpMachine` --
including runs whose fault plans drop, duplicate, corrupt, reorder and
stall wire traffic, and runs where a rank dies mid-exchange (a
simulated crash flag on the oracle, a real ``SIGKILL`` on the backend)
and is restored from checkpoints.  Both backends consume the same
:func:`repro.machine.faults.plan_channel_delivery` schedule, which is
what makes the comparison exact rather than statistical.
"""

import os

import numpy as np
import pytest

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.mp import MpConfig, MpMachine
from repro.machine.vm import VirtualMachine
from repro.runtime.exec import collect, distribute
from repro.runtime.redistribute import redistribute
from repro.runtime.resilient import redistribute_resilient

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "0,1").split(",")][:4]

WIRE_FAULTS = [
    pytest.param(dict(drop=0.2), id="drop"),
    pytest.param(dict(reorder=0.8, duplicate=0.2), id="reorder-dup"),
    pytest.param(
        dict(drop=0.25, duplicate=0.2, corrupt=0.2, reorder=0.5, stall=0.2),
        id="everything",
    ),
]

CFG = MpConfig(mark_timeout=1.5, barrier_grace=1.5, suspect_after=1.0)


def make_1d(name, n, p, k, a=1, b=0):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        name, (n,), grid, (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),)
    )


def run_on(vm, n, p, host, plan=None, checkpoints=None):
    """One resilient redistribution on ``vm``; returns the collected
    bytes plus the crash log (the observable record both backends must
    agree on)."""
    src, dst = make_1d("S", n, p, 3), make_1d("D", n, p, 5)
    distribute(vm, src, host)
    distribute(vm, dst, np.zeros(n))
    stats, report = redistribute_resilient(vm, dst, src, checkpoints=checkpoints)
    assert report.converged and report.verified
    return collect(vm, dst).tobytes(), list(vm.crash_log)


class TestFaultFree:
    def test_plain_redistribute_matches_across_backends(self):
        n, p = 96, 4
        host = np.arange(n, dtype=float) * 1.5
        src, dst = make_1d("S", n, p, 2), make_1d("D", n, p, 7)
        oracle = VirtualMachine(p)
        distribute(oracle, src, host)
        distribute(oracle, dst, np.zeros(n))
        redistribute(oracle, dst, src)
        expected = collect(oracle, dst)
        with MpMachine(p, config=CFG) as vm:
            distribute(vm, src, host)
            distribute(vm, dst, np.zeros(n))
            redistribute(vm, dst, src)
            got = collect(vm, dst)
        assert got.tobytes() == expected.tobytes()


class TestWireFaults:
    @pytest.mark.parametrize("config", WIRE_FAULTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_resilient_exchange_is_bit_identical(self, seed, config):
        n, p = 60, 3
        host = np.arange(n, dtype=float) + 0.5
        plan = FaultPlan.from_rates(seed=seed, **config)
        oracle_bytes, oracle_crashes = run_on(
            VirtualMachine(p, fault_plan=plan), n, p, host
        )
        with MpMachine(p, fault_plan=plan, config=CFG) as vm:
            mp_bytes, mp_crashes = run_on(vm, n, p, host)
        assert mp_bytes == oracle_bytes
        assert mp_crashes == oracle_crashes
        assert mp_bytes == host.tobytes()


class TestCrashes:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_kill_point_is_bit_identical(self, seed):
        # The same (superstep, rank) kill point: the oracle flips a
        # crash flag; the backend delivers a real SIGKILL.  Both restore
        # from the same checkpoint schedule and must agree to the byte.
        n, p = 60, 3
        host = np.arange(n, dtype=float) * 2.0 + 0.125
        plan = FaultPlan(
            seed=seed, drop=0.05, forced_crashes=frozenset({(2, 1)})
        )

        def store():
            return CheckpointStore(CheckpointPolicy(every=1, retention=6))

        oracle_bytes, oracle_crashes = run_on(
            VirtualMachine(p, fault_plan=plan), n, p, host, checkpoints=store()
        )
        with MpMachine(p, fault_plan=plan, config=CFG) as vm:
            mp_bytes, mp_crashes = run_on(vm, n, p, host, checkpoints=store())
            exit_codes = dict(vm.supervisor.exit_codes)
        assert mp_bytes == oracle_bytes
        assert mp_crashes == oracle_crashes
        assert (1, 2) in mp_crashes  # rank 1 died at superstep 2...
        assert exit_codes[(1, 0)] == -9  # ...from a real SIGKILL
        assert mp_bytes == host.tobytes()
