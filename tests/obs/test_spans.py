"""Tests for the span/metric substrate (:mod:`repro.obs`)."""

import pytest

from repro.obs import Observability, ambient, set_ambient
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import EventLog, TraceBuffer


class FakeClock:
    """Deterministic monotonic clock: advances a fixed step per call."""

    def __init__(self, step_ns: int = 1000) -> None:
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


class TestSpans:
    def test_nesting_depths_and_durations(self):
        obs = Observability(clock=FakeClock())
        with obs.span("outer"):
            assert obs.depth == 1
            with obs.span("inner", rank=2, step=7):
                assert obs.depth == 2
        assert obs.depth == 0
        inner, outer = obs.trace.records()  # completion order: inner first
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.depth == 1 and outer.depth == 0
        assert inner.rank == 2 and outer.rank is None
        assert inner.attrs_dict() == {"step": 7}
        # The outer span strictly contains the inner one.
        assert outer.ts_ns < inner.ts_ns
        assert outer.ts_ns + outer.dur_ns > inner.ts_ns + inner.dur_ns

    def test_set_attrs_while_open(self):
        obs = Observability(clock=FakeClock())
        with obs.span("s") as sp:
            sp.set(result="ok")
        assert obs.trace.records()[0].attrs_dict() == {"result": "ok"}

    def test_instants(self):
        obs = Observability(clock=FakeClock())
        obs.instant("retransmit", rank=1, tid=3)
        (rec,) = obs.trace.records()
        assert rec.is_instant and rec.dur_ns is None
        assert obs.trace.instants("retransmit") == [rec]
        assert obs.trace.spans() == []

    def test_disabled_is_noop(self):
        obs = Observability(enabled=False)
        with obs.span("x") as sp:
            sp.set(a=1)
            obs.instant("y")
            obs.inc("c")
            obs.observe("h", 5)
            obs.set_gauge("g", 2)
        assert len(obs.trace) == 0
        assert obs.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_trace_buffer_bounded_with_drop_count(self):
        buf = TraceBuffer(capacity=3)
        obs = Observability(clock=FakeClock())
        obs.trace = buf
        for i in range(5):
            obs.instant("e", i=i)
        assert len(buf) == 3 and buf.dropped == 2
        assert [r.attrs_dict()["i"] for r in buf.records()] == [2, 3, 4]

    def test_trace_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        m.set("g", 7)
        m.observe("h", 100, buckets=(10, 1000))
        m.observe("h", 5000, buckets=(10, 1000))
        snap = m.snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 7
        h = snap["histograms"]["h"]
        assert h["count"] == 2 and h["total"] == 5100 and h["mean"] == 2550.0
        assert h["counts"] == [0, 1, 1]  # <=10, <=1000, overflow
        assert m.value("a") == 5 and m.value("never") == 0

    def test_disabled_registry_returns_nulls(self):
        m = MetricsRegistry(enabled=False)
        c = m.counter("x")
        c.inc(100)
        assert c.value == 0
        assert m.counter("x") is m.counter("y")  # shared null singleton
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="buckets"):
            Histogram(buckets=(10, 5))


class TestEventLog:
    def test_per_rank_rings_bounded(self):
        log = EventLog(capacity=2, enabled=True)
        for i in range(4):
            log.record(0, i, "send", f"e{i}")
        log.record(1, 0, "deliver", "x")
        rings = log.rings()
        assert [e.detail for e in rings[0]] == ["e2", "e3"]
        assert log.dropped == 2
        assert log.count() == 3 and log.count("deliver") == 1

    def test_set_capacity_rebounds(self):
        log = EventLog(capacity=8, enabled=True)
        for i in range(6):
            log.record(0, i, "send", str(i))
        log.set_capacity(3)
        assert [e.detail for e in log.rings()[0]] == ["3", "4", "5"]


class TestAmbient:
    def test_install_and_restore(self):
        assert not ambient().enabled  # default: disabled
        obs = Observability()
        prev = set_ambient(obs)
        try:
            assert ambient() is obs
        finally:
            set_ambient(prev)
        assert not ambient().enabled

    def test_kernels_report_to_ambient(self):
        from repro.core.kernels import expand_table

        obs = Observability()
        prev = set_ambient(obs)
        try:
            expand_table(0, [1, 2], 5)
        finally:
            set_ambient(prev)
        assert obs.metrics.value("kernels.expand_table") == 1
