"""Cost-model replay and calibration: the closed-form profile pricing
must coincide bit-for-bit with ``estimate_superstep`` on one-message-
per-transfer profiles, and the least-squares fit must recover a
synthetic ground-truth model (and never go negative)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.costmodel import CostModel, estimate_superstep
from repro.machine.topology import CrossbarTopology, HypercubeTopology, RingTopology
from repro.obs.calibrate import (
    CalibratedCostModel,
    fit,
    load_model,
    predicted_superstep_us,
    replay,
)
from repro.obs.profile import ChannelTraffic, RunProfile, SuperstepProfile


def _vector(name: str, n: int, p: int, k: int) -> DistributedArray:
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))


def _profile_from_schedule(transfers) -> SuperstepProfile:
    """One message of ``8 * len(tr)`` bytes per remote transfer -- the
    exact traffic ``execute_copy`` induces."""
    sp = SuperstepProfile(step=0)
    for tr in transfers:
        if tr.source == tr.dest:
            continue
        ch = sp.channels.setdefault((tr.source, tr.dest), ChannelTraffic())
        ch.add(8 * len(tr))
    return sp


class TestClosedFormCoincidence:
    @pytest.mark.parametrize("topology", [
        CrossbarTopology(4), RingTopology(4), HypercubeTopology(2),
    ])
    def test_matches_estimate_superstep_bit_for_bit(self, topology):
        from repro.runtime.commsets import compute_comm_schedule

        n, p = 240, 4
        a = _vector("A", n, p, 7)
        b = _vector("B", n, p, 3)
        sec = RegularSection(0, n - 1, 1)
        schedule = compute_comm_schedule(a, sec, b, sec)
        assert schedule.transfers, "pattern must communicate"

        sp = _profile_from_schedule(schedule.transfers)
        for model in (None, CostModel(alpha_us=5.0, beta_us_per_byte=0.01)):
            expected = estimate_superstep(
                schedule.transfers, p, topology, model
            ).time_us
            assert predicted_superstep_us(sp, topology, model) == expected

    def test_self_channels_cost_nothing(self):
        sp = SuperstepProfile(step=0)
        sp.channels[(1, 1)] = ChannelTraffic(messages=5, bytes=4000, max_bytes=800)
        assert predicted_superstep_us(sp, CrossbarTopology(4)) == 0.0

    def test_fixed_us_added_on_top(self):
        sp = SuperstepProfile(step=0)
        sp.channels[(0, 1)] = ChannelTraffic(messages=1, bytes=80, max_bytes=80)
        base = predicted_superstep_us(sp, CrossbarTopology(2))
        model = CalibratedCostModel(fixed_us=123.0)
        assert predicted_superstep_us(sp, CrossbarTopology(2), model) == base + 123.0
        # ...even on a traffic-free step.
        empty = SuperstepProfile(step=1)
        assert predicted_superstep_us(empty, CrossbarTopology(2), model) == 123.0


def _synthetic_profile(true_model: CalibratedCostModel, topology,
                       seed: int = 0, steps: int = 12) -> RunProfile:
    """Random traffic whose wall-times are *exactly* the true model's
    predictions -- a fit must recover the model to float precision."""
    rng = np.random.default_rng(seed)
    profile = RunProfile(p=topology.p, backend="synthetic")
    for step in range(steps):
        sp = SuperstepProfile(step=step)
        if step % 4 != 3:  # every 4th step is pure-compute (anchors fixed)
            for _ in range(int(rng.integers(1, 5))):
                source, dest = rng.choice(topology.p, size=2, replace=False)
                nbytes = int(rng.integers(8, 4096))
                sp.channels.setdefault(
                    (int(source), int(dest)), ChannelTraffic()
                ).add(nbytes)
        sp.wall_us = predicted_superstep_us(sp, topology, true_model)
        profile.supersteps.append(sp)
    return profile


class TestFit:
    def test_recovers_synthetic_model_and_reduces_mae(self):
        topology = CrossbarTopology(4)
        true = CalibratedCostModel(
            alpha_us=12.0, beta_us_per_byte=0.05, gamma_us_per_hop=0.0,
            fixed_us=200.0,
        )
        profile = _synthetic_profile(true, topology)
        result = fit(profile, topology)
        assert result.mae_calibrated_us <= result.mae_default_us
        assert result.mae_calibrated_us == pytest.approx(0.0, abs=1e-6)
        assert result.model.alpha_us == pytest.approx(12.0, abs=1e-6)
        assert result.model.beta_us_per_byte == pytest.approx(0.05, abs=1e-8)
        assert result.model.fixed_us == pytest.approx(200.0, abs=1e-6)
        assert result.n_steps == len(profile.supersteps)

    def test_coefficients_never_negative(self):
        # Wall-times *decreasing* with traffic would push beta negative
        # in an unconstrained fit; the active-set clamp forbids it.
        topology = CrossbarTopology(2)
        profile = RunProfile(p=2, backend="synthetic")
        for step, nbytes in enumerate([4096, 2048, 1024, 512, 8]):
            sp = SuperstepProfile(step=step, wall_us=float(step * 100 + 50))
            sp.channels[(0, 1)] = ChannelTraffic(
                messages=1, bytes=nbytes, max_bytes=nbytes
            )
            profile.supersteps.append(sp)
        result = fit(profile, topology)
        m = result.model
        assert m.alpha_us >= 0.0
        assert m.beta_us_per_byte >= 0.0
        assert m.gamma_us_per_hop >= 0.0
        assert m.fixed_us >= 0.0

    def test_no_measured_steps_raises(self):
        profile = RunProfile(p=2, backend="synthetic")
        profile.supersteps.append(SuperstepProfile(step=0))  # wall_us=None
        with pytest.raises(ValueError, match="no measured supersteps"):
            fit(profile, CrossbarTopology(2))

    def test_replay_rows_cover_all_steps(self):
        topology = CrossbarTopology(4)
        profile = _synthetic_profile(CalibratedCostModel(), topology, steps=6)
        profile.supersteps.append(SuperstepProfile(step=99))  # unmeasured
        rows = replay(profile, topology)
        assert [r.step for r in rows] == [sp.step for sp in profile.supersteps]
        assert rows[-1].measured_us is None and rows[-1].residual_us is None


class TestCalibratedModel:
    def test_is_a_drop_in_cost_model(self):
        from repro.runtime.commsets import compute_comm_schedule

        model = CalibratedCostModel(
            alpha_us=1.0, beta_us_per_byte=0.5, fixed_us=10.0
        )
        assert isinstance(model, CostModel)
        n, p = 120, 4
        a = _vector("A", n, p, 7)
        b = _vector("B", n, p, 3)
        sec = RegularSection(0, n - 1, 1)
        schedule = compute_comm_schedule(a, sec, b, sec)
        est = estimate_superstep(schedule.transfers, p, CrossbarTopology(p), model)
        assert est.time_us > 0.0  # fixed_us is superstep-level, not message-level

    def test_json_roundtrip(self):
        model = CalibratedCostModel(
            alpha_us=3.5, beta_us_per_byte=0.125, gamma_us_per_hop=2.0,
            word_bytes=8, fixed_us=77.0,
        )
        assert CalibratedCostModel.from_json(model.to_json()) == model


class TestLoadModel:
    def test_loads_profile_json_calibration_section(self, tmp_path):
        model = CalibratedCostModel(alpha_us=4.0, beta_us_per_byte=0.2, fixed_us=9.0)
        path = tmp_path / "PROFILE.json"
        path.write_text(json.dumps({
            "programs": {}, "calibration": {"model": model.to_json()},
        }))
        assert load_model(str(path)) == model

    def test_loads_bare_model_dict(self, tmp_path):
        model = CalibratedCostModel(alpha_us=4.0)
        path = tmp_path / "model.json"
        path.write_text(json.dumps(model.to_json()))
        assert load_model(str(path)) == model

    def test_rejects_model_free_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"calibration": None}))
        with pytest.raises(ValueError, match="no fitted cost model"):
            load_model(str(path))
