"""Observability memory bounds: HandleLimits rings and periodic flush."""

from __future__ import annotations

import json

import pytest

from repro.obs import HandleLimits, Observability


class TestHandleLimits:
    def test_limits_shape_the_rings(self):
        obs = Observability(
            handle_limits=HandleLimits(max_spans=4, event_capacity=2)
        )
        assert obs.trace.capacity == 4
        assert obs.events.capacity == 2
        for i in range(10):
            obs.instant(f"e{i}")
            obs.machine_event(0, i, "send", "x")
        assert len(obs.trace) == 4 and obs.trace.dropped == 6
        assert obs.events.count() == 2 and obs.events.dropped == 8

    def test_legacy_kwargs_still_work(self):
        obs = Observability(max_spans=8, event_capacity=3)
        assert obs.trace.capacity == 8 and obs.events.capacity == 3
        assert obs.limits.max_spans == 8

    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_spans=0), dict(event_capacity=0), dict(flush_keep=0)],
    )
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HandleLimits(**kwargs)


class TestFlushJsonl:
    def test_flush_writes_and_clears_rings_keeps_metrics(self, tmp_path):
        obs = Observability(handle_limits=HandleLimits(max_spans=16))
        with obs.span("work"):
            obs.inc("things", 3)
        obs.machine_event(1, 0, "send", "hello")
        path = obs.flush_jsonl(tmp_path, label="svc")
        assert path is not None and path.exists()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        types = [l["type"] for l in lines]
        assert "span" in types and "event" in types and types[-1] == "metrics"
        # Rings drained, counters kept (they are cumulative).
        assert len(obs.trace) == 0 and obs.events.count() == 0
        assert obs.metrics.counter("things").value == 3

    def test_flush_empty_or_disabled_is_noop(self, tmp_path):
        assert Observability().flush_jsonl(tmp_path) is None
        disabled = Observability(enabled=False)
        disabled.instant("ignored")
        assert disabled.flush_jsonl(tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_repeated_flushes_rotate_past_flush_keep(self, tmp_path):
        obs = Observability(handle_limits=HandleLimits(flush_keep=3))
        for i in range(7):
            obs.instant(f"tick{i}")
            assert obs.flush_jsonl(tmp_path, label="svc") is not None
        files = sorted(p.name for p in tmp_path.iterdir())
        assert len(files) == 3  # bounded disk, newest kept
        assert files[-1].endswith("f000007.jsonl")

    def test_flush_filenames_are_unique_and_labeled(self, tmp_path):
        obs = Observability()
        obs.instant("a")
        p1 = obs.flush_jsonl(tmp_path, label="alpha")
        obs.instant("b")
        p2 = obs.flush_jsonl(tmp_path, label="alpha")
        assert p1 != p2 and all("obs-alpha-p" in p.name for p in (p1, p2))
