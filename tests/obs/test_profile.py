"""Measured superstep profiles: schedule-exact byte accounting on the
oracle, bit-exact deterministic agreement between backends, and
counter-delta parity with the resilient protocol's report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection
from repro.machine.faults import FaultPlan
from repro.machine.vm import VirtualMachine
from repro.obs import Observability
from repro.obs.profile import ProfileCollector, RunProfile, SuperstepProfile
from repro.runtime.commsets import compute_comm_schedule
from repro.runtime.exec import collect, distribute, execute_copy


def _vector(name: str, n: int, p: int, k: int) -> DistributedArray:
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))


def _run_copy(machine, n=240, k_src=3, k_dst=7):
    a = _vector("A", n, machine.p, k_dst)
    b = _vector("B", n, machine.p, k_src)
    distribute(machine, a, np.zeros(n))
    distribute(machine, b, np.arange(n, dtype=float))
    sec = RegularSection(0, n - 1, 1)
    execute_copy(machine, a, sec, b, sec)
    collect(machine, a)
    return a, b, sec


class TestScheduleExactness:
    def test_oracle_bytes_equal_schedule_transfer_sums(self):
        """The RunProfile's byte counts equal the CommSchedule's
        transfer sums bit-exactly: execute_copy packs one float64 array
        of len(tr) elements per remote transfer, and distribute/collect
        bypass the network entirely."""
        n, p, k_src, k_dst = 240, 4, 3, 7
        obs = Observability(enabled=True)
        vm = VirtualMachine(p, obs=obs)
        collector = ProfileCollector()
        with collector.attach(vm):
            a, b, sec = _run_copy(vm, n, k_src, k_dst)
        profile = collector.build()

        schedule = compute_comm_schedule(a, sec, b, sec)
        expected_bytes = sum(8 * len(tr) for tr in schedule.transfers)
        assert expected_bytes > 0
        assert profile.total_sent_bytes == expected_bytes
        assert profile.total_delivered_bytes == expected_bytes
        assert profile.total_sent_messages == len(schedule.transfers)

        # Per-channel: one message per remote transfer, 8 bytes/element.
        per_channel = {}
        for tr in schedule.transfers:
            key = (tr.source, tr.dest)
            msgs, nbytes = per_channel.get(key, (0, 0))
            per_channel[key] = (msgs + 1, nbytes + 8 * len(tr))
        measured = {}
        for sp in profile.supersteps:
            for key, ch in sp.channels.items():
                msgs, nbytes = measured.get(key, (0, 0))
                measured[key] = (msgs + ch.messages, nbytes + ch.bytes)
        assert measured == per_channel

        # Counter deltas mirror the traffic.
        assert profile.counters["net.bytes_sent"] == expected_bytes
        assert profile.counters["net.bytes_delivered"] == expected_bytes

    def test_sends_and_deliveries_land_on_adjacent_supersteps(self):
        obs = Observability(enabled=True)
        vm = VirtualMachine(4, obs=obs)
        collector = ProfileCollector()
        with collector.attach(vm):
            _run_copy(vm)
        profile = collector.build()
        send_steps = [sp.step for sp in profile.supersteps if sp.sent_bytes]
        recv_steps = [sp.step for sp in profile.supersteps if sp.delivered_bytes]
        assert send_steps and recv_steps
        # Messages sent in superstep t are delivered at the t -> t+1
        # barrier; the collector attributes the delivery to step t.
        assert send_steps == recv_steps

    def test_measured_wall_times_present(self):
        obs = Observability(enabled=True)
        vm = VirtualMachine(4, obs=obs)
        collector = ProfileCollector()
        with collector.attach(vm):
            _run_copy(vm)
        profile = collector.build()
        assert profile.measured_steps, "superstep spans should give wall_us"
        for sp in profile.measured_steps:
            assert sp.wall_us > 0.0


class TestResilientParity:
    def test_counter_deltas_equal_resilience_report(self):
        from repro.runtime.resilient import redistribute_resilient

        n, p = 240, 4
        plan = FaultPlan(seed=2, drop=0.3)
        obs = Observability(enabled=True)
        vm = VirtualMachine(p, fault_plan=plan, obs=obs)
        collector = ProfileCollector()
        with collector.attach(vm):
            src = _vector("S", n, p, 3)
            dst = _vector("D", n, p, 7)
            distribute(vm, src, np.arange(n, dtype=float))
            distribute(vm, dst, np.zeros(n))
            stats, report = redistribute_resilient(vm, dst, src)
        profile = collector.build()

        assert report.retries > 0, "drop=0.3 must force retransmits"
        counters = profile.counters
        assert counters.get("resilient.retries", 0) == report.retries
        assert (
            counters.get("resilient.detected_corruptions", 0)
            == report.detected_corruptions
        )
        assert (
            counters.get("resilient.duplicates_ignored", 0)
            == report.duplicates_ignored
        )
        assert counters.get("resilient.nacks_sent", 0) == report.nacks_sent
        # The per-step retransmit instants sum to the report too.
        assert sum(sp.retransmits for sp in profile.supersteps) == report.retries


class TestBackendAgreement:
    def test_mp_profile_matches_oracle_on_deterministic_fields(self):
        from repro.machine.iface import create_machine

        views = {}
        for backend in ("inprocess", "mp"):
            obs = Observability(enabled=True)
            machine = create_machine(2, backend, obs=obs)
            collector = ProfileCollector()
            try:
                with collector.attach(machine):
                    _run_copy(machine, n=64, k_src=3, k_dst=5)
                profile = collector.build()
            finally:
                machine.close()
            assert profile.backend == backend
            views[backend] = profile.deterministic_view()
        assert views["inprocess"] == views["mp"]


class TestCollectorApi:
    def test_attach_twice_raises(self):
        vm = VirtualMachine(2)
        collector = ProfileCollector()
        collector.attach(vm)
        with pytest.raises(RuntimeError):
            collector.attach(vm)
        with pytest.raises(RuntimeError):
            ProfileCollector().attach(vm)  # seam already occupied
        collector.detach()
        assert vm.network.profile is None

    def test_build_before_attach_raises(self):
        with pytest.raises(RuntimeError):
            ProfileCollector().build()

    def test_enter_before_attach_raises(self):
        with pytest.raises(RuntimeError):
            with ProfileCollector():
                pass

    def test_detached_machine_records_nothing_more(self):
        obs = Observability(enabled=True)
        vm = VirtualMachine(4, obs=obs)
        collector = ProfileCollector()
        with collector.attach(vm):
            _run_copy(vm)
        before = collector.build().total_sent_bytes
        _run_copy(vm)  # collector detached: no longer recording
        assert collector.build().total_sent_bytes == before


class TestJsonRoundTrip:
    def test_profile_roundtrip(self, tmp_path):
        obs = Observability(enabled=True)
        vm = VirtualMachine(4, obs=obs)
        collector = ProfileCollector()
        with collector.attach(vm):
            _run_copy(vm)
        profile = collector.build(program="copy", seed=0)
        path = str(tmp_path / "profile.json")
        profile.dump(path)
        loaded = RunProfile.load(path)
        assert loaded.to_json() == profile.to_json()
        assert loaded.deterministic_view() == profile.deterministic_view()
        assert loaded.meta["program"] == "copy"

    def test_superstep_profile_roundtrip(self):
        from repro.obs.profile import ChannelTraffic, RankTraffic

        sp = SuperstepProfile(step=3, wall_us=12.5, phase="exchange")
        sp.ranks[0] = RankTraffic(sent_messages=2, sent_bytes=96)
        sp.channels[(0, 1)] = ChannelTraffic(messages=2, bytes=96, max_bytes=64)
        loaded = SuperstepProfile.from_json(sp.to_json())
        assert loaded.step == 3
        assert loaded.wall_us == 12.5
        assert loaded.phase == "exchange"
        assert loaded.ranks[0].sent_bytes == 96
        assert loaded.channels[(0, 1)].max_bytes == 64
