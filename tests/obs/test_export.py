"""Exporter tests: Chrome trace-event validity, JSONL round-trip, summary."""

import json
import os

from repro.obs import Observability, dump_active
from repro.obs.export import (
    chrome_trace,
    jsonl_records,
    span_stats,
    summary,
    write_chrome_trace,
    write_jsonl,
    write_summary,
)

from .test_spans import FakeClock


def build_trace() -> Observability:
    obs = Observability(clock=FakeClock())
    with obs.span("superstep", step=0):
        with obs.span("node", rank=0, step=0):
            obs.instant("retransmit", rank=0, tid=1)
        with obs.span("node", rank=1, step=0):
            pass
        with obs.span("barrier", step=0):
            pass
    obs.machine_event(0, 0, "send", "0->1 tag='t' 8B")
    obs.inc("vm.supersteps")
    return obs


class TestChromeTrace:
    def test_event_structure_and_lanes(self):
        doc = chrome_trace(build_trace())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {
            "repro SPMD machine", "host", "rank 0", "rank 1"
        }
        xs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(xs) == 4 and len(instants) == 1
        assert instants[0]["s"] == "t"
        assert all("dur" in e and e["dur"] > 0 for e in xs)
        # Host spans on tid 0, rank r on tid r + 1.
        assert {e["tid"] for e in xs} == {0, 1, 2}
        assert instants[0]["tid"] == 1

    def test_ts_strictly_increasing_per_tid(self):
        # Zero-step clock: every record gets the same timestamp, the
        # degenerate case the 1 ns de-tie exists for.
        obs = Observability(clock=FakeClock(step_ns=0))
        for i in range(5):
            obs.instant("e", rank=0, i=i)
        for tid, events in _by_tid(chrome_trace(obs)).items():
            ts = [e["ts"] for e in events]
            assert ts == sorted(ts) and len(set(ts)) == len(ts), tid

    def test_written_file_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(build_trace(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] and doc["displayTimeUnit"] == "ms"


def _by_tid(doc: dict) -> dict:
    out: dict = {}
    for e in doc["traceEvents"]:
        if e["ph"] != "M":
            out.setdefault(e["tid"], []).append(e)
    return out


class TestJsonl:
    def test_round_trip(self, tmp_path):
        obs = build_trace()
        path = write_jsonl(obs, tmp_path / "trace.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_type: dict = {}
        for r in records:
            by_type.setdefault(r["type"], []).append(r)
        assert len(by_type["span"]) == 4
        assert len(by_type["instant"]) == 1
        assert len(by_type["event"]) == 1
        (metrics,) = by_type["metrics"]
        assert metrics["metrics"]["counters"]["vm.supersteps"] == 1
        assert records[-1] is metrics  # metrics record closes the file

    def test_records_match_buffer(self):
        obs = build_trace()
        recs = jsonl_records(obs)
        names = [r["name"] for r in recs if r["type"] == "span"]
        assert names == ["node", "node", "barrier", "superstep"]


class TestSummary:
    def test_span_stats_aggregation(self):
        rows = span_stats(build_trace())
        by_name = {r["name"]: r for r in rows}
        assert by_name["node"]["count"] == 2
        assert rows == sorted(rows, key=lambda r: -r["total_ms"])
        assert all(r["total_ms"] >= r["max_ms"] > 0 for r in rows)

    def test_text_summary_mentions_everything(self, tmp_path):
        obs = build_trace()
        text = summary(obs)
        assert "superstep" in text and "vm.supersteps" in text
        assert "plan caches" in text
        path = write_summary(obs, tmp_path / "summary.txt")
        assert path.read_text().rstrip("\n") == text


class TestDumpActive:
    def test_dumps_live_enabled_handles(self, tmp_path):
        obs = build_trace()
        paths = dump_active(tmp_path, label="unit")
        mine = [p for p in paths if _covers(p, obs)]
        assert mine, "the freshly built handle should be dumped"

    def test_empty_handles_skipped(self, tmp_path):
        obs = Observability()  # live but empty
        paths = dump_active(tmp_path / "sub", label="empty")
        assert all(not _covers(p, obs) for p in paths)
        del obs

    def test_dump_filenames_are_per_pid(self, tmp_path):
        # Several processes (mp-backend driver + workers) may dump into
        # one fault-reports/ directory; the PID in the name keeps them
        # from clobbering each other.
        obs = build_trace()
        paths = dump_active(tmp_path, label="unit")
        mine = [p for p in paths if _covers(p, obs)]
        assert all(f"-p{os.getpid()}-" in p.name for p in mine)


def _covers(path, obs: Observability) -> bool:
    """Whether a dump file holds exactly this handle's record count."""
    records = [json.loads(line) for line in path.read_text().splitlines()]
    spans = [r for r in records if r["type"] in ("span", "instant")]
    return len(spans) == len(obs.trace) and any(
        r["type"] == "metrics" for r in records
    )


class TestRotateReports:
    """Rotation bounds fault-reports/ growth: newest N per dump kind."""

    def _mk(self, directory, name, age):
        path = directory / name
        path.write_text("{}")
        stamp = 1_700_000_000 + age
        os.utime(path, (stamp, stamp))
        return path

    def test_keeps_newest_per_kind(self, tmp_path):
        from repro.obs.export import rotate_reports

        old = [self._mk(tmp_path, f"flight-A-p10{i}-aa.json", i) for i in range(5)]
        obs_dumps = [self._mk(tmp_path, f"obs-A-p20{i}.jsonl", i) for i in range(5)]
        deleted = rotate_reports(tmp_path, keep=2)
        assert sorted(p.name for p in deleted) == sorted(
            p.name for p in old[:3] + obs_dumps[:3]
        )
        # Newest two of each kind survive.
        assert all(p.exists() for p in old[3:] + obs_dumps[3:])

    def test_kinds_rotate_independently(self, tmp_path):
        from repro.obs.export import rotate_reports

        for i in range(3):
            self._mk(tmp_path, f"flight-A-p1-{i}.json", i)
        self._mk(tmp_path, "flight-B-p1-x.json", 0)
        rotate_reports(tmp_path, keep=2)
        # flight-B has only one file: untouched even though flight-A
        # overflowed.
        assert (tmp_path / "flight-B-p1-x.json").exists()
        assert len(list(tmp_path.glob("flight-A-*"))) == 2

    def test_non_dump_files_never_touched(self, tmp_path):
        from repro.obs.export import rotate_reports

        keepsake = tmp_path / "junit.xml"
        keepsake.write_text("<xml/>")
        for i in range(40):
            self._mk(tmp_path, f"obs-t-p{i}.jsonl", i)
        rotate_reports(tmp_path, keep=4)
        assert keepsake.exists()
        assert len(list(tmp_path.glob("obs-t-*"))) == 4

    def test_missing_directory_is_noop(self, tmp_path):
        from repro.obs.export import rotate_reports

        assert rotate_reports(tmp_path / "nope") == []

    def test_dump_sites_rotate(self, tmp_path):
        # FlightRecorder.dump and dump_active both invoke rotation, so a
        # soak loop's report directory stays bounded without any sweeper.
        from repro.machine.trace import FlightRecorder
        from repro.machine.vm import VirtualMachine

        vm = VirtualMachine(2)
        recorder = FlightRecorder(capacity=8)
        recorder.attach(vm)
        vm.run(lambda ctx: None)
        for i in range(25):
            recorder.dump(tmp_path, label="soak")
        assert len(list(tmp_path.glob("flight-soak-*"))) <= 16
        recorder.detach()
