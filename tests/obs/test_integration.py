"""Machine-level observability integration tests.

The acceptance property of the observability PR: the trace is *truthful*.
A fault-injected resilient run must produce a Chrome trace whose
retransmit/repair instant counts equal the ``ResilienceReport`` fields,
and an instrumented machine's metrics must agree with the always-on
``NetworkStats``.
"""

import numpy as np
import pytest

from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import CyclicK, ProcessorGrid
from repro.machine.checkpoint import CheckpointPolicy, CheckpointStore
from repro.machine.faults import FaultPlan
from repro.machine.trace import machine_report
from repro.machine.vm import VirtualMachine
from repro.obs import Observability, set_ambient
from repro.obs.export import chrome_trace
from repro.runtime.exec import collect, distribute, execute_copy
from repro.runtime.plancache import clear_plan_caches
from repro.runtime.redistribute import redistribute
from repro.runtime.resilient import redistribute_resilient
from repro.distribution.section import RegularSection


def make_1d(name, n, p, k):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(name, (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))


@pytest.fixture
def fresh_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


class TestInstrumentedMachine:
    def test_superstep_and_node_spans(self):
        obs = Observability()
        vm = VirtualMachine(3, obs=obs)
        vm.run(lambda ctx: ctx.send((ctx.rank + 1) % ctx.p, "t", 1.0))
        vm.run(lambda ctx: list(ctx.drain("t")))
        assert len(obs.trace.spans("superstep")) == 2
        assert len(obs.trace.spans("barrier")) == 2
        nodes = obs.trace.spans("node")
        assert len(nodes) == 6  # 3 ranks x 2 supersteps
        assert sorted({r.rank for r in nodes}) == [0, 1, 2]
        assert obs.metrics.value("vm.supersteps") == 2

    def test_network_metrics_agree_with_stats(self):
        obs = Observability()
        vm = VirtualMachine(4, obs=obs)
        vm.run(lambda ctx: ctx.send((ctx.rank + 1) % ctx.p, "t", float(ctx.rank)))
        vm.run(lambda ctx: list(ctx.drain("t")))
        m = obs.metrics
        assert m.value("net.messages_sent") == vm.network.stats.sent == 4
        assert m.value("net.messages_delivered") == vm.network.stats.delivered == 4
        assert m.value("net.bytes_sent") == vm.network.stats.bytes

    def test_fault_counters_by_kind(self):
        obs = Observability()
        vm = VirtualMachine(2, fault_plan=FaultPlan(drop=1.0), obs=obs)
        vm.run(lambda ctx: ctx.send(1 - ctx.rank, "t", 1.0))
        vm.run(lambda ctx: None)
        assert obs.metrics.value("faults.drop") == 2
        assert obs.metrics.value("net.messages_dropped") == 2
        # The event rings hold one copy of each event (enabled handle).
        assert obs.events.count("drop") == 2

    def test_disabled_machine_records_nothing(self):
        vm = VirtualMachine(2)  # no handle: disabled Observability
        vm.run(lambda ctx: ctx.send(1 - ctx.rank, "t", 1.0))
        assert len(vm.obs.trace) == 0
        assert vm.obs.events.count() == 0
        assert vm.obs.metrics.snapshot()["counters"] == {}
        # The machine truth is still collected.
        assert vm.network.stats.sent == 2


class TestTraceMatchesReport:
    """Acceptance criterion: Chrome-trace counts == ResilienceReport."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_retransmit_instants_equal_report_retries(self, seed):
        n, p = 120, 4
        obs = Observability()
        plan = FaultPlan(seed=seed, drop=0.3, duplicate=0.2)
        vm = VirtualMachine(p, fault_plan=plan, obs=obs)
        src, dst = make_1d("S", n, p, 3), make_1d("D", n, p, 7)
        host = np.arange(n, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        stats, report = redistribute_resilient(vm, dst, src)
        assert np.array_equal(collect(vm, dst), host)

        assert len(obs.trace.instants("retransmit")) == report.retries
        doc = chrome_trace(obs)
        chrome_retransmits = [
            e for e in doc["traceEvents"]
            if e["ph"] == "i" and e["name"] == "retransmit"
        ]
        assert len(chrome_retransmits) == report.retries > 0
        assert obs.metrics.value("resilient.retries") == report.retries
        rounds = obs.trace.spans("protocol_round")
        assert len(rounds) == report.supersteps - 1 - len(
            obs.trace.spans("cleanup_round")
        )

    def test_repair_instants_equal_chunks_repaired(self):
        n, p = 96, 3
        obs = Observability()
        plan = FaultPlan(seed=7, forced_scribbles=frozenset({(2, 1, "D")}))
        vm = VirtualMachine(p, fault_plan=plan, obs=obs)
        src, dst = make_1d("S", n, p, 2), make_1d("D", n, p, 5)
        host = np.arange(n, dtype=float)
        distribute(vm, src, host)
        distribute(vm, dst, np.zeros(n))
        store = CheckpointStore(CheckpointPolicy(every=1, retention=4))
        stats, report = redistribute_resilient(
            vm, dst, src, checkpoints=store, auditor=True
        )
        assert np.array_equal(collect(vm, dst), host)
        assert report.chunks_repaired > 0
        doc = chrome_trace(obs)
        chrome_repairs = [
            e for e in doc["traceEvents"]
            if e["ph"] == "i" and e["name"] == "repair"
        ]
        assert len(chrome_repairs) == report.chunks_repaired
        assert (
            obs.metrics.value("resilient.chunks_repaired")
            == report.chunks_repaired
        )


class TestMachineReport:
    def test_plan_cache_hits_and_misses_surface(self, fresh_caches):
        n, p = 40, 2
        obs = Observability()
        prev = set_ambient(obs)
        try:
            vm = VirtualMachine(p, obs=obs)
            a, b = make_1d("A", n, p, 2), make_1d("B", n, p, 5)
            distribute(vm, b, np.arange(n, dtype=float))
            distribute(vm, a, np.zeros(n))
            sec = RegularSection(0, n - 1, 1)
            execute_copy(vm, a, sec, b, sec)  # miss
            execute_copy(vm, a, sec, b, sec)  # hit
        finally:
            set_ambient(prev)
        report = machine_report(vm)
        sched = report["plan_caches"]["comm_schedules"]
        assert sched["misses"] == 1 and sched["hits"] == 1
        assert report["metrics"]["counters"]["plancache.comm_schedules.hits"] == 1
        assert (
            report["metrics"]["counters"]["plancache.comm_schedules.misses"] == 1
        )
        assert report["observability"]["enabled"]
        assert report["observability"]["spans"] == len(obs.trace) > 0

    def test_eviction_counter(self, fresh_caches):
        from repro.runtime.plancache import PlanCache

        obs = Observability()
        prev = set_ambient(obs)
        try:
            cache = PlanCache("tiny", maxsize=1)
            cache.get_or_compute("a", lambda: 1)
            cache.get_or_compute("b", lambda: 2)  # evicts a
        finally:
            set_ambient(prev)
        assert cache.evictions == 1
        assert cache.stats()["evictions"] == 1
        assert obs.metrics.value("plancache.tiny.evictions") == 1

    def test_report_keeps_legacy_keys(self):
        vm = VirtualMachine(2)
        vm.run(lambda ctx: None)
        report = machine_report(vm)
        for key in ("ranks", "messages", "bytes", "channels", "memory",
                    "network", "supersteps", "plan_caches"):
            assert key in report


class TestRedistributeSpans:
    def test_plain_runtime_paths_traced(self, fresh_caches):
        n, p = 60, 3
        obs = Observability()
        vm = VirtualMachine(p, obs=obs)
        src, dst = make_1d("S", n, p, 2), make_1d("D", n, p, 4)
        distribute(vm, src, np.arange(n, dtype=float))
        distribute(vm, dst, np.zeros(n))
        redistribute(vm, dst, src)
        collect(vm, dst)
        names = {r.name for r in obs.trace.spans()}
        assert {"distribute", "collect", "superstep", "barrier"} <= names
