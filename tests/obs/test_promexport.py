"""Prometheus exposition: render -> parse round-trips, the cumulative
bucket conversion, the empty-histogram guard, and the line-format
validator's rejection of malformed scrapes."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    parse_prometheus_text,
    prometheus_text,
    sanitize_metric_name,
)
from repro.viz.tables import render_metrics


class TestSanitize:
    def test_dots_and_prefix(self):
        assert sanitize_metric_name("net.bytes_sent") == "repro_net_bytes_sent"
        assert sanitize_metric_name("a-b c") == "repro_a_b_c"

    def test_leading_digit_gets_underscore(self):
        name = sanitize_metric_name("9lives", prefix="")
        assert name == "_9lives"


class TestRender:
    def test_counters_get_total_suffix(self):
        registry = MetricsRegistry()
        registry.inc("net.bytes_sent", 320)
        text = prometheus_text(registry.snapshot())
        samples = parse_prometheus_text(text)
        assert samples["repro_net_bytes_sent_total"] == 320.0
        assert "# TYPE repro_net_bytes_sent_total counter" in text

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.set("vm.live_ranks", 4)
        samples = parse_prometheus_text(prometheus_text(registry.snapshot()))
        assert samples["repro_vm_live_ranks"] == 4.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (10, 100, 100, 100_000):
            registry.observe("net.message_bytes", value)
        text = prometheus_text(registry.snapshot())
        samples = parse_prometheus_text(text)
        metric = "repro_net_message_bytes"
        assert samples[f"{metric}_count"] == 4.0
        assert samples[f"{metric}_sum"] == 100_210.0
        # Cumulative: each bucket includes everything below it, closed
        # by the mandatory +Inf bucket equal to the total count.
        bucket_values = [
            v for k, v in samples.items() if k.startswith(f"{metric}_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert samples[f'{metric}_bucket{{le="+Inf"}}'] == 4.0
        assert samples[f'{metric}_bucket{{le="64"}}'] == 1.0

    def test_empty_histogram_emits_no_bucket_rows(self):
        """The observations == 0 guard: an instrument that exists but
        never observed must not emit misleading zero-bucket rows."""
        registry = MetricsRegistry()
        registry.histogram("net.message_bytes")  # created, never observed
        snap = registry.snapshot()
        assert snap["histograms"]["net.message_bytes"]["counts"] == []
        text = prometheus_text(snap)
        assert "_bucket" not in text
        samples = parse_prometheus_text(text)
        assert samples["repro_net_message_bytes_count"] == 0.0
        assert samples["repro_net_message_bytes_sum"] == 0.0

    def test_render_metrics_empty_histogram_guard(self):
        registry = MetricsRegistry()
        registry.histogram("quiet.histogram")
        registry.observe("busy.histogram", 7)
        text = render_metrics(registry.snapshot())
        assert "(no observations)" in text
        assert "n=1" in text

    def test_extra_samples_with_labels(self):
        extra = [
            ("plan_cache.hits", {"cache": "plan"}, 10, "counter"),
            ("plan_cache.hits", {"cache": "walk"}, 3, "counter"),
            ("plan_server.uptime_seconds", None, 12.5, "gauge"),
        ]
        text = prometheus_text(extra=extra)
        samples = parse_prometheus_text(text)
        assert samples['repro_plan_cache_hits_total{cache="plan"}'] == 10.0
        assert samples['repro_plan_cache_hits_total{cache="walk"}'] == 3.0
        assert samples["repro_plan_server_uptime_seconds"] == 12.5
        # One TYPE line per metric even with several labeled samples.
        assert text.count("# TYPE repro_plan_cache_hits_total counter") == 1

    def test_extra_sample_bad_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            prometheus_text(extra=[("x", None, 1, "histogram")])

    def test_label_values_escaped(self):
        text = prometheus_text(extra=[("m", {"path": 'a"b\\c'}, 1, "gauge")])
        parse_prometheus_text(text)  # must stay parseable


class TestParseValidator:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_prometheus_text("this is not a metric line")

    def test_rejects_missing_value(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("repro_thing_total")

    def test_rejects_bad_type_comment(self):
        with pytest.raises(ValueError, match="bad metric type"):
            parse_prometheus_text("# TYPE repro_thing pie_chart")

    def test_rejects_bad_comment_shape(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus_text("# NOPE")

    def test_rejects_malformed_label(self):
        with pytest.raises(ValueError, match="label"):
            parse_prometheus_text('repro_x{cache=unquoted} 1')

    def test_accepts_inf_and_scientific(self):
        samples = parse_prometheus_text(
            'x_bucket{le="+Inf"} 4\ny 1.5e3\nz -0.25\n'
        )
        assert samples['x_bucket{le="+Inf"}'] == 4.0
        assert samples["y"] == 1500.0
        assert samples["z"] == -0.25

    def test_blank_lines_and_timestamps_ok(self):
        samples = parse_prometheus_text("\nmetric_a 1 1700000000000\n\n")
        assert samples["metric_a"] == 1.0
