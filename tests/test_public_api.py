"""Public-API surface tests: everything advertised is importable and the
top-level quickstart path works as README documents."""

import numpy as np

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart(self):
        table = repro.compute_access_table(p=4, k=8, l=4, s=9, m=1)
        assert table.gaps == (3, 12, 15, 12, 3, 12, 3, 12)
        assert table.start == 13
        basis = repro.compute_rl_basis(4, 8, 9)
        assert basis.r.vector == (4, 1)
        assert basis.l.vector == (5, -1)

    def test_subpackage_alls_resolve(self):
        import repro.bench as bench
        import repro.core as core
        import repro.distribution as distribution
        import repro.lang as lang
        import repro.machine as machine
        import repro.runtime as runtime
        import repro.viz as viz

        for module in (core, distribution, machine, runtime, lang, viz, bench):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_level2_descriptor_path(self):
        grid = repro.ProcessorGrid("P", (4,))
        arr = repro.DistributedArray(
            "A", (320,), grid,
            (repro.AxisMap(repro.CyclicK(8), repro.Alignment(2, 1),
                           grid_axis=0, template_extent=640),),
        )
        rank = arr.owner((108,))
        assert 0 <= rank < 4
        assert 0 <= arr.local_address((108,), rank) < arr.local_size(rank)

    def test_level3_language_path(self):
        program = repro.compile_source(
            "PROCESSORS P(4)\nTEMPLATE T(640)\nREAL A(320)\n"
            "ALIGN A(i) WITH T(i)\nDISTRIBUTE T(CYCLIC(8)) ONTO P\n"
            "A(4:319:9) = 100.0\n"
        )
        vm = program.run()
        image = program.image(vm, "A")
        ref = np.zeros(320)
        ref[4:320:9] = 100.0
        assert np.array_equal(image, ref)

    def test_docstrings_everywhere(self):
        """Every public module and every name in __all__ carries a docstring
        (the documentation deliverable, enforced)."""
        import importlib
        import inspect

        modules = [
            "repro", "repro.core", "repro.core.access", "repro.core.lattice",
            "repro.core.euclid", "repro.core.offsets", "repro.core.generator",
            "repro.core.counting", "repro.core.fsm", "repro.core.multidim",
            "repro.core.diagonal", "repro.core.baselines.sorting",
            "repro.core.baselines.special", "repro.core.baselines.naive",
            "repro.distribution.section", "repro.distribution.layout",
            "repro.distribution.dist", "repro.distribution.align",
            "repro.distribution.array", "repro.distribution.localize",
            "repro.machine.vm", "repro.machine.network",
            "repro.machine.collectives", "repro.machine.topology",
            "repro.machine.costmodel", "repro.machine.trace",
            "repro.runtime.address", "repro.runtime.codegen",
            "repro.runtime.commsets", "repro.runtime.commsets2d",
            "repro.runtime.exec", "repro.runtime.redistribute",
            "repro.runtime.triangular", "repro.runtime.sections_io",
            "repro.runtime.emit_c", "repro.runtime.native",
            "repro.runtime.native.build",
            "repro.lang.parser", "repro.lang.compiler", "repro.lang.reference",
            "repro.lang.desugar",
            "repro.viz.layout_ascii", "repro.viz.lattice_diagram",
            "repro.viz.tables",
            "repro.bench.timers", "repro.bench.workloads", "repro.bench.report",
            "repro.bench.table1", "repro.bench.table2", "repro.bench.figure7",
            "repro.bench.ablations", "repro.bench.opcounts",
            "repro.bench.claims", "repro.bench.costs",
            "repro.bench.table1_c", "repro.bench.table2_c",
            "repro.bench.environment",
        ]
        for modname in modules:
            module = importlib.import_module(modname)
            assert module.__doc__ and module.__doc__.strip(), modname
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__ and obj.__doc__.strip(), (modname, name)
