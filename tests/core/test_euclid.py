"""Unit and property tests for repro.core.euclid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.euclid import (
    ceil_div,
    crt_pair,
    extended_gcd,
    floor_div,
    gcd,
    lcm,
    mod_inverse,
    smallest_nonnegative_solution,
    solve_linear_congruence,
    solve_linear_diophantine,
)

ints = st.integers(min_value=-10_000, max_value=10_000)
pos = st.integers(min_value=1, max_value=10_000)


class TestExtendedGcd:
    def test_paper_example(self):
        # Figure 5 line 3 for the worked example: s=9, pk=32.
        assert extended_gcd(9, 32) == (1, -7, 2)

    def test_zero_cases(self):
        assert extended_gcd(0, 0) == (0, 1, 0)
        g, x, y = extended_gcd(0, 5)
        assert g == 5 and 0 * x + 5 * y == 5
        g, x, y = extended_gcd(5, 0)
        assert g == 5 and 5 * x + 0 * y == 5

    @given(ints, ints)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0

    @given(ints, ints)
    def test_matches_builtin_gcd(self, a, b):
        import math

        assert extended_gcd(a, b).g == math.gcd(a, b)
        assert gcd(a, b) == math.gcd(a, b)


class TestGcdLcm:
    def test_lcm_zero(self):
        assert lcm(0, 7) == 0
        assert lcm(7, 0) == 0

    @given(pos, pos)
    def test_lcm_gcd_product(self, a, b):
        assert lcm(a, b) * gcd(a, b) == a * b

    @given(pos, pos)
    def test_lcm_divisibility(self, a, b):
        m = lcm(a, b)
        assert m % a == 0 and m % b == 0


class TestModInverse:
    def test_basic(self):
        assert mod_inverse(3, 7) == 5
        assert (9 * mod_inverse(9, 32)) % 32 == 1

    def test_not_invertible(self):
        with pytest.raises(ValueError, match="not invertible"):
            mod_inverse(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(ValueError, match="positive"):
            mod_inverse(3, 0)

    @given(ints, st.integers(min_value=1, max_value=5000))
    def test_inverse_property(self, a, n):
        if gcd(a, n) == 1:
            inv = mod_inverse(a, n)
            assert 0 <= inv < n
            assert (a * inv) % n == 1 or n == 1


class TestLinearCongruence:
    def test_solvable(self):
        # 9*j == 4 (mod 32): j = 20 since 180 = 5*32 + 20... verify directly
        sol = solve_linear_congruence(9, 4, 32)
        assert sol is not None
        assert (9 * sol.base) % 32 == 4
        assert sol.period == 32

    def test_unsolvable(self):
        assert solve_linear_congruence(6, 5, 9) is None

    def test_bad_modulus(self):
        with pytest.raises(ValueError, match="positive"):
            solve_linear_congruence(3, 1, 0)

    @given(ints, ints, st.integers(min_value=1, max_value=3000))
    def test_smallest_nonnegative(self, a, c, n):
        j = smallest_nonnegative_solution(a, c, n)
        if j is None:
            assert gcd(a, n) and c % gcd(a, n) != 0
        else:
            assert 0 <= j < n
            assert (a * j - c) % n == 0
            # Minimality: no smaller nonnegative solution.
            sol = solve_linear_congruence(a, c, n)
            assert j < sol.period


class TestDiophantine:
    @given(ints, ints, ints)
    def test_solution_validity(self, a, b, c):
        sol = solve_linear_diophantine(a, b, c)
        if sol is None:
            g = gcd(a, b)
            assert (g == 0 and c != 0) or (g != 0 and c % g != 0)
        else:
            assert a * sol.x0 + b * sol.y0 == c
            # Stepping the parameter keeps the identity.
            x2 = sol.x0 + sol.step_x
            y2 = sol.y0 - sol.step_y
            assert a * x2 + b * y2 == c

    def test_degenerate(self):
        assert solve_linear_diophantine(0, 0, 0) is not None
        assert solve_linear_diophantine(0, 0, 3) is None


class TestCrt:
    def test_pair(self):
        sol = crt_pair(2, 3, 3, 5)
        assert sol is not None
        assert sol.base % 3 == 2 and sol.base % 5 == 3
        assert sol.period == 15

    def test_incompatible(self):
        assert crt_pair(0, 2, 1, 4) is None

    def test_bad_modulus(self):
        with pytest.raises(ValueError, match="positive"):
            crt_pair(0, 0, 0, 3)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=60),
    )
    def test_crt_property(self, r1, n1, r2, n2):
        sol = crt_pair(r1, n1, r2, n2)
        brute = [
            j for j in range(lcm(n1, n2))
            if j % n1 == r1 % n1 and j % n2 == r2 % n2
        ]
        if sol is None:
            assert brute == []
        else:
            assert brute == [sol.base]
            assert sol.period == lcm(n1, n2)


class TestDivisions:
    @given(ints, ints.filter(lambda v: v != 0))
    def test_ceil_floor(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b)
        assert floor_div(a, b) == math.floor(a / b)

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            ceil_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            floor_div(1, 0)
