"""Every concrete number in the paper, asserted exactly.

Collected in one file so a reader can audit the reproduction against the
text: Figure 1 (element 108), Section 3 (plane coordinates, basis
examples), Section 4 (R, L, indices 36/261/288), Section 5's worked walk
(d/x/y, start, length, min/max, AM table), and the Section 6.1
observation about cyclic shifts when gcd(s, pk) = 1.
"""

from repro.core.access import compute_access_table, start_location
from repro.core.euclid import extended_gcd
from repro.core.lattice import LatticePoint, compute_rl_basis, is_basis
from repro.distribution.layout import CyclicLayout

P, K, L, S, M = 4, 8, 4, 9, 1  # Figure 6 parameters


class TestFigure1:
    """Layout of cyclic(8) over 4 processors."""

    def test_element_108(self):
        # "array element A(108) has offset 4 in block 3 of processor 1"
        layout = CyclicLayout(4, 8)
        coords = layout.coords(108)
        assert coords.owner == 1
        assert coords.block_offset == 4
        assert coords.row == 3  # block 3 (blocks == rows per processor)

    def test_section3_plane_point(self):
        # "the coordinates of the array element with index 108 are (12, 3)"
        assert CyclicLayout(4, 8).plane_point(108) == (12, 3)


class TestSection3Basis:
    def test_example_vectors(self):
        # "(3,3): 3x32+3 = 11x9 and (-1,2): 2x32-1 = 7x9.  Since
        #  3x7 - 2x11 = -1, these vectors form a lattice basis."
        assert 3 * 32 + 3 == 11 * 9
        assert 2 * 32 - 1 == 7 * 9
        v1 = LatticePoint(3, 3, 11)
        v2 = LatticePoint(-1, 2, 7)
        assert is_basis(v1, v2)


class TestSection4RL:
    def test_r_and_l(self):
        # "vector R ... is equal to (4, 1) and corresponds to the regular
        #  section index 1x32+4 = 36.  Vector L ... is equal to (5, -1),
        #  and its corresponding index is -1x32+5 = -27."
        basis = compute_rl_basis(P, K, S)
        assert basis.r.vector == (4, 1)
        assert basis.r.i * S == 36
        assert basis.l.vector == (5, -1)
        assert basis.l.i * S == -27

    def test_largest_index_and_next_cycle(self):
        # "The largest index in the first cycle is 261, and since the
        #  point that starts the next cycle is 288, we have
        #  L = (5,8) - (0,9) = (5,-1)."
        lat_points = [
            (i * S) for i in range(32) if 0 < (i * S) % 32 < 8
        ]
        assert max(lat_points) == 261
        assert 32 * S // 1 == 288  # pk*s/d
        assert (261 % 32, 261 // 32) == (5, 8)
        assert (5 - 0, 8 - 9) == (5, -1)


class TestSection5Walk:
    def test_extended_euclid_values(self):
        # "Values returned by EXTENDED-EUCLID in line 3 are d = 1,
        #  x = -7, and y = 2."
        assert extended_gcd(S, P * K) == (1, -7, 2)

    def test_start_and_length(self):
        # "Lines 4-11 compute start = 13 and set length = 8."
        info = start_location(P, K, L, S, M)
        assert info.start == 13
        assert info.length == 8

    def test_min_and_max(self):
        # "Lines 19-26 find min = 36 and max = 261."
        candidates = [
            ((i * -7) % 32) * S for i in range(1, 8)
        ]
        assert min(candidates) == 36
        assert max(candidates) == 261

    def test_am_table(self):
        # "at the end, AM = [3, 12, 15, 12, 3, 12, 3, 12]."
        table = compute_access_table(P, K, L, S, M)
        assert list(table.gaps) == [3, 12, 15, 12, 3, 12, 3, 12]

    def test_first_iterations(self):
        # First visit 40 (AM[0] = -(-1*8+5) = 3), then 76 (AM[1] = 12),
        # then 103 is skipped for 139 (AM[2] = 15), ... until 301.
        table = compute_access_table(P, K, L, S, M)
        assert table.global_indices(9) == [13, 40, 76, 139, 175, 202, 238, 265, 301]
        # 103 is NOT on processor 1 (offset 103 mod 32 = 7 -> processor 0).
        assert CyclicLayout(P, K).owner(103) == 0

    def test_worst_case_bound(self):
        # Section 5.1: at most 2k+1 points are examined.  Each emitted gap
        # examines at most 2 lattice points (Equation 2 + Equation 3), and
        # length <= k, so the instrumented count must respect the bound.
        from repro.bench.opcounts import lattice_op_counts

        counts = lattice_op_counts(P, K, L, S, M)
        assert counts["length"] == 8 <= K
        assert counts["points_examined"] <= 2 * K + 1


class TestSection61CyclicShift:
    def test_gcd_one_tables_are_cyclic_shifts(self):
        # "if GCD(s, pk) = 1, then the local AM sequences are cyclic
        #  shifts of one another."
        tables = [compute_access_table(P, K, 0, S, m) for m in range(P)]
        base = tables[0].gaps
        doubled = base + base
        for t in tables[1:]:
            assert t.length == tables[0].length
            assert any(
                doubled[i : i + t.length] == t.gaps for i in range(t.length)
            ), (base, t.gaps)
