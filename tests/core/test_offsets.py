"""Tests for the offset-indexed tables (Section 6.2 / node code 8(d))."""

import pytest
from hypothesis import given, settings

from repro.core.access import compute_access_table
from repro.core.offsets import UNUSED, compute_offset_tables

from ..conftest import access_params


class TestPaperExample:
    def test_tables(self, paper_params):
        tables = compute_offset_tables(**paper_params)
        assert tables.start == 13
        # startoffset = start mod k = 13 mod 8 = 5 (Section 6.2).
        assert tables.start_offset == 5
        assert tables.length == 8
        # Walking the offset tables reproduces the visit-order walk.
        base = compute_access_table(**paper_params)
        assert tables.local_addresses(20) == base.local_addresses(20)
        assert tables.start_local == base.start_local

    def test_next_offset_structure(self, paper_params):
        tables = compute_offset_tables(**paper_params)
        visited = [o for o in range(8) if tables.delta_m[o] != UNUSED]
        assert len(visited) == tables.length
        # next_offset is a permutation cycle over the visited offsets.
        seen = set()
        o = tables.start_offset
        for _ in range(tables.length):
            assert o in visited
            assert o not in seen
            seen.add(o)
            o = tables.next_offset[o]
        assert o == tables.start_offset


class TestSpecialCases:
    def test_empty(self):
        tables = compute_offset_tables(2, 1, 0, 4, 1)
        assert tables.length == 0
        assert tables.start is None and tables.start_offset is None
        assert tables.local_addresses(0) == []
        with pytest.raises(ValueError, match="owns no"):
            tables.local_addresses(1)

    def test_length_one(self):
        tables = compute_offset_tables(2, 1, 0, 2, 0)
        assert tables.length == 1
        assert tables.next_offset[tables.start_offset] == tables.start_offset
        base = compute_access_table(2, 1, 0, 2, 0)
        assert tables.local_addresses(5) == base.local_addresses(5)

    def test_stride_validation(self):
        with pytest.raises(ValueError, match="positive"):
            compute_offset_tables(4, 8, 0, -1, 0)

    def test_negative_count(self, paper_params):
        tables = compute_offset_tables(**paper_params)
        with pytest.raises(ValueError, match="nonnegative"):
            tables.local_addresses(-2)


class TestAgainstVisitOrder:
    @given(access_params())
    @settings(max_examples=200, deadline=None)
    def test_same_walk(self, params):
        p, k, l, s, m = params
        tables = compute_offset_tables(p, k, l, s, m)
        base = compute_access_table(p, k, l, s, m)
        assert tables.length == base.length
        assert tables.start == base.start
        if base.length:
            n = 2 * base.length + 3
            assert tables.local_addresses(n) == base.local_addresses(n)

    @given(access_params())
    @settings(max_examples=100, deadline=None)
    def test_unvisited_slots_marked(self, params):
        p, k, l, s, m = params
        tables = compute_offset_tables(p, k, l, s, m)
        used = sum(1 for v in tables.delta_m if v != UNUSED)
        assert used == tables.length
        assert len(tables.delta_m) in (0, k)
        for o, (gap, nxt) in enumerate(zip(tables.delta_m, tables.next_offset)):
            assert (gap == UNUSED) == (nxt == UNUSED)
            if nxt != UNUSED:
                assert 0 <= nxt < k
