"""Tests for the integer-lattice theory (paper Sections 3-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.euclid import gcd
from repro.core.lattice import (
    LatticePoint,
    SectionLattice,
    compute_rl_basis,
    is_basis,
    is_primitive_vector,
)

from ..conftest import blocks, procs, strides


class TestLatticePoint:
    def test_arithmetic(self):
        a = LatticePoint(3, 3, 11)
        b = LatticePoint(-1, 2, 7)
        assert a + b == LatticePoint(2, 5, 18)
        assert a - b == LatticePoint(4, 1, 4)
        assert -a == LatticePoint(-3, -3, -11)
        assert a.scale(2) == LatticePoint(6, 6, 22)
        assert a.vector == (3, 3)


class TestSectionLattice:
    def test_validation(self):
        with pytest.raises(ValueError, match="p > 0"):
            SectionLattice(0, 8, 9)
        with pytest.raises(ValueError, match="positive"):
            SectionLattice(4, 8, -9)

    def test_paper_section3_example(self):
        # Section 3: vectors (3,3) [index 11] and (-1,2) [index 7] form a
        # basis for p=4, k=8, s=9 since 3*7 - 2*11 = -1.
        lat = SectionLattice(4, 8, 9)
        v1 = LatticePoint(3, 3, 11)
        v2 = LatticePoint(-1, 2, 7)
        assert lat.contains(v1.b, v1.a) and lat.index_of(v1.b, v1.a) == 11
        assert lat.contains(v2.b, v2.a) and lat.index_of(v2.b, v2.a) == 7
        assert is_basis(v1, v2)

    def test_membership(self):
        lat = SectionLattice(4, 8, 9)
        assert lat.contains(4, 1)  # element 36 = 4*9
        assert not lat.contains(5, 1)  # element 37 not a multiple of 9
        with pytest.raises(ValueError, match="not in the lattice"):
            lat.index_of(5, 1)

    @given(procs, blocks, strides)
    def test_point_roundtrip(self, p, k, s):
        lat = SectionLattice(p, k, s)
        for i in range(-5, 10):
            pt = lat.point(i)
            assert pt.i == i
            assert p * k * pt.a + pt.b == i * s
            assert 0 <= pt.b < p * k
            assert lat.contains(pt.b, pt.a)
            assert lat.index_of(pt.b, pt.a) == i

    @given(procs, blocks, strides)
    def test_closed_under_subtraction(self, p, k, s):
        """Theorem 1: the point set is closed under subtraction."""
        lat = SectionLattice(p, k, s)
        a, b = lat.point(3), lat.point(7)
        diff = a - b
        assert lat.contains(diff.b, diff.a)
        assert lat.index_of(diff.b, diff.a) == -4

    @given(procs, blocks, strides)
    def test_euclid_basis(self, p, k, s):
        lat = SectionLattice(p, k, s)
        v1, v2 = lat.euclid_basis()
        assert is_basis(v1, v2)
        assert lat.contains(v1.b, v1.a)
        assert lat.contains(v2.b, v2.a)

    def test_iter_initial_cycle(self):
        lat = SectionLattice(4, 8, 9)
        pts = list(lat.iter_initial_cycle())
        assert len(pts) == 32  # pk/d = 32
        assert [pt.i for pt in pts] == list(range(32))
        on_p0 = list(lat.iter_initial_cycle(processor=0))
        assert all(0 <= pt.b < 8 for pt in on_p0)
        # Smallest positive index on processor 0 is 36 (paper Section 4).
        positive = [pt.i * 9 for pt in on_p0 if pt.i > 0]
        assert min(positive) == 36
        assert max(positive) == 261

    def test_iter_initial_cycle_bad_proc(self):
        with pytest.raises(ValueError, match="out of range"):
            list(SectionLattice(4, 8, 9).iter_initial_cycle(processor=4))


class TestPrimitiveAndBasis:
    def test_primitive(self):
        # gcd(a, i) == 1 test from Section 3.
        assert is_primitive_vector(LatticePoint(4, 1, 4))
        assert not is_primitive_vector(LatticePoint(8, 2, 8))

    def test_determinant(self):
        r = LatticePoint(4, 1, 4)
        l = LatticePoint(5, -1, -3)
        assert is_basis(r, l)  # 1*(-3) - (-1)*4 = 1
        assert not is_basis(r, r.scale(2))


class TestRLBasis:
    def test_paper_example(self):
        basis = compute_rl_basis(4, 8, 9)
        assert basis.r.vector == (4, 1)
        assert basis.r.i * 9 == 36
        assert basis.l.vector == (5, -1)
        assert basis.l.i * 9 == -27

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            compute_rl_basis(4, 8, 0)
        with pytest.raises(ValueError, match="pk divides s"):
            compute_rl_basis(4, 8, 64)
        # k=1: no offsets in (0, 1) -> degenerate.
        with pytest.raises(ValueError, match="special case"):
            compute_rl_basis(4, 1, 3)

    @given(procs, blocks, strides)
    @settings(max_examples=120)
    def test_rl_is_basis_and_extremal(self, p, k, s):
        """Theorem 2 plus the extremal construction of Section 4."""
        pk = p * k
        d = gcd(s, pk)
        if s % pk == 0 or len(range(d, k, d)) == 0:
            return  # degenerate cases raise; covered separately
        basis = compute_rl_basis(p, k, s)
        r, l = basis.r, basis.l
        assert is_basis(r, l)
        lat = SectionLattice(p, k, s)
        assert lat.contains(r.b, r.a) and lat.contains(l.b, l.a)
        assert 0 < r.b < k and 0 < l.b < k
        assert r.i > 0 and l.i < 0
        assert r.a >= 0 and l.a <= 0
        # Extremality: no lattice point with offset in (0, k) has a
        # positive index smaller than i_r, or a larger index within the
        # initial cycle than the one L was derived from.
        period = pk // d
        candidates = [
            (i, (i * s) % pk)
            for i in range(1, period)
            if 0 < (i * s) % pk < k
        ]
        assert r.i == min(i for i, _ in candidates)
        largest = max(i for i, _ in candidates)
        assert l.i == largest - period
