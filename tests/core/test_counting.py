"""Tests for counting/bounds utilities (upper-bound handling)."""

import pytest
from hypothesis import given, settings

from repro.core.baselines.naive import enumerate_local_elements
from repro.core.counting import (
    last_location,
    local_allocation_size,
    local_count,
    owner_histogram,
    section_length,
)

from ..conftest import bounded_access_params


class TestSectionLength:
    def test_basic(self):
        assert section_length(0, 9, 3) == 4
        assert section_length(0, 10, 3) == 4
        assert section_length(5, 4, 1) == 0

    def test_negative_stride(self):
        assert section_length(9, 0, -3) == 4
        assert section_length(0, 9, -3) == 0
        assert section_length(10, 10, -1) == 1

    def test_zero_stride(self):
        with pytest.raises(ValueError, match="nonzero"):
            section_length(0, 9, 0)

    def test_single(self):
        assert section_length(4, 4, 7) == 1


class TestLocalCount:
    def test_paper_example_counts(self):
        # A(4:319:9) over p=4, k=8: 36 elements total.
        total = sum(local_count(4, 8, 4, 319, 9, m) for m in range(4))
        assert total == section_length(4, 319, 9)

    def test_requires_positive_stride(self):
        with pytest.raises(ValueError, match="positive"):
            local_count(4, 8, 0, 10, -1, 0)

    @given(bounded_access_params())
    @settings(max_examples=200, deadline=None)
    def test_matches_enumeration(self, params):
        p, k, l, u, s, m = params
        want = len(enumerate_local_elements(p, k, l, u, s, m))
        assert local_count(p, k, l, u, s, m) == want


class TestLastLocation:
    def test_empty(self):
        assert last_location(2, 1, 0, 100, 4, 1) is None
        assert last_location(4, 8, 10, 5, 1, 0) is None  # empty section

    @given(bounded_access_params())
    @settings(max_examples=200, deadline=None)
    def test_matches_enumeration(self, params):
        p, k, l, u, s, m = params
        owned = enumerate_local_elements(p, k, l, u, s, m)
        want = owned[-1][0] if owned else None
        assert last_location(p, k, l, u, s, m) == want

    def test_requires_positive_stride(self):
        with pytest.raises(ValueError, match="positive"):
            last_location(4, 8, 10, 0, -2, 0)


class TestOwnerHistogram:
    @given(bounded_access_params())
    @settings(max_examples=100, deadline=None)
    def test_sums_to_section_length(self, params):
        p, k, l, u, s, _ = params
        hist = owner_histogram(p, k, l, u, s)
        assert len(hist) == p
        assert sum(hist) == section_length(l, u, s)


class TestAllocationSize:
    def test_validation(self):
        with pytest.raises(ValueError, match="nonnegative"):
            local_allocation_size(4, 8, -1, 0)
        with pytest.raises(ValueError, match="p > 0"):
            local_allocation_size(0, 8, 10, 0)
        with pytest.raises(ValueError, match="out of range"):
            local_allocation_size(4, 8, 10, 4)

    def test_sums_to_n(self):
        for n in (0, 1, 7, 31, 32, 33, 64, 100, 319, 320, 321):
            total = sum(local_allocation_size(4, 8, n, m) for m in range(4))
            assert total == n, n

    def test_matches_owned_enumeration(self):
        from repro.distribution.layout import CyclicLayout

        layout = CyclicLayout(3, 5)
        for n in (0, 4, 14, 15, 16, 44, 45, 46, 100):
            for m in range(3):
                want = len(list(layout.owned_indices(n, m)))
                assert local_allocation_size(3, 5, n, m) == want, (n, m)
