"""Stress tests: extreme parameter regimes, exact integer arithmetic.

The algorithms must be exact for any distribution parameters (Python
ints are arbitrary precision; nothing may silently assume word-sized
values).  The oracle here is the sorting baseline (itself
oracle-verified elsewhere) because brute force is infeasible at these
scales.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import compute_access_table
from repro.core.baselines.sorting import sorting_access_table
from repro.core.counting import local_count, last_location, section_length
from repro.core.generator import RLCursor
from repro.core.offsets import compute_offset_tables


class TestHugeStrides:
    @pytest.mark.parametrize("s", [10**9 + 7, 10**12 + 39, 2**61 - 1])
    def test_huge_stride_agrees_with_sorting(self, s):
        for m in (0, 13, 31):
            lat = compute_access_table(32, 16, 5, s, m)
            srt = sorting_access_table(32, 16, 5, s, m)
            assert (lat.start, lat.length, lat.gaps) == (
                srt.start, srt.length, srt.gaps
            )

    def test_huge_lower_bound(self):
        l = 10**15 + 11
        lat = compute_access_table(32, 16, l, 9973, 7)
        srt = sorting_access_table(32, 16, l, 9973, 7)
        assert lat.start == srt.start >= l
        assert lat.gaps == srt.gaps

    def test_power_of_two_interactions(self):
        # s sharing large powers of two with pk (worst gcd structure).
        for s in (2**10, 2**10 + 2**5, 3 * 2**8):
            for m in (0, 31):
                lat = compute_access_table(32, 32, 0, s, m)
                srt = sorting_access_table(32, 32, 0, s, m)
                assert (lat.start, lat.length, lat.gaps) == (
                    srt.start, srt.length, srt.gaps
                )


class TestLargeK:
    def test_k_4096(self):
        lat = compute_access_table(32, 4096, 0, 7, 16)
        srt = sorting_access_table(32, 4096, 0, 7, 16)
        assert lat.gaps == srt.gaps
        assert lat.length == 4096 // 1  # d = gcd(7, 32*4096) = 1 -> full k

    def test_offset_tables_large_k(self):
        tables = compute_offset_tables(8, 1024, 3, 11, 5)
        base = compute_access_table(8, 1024, 3, 11, 5)
        assert tables.local_addresses(2048) == base.local_addresses(2048)


class TestCursorLongRun:
    def test_cursor_stays_exact_over_many_periods(self):
        p, k, l, s, m = 4, 8, 4, 9, 1
        table = compute_access_table(p, k, l, s, m)
        cursor = RLCursor(p, k, l, s, m)
        n = 10_000
        want = table.local_addresses(n)
        got = []
        for _ in range(n):
            got.append(cursor.local)
            cursor.advance()
        assert got == want
        # Index after n steps: start + full periods' worth of stride.
        assert cursor.index == table.global_indices(n + 1)[-1]


class TestCountingAtScale:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=10**9),
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=10**7),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_partition_section(self, p, k, s, l, n_elems):
        u = l + (n_elems - 1) * s if n_elems else l - 1
        total = sum(local_count(p, k, l, u, s, m) for m in range(p))
        assert total == section_length(l, u, s) == n_elems

    def test_last_location_huge(self):
        l, s = 10**12, 10**6 + 3
        u = l + 10**6 * s
        for m in range(4):
            last = last_location(4, 8, l, u, s, m)
            if last is not None:
                assert l <= last <= u
                assert (last - l) % s == 0
                assert 8 * m <= last % 32 < 8 * (m + 1)
