"""Tests for multidimensional address composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multidim import (
    compose_flat_addresses,
    odometer_addresses,
    row_major_strides,
)


class TestStrides:
    def test_basic(self):
        assert row_major_strides((3, 4, 5)) == (20, 5, 1)
        assert row_major_strides((7,)) == (1,)

    def test_validation(self):
        with pytest.raises(ValueError, match="nonnegative"):
            row_major_strides((3, -1))


class TestCompose:
    def test_matches_numpy_semantics(self):
        shape = (4, 6)
        slots = [[0, 2], [1, 3, 5]]
        addrs = compose_flat_addresses(slots, shape)
        arr = np.arange(24).reshape(shape)
        want = arr[np.ix_([0, 2], [1, 3, 5])].ravel()
        assert np.array_equal(addrs, want)

    def test_validation(self):
        with pytest.raises(ValueError, match="one slot vector"):
            compose_flat_addresses([[0]], (2, 2))
        with pytest.raises(ValueError, match="at least one"):
            compose_flat_addresses([], ())
        with pytest.raises(ValueError, match="out of range"):
            compose_flat_addresses([[5]], (3,))
        with pytest.raises(ValueError, match="one-dimensional"):
            compose_flat_addresses([np.zeros((2, 2), dtype=np.int64)], (4,))

    def test_empty_dimension(self):
        assert compose_flat_addresses([[0, 1], []], (2, 3)).size == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),  # extent
                st.integers(min_value=0, max_value=5),  # slot count
            ),
            min_size=1,
            max_size=4,
        ),
        st.randoms(),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_odometer(self, dims, rng):
        shape = tuple(extent for extent, _ in dims)
        slots = [
            sorted(rng.sample(range(extent), min(count, extent)))
            for extent, count in dims
        ]
        fast = compose_flat_addresses(slots, shape).tolist()
        slow = odometer_addresses(slots, shape)
        assert fast == slow

    def test_odometer_validation(self):
        with pytest.raises(ValueError, match="one slot vector"):
            odometer_addresses([[0]], (2, 2))
