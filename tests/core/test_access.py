"""Tests for the linear-time algorithm (Figure 5), incl. oracle properties."""

import pytest
from hypothesis import given, settings

from repro.core.access import AccessTable, compute_access_table, start_location
from repro.core.baselines.naive import enumerate_local_elements, naive_access_table
from repro.core.euclid import gcd

from ..conftest import access_params


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError, match="processors"):
            compute_access_table(0, 8, 0, 9, 0)
        with pytest.raises(ValueError, match="block size"):
            compute_access_table(4, 0, 0, 9, 0)
        with pytest.raises(ValueError, match="stride"):
            compute_access_table(4, 8, 0, -9, 0)
        with pytest.raises(ValueError, match="out of range"):
            compute_access_table(4, 8, 0, 9, 4)


class TestStartLocation:
    def test_paper_example(self, paper_params):
        info = start_location(**paper_params)
        assert info.start == 13
        assert info.length == 8

    def test_empty_processor(self):
        # p=2, k=1, s=4 (pk=2, d=2): only even offsets solvable; with
        # l=0, processor 1 (offset 1) owns nothing.
        info = start_location(2, 1, 0, 4, 1)
        assert info.start is None and info.length == 0

    def test_start_is_smallest_owned(self):
        for m in range(4):
            info = start_location(4, 8, 4, 9, m)
            owned = enumerate_local_elements(4, 8, 4, 4 + 9 * 200, 9, m)
            assert info.start == owned[0][0]


class TestSpecialCases:
    def test_length_zero(self):
        table = compute_access_table(2, 1, 0, 4, 1)
        assert table.is_empty
        assert table.gaps == () and table.start is None
        assert table.local_addresses(0) == []
        with pytest.raises(ValueError, match="owns no"):
            table.local_addresses(1)

    def test_length_one(self):
        # pk = 2, s = 2, d = 2: every access lands on offset 0 of proc 0.
        table = compute_access_table(2, 1, 0, 2, 0)
        assert table.length == 1
        assert table.gaps == (1,)  # k*s/d = 1*2/2
        naive = naive_access_table(2, 1, 0, 2, 0)
        assert table.gaps == naive.gaps and table.start == naive.start

    def test_pk_divides_s(self):
        # s = pk: all accesses at one offset; each processor owns at most
        # one offset class.
        table = compute_access_table(4, 8, 3, 32, 0)
        naive = naive_access_table(4, 8, 3, 32, 0)
        assert (table.start, table.length, table.gaps) == (
            naive.start, naive.length, naive.gaps
        )


class TestPaperWalk:
    def test_am_table(self, paper_params):
        table = compute_access_table(**paper_params)
        assert table.start == 13
        assert table.length == 8
        assert table.gaps == (3, 12, 15, 12, 3, 12, 3, 12)

    def test_global_walk(self, paper_params):
        # Figure 6's rectangles: the owned elements visited, ending at the
        # first point of the next cycle (index 301).
        table = compute_access_table(**paper_params)
        assert table.global_indices(9) == [13, 40, 76, 139, 175, 202, 238, 265, 301]

    def test_start_local(self, paper_params):
        table = compute_access_table(**paper_params)
        # Element 13: row 0, offset 13, block offset 5 -> local address 5.
        assert table.start_local == 5

    def test_basis_attached(self, paper_params):
        table = compute_access_table(**paper_params)
        assert table.basis is not None
        assert table.basis.r.vector == (4, 1)
        assert table.basis.l.vector == (5, -1)


class TestAgainstOracle:
    @given(access_params())
    @settings(max_examples=250, deadline=None)
    def test_matches_naive(self, params):
        p, k, l, s, m = params
        fast = compute_access_table(p, k, l, s, m)
        slow = naive_access_table(p, k, l, s, m)
        assert fast.start == slow.start
        assert fast.length == slow.length
        assert fast.gaps == slow.gaps
        assert fast.index_gaps == slow.index_gaps

    @given(access_params())
    @settings(max_examples=100, deadline=None)
    def test_walk_visits_owned_elements_in_order(self, params):
        p, k, l, s, m = params
        table = compute_access_table(p, k, l, s, m)
        if table.is_empty:
            assert enumerate_local_elements(p, k, l, l + s * 50, s, m) == []
            return
        count = 2 * table.length + 1
        u = l + s * (3 * p * k // gcd(s, p * k)) * 2  # cover > 2 periods
        oracle = enumerate_local_elements(p, k, l, u, s, m)[:count]
        assert table.global_indices(len(oracle)) == [g for g, _ in oracle]
        assert table.local_addresses(len(oracle)) == [a for _, a in oracle]

    @given(access_params())
    @settings(max_examples=100, deadline=None)
    def test_gap_invariants(self, params):
        """Gaps are positive; one period of gaps spans k*s/d local cells
        and pk*s/d global indices."""
        p, k, l, s, m = params
        table = compute_access_table(p, k, l, s, m)
        if table.is_empty:
            return
        d = gcd(s, p * k)
        assert all(g > 0 for g in table.gaps)
        assert sum(table.gaps) == k * s // d
        assert sum(table.index_gaps) == p * k * s // d
        assert len(table.gaps) == table.length <= k

    @given(access_params())
    @settings(max_examples=60, deadline=None)
    def test_table_independent_of_lower_bound(self, params):
        """Section 3: the lattice (hence the cyclic gap multiset) does not
        depend on l -- tables for different l are rotations of each other."""
        p, k, l, s, m = params
        t1 = compute_access_table(p, k, l, s, m)
        t2 = compute_access_table(p, k, l + s * 3, s, m)
        assert t1.length == t2.length
        if t1.length:
            doubled = t1.gaps + t1.gaps
            assert any(
                doubled[i : i + t1.length] == t2.gaps for i in range(t1.length)
            )


class TestAccessTableApi:
    def test_iter_local_addresses(self, paper_params):
        table = compute_access_table(**paper_params)
        stream = table.iter_local_addresses()
        first = [next(stream) for _ in range(10)]
        assert first == table.local_addresses(10)

    def test_negative_count(self, paper_params):
        table = compute_access_table(**paper_params)
        with pytest.raises(ValueError, match="nonnegative"):
            table.local_addresses(-1)
        with pytest.raises(ValueError, match="nonnegative"):
            table.global_indices(-1)

    def test_empty_iter(self):
        table = compute_access_table(2, 1, 0, 4, 1)
        assert list(table.iter_local_addresses()) == []

    def test_dataclass_fields(self, paper_params):
        table = compute_access_table(**paper_params)
        assert isinstance(table, AccessTable)
        assert table.pk == 32
        assert not table.is_empty
