"""Tests for the table-free R/L address generator (Section 6.2)."""

import pytest
from hypothesis import given, settings

from repro.core.access import compute_access_table
from repro.core.baselines.naive import enumerate_local_elements
from repro.core.generator import RLCursor, iter_global_indices, iter_local_addresses

from ..conftest import access_params


class TestCursor:
    def test_paper_walk(self, paper_params):
        cur = RLCursor(**paper_params)
        indices, locals_ = [], []
        for _ in range(9):
            indices.append(cur.index)
            locals_.append(cur.local)
            cur.advance()
        assert indices == [13, 40, 76, 139, 175, 202, 238, 265, 301]
        table = compute_access_table(**paper_params)
        assert locals_ == table.local_addresses(9)

    def test_empty_cursor(self):
        cur = RLCursor(2, 1, 0, 4, 1)
        assert cur.is_empty
        assert cur.index is None and cur.local is None
        with pytest.raises(RuntimeError, match="empty"):
            cur.advance()

    def test_length_one(self):
        cur = RLCursor(2, 1, 0, 2, 0)
        first = cur.index
        cur.advance()
        assert cur.index == first + 2  # full period: pk*s/d = 2*2/2*... = 2

    @given(access_params())
    @settings(max_examples=150, deadline=None)
    def test_matches_table(self, params):
        p, k, l, s, m = params
        table = compute_access_table(p, k, l, s, m)
        cur = RLCursor(p, k, l, s, m)
        if table.is_empty:
            assert cur.is_empty
            return
        n = 2 * table.length + 3
        got_idx, got_loc = [], []
        for _ in range(n):
            got_idx.append(cur.index)
            got_loc.append(cur.local)
            cur.advance()
        assert got_idx == table.global_indices(n)
        assert got_loc == table.local_addresses(n)


class TestIterators:
    def test_bounded(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        u = 250
        idx = list(iter_global_indices(p, k, l, s, m, u))
        want = [g for g, _ in enumerate_local_elements(p, k, l, u, s, m)]
        assert idx == want
        addrs = list(iter_local_addresses(p, k, l, s, m, u))
        assert addrs == [a for _, a in enumerate_local_elements(p, k, l, u, s, m)]

    def test_empty_stream(self):
        assert list(iter_global_indices(2, 1, 0, 4, 1, 100)) == []
        assert list(iter_local_addresses(2, 1, 0, 4, 1, 100)) == []

    def test_unbounded_stream(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        stream = iter_global_indices(p, k, l, s, m)
        got = [next(stream) for _ in range(5)]
        assert got == [13, 40, 76, 139, 175]

    @given(access_params())
    @settings(max_examples=100, deadline=None)
    def test_bounded_matches_oracle(self, params):
        p, k, l, s, m = params
        u = l + 60 * s
        got = list(
            zip(
                iter_global_indices(p, k, l, s, m, u),
                iter_local_addresses(p, k, l, s, m, u),
            )
        )
        assert got == enumerate_local_elements(p, k, l, u, s, m)
