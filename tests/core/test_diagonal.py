"""Tests for diagonal-section enumeration (paper Section 8 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagonal import (
    DiagonalAccess,
    diagonal_iterations,
    diagonal_iterations_brute,
)


@st.composite
def diagonal_params(draw):
    p_row = draw(st.integers(min_value=1, max_value=4))
    k_row = draw(st.integers(min_value=1, max_value=6))
    p_col = draw(st.integers(min_value=1, max_value=4))
    k_col = draw(st.integers(min_value=1, max_value=6))
    r0 = draw(st.integers(min_value=0, max_value=20))
    c0 = draw(st.integers(min_value=0, max_value=20))
    rs = draw(st.integers(min_value=-4, max_value=4))
    cs = draw(st.integers(min_value=-4, max_value=4))
    if rs == 0 and cs == 0:
        rs = 1
    count = draw(st.integers(min_value=0, max_value=200))
    return DiagonalAccess(p_row, k_row, p_col, k_col, r0, rs, c0, cs, count)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError, match="p_row"):
            DiagonalAccess(0, 2, 2, 2, 0, 1, 0, 1, 10)
        with pytest.raises(ValueError, match="at least one"):
            DiagonalAccess(2, 2, 2, 2, 0, 0, 0, 0, 10)
        with pytest.raises(ValueError, match="nonnegative"):
            DiagonalAccess(2, 2, 2, 2, 0, 1, 0, 1, -1)

    def test_bad_coords(self):
        access = DiagonalAccess(2, 2, 2, 2, 0, 1, 0, 1, 10)
        with pytest.raises(ValueError, match="row coordinate"):
            diagonal_iterations(access, (2, 0))
        with pytest.raises(ValueError, match="col coordinate"):
            diagonal_iterations(access, (0, -1))


class TestMainDiagonal:
    def test_square_main_diagonal(self):
        # 2x2 grid, cyclic(2) in both dims, main diagonal of a 16x16 array.
        access = DiagonalAccess(2, 2, 2, 2, 0, 1, 0, 1, 16)
        covered = []
        for mr in range(2):
            for mc in range(2):
                ts = diagonal_iterations(access, (mr, mc))
                assert ts == diagonal_iterations_brute(access, (mr, mc))
                covered.extend(ts)
        assert sorted(covered) == list(range(16))

    def test_anti_diagonal(self):
        access = DiagonalAccess(2, 3, 2, 3, 0, 1, 15, -1, 16)
        for mr in range(2):
            for mc in range(2):
                assert diagonal_iterations(access, (mr, mc)) == (
                    diagonal_iterations_brute(access, (mr, mc))
                )

    def test_constant_row(self):
        # rs = 0: a row section seen as a degenerate diagonal.
        access = DiagonalAccess(2, 2, 3, 2, 5, 0, 0, 1, 30)
        for mr in range(2):
            for mc in range(3):
                assert diagonal_iterations(access, (mr, mc)) == (
                    diagonal_iterations_brute(access, (mr, mc))
                )


class TestProperty:
    @given(diagonal_params())
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, access):
        for mr in range(access.p_row):
            for mc in range(access.p_col):
                fast = diagonal_iterations(access, (mr, mc))
                slow = diagonal_iterations_brute(access, (mr, mc))
                assert fast == slow, (access, mr, mc)

    @given(diagonal_params())
    @settings(max_examples=60, deadline=None)
    def test_partition(self, access):
        """Every iteration is owned by exactly one coordinate pair."""
        total = []
        for mr in range(access.p_row):
            for mc in range(access.p_col):
                total.extend(diagonal_iterations(access, (mr, mc)))
        assert sorted(total) == list(range(access.count))
