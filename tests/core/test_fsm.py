"""Tests for the FSM view of the access sequence."""

import pytest
from hypothesis import given, settings

from repro.core.access import compute_access_table
from repro.core.fsm import AccessFSM
from repro.core.offsets import UNUSED, compute_offset_tables

from ..conftest import access_params


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="p > 0"):
            AccessFSM(0, 8, 9)
        with pytest.raises(ValueError, match="positive"):
            AccessFSM(4, 8, 0)

    def test_reachable_states_follow_residue_class(self):
        fsm = AccessFSM(4, 8, 6)  # d = gcd(6, 32) = 2
        assert fsm.d == 2
        assert fsm.reachable_states(0) == list(range(0, 32, 2))
        assert fsm.reachable_states(5) == list(range(1, 32, 2))
        assert len(fsm.states) == 32

    def test_transition_validation(self):
        fsm = AccessFSM(4, 8, 6)
        with pytest.raises(ValueError, match="out of range"):
            fsm.transition(32)

    def test_processor_states(self):
        fsm = AccessFSM(4, 8, 9)
        assert fsm.processor_states(1) == [8, 9, 10, 11, 12, 13, 14, 15]
        fsm2 = AccessFSM(4, 8, 6)
        assert fsm2.processor_states(1, l=3) == [9, 11, 13, 15]
        with pytest.raises(ValueError, match="out of range"):
            fsm.processor_states(4)


class TestPaperExample:
    def test_start_state(self):
        fsm = AccessFSM(4, 8, 9)
        # start = 13 for l=4, m=1; its row offset is 13.
        assert fsm.start_state(4, 1) == 13

    def test_table_matches_figure5(self):
        fsm = AccessFSM(4, 8, 9)
        state, gaps = fsm.table_for(4, 1)
        assert state == 13
        assert gaps == [3, 12, 15, 12, 3, 12, 3, 12]

    def test_render(self):
        text = fsm_text = AccessFSM(4, 8, 9).render(m=1)
        assert "8 states" in text
        assert "offset   13" in text or "offset 13" in text.replace("  ", " ")


class TestAgainstOffsetTables:
    @given(access_params())
    @settings(max_examples=120, deadline=None)
    def test_matches_offset_tables(self, params):
        """Per-processor FSM slices equal the Section-6.2 tables."""
        p, k, l, s, m = params
        fsm = AccessFSM(p, k, s)
        tables = compute_offset_tables(p, k, l, s, m)
        if tables.length == 0:
            assert fsm.start_state(l, m) is None
            return
        start = fsm.start_state(l, m)
        assert start == tables.start % (p * k)
        # Follow both machines one full cycle.
        b = start
        o = tables.start_offset
        for _ in range(tables.length):
            tr = fsm.transition(b)
            assert tables.delta_m[o] != UNUSED
            assert tr.memory_gap == tables.delta_m[o]
            assert tr.next_offset - k * m == tables.next_offset[o]
            b, o = tr.next_offset, tables.next_offset[o]

    @given(access_params())
    @settings(max_examples=80, deadline=None)
    def test_table_for_matches_access_table(self, params):
        p, k, l, s, m = params
        fsm = AccessFSM(p, k, s)
        start, gaps = fsm.table_for(l, m)
        table = compute_access_table(p, k, l, s, m)
        if table.is_empty:
            assert start is None and gaps == []
        else:
            assert start == table.start % (p * k)
            assert gaps == list(table.gaps)

    def test_shared_across_processors(self):
        """One FSM serves every processor and every lower bound -- the
        compile-time caching the paper's Section 6.1 describes."""
        fsm = AccessFSM(4, 8, 9)
        for l in (0, 4, 17):
            for m in range(4):
                table = compute_access_table(4, 8, l, 9, m)
                _, gaps = fsm.table_for(l, m)
                assert gaps == list(table.gaps)
