"""Four-way cross-validation: every table construction agrees everywhere.

One consolidated property run pitting the lattice algorithm, the
sorting baseline (all three sort modes), the Hiranandani special case
(where applicable), the offset-indexed tables, the FSM, and the R/L
cursor against the brute-force oracle on the same random inputs --
the reproduction's single strongest internal-consistency statement.
"""

from hypothesis import given, settings

from repro.core.access import compute_access_table
from repro.core.baselines.naive import naive_access_table
from repro.core.baselines.sorting import sorting_access_table
from repro.core.baselines.special import special_access_table
from repro.core.fsm import AccessFSM
from repro.core.generator import RLCursor
from repro.core.offsets import compute_offset_tables

from ..conftest import access_params


@given(access_params())
@settings(max_examples=300, deadline=None)
def test_all_implementations_agree(params):
    p, k, l, s, m = params
    oracle = naive_access_table(p, k, l, s, m)

    lattice = compute_access_table(p, k, l, s, m)
    assert (lattice.start, lattice.length, lattice.gaps, lattice.index_gaps) == (
        oracle.start, oracle.length, oracle.gaps, oracle.index_gaps
    )

    for sort in ("timsort", "radix"):
        sorting = sorting_access_table(p, k, l, s, m, sort=sort)
        assert (sorting.start, sorting.gaps) == (oracle.start, oracle.gaps)

    if 0 < s % (p * k) < k:
        special = special_access_table(p, k, l, s, m)
        assert (special.start, special.gaps) == (oracle.start, oracle.gaps)

    tables = compute_offset_tables(p, k, l, s, m)
    fsm = AccessFSM(p, k, s)
    fsm_start, fsm_gaps = fsm.table_for(l, m)
    if oracle.is_empty:
        assert tables.length == 0
        assert fsm_start is None
        assert RLCursor(p, k, l, s, m).is_empty
        return

    n = 2 * oracle.length + 1
    walk = oracle.local_addresses(n)
    assert tables.local_addresses(n) == walk
    assert fsm_start == oracle.start % (p * k)
    assert fsm_gaps == list(oracle.gaps)

    cursor = RLCursor(p, k, l, s, m)
    stream = []
    for _ in range(n):
        stream.append(cursor.local)
        cursor.advance()
    assert stream == walk
