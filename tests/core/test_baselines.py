"""Tests for the baseline algorithms (Chatterjee sorting, Hiranandani
special case, naive oracle) and their agreement with the lattice method."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import compute_access_table
from repro.core.baselines.naive import enumerate_local_elements, naive_access_table
from repro.core.baselines.sorting import (
    RADIX_THRESHOLD,
    lsd_radix_sort,
    sorting_access_table,
)
from repro.core.baselines.special import SpecialCaseInapplicable, special_access_table

from ..conftest import access_params


class TestRadixSort:
    def test_empty(self):
        assert lsd_radix_sort([]) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            lsd_radix_sort([3, -1])

    def test_bad_radix(self):
        with pytest.raises(ValueError, match="positive"):
            lsd_radix_sort([1], radix_bits=0)

    @given(st.lists(st.integers(min_value=0, max_value=10**9)))
    def test_matches_sorted(self, values):
        assert lsd_radix_sort(values) == sorted(values)

    @given(st.lists(st.integers(min_value=0, max_value=10**6)),
           st.integers(min_value=1, max_value=16))
    def test_any_radix_width(self, values, bits):
        assert lsd_radix_sort(values, radix_bits=bits) == sorted(values)


class TestSortingBaseline:
    def test_paper_example(self, paper_params):
        table = sorting_access_table(**paper_params)
        assert table.start == 13
        assert table.gaps == (3, 12, 15, 12, 3, 12, 3, 12)

    def test_validation(self):
        with pytest.raises(ValueError, match="stride"):
            sorting_access_table(4, 8, 0, 0, 0)
        with pytest.raises(ValueError, match="unknown sort"):
            sorting_access_table(4, 8, 0, 9, 0, sort="quick")
        with pytest.raises(ValueError, match="out of range"):
            sorting_access_table(4, 8, 0, 9, 9)

    @pytest.mark.parametrize("sort", ["timsort", "radix", "auto"])
    @pytest.mark.parametrize("k", [4, RADIX_THRESHOLD, 128])
    def test_sort_modes_agree(self, sort, k):
        for m in (0, 15, 31):
            base = compute_access_table(32, k, 5, 7, m)
            table = sorting_access_table(32, k, 5, 7, m, sort=sort)
            assert (table.start, table.length, table.gaps, table.index_gaps) == (
                base.start, base.length, base.gaps, base.index_gaps
            )

    @given(access_params())
    @settings(max_examples=150, deadline=None)
    def test_matches_lattice(self, params):
        p, k, l, s, m = params
        lat = compute_access_table(p, k, l, s, m)
        srt = sorting_access_table(p, k, l, s, m)
        assert (srt.start, srt.length, srt.gaps, srt.index_gaps) == (
            lat.start, lat.length, lat.gaps, lat.index_gaps
        )


class TestSpecialCase:
    def test_applicability(self):
        # s mod pk = 9 >= k = 8 -> inapplicable.
        with pytest.raises(SpecialCaseInapplicable):
            special_access_table(4, 8, 0, 9, 0)
        # s mod pk == 0 -> rejected (degenerate; general algorithm handles it).
        with pytest.raises(SpecialCaseInapplicable):
            special_access_table(4, 8, 0, 32, 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="stride"):
            special_access_table(4, 8, 0, -3, 0)
        with pytest.raises(ValueError, match="out of range"):
            special_access_table(4, 8, 0, 3, 7)

    def test_simple_case(self):
        lat = compute_access_table(4, 8, 0, 3, 2)
        spc = special_access_table(4, 8, 0, 3, 2)
        assert (spc.start, spc.length, spc.gaps, spc.index_gaps) == (
            lat.start, lat.length, lat.gaps, lat.index_gaps
        )

    def test_large_stride_wraps(self):
        # s = pk + sigma with sigma < k also qualifies.
        lat = compute_access_table(4, 8, 1, 32 + 5, 3)
        spc = special_access_table(4, 8, 1, 32 + 5, 3)
        assert (spc.start, spc.gaps) == (lat.start, lat.gaps)

    @given(access_params())
    @settings(max_examples=150, deadline=None)
    def test_matches_lattice_when_applicable(self, params):
        p, k, l, s, m = params
        if not 0 < s % (p * k) < k:
            return
        lat = compute_access_table(p, k, l, s, m)
        spc = special_access_table(p, k, l, s, m)
        assert (spc.start, spc.length, spc.gaps, spc.index_gaps) == (
            lat.start, lat.length, lat.gaps, lat.index_gaps
        )


class TestNaiveOracle:
    def test_enumerate_validation(self):
        with pytest.raises(ValueError, match="nonzero"):
            enumerate_local_elements(4, 8, 0, 10, 0, 0)
        with pytest.raises(ValueError, match="out of range"):
            enumerate_local_elements(4, 8, 0, 10, 1, 4)
        with pytest.raises(ValueError, match="p > 0"):
            enumerate_local_elements(0, 8, 0, 10, 1, 0)

    def test_negative_stride_traversal_order(self):
        # 100:4:-9 traverses 100, 91, ..., 10; its normalized section is
        # 10:100:9.  Same element set, opposite traversal order.
        down = enumerate_local_elements(4, 8, 100, 4, -9, 1)
        up = enumerate_local_elements(4, 8, 10, 100, 9, 1)
        assert down == list(reversed(up))
        assert down  # processor 1 owns some of these elements

    def test_naive_rejects_negative_stride(self):
        with pytest.raises(ValueError, match="positive"):
            naive_access_table(4, 8, 0, -9, 1)

    def test_empty(self):
        table = naive_access_table(2, 1, 0, 4, 1)
        assert table.is_empty
