"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import COMMANDS, main


class TestDispatch:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "demo" in out
        assert main(["--help"]) == 0

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "start = 13" in out
        assert "AM    = [3, 12, 15, 12, 3, 12, 3, 12]" in out

    def test_command_table_complete(self):
        assert set(COMMANDS) == {
            "table1", "figure7", "table2", "ablations", "opcounts", "claims",
            "costs", "table2c", "table1c", "trace", "profile", "serve",
            "plan-client",
        }

    def test_costs_smoke(self, capsys):
        assert main(["costs", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "hypercube" in out and "transpose" in out.lower()

    def test_opcounts_forwarding(self, capsys):
        assert main(["opcounts", "--stride", "7"]) == 0
        out = capsys.readouterr().out
        assert "s=7" in out


class TestClaimsHarness:
    def test_claims_structure(self):
        from repro.bench.claims import (
            run_lower_bound_claim,
            run_processor_claim,
            spread,
        )

        rows = run_lower_bound_claim(p=4, k=8, s=9, repeats=1)
        assert [l for l, _ in rows][0] == 0
        assert spread(rows) >= 1.0
        rows = run_processor_claim(k=8, s=9, repeats=1)
        assert all(t > 0 for _, t in rows)
