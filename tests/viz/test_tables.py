"""Tests for AM-table and traffic-heatmap renderings."""

import numpy as np
import pytest

from repro.viz.tables import render_am_tables, render_traffic


class TestAmTables:
    def test_paper_tables(self):
        text = render_am_tables(4, 8, 4, 9)
        assert "m=1" in text
        assert "start=13" in text
        assert "[3, 12, 15, 12, 3, 12, 3, 12]" in text
        # All four processors listed.
        assert text.count("AM=") == 4

    def test_empty_processor(self):
        text = render_am_tables(2, 1, 0, 4)
        assert "owns no section elements" in text


class TestTraffic:
    def test_structure(self):
        matrix = np.array([[6, 0, 2], [0, 6, 0], [1, 0, 6]])
        text = render_traffic(matrix)
        lines = text.splitlines()
        assert "max=6" in lines[0]
        assert lines[-1].startswith("recv")
        # Row totals annotated.
        assert "sent 8" in text and "sent 6" in text and "sent 7" in text
        # Column totals.
        assert lines[-1].split()[1:] == ["7", "6", "8"]

    def test_zero_matrix(self):
        text = render_traffic(np.zeros((2, 2), dtype=int))
        assert "max=0" in text

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            render_traffic(np.zeros((2, 3)))

    def test_shades_scale(self):
        matrix = np.array([[0, 100], [1, 0]])
        text = render_traffic(matrix)
        # The peak cell uses the darkest glyph, the tiny one a light glyph.
        assert "@" in text
