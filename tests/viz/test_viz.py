"""Tests for the ASCII figure renderers."""

import pytest

from repro.distribution.section import RegularSection
from repro.viz.lattice_diagram import describe_basis, render_lattice_plane
from repro.viz.layout_ascii import processor_header, render_layout, render_walk


class TestRenderLayout:
    def test_figure1_structure(self):
        # p=4, k=8, section l=0 s=9 (Figure 1's rectangles).
        text = render_layout(4, 8, 320, section=RegularSection(0, 319, 9))
        lines = text.splitlines()
        assert "Processor 0" in lines[0] and "Processor 3" in lines[0]
        assert len(lines) == 1 + 10  # header + 320/32 rows
        # Lower bound is circled, later section elements bracketed.
        assert "(0)" in text
        assert "[9]" in text and "[18]" in text and "[108]" in text
        # Non-section elements are bare.
        assert "[1]" not in text and "(1)" not in text

    def test_block_separators(self):
        text = render_layout(2, 2, 8)
        for line in text.splitlines()[1:]:
            assert line.count("|") == 1

    def test_no_section(self):
        text = render_layout(2, 2, 8)
        assert "[" not in text and "{" not in text

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            render_layout(2, 2, 0)

    def test_partial_last_row(self):
        text = render_layout(2, 3, 7)
        assert "6" in text and "7" not in text.replace("Processor", "")


class TestRenderWalk:
    def test_figure6(self):
        # p=4, k=8, l=4, s=9, m=1: visited points 13, 40, 76, 139, ...
        text = render_walk(4, 8, 4, 9, 1, 320)
        assert "(4)" in text  # circled lower bound
        for visited in (13, 40, 76, 139, 175, 202, 238, 265, 301):
            assert f"{{{visited}}}" in text
        # 103 is a section element but not visited on processor 1.
        assert "[103]" in text

    def test_empty_processor_walk(self):
        text = render_walk(2, 1, 0, 4, 1, 16)
        assert "{" not in text


class TestHeader:
    def test_width_scales_with_k(self):
        header = processor_header(2, 4, 5)
        assert header.index("Processor 1") > len("Processor 0")


class TestLatticePlane:
    def test_marks_multiples_of_stride(self):
        text = render_lattice_plane(4, 8, 9, rows=3)
        lines = text.splitlines()
        assert len(lines) == 3
        # Row 0: elements 0..31; multiples of 9 at offsets 0, 9, 18, 27.
        flat = lines[0].replace("|", "")
        assert [i for i, c in enumerate(flat) if c == "*"] == [0, 9, 18, 27]

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            render_lattice_plane(4, 8, 9, rows=0)


class TestDescribeBasis:
    def test_paper_values(self):
        text = describe_basis(4, 8, 9)
        assert "R = (4, 1)" in text
        assert "L = (5, -1)" in text
        assert "element 36" in text
        assert "element -27" in text
        assert text.endswith("1")  # |determinant| == 1
