"""Differential tests: production vs oracle evaluation, bit-identical.

The acceptance bar for the service is that every served plan is
bit-identical to direct computation.  "Bit-identical" is checked at the
representation that actually crosses the wire: the canonical JSON
encoding (sorted keys, compact separators), compared as bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import RequestError
from repro.service.queries import evaluate, reference


def canonical(obj: dict) -> bytes:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode()


PLAN_CASES = [
    {"p": 4, "k": 8, "l": 4, "s": 9, "m": 1},  # the paper's worked example
    {"p": 1, "k": 1, "l": 0, "s": 1, "m": 0},
    {"p": 3, "k": 5, "l": 2, "s": 7, "m": 2},
    {"p": 8, "k": 3, "l": 11, "s": 13, "m": 5},
    {"p": 2, "k": 16, "l": 0, "s": 31, "m": 1},
    {"p": 5, "k": 4, "l": 3, "s": 20, "m": 0},  # stride spanning full courses
]

LOCALIZE_CASES = [
    dict(p=4, k=8, extent=64, align_a=1, align_b=0, lower=0, upper=63, stride=3, rank=2),
    dict(p=2, k=4, extent=40, align_a=2, align_b=1, lower=3, upper=37, stride=5, rank=1),
    dict(p=3, k=5, extent=50, align_a=-1, align_b=49, lower=0, upper=49, stride=7, rank=0),
    dict(p=1, k=3, extent=20, align_a=1, align_b=0, lower=19, upper=0, stride=4, rank=0),
]

SCHEDULE_CASES = [
    {
        "n": 64, "p": 4,
        "lhs": {"k": 8, "align_a": 1, "align_b": 0, "lower": 0, "upper": 63, "stride": 1},
        "rhs": {"k": 4, "align_a": 1, "align_b": 0, "lower": 0, "upper": 63, "stride": 1},
    },
    {
        "n": 48, "p": 3,
        "lhs": {"k": 4, "align_a": 1, "align_b": 2, "lower": 1, "upper": 43, "stride": 3},
        "rhs": {"k": 6, "align_a": 1, "align_b": 0, "lower": 2, "upper": 44, "stride": 3},
    },
    {
        "n": 30, "p": 2,
        "lhs": {"k": 5, "align_a": 1, "align_b": 0, "lower": 0, "upper": 29, "stride": 2},
        "rhs": {"k": 3, "align_a": 1, "align_b": 1, "lower": 0, "upper": 28, "stride": 2},
    },
]


class TestDifferential:
    @pytest.mark.parametrize("params", PLAN_CASES)
    def test_plan_bit_identical(self, params):
        assert canonical(evaluate("plan", params)) == canonical(
            reference("plan", params)
        )

    @pytest.mark.parametrize("params", LOCALIZE_CASES)
    def test_localize_bit_identical(self, params):
        cached = evaluate("localize", params)
        uncached = evaluate("localize", params, use_cache=False)
        oracle = reference("localize", params)
        assert canonical(cached) == canonical(uncached) == canonical(oracle)

    @pytest.mark.parametrize("params", SCHEDULE_CASES)
    def test_schedule_bit_identical(self, params):
        cached = evaluate("schedule", params)
        uncached = evaluate("schedule", params, use_cache=False)
        oracle = reference("schedule", params)
        assert canonical(cached) == canonical(uncached) == canonical(oracle)

    def test_results_are_pure_json(self):
        # No numpy scalars or other non-JSON types may leak through.
        for params in PLAN_CASES[:2]:
            json.dumps(evaluate("plan", params), allow_nan=False)
        for params in LOCALIZE_CASES[:2]:
            json.dumps(evaluate("localize", params), allow_nan=False)
        for params in SCHEDULE_CASES[:1]:
            json.dumps(evaluate("schedule", params), allow_nan=False)


class TestValidation:
    @pytest.mark.parametrize(
        "op,params,match",
        [
            ("plan", {}, "missing required parameter 'p'"),
            ("plan", {"p": 0, "k": 1, "l": 0, "s": 1, "m": 0}, ">= 1"),
            ("plan", {"p": 4, "k": 8, "l": 4, "s": 9, "m": 4}, "<= 3"),
            ("plan", {"p": 4, "k": 8, "l": 4, "s": 9, "m": True}, "integer"),
            ("plan", {"p": 4, "k": 8, "l": 4, "s": 9, "m": 0, "zz": 1}, "unknown"),
            ("plan", {"p": 1 << 13, "k": 1 << 12, "l": 0, "s": 1, "m": 0}, "p\\*k"),
            ("localize", {"p": 2, "k": 2, "extent": 10, "align_a": 0,
                          "align_b": 0, "lower": 0, "upper": 9, "stride": 1,
                          "rank": 0}, "nonzero"),
            ("schedule", {"n": 10, "p": 2, "lhs": 3, "rhs": {}}, "object"),
            ("schedule", {"n": 10, "p": 2,
                          "lhs": {"k": 2, "lower": 0, "upper": 9, "stride": 1},
                          "rhs": {"k": 2, "lower": 0, "upper": 4, "stride": 1}},
             "conformable"),
        ],
    )
    def test_bad_params_named(self, op, params, match):
        with pytest.raises(RequestError, match=match):
            evaluate(op, params)
        with pytest.raises(RequestError):
            reference(op, params)

    def test_unknown_op_rejected(self):
        with pytest.raises(RequestError, match="unknown query op"):
            evaluate("nonesuch", {})
        with pytest.raises(RequestError, match="unknown query op"):
            reference("nonesuch", {})
