"""End-to-end planning-server tests over real unix-socket connections.

pytest-asyncio is not a dependency: each test drives its own event loop
with ``asyncio.run`` from a synchronous test function.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.service import PlanServer, ServiceChaos, ServiceConfig
from repro.service.queries import evaluate, reference
from repro.service.snapshot import load_snapshot
from repro.service.wire import read_message, write_message

PLAN_A = {"p": 4, "k": 8, "l": 4, "s": 9, "m": 1}
PLAN_B = {"p": 4, "k": 8, "l": 4, "s": 7, "m": 2}
PLAN_C = {"p": 3, "k": 5, "l": 2, "s": 7, "m": 0}


def canonical(obj) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()


class Conn:
    """One raw client connection speaking the framed-JSON protocol."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._next_id = 0

    @classmethod
    async def open(cls, path: str) -> "Conn":
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer)

    async def request(self, op: str, params=None, deadline_ms=5000, **extra) -> dict:
        self._next_id += 1
        msg = {"id": self._next_id, "op": op, "params": params or {},
               "deadline_ms": deadline_ms, **extra}
        await write_message(self.writer, msg)
        return await read_message(self.reader, timeout=15.0)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_with_server(scenario, tmp_path, **cfg_overrides):
    """Boot a server on a fresh unix socket, run ``scenario(server,
    path)``, and always stop the server; returns the scenario result."""
    path = str(tmp_path / "plan.sock")
    cfg_overrides.setdefault("snapshot_interval_s", 600.0)

    async def main():
        server = PlanServer(ServiceConfig(unix_path=path, **cfg_overrides))
        await server.start()
        try:
            return await scenario(server, path)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestBasicOps:
    def test_ping_and_stats(self, tmp_path):
        async def scenario(server, path):
            conn = await Conn.open(path)
            pong = await conn.request("ping")
            assert pong["ok"] and pong["result"]["pong"] and pong["id"] == 1
            assert pong["source"] == "inline" and not pong["degraded"]
            stats = await conn.request("stats")
            assert stats["result"]["counters"]["requests"] == 2
            assert stats["result"]["cache"]["entries"] == 0
            assert stats["result"]["inflight"] == 0
            await conn.close()

        run_with_server(scenario, tmp_path)

    def test_served_plans_bit_identical_to_direct_and_oracle(self, tmp_path):
        async def scenario(server, path):
            conn = await Conn.open(path)
            for op, params in [
                ("plan", PLAN_A),
                ("localize", dict(p=4, k=8, extent=64, align_a=1, align_b=0,
                                  lower=0, upper=63, stride=3, rank=2)),
                ("schedule", {
                    "n": 64, "p": 4,
                    "lhs": {"k": 8, "align_a": 1, "align_b": 0, "lower": 0,
                            "upper": 63, "stride": 1},
                    "rhs": {"k": 4, "align_a": 1, "align_b": 0, "lower": 0,
                            "upper": 63, "stride": 1},
                }),
            ]:
                resp = await conn.request(op, params)
                assert resp["ok"], resp
                served = canonical(resp["result"])
                assert served == canonical(evaluate(op, params))
                assert served == canonical(reference(op, params))
            await conn.close()

        run_with_server(scenario, tmp_path)

    def test_source_transitions_computed_then_cache(self, tmp_path):
        async def scenario(server, path):
            conn = await Conn.open(path)
            first = await conn.request("plan", PLAN_A)
            second = await conn.request("plan", PLAN_A)
            assert first["source"] == "computed" and second["source"] == "cache"
            assert first["result"] == second["result"]
            assert not first["degraded"] and not second["degraded"]
            assert server.counters.computed == 1
            assert server.counters.cache_hits == 1
            await conn.close()

        run_with_server(scenario, tmp_path)

    def test_bad_requests_answered_without_dropping_connection(self, tmp_path):
        async def scenario(server, path):
            conn = await Conn.open(path)
            bad_op = await conn.request("frobnicate")
            assert not bad_op["ok"] and bad_op["error"]["code"] == "BAD_REQUEST"
            bad_param = await conn.request("plan", {**PLAN_A, "m": 99})
            assert "must be <=" in bad_param["error"]["message"]
            # The connection survives request-level errors.
            assert (await conn.request("ping"))["ok"]
            assert server.counters.bad_requests == 2
            await conn.close()

        run_with_server(scenario, tmp_path)

    def test_garbage_frame_gets_diagnostic_then_close(self, tmp_path):
        async def scenario(server, path):
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(b"this is not a frame!")
            await writer.drain()
            resp = await read_message(reader, timeout=10.0)
            assert not resp["ok"] and resp["error"]["code"] == "BAD_REQUEST"
            assert await reader.read() == b""  # server closed: resync by reconnect
            writer.close()
            assert server.counters.frame_errors == 1

        run_with_server(scenario, tmp_path)

    def test_connection_limit_refuses_with_retry_hint(self, tmp_path):
        async def scenario(server, path):
            conn1 = await Conn.open(path)
            assert (await conn1.request("ping"))["ok"]
            reader, writer = await asyncio.open_unix_connection(path)
            refusal = await read_message(reader, timeout=10.0)
            assert refusal["error"]["code"] == "OVERLOADED"
            assert refusal["retry_after_ms"] == 50
            writer.close()
            assert server.counters.connections_refused == 1
            await conn1.close()

        run_with_server(scenario, tmp_path, max_connections=1)


class TestDeadlines:
    def test_stalled_compute_hits_server_side_deadline(self, tmp_path):
        chaos = ServiceChaos(seed=11, stall_rate=1.0, stall_s=0.8)

        async def scenario(server, path):
            conn = await Conn.open(path)
            t0 = time.monotonic()
            resp = await conn.request("plan", PLAN_A, deadline_ms=150)
            elapsed = time.monotonic() - t0
            assert resp["error"]["code"] == "DEADLINE_EXCEEDED"
            assert "150ms" in resp["error"]["message"]
            assert elapsed < 0.7  # answered at the deadline, not after the stall
            assert server.counters.deadline_exceeded == 1
            await conn.close()

        run_with_server(scenario, tmp_path, chaos=chaos)

    def test_client_deadline_capped_by_server_max(self, tmp_path):
        chaos = ServiceChaos(seed=11, stall_rate=1.0, stall_s=2.0)

        async def scenario(server, path):
            conn = await Conn.open(path)
            resp = await conn.request("plan", PLAN_A, deadline_ms=60000)
            assert resp["error"]["code"] == "DEADLINE_EXCEEDED"
            assert "200ms" in resp["error"]["message"]  # the server's cap
            await conn.close()

        run_with_server(
            scenario, tmp_path, chaos=chaos,
            default_deadline_ms=100, max_deadline_ms=200,
        )


class TestBackpressure:
    def test_saturated_queue_sheds_with_retry_after(self, tmp_path, monkeypatch):
        real = evaluate

        def slow_evaluate(op, params, use_cache=True):
            if params.get("s") == 9:
                time.sleep(0.6)
            return real(op, params, use_cache)

        monkeypatch.setattr("repro.service.server.evaluate", slow_evaluate)

        async def scenario(server, path):
            conn1 = await Conn.open(path)
            conn2 = await Conn.open(path)
            slow = asyncio.create_task(conn1.request("plan", PLAN_A))
            await asyncio.sleep(0.2)  # let the slow compute occupy the slot
            shed = await conn2.request("plan", PLAN_C)
            assert shed["error"]["code"] == "OVERLOADED"
            assert shed["retry_after_ms"] == 25
            assert "1 requests in flight" in shed["error"]["message"]
            ok = await slow
            assert ok["ok"] and ok["source"] == "computed"
            assert server.counters.shed_overload == 1
            await conn1.close()
            await conn2.close()

        run_with_server(
            scenario, tmp_path, max_inflight=1, retry_after_ms=25,
        )

    def test_stale_entry_served_degraded_under_overload(self, tmp_path, monkeypatch):
        real = evaluate

        def slow_evaluate(op, params, use_cache=True):
            if params.get("s") == 9:
                time.sleep(0.6)
            return real(op, params, use_cache)

        monkeypatch.setattr("repro.service.server.evaluate", slow_evaluate)

        async def scenario(server, path):
            conn = await Conn.open(path)
            fresh = await conn.request("plan", PLAN_B)
            assert fresh["source"] == "computed"
            await asyncio.sleep(0.3)  # let the entry pass its TTL
            conn2 = await Conn.open(path)
            slow = asyncio.create_task(conn.request("plan", PLAN_A))
            await asyncio.sleep(0.2)
            stale = await conn2.request("plan", PLAN_B)
            assert stale["ok"] and stale["degraded"]
            assert stale["source"] == "stale-cache"
            # Degraded but never wrong: bit-identical to the fresh plan.
            assert canonical(stale["result"]) == canonical(fresh["result"])
            await slow
            assert server.counters.degraded_stale == 1
            await conn.close()
            await conn2.close()

        run_with_server(
            scenario, tmp_path, max_inflight=1, cache_ttl_s=0.2,
        )

    def test_fresh_hits_still_served_under_overload(self, tmp_path, monkeypatch):
        real = evaluate

        def slow_evaluate(op, params, use_cache=True):
            if params.get("s") == 9:
                time.sleep(0.6)
            return real(op, params, use_cache)

        monkeypatch.setattr("repro.service.server.evaluate", slow_evaluate)

        async def scenario(server, path):
            conn = await Conn.open(path)
            primed = await conn.request("plan", PLAN_B)
            conn2 = await Conn.open(path)
            slow = asyncio.create_task(conn.request("plan", PLAN_A))
            await asyncio.sleep(0.2)
            hit = await conn2.request("plan", PLAN_B)
            assert hit["ok"] and hit["source"] == "cache" and not hit["degraded"]
            assert hit["result"] == primed["result"]
            await slow
            await conn.close()
            await conn2.close()

        run_with_server(scenario, tmp_path, max_inflight=1)


class TestCoalescing:
    def test_identical_inflight_requests_compute_once(self, tmp_path, monkeypatch):
        real = evaluate
        calls = []

        def counting_evaluate(op, params, use_cache=True):
            calls.append(op)
            time.sleep(0.25)
            return real(op, params, use_cache)

        monkeypatch.setattr("repro.service.server.evaluate", counting_evaluate)

        async def scenario(server, path):
            conns = [await Conn.open(path) for _ in range(4)]
            responses = await asyncio.gather(
                *(c.request("plan", PLAN_A) for c in conns)
            )
            assert all(r["ok"] for r in responses)
            assert len({canonical(r["result"]) for r in responses}) == 1
            assert len(calls) == 1  # one compute across four clients
            assert server._cache.stats()["coalesced"] == 3
            for c in conns:
                await c.close()

        run_with_server(scenario, tmp_path, max_inflight=8)


class TestCircuitBreaker:
    def test_failures_trip_shard_then_reference_degrades(self, tmp_path):
        chaos = ServiceChaos(seed=2, fail_rate=1.0)

        async def scenario(server, path):
            conn = await Conn.open(path)
            for params in (PLAN_A, PLAN_B):
                resp = await conn.request("plan", params)
                assert resp["error"]["code"] == "INTERNAL"
                assert "injected compute failure" in resp["error"]["message"]
            # Threshold reached: breaker open, the ladder answers from the
            # (chaos-free) reference path, tagged degraded.
            resp = await conn.request("plan", PLAN_C)
            assert resp["ok"] and resp["degraded"]
            assert resp["source"] == "reference"
            assert canonical(resp["result"]) == canonical(evaluate("plan", PLAN_C))
            stats = await conn.request("stats")
            breaker = stats["result"]["breakers"][0]
            assert breaker["state"] == "open" and breaker["trips"] == 1
            assert server.counters.degraded_reference == 1
            assert server.counters.breaker_rejections == 1
            await conn.close()

        run_with_server(
            scenario, tmp_path, chaos=chaos, cache_shards=1,
            breaker_threshold=2, breaker_reset_s=60.0,
        )

    def test_breaker_recovers_after_cooldown(self, tmp_path):
        chaos = ServiceChaos(seed=2, fail_rate=1.0)

        async def scenario(server, path):
            conn = await Conn.open(path)
            resp = await conn.request("plan", PLAN_A)
            assert resp["error"]["code"] == "INTERNAL"
            assert (await conn.request("plan", PLAN_B))["source"] == "reference"
            await asyncio.sleep(0.25)  # cooldown -> half-open
            chaos.fail_rate = 0.0  # the fault clears
            probe = await conn.request("plan", PLAN_C)
            assert probe["ok"] and not probe["degraded"]
            assert probe["source"] == "computed"
            stats = await conn.request("stats")
            assert stats["result"]["breakers"][0]["state"] == "closed"
            await conn.close()

        run_with_server(
            scenario, tmp_path, chaos=chaos, cache_shards=1,
            breaker_threshold=1, breaker_reset_s=0.2,
        )


class TestSnapshots:
    def test_warm_start_serves_from_restored_cache(self, tmp_path):
        sock = str(tmp_path / "a.sock")
        snap = str(tmp_path / "plan.snap")

        async def main():
            cfg = ServiceConfig(
                unix_path=sock, snapshot_path=snap, snapshot_interval_s=600.0
            )
            first = PlanServer(cfg)
            await first.start()
            conn = await Conn.open(sock)
            original = await conn.request("plan", PLAN_A)
            await conn.close()
            await first.stop()  # writes the final snapshot

            entries, meta = load_snapshot(snap)
            assert len(entries) == 1 and meta["entries"] == 1

            second = PlanServer(cfg)
            await second.start()
            assert second.warm_started_entries == 1
            conn = await Conn.open(sock)
            restored = await conn.request("plan", PLAN_A)
            # Served from the warm cache: no compute happened.
            assert restored["source"] == "cache" and not restored["degraded"]
            assert canonical(restored["result"]) == canonical(original["result"])
            assert second.counters.computed == 0
            await conn.close()
            await second.stop()

        asyncio.run(main())

    def test_corrupt_snapshot_boots_cold_with_diagnostic(self, tmp_path, capsys):
        sock = str(tmp_path / "a.sock")
        snap = tmp_path / "plan.snap"

        async def main():
            cfg = ServiceConfig(
                unix_path=sock, snapshot_path=str(snap), snapshot_interval_s=600.0
            )
            first = PlanServer(cfg)
            await first.start()
            conn = await Conn.open(sock)
            await conn.request("plan", PLAN_A)
            await conn.close()
            await first.stop()

            blob = bytearray(snap.read_bytes())
            blob[len(blob) // 2] ^= 0xFF  # torn/corrupt write
            snap.write_bytes(bytes(blob))

            second = PlanServer(cfg)
            await second.start()
            assert second.warm_started_entries == 0
            assert "corrupt" in second.snapshot_diagnostic
            conn = await Conn.open(sock)
            stats = await conn.request("stats")
            assert "corrupt" in stats["result"]["snapshot_diagnostic"]
            # Cold but correct: the plan is recomputed, not resurrected.
            resp = await conn.request("plan", PLAN_A)
            assert resp["ok"] and resp["source"] == "computed"
            await conn.close()
            await second.stop()

        asyncio.run(main())
        assert "cold start" in capsys.readouterr().err

    def test_periodic_snapshot_loop_writes(self, tmp_path):
        sock = str(tmp_path / "a.sock")
        snap = tmp_path / "plan.snap"

        async def main():
            server = PlanServer(
                ServiceConfig(
                    unix_path=sock, snapshot_path=str(snap),
                    snapshot_interval_s=0.15,
                )
            )
            await server.start()
            conn = await Conn.open(sock)
            await conn.request("plan", PLAN_A)
            await asyncio.sleep(0.4)
            assert snap.exists()
            assert server.counters.snapshots_saved >= 1
            entries, _ = load_snapshot(snap)
            assert len(entries) == 1
            await conn.close()
            await server.stop()

        asyncio.run(main())
