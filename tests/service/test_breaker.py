"""Circuit-breaker state machine, driven by a fake clock."""

from __future__ import annotations

import pytest

from repro.service.breaker import CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


class TestBreaker:
    def test_starts_closed_and_allows(self, clock):
        b = CircuitBreaker(3, 1.0, clock=clock)
        assert b.state == b.CLOSED
        assert all(b.allow() for _ in range(10))

    def test_trips_at_threshold_consecutive(self, clock):
        b = CircuitBreaker(3, 1.0, clock=clock)
        b.record_failure()
        b.record_failure()
        assert b.state == b.CLOSED
        b.record_failure()
        assert b.state == b.OPEN
        assert not b.allow()
        assert b.trips == 1

    def test_success_resets_consecutive_count(self, clock):
        b = CircuitBreaker(2, 1.0, clock=clock)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == b.CLOSED  # never two in a row

    def test_half_open_single_probe(self, clock):
        b = CircuitBreaker(1, 1.0, clock=clock)
        b.record_failure()
        assert b.state == b.OPEN and not b.allow()
        clock.advance(1.0)
        assert b.state == b.HALF_OPEN
        assert b.allow()  # the probe
        assert not b.allow()  # only one probe per cooldown
        b.record_success()
        assert b.state == b.CLOSED and b.allow()

    def test_half_open_failure_reopens(self, clock):
        b = CircuitBreaker(1, 1.0, clock=clock)
        b.record_failure()
        clock.advance(1.0)
        assert b.allow()
        b.record_failure()
        assert b.state == b.OPEN and not b.allow()
        assert b.trips == 2
        clock.advance(0.5)
        assert not b.allow()  # cooldown restarted at the re-trip
        clock.advance(0.5)
        assert b.allow()

    def test_snapshot(self, clock):
        b = CircuitBreaker(2, 1.0, clock=clock)
        b.record_failure()
        snap = b.snapshot()
        assert snap == {"state": "closed", "consecutive_failures": 1, "trips": 0}

    @pytest.mark.parametrize("threshold,reset", [(0, 1.0), (1, 0.0), (1, -1.0)])
    def test_bad_config_rejected(self, threshold, reset):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold, reset)
