"""Crash-safe snapshot persistence: atomicity and paranoid loading."""

from __future__ import annotations

import json
import os

import pytest

from repro.machine.mp.framing import HEADER_SIZE
from repro.service.snapshot import SnapshotError, load_snapshot, save_snapshot

ENTRIES = [
    ('plan:{"k":8,"l":4,"m":1,"p":4,"s":9}', {"start": 13, "length": 8}, 7),
    ('plan:{"k":8,"l":4,"m":2,"p":4,"s":9}', {"start": 20, "length": 8}, 2),
]


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "plan.snap"
        save_snapshot(path, ENTRIES, meta={"pid": 42})
        entries, meta = load_snapshot(path)
        assert entries == ENTRIES
        assert meta["pid"] == 42

    def test_empty_entries_ok(self, tmp_path):
        path = tmp_path / "plan.snap"
        save_snapshot(path, [])
        assert load_snapshot(path) == ([], {})

    def test_no_tmp_residue_and_overwrite(self, tmp_path):
        path = tmp_path / "plan.snap"
        save_snapshot(path, ENTRIES)
        save_snapshot(path, ENTRIES[:1])
        assert [p.name for p in tmp_path.iterdir()] == ["plan.snap"]
        entries, _ = load_snapshot(path)
        assert len(entries) == 1

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "plan.snap"
        save_snapshot(path, ENTRIES)
        assert load_snapshot(path)[0] == ENTRIES


class TestDiagnosticRejection:
    """Every corruption mode is rejected with a message naming it."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "absent.snap")

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "s"
        path.write_bytes(b"\xab")
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "s"
        save_snapshot(path, ENTRIES)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="header invalid"):
            load_snapshot(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "s"
        save_snapshot(path, ENTRIES)
        blob = path.read_bytes()
        path.write_bytes(blob[:-5])  # torn write
        with pytest.raises(SnapshotError, match="truncated or padded"):
            load_snapshot(path)

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        path = tmp_path / "s"
        save_snapshot(path, ENTRIES)
        blob = bytearray(path.read_bytes())
        blob[HEADER_SIZE + 3] ^= 0x40
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="corrupt"):
            load_snapshot(path)

    def _write_frame(self, path, doc) -> None:
        from repro.machine.mp.framing import pack_frame

        payload = json.dumps(doc).encode()
        path.write_bytes(pack_frame(payload))

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "s"
        self._write_frame(path, {"format": 99, "entries": []})
        with pytest.raises(SnapshotError, match="unsupported format"):
            load_snapshot(path)

    def test_non_dict_document(self, tmp_path):
        path = tmp_path / "s"
        self._write_frame(path, [1, 2, 3])
        with pytest.raises(SnapshotError, match="unsupported format"):
            load_snapshot(path)

    def test_missing_entries_list(self, tmp_path):
        path = tmp_path / "s"
        self._write_frame(path, {"format": 1, "entries": "nope"})
        with pytest.raises(SnapshotError, match="no entries list"):
            load_snapshot(path)

    def test_malformed_entry_named_by_index(self, tmp_path):
        path = tmp_path / "s"
        self._write_frame(
            path,
            {
                "format": 1,
                "entries": [
                    {"key": "k", "value": {}, "freq": 1},
                    {"key": 5, "value": {}, "freq": 1},
                ],
            },
        )
        with pytest.raises(SnapshotError, match="entry 1 malformed"):
            load_snapshot(path)

    def test_valid_crc_but_not_json(self, tmp_path):
        from repro.machine.mp.framing import pack_frame

        path = tmp_path / "s"
        path.write_bytes(pack_frame(b"\xff\xfe not json"))
        with pytest.raises(SnapshotError, match="not JSON"):
            load_snapshot(path)
