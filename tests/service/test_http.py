"""The aux HTTP listener: live Prometheus scrapes that parse, health
probes that flip to draining on shutdown, the JSON status page, and
protocol edges (404/405/malformed requests).

Runs under ``make service-soak`` (it collects ``tests/service``), so
every soak exercises a scrape against a serving PlanServer.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.promexport import parse_prometheus_text
from repro.service import PlanServer, ServiceConfig
from repro.service.wire import read_message, write_message

PLAN_A = {"p": 4, "k": 8, "l": 4, "s": 9, "m": 1}


def run_with_http_server(scenario, tmp_path, **cfg_overrides):
    """Boot a PlanServer with the aux HTTP listener on an ephemeral
    port, run ``scenario(server, sock_path)``, always stop."""
    path = str(tmp_path / "plan.sock")
    cfg_overrides.setdefault("snapshot_interval_s", 600.0)

    async def main():
        server = PlanServer(ServiceConfig(
            unix_path=path, http_host="127.0.0.1", http_port=0,
            **cfg_overrides,
        ))
        await server.start()
        try:
            return await scenario(server, path)
        finally:
            await server.stop()

    return asyncio.run(main())


async def http_get(address: tuple[str, int], target: str,
                   request_line: str | None = None) -> tuple[int, dict, str]:
    """Minimal HTTP/1.1 GET; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(*address)
    line = request_line or f"GET {target} HTTP/1.1"
    writer.write(
        f"{line}\r\nHost: {address[0]}\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), timeout=10.0)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for h in lines[1:]:
        key, _, value = h.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


async def plan_request(path: str) -> None:
    reader, writer = await asyncio.open_unix_connection(path)
    await write_message(writer, {
        "id": 1, "op": "plan", "params": PLAN_A, "deadline_ms": 5000,
    })
    reply = await read_message(reader, timeout=15.0)
    assert reply["ok"]
    writer.close()
    await writer.wait_closed()


class TestMetricsScrape:
    def test_scrape_parses_with_service_counters(self, tmp_path):
        async def scenario(server, path):
            await plan_request(path)  # give the counters something to count
            status, headers, body = await http_get(server.http.address, "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            samples = parse_prometheus_text(body)  # raises on malformed lines
            assert samples["repro_plan_server_requests_total"] >= 1.0
            assert samples["repro_plan_server_responses_ok_total"] >= 1.0
            assert samples["repro_plan_server_uptime_seconds"] >= 0.0
            assert samples["repro_plan_server_inflight"] == 0.0
            # Result-cache stats surface as gauges.
            assert any(k.startswith("repro_plan_server_cache_") for k in samples)
            return True

        assert run_with_http_server(scenario, tmp_path)

    def test_plan_cache_stats_labeled_per_cache(self, tmp_path):
        async def scenario(server, path):
            await plan_request(path)
            _, _, body = await http_get(server.http.address, "/metrics")
            samples = parse_prometheus_text(body)
            labeled = [k for k in samples if k.startswith("repro_plan_cache_")]
            assert labeled, "plan-cache gauges missing"
            assert all('cache="' in k for k in labeled)
            return True

        assert run_with_http_server(scenario, tmp_path)

    def test_obs_registry_metrics_included_when_enabled(self, tmp_path):
        from repro.obs import Observability

        async def scenario(server, path):
            await plan_request(path)
            _, _, body = await http_get(server.http.address, "/metrics")
            samples = parse_prometheus_text(body)
            # The registry's own instruments ride along: the inflight
            # gauge is set on every request when obs is enabled.
            assert "repro_service_inflight" in samples
            return True

        assert run_with_http_server(
            scenario, tmp_path, obs=Observability(enabled=True)
        )


class TestHealthAndStatus:
    def test_healthz_ok_then_draining(self, tmp_path):
        async def scenario(server, path):
            status, _, body = await http_get(server.http.address, "/healthz")
            assert (status, body) == (200, "ok\n")
            # Flag shutdown without tearing the listener down yet: the
            # probe must flip before the socket disappears.
            server._closing = True
            status, _, body = await http_get(server.http.address, "/healthz")
            assert (status, body) == (503, "draining\n")
            server._closing = False
            return True

        assert run_with_http_server(scenario, tmp_path)

    def test_statusz_is_stats_json(self, tmp_path):
        async def scenario(server, path):
            await plan_request(path)
            status, headers, body = await http_get(server.http.address, "/statusz")
            assert status == 200
            assert headers["content-type"] == "application/json"
            stats = json.loads(body)
            assert stats["counters"]["requests"] >= 1
            assert stats["pid"] and "uptime_s" in stats
            return True

        assert run_with_http_server(scenario, tmp_path)


class TestProtocolEdges:
    def test_unknown_path_404(self, tmp_path):
        async def scenario(server, path):
            status, _, _ = await http_get(server.http.address, "/nope")
            assert status == 404
            return True

        assert run_with_http_server(scenario, tmp_path)

    def test_non_get_405_with_allow(self, tmp_path):
        async def scenario(server, path):
            status, headers, _ = await http_get(
                server.http.address, "/metrics",
                request_line="POST /metrics HTTP/1.1",
            )
            assert status == 405
            assert headers["allow"] == "GET"
            return True

        assert run_with_http_server(scenario, tmp_path)

    def test_malformed_request_line_400(self, tmp_path):
        async def scenario(server, path):
            status, _, _ = await http_get(
                server.http.address, "/", request_line="GARBAGE"
            )
            assert status == 400
            return True

        assert run_with_http_server(scenario, tmp_path)

    def test_query_string_stripped(self, tmp_path):
        async def scenario(server, path):
            status, _, _ = await http_get(
                server.http.address, "/healthz?probe=lb"
            )
            assert status == 200
            return True

        assert run_with_http_server(scenario, tmp_path)


class TestLifecycle:
    def test_http_off_unless_host_set(self, tmp_path):
        path = str(tmp_path / "plan.sock")

        async def main():
            server = PlanServer(ServiceConfig(
                unix_path=path, snapshot_interval_s=600.0,
            ))
            await server.start()
            try:
                return server.http
            finally:
                await server.stop()

        assert asyncio.run(main()) is None

    def test_stop_closes_http_listener(self, tmp_path):
        path = str(tmp_path / "plan.sock")

        async def main():
            server = PlanServer(ServiceConfig(
                unix_path=path, http_host="127.0.0.1",
                snapshot_interval_s=600.0,
            ))
            await server.start()
            address = server.http.address
            await server.stop()
            assert server.http is None
            try:
                await asyncio.wait_for(
                    asyncio.open_connection(*address), timeout=2.0
                )
            except (ConnectionError, OSError):
                return True
            return False

        assert asyncio.run(main())
