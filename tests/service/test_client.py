"""Client-side robustness: budgeted retries, backoff, reconnects.

The client is tested against a scripted fake server (a thread speaking
raw frames) so every failure mode -- sheds, deterministic errors,
dropped connections -- is exact and replayable.
"""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.machine.mp.framing import FrameError
from repro.machine.mp.timeouts import Backoff, Deadline
from repro.service.client import PlanClient, RetryBudget
from repro.service.protocol import ServiceError, error_response, ok_response
from repro.service.wire import recv_message, send_message


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRetryBudget:
    def test_spends_to_exhaustion(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=2, refill_per_s=0.0, clock=clock)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2 and budget.denied == 1

    def test_refills_over_time(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=2, refill_per_s=1.0, clock=clock)
        budget.try_spend(), budget.try_spend()
        assert not budget.try_spend()
        clock.now += 1.5
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        budget = RetryBudget(capacity=1, refill_per_s=100.0, clock=clock)
        clock.now += 1000.0
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0)
        with pytest.raises(ValueError):
            RetryBudget(refill_per_s=-1)


class ScriptedServer:
    """A unix-socket server that answers from a fixed script.

    Each script step is either a response-builder ``callable(request)``
    or the string ``"drop"`` (close the connection without answering).
    Steps are consumed per *request received*, across reconnects.
    """

    def __init__(self, tmp_path, script):
        self.path = str(tmp_path / "fake.sock")
        self.script = list(script)
        self.requests: list[dict] = []
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(8)
        self._listener.settimeout(5.0)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while self.script:
            try:
                conn, _ = self._listener.accept()
            except (OSError, socket.timeout):
                return
            try:
                self._serve_conn(conn)
            finally:
                conn.close()

    def _serve_conn(self, conn: socket.socket) -> None:
        while self.script:
            try:
                request = recv_message(conn, Deadline(5.0))
            except (FrameError, OSError):
                return
            self.requests.append(request)
            step = self.script.pop(0)
            if step == "drop":
                return  # close without answering
            send_message(conn, step(request))

    def close(self) -> None:
        self.script = []
        self._listener.close()
        self._thread.join(timeout=5.0)
        if os.path.exists(self.path):
            os.unlink(self.path)


def ok(request):
    return ok_response(
        request["id"], {"pong": True}, source="inline", degraded=False, server_ms=0.1
    )


def degraded_ok(request):
    return ok_response(
        request["id"], {"x": 1}, source="stale-cache", degraded=True, server_ms=0.1
    )


def shed(request):
    return error_response(request["id"], "OVERLOADED", "full", retry_after_ms=5)


def bad(request):
    return error_response(request["id"], "BAD_REQUEST", "nope")


def fast_client(path, **kwargs) -> PlanClient:
    kwargs.setdefault("backoff", Backoff(initial=0.001, ceiling=0.01))
    return PlanClient(path, **kwargs)


class TestRetries:
    def test_retries_shed_then_succeeds(self, tmp_path):
        server = ScriptedServer(tmp_path, [shed, shed, ok])
        try:
            with fast_client(server.path) as client:
                response = client.call("ping")
            assert response["result"] == {"pong": True}
            assert client.counters.retries == 2
            assert len(server.requests) == 3
        finally:
            server.close()

    def test_never_retries_deterministic_errors(self, tmp_path):
        server = ScriptedServer(tmp_path, [bad, ok])
        try:
            with fast_client(server.path) as client:
                with pytest.raises(ServiceError) as exc_info:
                    client.call("plan", {"p": -1})
            assert exc_info.value.code == "BAD_REQUEST"
            assert client.counters.retries == 0
            assert len(server.requests) == 1  # one attempt, full stop
        finally:
            server.close()

    def test_max_retries_bounds_attempts(self, tmp_path):
        server = ScriptedServer(tmp_path, [shed] * 10)
        try:
            with fast_client(server.path, max_retries=2) as client:
                with pytest.raises(ServiceError) as exc_info:
                    client.call("ping")
            assert exc_info.value.code == "OVERLOADED"
            assert len(server.requests) == 3  # 1 attempt + 2 retries
        finally:
            server.close()

    def test_exhausted_budget_stops_retry_amplification(self, tmp_path):
        server = ScriptedServer(tmp_path, [shed] * 10)
        budget = RetryBudget(capacity=1, refill_per_s=0.0)
        try:
            with fast_client(server.path, max_retries=5, retry_budget=budget) as client:
                with pytest.raises(ServiceError):
                    client.call("ping")
                with pytest.raises(ServiceError):
                    client.call("ping")
            # 5 retries allowed per call, but the shared budget had 1 token:
            # 2 first attempts + 1 budgeted retry.
            assert len(server.requests) == 3
            assert client.counters.retries == 1
            assert client.counters.retries_denied >= 1
        finally:
            server.close()

    def test_reconnects_after_dropped_connection(self, tmp_path):
        server = ScriptedServer(tmp_path, ["drop", ok])
        try:
            with fast_client(server.path) as client:
                response = client.call("ping")
            assert response["result"] == {"pong": True}
            assert client.counters.reconnects == 1
            assert client.counters.retries == 1
        finally:
            server.close()

    def test_degraded_responses_are_counted_not_retried(self, tmp_path):
        server = ScriptedServer(tmp_path, [degraded_ok, degraded_ok])
        try:
            with fast_client(server.path) as client:
                response = client.call("plan", {"p": 1})
            assert response["degraded"]
            assert client.counters.degraded_responses == 1
            assert client.counters.retries == 0
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_requests_carry_deadline(self, tmp_path):
        server = ScriptedServer(tmp_path, [ok])
        try:
            with fast_client(server.path, default_deadline_ms=321) as client:
                client.call("ping")
            assert server.requests[0]["deadline_ms"] == 321
        finally:
            server.close()

    def test_mismatched_response_id_raises(self, tmp_path):
        def wrong_id(request):
            return ok_response(
                request["id"] + 99, {}, source="inline", degraded=False, server_ms=0.1
            )

        server = ScriptedServer(tmp_path, [wrong_id] * 5)
        try:
            with fast_client(server.path, max_retries=1) as client:
                with pytest.raises(FrameError, match="does not match"):
                    client.call("ping")
        finally:
            server.close()
