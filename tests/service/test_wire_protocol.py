"""Wire framing and protocol-envelope units for the planning service."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.machine.mp.framing import FrameError
from repro.machine.mp.timeouts import Deadline
from repro.service.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    OVERLOADED,
    RequestError,
    ServiceError,
    canonical_key,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.wire import (
    decode_payload,
    encode_message,
    read_message,
    recv_message,
    send_message,
    write_message,
)


class TestEncoding:
    def test_roundtrip(self):
        msg = {"id": 1, "op": "plan", "params": {"p": 4, "k": 8}}
        frame = encode_message(msg)
        from repro.machine.mp.framing import HEADER_SIZE, parse_header, verify_payload

        length, crc = parse_header(frame[:HEADER_SIZE])
        assert len(frame) == HEADER_SIZE + length
        assert decode_payload(verify_payload(frame[HEADER_SIZE:], crc)) == msg

    def test_canonical_field_order_equal_bytes(self):
        a = encode_message({"b": 1, "a": {"y": 2, "x": 3}})
        b = encode_message({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            encode_message({"x": float("nan")})

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_payload(b"[1,2,3]")
        with pytest.raises(FrameError, match="not valid JSON"):
            decode_payload(b"{nope")

    def test_corrupted_frame_caught_by_crc(self):
        frame = bytearray(encode_message({"id": 1, "op": "ping"}))
        frame[-1] ^= 0xFF
        from repro.machine.mp.framing import HEADER_SIZE, parse_header, verify_payload

        length, crc = parse_header(bytes(frame[:HEADER_SIZE]))
        with pytest.raises(FrameError, match="CRC mismatch"):
            verify_payload(bytes(frame[HEADER_SIZE:]), crc)


class TestSyncTransport:
    def test_socketpair_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"id": 7, "op": "ping", "params": {}})
            msg = recv_message(b, Deadline(2.0))
            assert msg == {"id": 7, "op": "ping", "params": {}}
        finally:
            a.close()
            b.close()


class TestAsyncTransport:
    def test_stream_roundtrip_and_timeout(self):
        async def main():
            reader = asyncio.StreamReader()
            # Feed an encoded message plus trailing silence.
            reader.feed_data(encode_message({"id": 3, "op": "stats"}))
            msg = await read_message(reader, timeout=1.0)
            assert msg["id"] == 3
            from repro.machine.mp.framing import FrameTimeout

            with pytest.raises(FrameTimeout):
                await read_message(reader, timeout=0.05)

        asyncio.run(main())

    def test_eof_is_frame_closed(self):
        async def main():
            from repro.machine.mp.framing import FrameClosed

            reader = asyncio.StreamReader()
            reader.feed_eof()
            with pytest.raises(FrameClosed):
                await read_message(reader, timeout=1.0)

        asyncio.run(main())

    def test_partial_close_is_frame_error(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message({"id": 1, "op": "ping"})[:5])
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-"):
                await read_message(reader, timeout=1.0)

        asyncio.run(main())


class TestRequestEnvelope:
    def test_valid(self):
        req = parse_request(
            {"id": 5, "op": "plan", "params": {"p": 2}, "deadline_ms": 100}
        )
        assert (req.id, req.op, req.deadline_ms) == (5, "plan", 100)
        assert req.params == {"p": 2}

    def test_deadline_optional(self):
        assert parse_request({"id": 1, "op": "ping"}).deadline_ms is None

    @pytest.mark.parametrize(
        "msg",
        [
            {"op": "ping"},  # no id
            {"id": True, "op": "ping"},  # bool id
            {"id": "x", "op": "ping"},  # non-int id
            {"id": 1, "op": "frobnicate"},  # unknown op
            {"id": 1},  # no op
            {"id": 1, "op": "plan", "params": [1]},  # non-dict params
            {"id": 1, "op": "ping", "deadline_ms": 0},  # non-positive
            {"id": 1, "op": "ping", "deadline_ms": True},  # bool deadline
            {"id": 1, "op": "ping", "extra": 1},  # unknown field
        ],
    )
    def test_malformed_rejected(self, msg):
        with pytest.raises(RequestError):
            parse_request(msg)

    def test_canonical_key_field_order_independent(self):
        assert canonical_key("plan", {"p": 4, "k": 8}) == canonical_key(
            "plan", {"k": 8, "p": 4}
        )
        assert canonical_key("plan", {"p": 4}) != canonical_key("localize", {"p": 4})

    def test_responses(self):
        ok = ok_response(3, {"x": 1}, source="cache", degraded=False, server_ms=1.234)
        assert ok["ok"] and ok["id"] == 3 and ok["server_ms"] == 1.234
        err = error_response(4, OVERLOADED, "full", retry_after_ms=50)
        assert not err["ok"] and err["retry_after_ms"] == 50
        assert error_response(None, BAD_REQUEST, "x").get("retry_after_ms") is None

    def test_retryability_partition(self):
        assert ServiceError(OVERLOADED, "x").retryable
        assert ServiceError(DEADLINE_EXCEEDED, "x").retryable
        assert not ServiceError(BAD_REQUEST, "x").retryable
        assert not RequestError("x").retryable
