"""Deterministic chaos: same seed, same fault plan, every time."""

from __future__ import annotations

import pytest

from repro.service.chaos import ChaosFailure, ChaosKill, ServiceChaos


class TestDeterminism:
    def test_same_seed_same_plan(self):
        a = ServiceChaos(seed=7, stall_rate=0.2, fail_rate=0.2, kill_rate=0.1)
        b = ServiceChaos(seed=7, stall_rate=0.2, fail_rate=0.2, kill_rate=0.1)
        plan_a = [a.decision(n) for n in range(500)]
        plan_b = [b.decision(n) for n in range(500)]
        assert plan_a == plan_b

    def test_different_seeds_differ(self):
        a = ServiceChaos(seed=1, fail_rate=0.5)
        b = ServiceChaos(seed=2, fail_rate=0.5)
        assert [a.decision(n) for n in range(200)] != [
            b.decision(n) for n in range(200)
        ]

    def test_rates_partition(self):
        chaos = ServiceChaos(seed=3, stall_rate=0.3, fail_rate=0.3, kill_rate=0.4)
        kinds = {chaos.decision(n) for n in range(300)}
        assert kinds == {"stall", "fail", "kill"}  # rates sum to 1: no clean runs
        calm = ServiceChaos(seed=3)
        assert all(calm.decision(n) is None for n in range(100))


class TestPerturbation:
    def test_fail_raises_and_counts(self):
        chaos = ServiceChaos(seed=5, fail_rate=1.0)
        with pytest.raises(ChaosFailure):
            chaos.perturb_compute(1)
        assert chaos.injected["fail"] == 1

    def test_kill_is_a_failure_subtype(self):
        chaos = ServiceChaos(seed=5, kill_rate=1.0)
        with pytest.raises(ChaosKill):
            chaos.perturb_compute(1)
        assert chaos.injected["kill"] == 1
        assert issubclass(ChaosKill, ChaosFailure)

    def test_stall_sleeps_briefly(self):
        import time

        chaos = ServiceChaos(seed=5, stall_rate=1.0, stall_s=0.05)
        t0 = time.monotonic()
        chaos.perturb_compute(1)
        assert time.monotonic() - t0 >= 0.05
        assert chaos.injected["stall"] == 1

    def test_clean_request_untouched(self):
        chaos = ServiceChaos(seed=5)
        chaos.perturb_compute(1)
        assert chaos.injected == {"stall": 0, "fail": 0, "kill": 0}

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_validated(self, bad):
        with pytest.raises(ValueError):
            ServiceChaos(seed=1, fail_rate=bad)
