"""Tests for Fortran-90 triplet sections."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.section import RegularSection

small = st.integers(min_value=-50, max_value=50)
strd = st.integers(min_value=-12, max_value=12).filter(lambda v: v != 0)


@st.composite
def sections(draw):
    return RegularSection(draw(small), draw(small), draw(strd))


class TestBasics:
    def test_zero_stride(self):
        with pytest.raises(ValueError, match="nonzero"):
            RegularSection(0, 10, 0)

    def test_length_and_last(self):
        sec = RegularSection(4, 319, 9)
        assert len(sec) == 36
        assert sec.last == 4 + 35 * 9 == 319
        assert not sec.is_empty

    def test_empty(self):
        sec = RegularSection(5, 4, 1)
        assert len(sec) == 0 and sec.is_empty and sec.last is None
        assert list(sec) == []

    def test_membership_and_position(self):
        sec = RegularSection(4, 319, 9)
        assert 13 in sec and 14 not in sec and 322 not in sec
        assert sec.position_of(13) == 1
        with pytest.raises(ValueError, match="not an element"):
            sec.position_of(14)

    def test_element(self):
        sec = RegularSection(4, 319, 9)
        assert sec.element(0) == 4 and sec.element(35) == 319
        with pytest.raises(IndexError):
            sec.element(36)

    def test_str(self):
        assert str(RegularSection(0, 10, 2)) == "0:10:2"

    @given(sections())
    def test_iter_matches_membership(self, sec):
        elements = list(sec)
        assert len(elements) == len(sec)
        for i, e in enumerate(elements):
            assert e in sec
            assert sec.position_of(e) == i
            assert sec.element(i) == e


class TestNormalization:
    def test_negative_stride(self):
        sec = RegularSection(100, 4, -9)
        norm = sec.normalized()
        assert norm.stride == 9
        assert set(norm) == set(sec)
        assert norm.lower == 10 and norm.upper == 100

    def test_positive_unchanged(self):
        sec = RegularSection(4, 319, 9)
        assert sec.normalized() is sec

    def test_empty_negative(self):
        sec = RegularSection(0, 10, -1)
        norm = sec.normalized()
        assert norm.is_empty

    @given(sections())
    def test_set_preserved(self, sec):
        assert set(sec.normalized()) == set(sec)
        assert sec.normalized().stride > 0

    @given(sections())
    def test_reversed(self, sec):
        rev = sec.reversed()
        assert list(rev) == list(reversed(list(sec)))


class TestTransforms:
    def test_affine_image(self):
        sec = RegularSection(1, 5, 2)  # {1, 3, 5}
        img = sec.affine_image(3, 1)  # {4, 10, 16}
        assert list(img) == [4, 10, 16]
        with pytest.raises(ValueError, match="nonzero"):
            sec.affine_image(0, 1)

    def test_affine_negative_a(self):
        sec = RegularSection(0, 4, 2)  # {0, 2, 4}
        img = sec.affine_image(-1, 10)  # traverses 10, 8, 6
        assert list(img) == [10, 8, 6]

    def test_compose(self):
        outer = RegularSection(10, 100, 5)
        inner = RegularSection(2, 8, 3)  # positions 2, 5, 8
        comp = outer.compose(inner)
        assert list(comp) == [outer.element(j) for j in inner]

    def test_compose_out_of_range(self):
        outer = RegularSection(0, 10, 5)  # 3 elements
        with pytest.raises(IndexError, match="outside"):
            outer.compose(RegularSection(0, 5, 1))


class TestIntersection:
    def test_simple(self):
        a = RegularSection(0, 30, 2)
        b = RegularSection(0, 30, 3)
        got = a.intersect(b)
        assert list(got) == [0, 6, 12, 18, 24, 30]

    def test_incompatible_congruence(self):
        a = RegularSection(0, 20, 2)  # evens
        b = RegularSection(1, 21, 2)  # odds
        assert a.intersect(b).is_empty

    def test_disjoint_ranges(self):
        a = RegularSection(0, 5, 1)
        b = RegularSection(10, 20, 1)
        assert a.intersect(b).is_empty

    @given(sections(), sections())
    @settings(max_examples=250)
    def test_matches_set_intersection(self, a, b):
        got = set(a.intersect(b))
        want = set(a) & set(b)
        assert got == want

    @given(sections(), sections())
    def test_commutative(self, a, b):
        assert set(a.intersect(b)) == set(b.intersect(a))

    def test_gcd_stride(self):
        a = RegularSection(0, 30, 6)
        b = RegularSection(0, 30, -9)
        assert a.gcd_stride_with(b) == 3
