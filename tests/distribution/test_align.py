"""Tests for affine alignments."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distribution.align import IDENTITY, Alignment
from repro.distribution.section import RegularSection

coeffs = st.integers(min_value=-6, max_value=6).filter(lambda v: v != 0)
offs = st.integers(min_value=-20, max_value=20)


class TestBasics:
    def test_identity(self):
        assert IDENTITY.is_identity
        assert IDENTITY.apply(42) == 42
        assert IDENTITY.invert(42) == 42
        assert str(IDENTITY) == "i"

    def test_zero_coefficient(self):
        with pytest.raises(ValueError, match="nonzero"):
            Alignment(0, 3)

    def test_apply_invert(self):
        al = Alignment(2, 1)
        assert al.apply(5) == 11
        assert al.invert(11) == 5
        assert al.invert(10) is None  # even cells hold no element

    def test_str(self):
        assert str(Alignment(2, 1)) == "2*i + 1"
        assert str(Alignment(-1, 9)) == "-1*i + 9"
        assert str(Alignment(3, -4)) == "3*i - 4"

    @given(coeffs, offs, st.integers(min_value=-100, max_value=100))
    def test_roundtrip(self, a, b, i):
        al = Alignment(a, b)
        assert al.invert(al.apply(i)) == i


class TestSections:
    def test_apply_section(self):
        al = Alignment(2, 1)
        sec = RegularSection(0, 4, 2)
        assert list(al.apply_section(sec)) == [1, 5, 9]

    def test_allocation_section(self):
        al = Alignment(2, 1)
        alloc = al.allocation_section(5)
        assert list(alloc) == [1, 3, 5, 7, 9]
        with pytest.raises(ValueError, match="positive"):
            al.allocation_section(0)

    def test_allocation_negative_a(self):
        al = Alignment(-2, 10)
        alloc = al.allocation_section(4)  # cells 10, 8, 6, 4
        assert set(alloc) == {4, 6, 8, 10}

    @given(coeffs, offs, st.integers(min_value=1, max_value=40))
    def test_allocation_matches_apply(self, a, b, n):
        al = Alignment(a, b)
        want = {al.apply(i) for i in range(n)}
        assert set(al.allocation_section(n)) == want


class TestCompose:
    def test_compose(self):
        outer = Alignment(2, 1)
        inner = Alignment(3, 4)
        comp = outer.compose(inner)
        for j in range(-5, 6):
            assert comp.apply(j) == outer.apply(inner.apply(j))

    @given(coeffs, offs, coeffs, offs, st.integers(min_value=-30, max_value=30))
    def test_compose_property(self, a1, b1, a2, b2, j):
        outer, inner = Alignment(a1, b1), Alignment(a2, b2)
        assert outer.compose(inner).apply(j) == outer.apply(inner.apply(j))
