"""Tests for multidimensional distributed-array descriptors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.align import Alignment
from repro.distribution.array import AxisMap, DistributedArray
from repro.distribution.dist import Block, Collapsed, Cyclic, CyclicK, ProcessorGrid
from repro.distribution.section import RegularSection


def simple_1d(p=4, k=8, n=320, a=1, b=0):
    grid = ProcessorGrid("P", (p,))
    return DistributedArray(
        "A", (n,), grid, (AxisMap(CyclicK(k), Alignment(a, b), grid_axis=0),)
    )


class TestConstruction:
    def test_validation(self):
        grid = ProcessorGrid("P", (4,))
        with pytest.raises(ValueError, match="at least one"):
            DistributedArray("A", (), grid, ())
        with pytest.raises(ValueError, match="positive"):
            DistributedArray("A", (0,), grid, (AxisMap(CyclicK(8), grid_axis=0),))
        with pytest.raises(ValueError, match="one AxisMap"):
            DistributedArray("A", (10, 10), grid, (AxisMap(CyclicK(8), grid_axis=0),))
        with pytest.raises(ValueError, match="more than once"):
            DistributedArray(
                "A", (10, 10), grid,
                (AxisMap(CyclicK(2), grid_axis=0), AxisMap(CyclicK(2), grid_axis=0)),
            )
        with pytest.raises(ValueError, match="out of range"):
            DistributedArray("A", (10,), grid, (AxisMap(CyclicK(2), grid_axis=1),))

    def test_axis_map_validation(self):
        with pytest.raises(ValueError, match="needs a grid_axis"):
            AxisMap(CyclicK(8))
        with pytest.raises(ValueError, match="must not name"):
            AxisMap(Collapsed(), grid_axis=0)

    def test_properties(self):
        arr = simple_1d()
        assert arr.rank == 1 and arr.size == 320
        assert arr.dim_layout(0).k == 8


class TestOwnership1D:
    def test_partition(self):
        arr = simple_1d()
        for i in range(320):
            owners = arr.owners((i,))
            assert len(owners) == 1
            assert owners[0] == (i % 32) // 8
            assert arr.owner((i,)) == owners[0]

    def test_is_local(self):
        arr = simple_1d()
        assert arr.is_local((108,), 1)
        assert not arr.is_local((108,), 0)

    def test_index_validation(self):
        arr = simple_1d()
        with pytest.raises(IndexError):
            arr.owner((320,))
        with pytest.raises(ValueError, match="tuple"):
            arr.owner((0, 0))


class TestLocalAddressing:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=80))
    @settings(max_examples=60, deadline=None)
    def test_bijection_1d(self, p, k, n):
        grid = ProcessorGrid("P", (p,))
        arr = DistributedArray("A", (n,), grid, (AxisMap(CyclicK(k), grid_axis=0),))
        seen = set()
        for i in range(n):
            r = arr.owner((i,))
            addr = arr.local_address((i,), r)
            assert 0 <= addr < arr.local_size(r)
            assert (r, addr) not in seen
            seen.add((r, addr))
            assert arr.global_index(arr.local_slots((i,), r), r) == (i,)
        assert sum(arr.local_size(r) for r in range(p)) == n

    def test_wrong_rank_raises(self):
        arr = simple_1d()
        with pytest.raises(ValueError, match="not local"):
            arr.local_slots((108,), 0)

    def test_2d_block_cyclic(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "M", (12, 12), grid,
            (AxisMap(CyclicK(3), grid_axis=0), AxisMap(Block(), grid_axis=1)),
        )
        seen = {}
        for i in range(12):
            for j in range(12):
                r = arr.owner((i, j))
                addr = arr.local_address((i, j), r)
                assert (r, addr) not in seen
                seen[(r, addr)] = (i, j)
        assert sum(arr.local_size(r) for r in range(4)) == 144

    def test_replicated_axis(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "V", (10,), grid, (AxisMap(Cyclic(), grid_axis=0),)
        )  # replicated over axis 1
        assert arr.is_replicated_over_axis(1)
        owners = arr.owners((3,))
        assert len(owners) == 2
        with pytest.raises(ValueError, match="replicated"):
            arr.owner((3,))

    def test_collapsed_dim(self):
        grid = ProcessorGrid("P", (3,))
        arr = DistributedArray(
            "M", (6, 10), grid,
            (AxisMap(Cyclic(), grid_axis=0), AxisMap(Collapsed())),
        )
        r = arr.owner((4, 7))
        assert r == 4 % 3
        assert arr.local_shape(r)[1] == 10
        assert arr.global_index(arr.local_slots((4, 7), r), r) == (4, 7)


class TestAlignment:
    def test_aligned_local_extents(self):
        # A(i) -> T(2i+1): array elements on odd template cells.
        grid = ProcessorGrid("P", (4,))
        arr = DistributedArray(
            "A", (100,), grid,
            (AxisMap(CyclicK(8), Alignment(2, 1), grid_axis=0, template_extent=200),),
        )
        assert sum(arr.local_size(r) for r in range(4)) == 100
        for i in (0, 1, 37, 99):
            r = arr.owner((i,))
            assert arr.global_index(arr.local_slots((i,), r), r) == (i,)


class TestSectionElements:
    def test_1d_matches_enumeration(self):
        arr = simple_1d()
        sec = RegularSection(4, 319, 9)
        got = {}
        for r in range(4):
            for idx, addr in arr.local_section_elements((sec,), r):
                assert arr.owner(idx) == r
                assert arr.local_address(idx, r) == addr
                got[idx[0]] = True
        assert sorted(got) == list(sec)

    def test_2d_product(self):
        grid = ProcessorGrid("P", (2, 2))
        arr = DistributedArray(
            "M", (8, 8), grid,
            (AxisMap(CyclicK(2), grid_axis=0), AxisMap(CyclicK(3), grid_axis=1)),
        )
        sec = (RegularSection(0, 7, 2), RegularSection(1, 7, 3))
        covered = set()
        for r in range(4):
            for idx, addr in arr.local_section_elements(sec, r):
                assert arr.local_address(idx, r) == addr
                covered.add(idx)
        assert covered == {(i, j) for i in range(0, 8, 2) for j in range(1, 8, 3)}

    def test_wrong_section_count(self):
        arr = simple_1d()
        with pytest.raises(ValueError, match="one section per dimension"):
            arr.local_section_elements((), 0)

    def test_dim_access_on_undistributed(self):
        grid = ProcessorGrid("P", (3,))
        arr = DistributedArray(
            "M", (6, 10), grid,
            (AxisMap(Cyclic(), grid_axis=0), AxisMap(Collapsed())),
        )
        with pytest.raises(ValueError, match="not distributed"):
            arr.dim_access(1, RegularSection(0, 9, 1), 0)
