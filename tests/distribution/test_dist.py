"""Tests for distribution kinds, templates, processor grids."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distribution.dist import (
    Block,
    Collapsed,
    Cyclic,
    CyclicK,
    ProcessorGrid,
    Replicated,
    Template,
)


class TestFormats:
    def test_block_is_cyclic_ceil(self):
        # Paper Section 1: block == cyclic(ceil(n/p)).
        assert Block().block_size(320, 4) == 80
        assert Block().block_size(321, 4) == 81
        assert Block().block_size(3, 4) == 1

    def test_block_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Block().block_size(0, 4)

    def test_cyclic_is_cyclic_1(self):
        assert Cyclic().block_size(320, 4) == 1

    def test_cyclic_k(self):
        assert CyclicK(8).block_size(320, 4) == 8
        with pytest.raises(ValueError, match="positive"):
            CyclicK(0)

    def test_collapsed_and_replicated(self):
        assert not Collapsed().partitions
        assert not Replicated().partitions
        assert Collapsed().block_size(320, 4) == 320
        assert Replicated().block_size(320, 4) == 320

    def test_describe(self):
        assert Block().describe() == "BLOCK"
        assert Cyclic().describe() == "CYCLIC"
        assert CyclicK(8).describe() == "CYCLIC(8)"
        assert Collapsed().describe() == "*"

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=1, max_value=64))
    def test_block_covers_everything(self, n, p):
        """ceil(n/p) blocks of that size on p processors hold >= n cells."""
        k = Block().block_size(n, p)
        assert k * p >= n
        assert (k - 1) * p < n


class TestTemplate:
    def test_basics(self):
        t = Template("T", (320, 100))
        assert t.rank == 2 and t.size == 32_000

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Template("T", ())
        with pytest.raises(ValueError, match="positive"):
            Template("T", (0,))


class TestProcessorGrid:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ProcessorGrid("P", ())
        with pytest.raises(ValueError, match="positive"):
            ProcessorGrid("P", (4, 0))

    def test_linearize_row_major(self):
        grid = ProcessorGrid("P", (2, 3))
        assert grid.linearize((0, 0)) == 0
        assert grid.linearize((0, 2)) == 2
        assert grid.linearize((1, 0)) == 3
        assert grid.size == 6

    def test_linearize_validation(self):
        grid = ProcessorGrid("P", (2, 3))
        with pytest.raises(ValueError, match="coordinates"):
            grid.linearize((0,))
        with pytest.raises(ValueError, match="out of range"):
            grid.linearize((2, 0))

    def test_coordinates_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            ProcessorGrid("P", (2, 3)).coordinates(6)

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4))
    def test_roundtrip(self, shape):
        grid = ProcessorGrid("P", tuple(shape))
        for rank in range(grid.size):
            coords = grid.coordinates(rank)
            assert grid.linearize(coords) == rank
            assert all(0 <= c < e for c, e in zip(coords, shape))
