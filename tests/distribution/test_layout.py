"""Tests for the cyclic(k) coordinate algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distribution.layout import CyclicLayout

from ..conftest import blocks, procs

indices = st.integers(min_value=0, max_value=100_000)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError, match="processors"):
            CyclicLayout(0, 8)
        with pytest.raises(ValueError, match="block size"):
            CyclicLayout(4, 0)

    def test_block_range_bounds(self):
        layout = CyclicLayout(4, 8)
        assert layout.block_range(0) == (0, 8)
        assert layout.block_range(3) == (24, 32)
        with pytest.raises(ValueError, match="out of range"):
            layout.block_range(4)


class TestCoordinates:
    def test_paper_element_108(self):
        layout = CyclicLayout(4, 8)
        c = layout.coords(108)
        assert (c.row, c.offset_in_row, c.owner, c.block_offset) == (3, 12, 1, 4)
        assert c.local_address == 3 * 8 + 4

    @given(procs, blocks, indices)
    def test_coords_consistent(self, p, k, i):
        layout = CyclicLayout(p, k)
        c = layout.coords(i)
        assert c.index == i
        assert c.row == layout.row(i)
        assert c.offset_in_row == layout.offset_in_row(i)
        assert c.owner == layout.owner(i)
        assert c.block_offset == layout.block_offset(i)
        assert 0 <= c.owner < p
        assert 0 <= c.block_offset < k
        assert c.row * p * k + c.owner * k + c.block_offset == i

    @given(procs, blocks, indices)
    def test_local_roundtrip(self, p, k, i):
        layout = CyclicLayout(p, k)
        m = layout.owner(i)
        addr = layout.local_address(i)
        assert layout.local_address_on(i, m) == addr
        assert layout.local_to_global(m, addr) == i

    def test_local_address_on_wrong_owner(self):
        layout = CyclicLayout(4, 8)
        with pytest.raises(ValueError, match="owned by processor"):
            layout.local_address_on(108, 2)

    def test_local_to_global_bad_rank(self):
        with pytest.raises(ValueError, match="out of range"):
            CyclicLayout(4, 8).local_to_global(4, 0)

    @given(procs, blocks, indices)
    def test_plane_roundtrip(self, p, k, i):
        layout = CyclicLayout(p, k)
        b, a = layout.plane_point(i)
        assert layout.from_plane(b, a) == i

    def test_from_plane_bad_offset(self):
        with pytest.raises(ValueError, match="out of range"):
            CyclicLayout(4, 8).from_plane(32, 0)


class TestExtents:
    @given(procs, blocks, st.integers(min_value=0, max_value=2000))
    def test_allocation_partitions_n(self, p, k, n):
        layout = CyclicLayout(p, k)
        assert sum(layout.allocation_size(n, m) for m in range(p)) == n

    @given(procs, blocks, st.integers(min_value=0, max_value=500))
    def test_owned_indices(self, p, k, n):
        layout = CyclicLayout(p, k)
        all_owned = []
        for m in range(p):
            owned = list(layout.owned_indices(n, m))
            assert owned == sorted(owned)
            assert all(layout.owner(i) == m for i in owned)
            assert len(owned) == layout.allocation_size(n, m)
            all_owned.extend(owned)
        assert sorted(all_owned) == list(range(n))

    def test_negative_n(self):
        with pytest.raises(ValueError, match="nonnegative"):
            CyclicLayout(4, 8).allocation_size(-1, 0)

    def test_local_addresses_are_dense(self):
        """Owned elements in index order get consecutive local addresses
        is NOT generally true; but local addresses are unique and fit the
        allocation."""
        layout = CyclicLayout(3, 4)
        n = 50
        for m in range(3):
            addrs = [layout.local_address(i) for i in layout.owned_indices(n, m)]
            assert len(set(addrs)) == len(addrs)
            assert all(a < layout.allocation_size(n + 12, m) + 12 for a in addrs)
