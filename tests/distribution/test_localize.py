"""Tests for the two-application alignment localization scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import compute_access_table
from repro.distribution.align import Alignment
from repro.distribution.layout import CyclicLayout
from repro.distribution.localize import (
    RankFunction,
    localize_section,
    localized_elements,
)
from repro.distribution.section import RegularSection


def brute_localized(p, k, extent, alignment, section, m):
    """Ground truth: rank array cells on the processor in template order,
    then list section members in template order with their ranks."""
    layout = CyclicLayout(p, k)
    cells = sorted(
        (layout.local_address(alignment.apply(i)), i)
        for i in range(extent)
        if layout.owner(alignment.apply(i)) == m
    )
    rank = {i: r for r, (_, i) in enumerate(cells)}
    return [(i, rank[i]) for _, i in cells if i in section]


@st.composite
def localize_params(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=10))
    a = draw(st.integers(min_value=-4, max_value=4).filter(lambda v: v != 0))
    n = draw(st.integers(min_value=1, max_value=50))
    # Keep template cells nonnegative: for a < 0 shift b up.
    b = draw(st.integers(min_value=0, max_value=8)) + (-(a) * (n - 1) if a < 0 else 0)
    l = draw(st.integers(min_value=0, max_value=n - 1))
    u = draw(st.integers(min_value=l, max_value=n - 1))
    s = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=0, max_value=p - 1))
    return p, k, n, Alignment(a, b), RegularSection(l, u, s), m


class TestRankFunction:
    def test_basic(self):
        table = compute_access_table(4, 8, 1, 2, 0)  # allocation: odds, stride 2
        ranks = RankFunction(table)
        addrs = table.local_addresses(12)
        for r, addr in enumerate(addrs):
            assert ranks.rank(addr) == r
            assert ranks.unrank(r) == addr

    def test_non_member_raises(self):
        table = compute_access_table(4, 8, 0, 2, 0)
        ranks = RankFunction(table)
        member = table.local_addresses(1)[0]
        with pytest.raises(KeyError, match="no array element"):
            ranks.rank(member + 1)

    def test_empty_table_rejected(self):
        empty = compute_access_table(2, 1, 0, 4, 1)
        with pytest.raises(ValueError, match="empty"):
            RankFunction(empty)

    def test_unrank_negative(self):
        table = compute_access_table(4, 8, 0, 2, 0)
        with pytest.raises(ValueError, match="nonnegative"):
            RankFunction(table).unrank(-1)

    def test_floor_rank(self):
        table = compute_access_table(4, 8, 0, 3, 0)
        ranks = RankFunction(table)
        addrs = table.local_addresses(10)
        for r, addr in enumerate(addrs):
            assert ranks.floor_rank(addr) == r
            if r + 1 < len(addrs) and addrs[r + 1] > addr + 1:
                assert ranks.floor_rank(addr + 1) == r
        assert ranks.floor_rank(addrs[0] - 1) == -1


class TestLocalizeSection:
    def test_identity_matches_access_table(self, paper_params):
        p, k, l, s, m = (paper_params[key] for key in "pklsm")
        table = compute_access_table(p, k, l, s, m)
        lt = localize_section(p, k, 320, Alignment(1, 0), RegularSection(l, 319, s), m)
        assert lt.start_index == table.start
        assert lt.gaps == table.gaps
        assert lt.index_gaps == table.index_gaps

    def test_out_of_bounds(self):
        with pytest.raises(IndexError, match="outside"):
            localize_section(4, 8, 10, Alignment(1, 0), RegularSection(0, 10, 1), 0)

    def test_empty_section(self):
        lt = localize_section(4, 8, 10, Alignment(1, 0), RegularSection(5, 4, 1), 0)
        assert lt.is_empty
        assert lt.slots(0) == [] and lt.indices(0) == []
        with pytest.raises(ValueError, match="owns no"):
            lt.slots(1)

    def test_count_validation(self):
        lt = localize_section(4, 8, 320, Alignment(1, 0), RegularSection(0, 319, 9), 0)
        with pytest.raises(ValueError, match="nonnegative"):
            lt.slots(-1)
        with pytest.raises(ValueError, match="nonnegative"):
            lt.indices(-1)

    @given(localize_params())
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, params):
        p, k, n, alignment, section, m = params
        got = localized_elements(p, k, n, alignment, section, m)
        want = brute_localized(p, k, n, alignment, section, m)
        assert got == want

    @given(localize_params())
    @settings(max_examples=100, deadline=None)
    def test_periodicity(self, params):
        """The gap table walked beyond one cycle keeps matching brute force
        (the integral-period property the module docstring derives)."""
        p, k, n, alignment, section, m = params
        lt = localize_section(p, k, n, alignment, section, m)
        if lt.is_empty:
            return
        pairs = brute_localized(p, k, n, alignment, section, m)
        count = len(pairs)
        assert lt.indices(count) == [i for i, _ in pairs]
        assert lt.slots(count) == [r for _, r in pairs]
