"""Tests for two-dimensional declarations and statements in the language."""

import numpy as np
import pytest

from repro.lang.ast_nodes import TransposeAssign
from repro.lang.compiler import CompileError, compile_source
from repro.lang.parser import ParseError, parse_program
from repro.runtime.exec import distribute

BASE = """
PROCESSORS P(2, 2)
TEMPLATE   T(64, 64)
REAL       M(32, 48)
REAL       N(32, 48)
REAL       Q(48, 32)
ALIGN      M(i, j) WITH T(i, j)
ALIGN      N(i, j) WITH T(2*i, j)
ALIGN      Q(i, j) WITH T(i, j)
DISTRIBUTE T(CYCLIC(4), BLOCK) ONTO P
"""


class TestParsing2D:
    def test_declarations(self):
        prog = parse_program(BASE)
        assert prog.processors[0].shape == (2, 2)
        assert prog.processors[0].size == 4
        assert prog.templates[0].shape == (64, 64)
        assert prog.arrays[0].shape == (32, 48)
        assert prog.aligns[1].coefficients == ((2, 0), (1, 0))
        assert prog.distributes[0].formats == ("CYCLIC(4)", "BLOCK")

    def test_2d_sections(self):
        prog = parse_program("M(0:31:2, 1:47:3) = 5.0")
        stmt = prog.statements[0]
        assert stmt.target.rank == 2
        assert stmt.target.triplets[1].stride == 3

    def test_transpose_statement(self):
        prog = parse_program("Q(0:47, 0:31) = TRANSPOSE(M(0:31, 0:47))")
        stmt = prog.statements[0]
        assert isinstance(stmt, TransposeAssign)
        assert stmt.source.array == "M"

    def test_collapsed_format(self):
        prog = parse_program("DISTRIBUTE T(CYCLIC(2), *) ONTO P")
        assert prog.distributes[0].formats == ("CYCLIC(2)", "*")

    def test_align_arity_error(self):
        with pytest.raises(ParseError, match="arity mismatch"):
            parse_program("ALIGN M(i, j) WITH T(i)")

    def test_transpose_arg_error(self):
        with pytest.raises(ParseError, match="TRANSPOSE argument"):
            parse_program("Q(0:1, 0:1) = TRANSPOSE(5.0)")


class TestCompile2D:
    def test_fill_2d(self):
        prog = compile_source(BASE + "M(0:31:3, 2:47:5) = 7.0\n")
        vm = prog.run()
        ref = np.zeros((32, 48))
        ref[0:32:3, 2:48:5] = 7.0
        assert np.array_equal(prog.image(vm, "M"), ref)

    def test_copy_2d(self):
        prog = compile_source(BASE + "M(0:31, 0:47) = N(0:31, 0:47)\n")
        vm = prog.make_machine()
        host_n = np.arange(32 * 48, dtype=float).reshape(32, 48)
        distribute(vm, prog.arrays["N"], host_n)
        prog.run(vm)
        assert np.array_equal(prog.image(vm, "M"), host_n)

    def test_strided_2d_copy(self):
        prog = compile_source(BASE + "M(0:30:2, 0:45:3) = N(1:31:2, 2:47:3)\n")
        vm = prog.make_machine()
        host_n = np.random.default_rng(5).random((32, 48))
        distribute(vm, prog.arrays["N"], host_n)
        prog.run(vm)
        ref = np.zeros((32, 48))
        ref[0:31:2, 0:46:3] = host_n[1:32:2, 2:48:3]
        assert np.array_equal(prog.image(vm, "M"), ref)

    def test_transpose(self):
        prog = compile_source(BASE + "Q(0:47, 0:31) = TRANSPOSE(M(0:31, 0:47))\n")
        vm = prog.make_machine()
        host_m = np.arange(32 * 48, dtype=float).reshape(32, 48)
        distribute(vm, prog.arrays["M"], host_m)
        prog.run(vm)
        assert np.array_equal(prog.image(vm, "Q"), host_m.T)

    def test_transpose_description_and_schedule(self):
        prog = compile_source(BASE + "Q(0:47, 0:31) = TRANSPOSE(M(0:31, 0:47))\n")
        stmt = prog.statements[0]
        assert "TRANSPOSE(M" in stmt.description
        assert stmt.schedule is not None
        assert stmt.schedule.total_elements == 32 * 48


class TestCompile2DErrors:
    def test_partition_count_mismatch(self):
        src = "PROCESSORS P(2, 2)\nTEMPLATE T(64)\nDISTRIBUTE T(CYCLIC(4)) ONTO P\n"
        with pytest.raises(CompileError, match="partitions 1 dimensions"):
            compile_source(src)

    def test_distribute_arity(self):
        src = "PROCESSORS P(2)\nTEMPLATE T(8, 8)\nDISTRIBUTE T(BLOCK) ONTO P\n"
        with pytest.raises(CompileError, match="arity mismatch"):
            compile_source(src)

    def test_rank_mismatch_in_section(self):
        with pytest.raises(CompileError, match="subscripts"):
            compile_source(BASE + "M(0:31) = 1.0\n")

    def test_transpose_rank1(self):
        src = (
            "PROCESSORS P(2)\nTEMPLATE T(16)\nREAL A(16)\nREAL B(16)\n"
            "ALIGN A(i) WITH T(i)\nALIGN B(i) WITH T(i)\n"
            "DISTRIBUTE T(CYCLIC(2)) ONTO P\n"
            "A(0:15) = TRANSPOSE(B(0:15))\n"
        )
        with pytest.raises(CompileError, match="rank-2"):
            compile_source(src)

    def test_transpose_non_conformable(self):
        with pytest.raises(CompileError, match="non-conformable TRANSPOSE"):
            compile_source(BASE + "Q(0:47, 0:31) = TRANSPOSE(M(0:30, 0:47))\n")

    def test_combine_rank2_rejected(self):
        with pytest.raises(CompileError, match="rank-1"):
            compile_source(
                BASE + "M(0:31, 0:47) = 2.0 * N(0:31, 0:47) + 1.0 * N(0:31, 0:47)\n"
            )

    def test_collapsed_with_alignment_rejected(self):
        src = (
            "PROCESSORS P(2)\nTEMPLATE T(16, 16)\nREAL A(8, 16)\n"
            "ALIGN A(i, j) WITH T(2*i, j)\n"
            "DISTRIBUTE T(CYCLIC(2), *) ONTO P\n"
            "A(0:7, 0:15) = 1.0\n"
        )
        # Row dim has the alignment, collapsed dim is identity: fine.
        prog = compile_source(src)
        vm = prog.run()
        ref = np.ones((8, 16))
        assert np.array_equal(prog.image(vm, "A"), ref)
        bad = src.replace("T(2*i, j)", "T(i, 2*j)").replace("REAL A(8, 16)", "REAL A(8, 8)")
        with pytest.raises(CompileError, match="collapsed"):
            compile_source(bad)

    def test_copy_rank_mismatch(self):
        src = BASE + "REAL V(32)\nALIGN V(i) WITH T(i)\n"
        # V is rank-1 aligned to rank-2 template: arity error at ALIGN.
        with pytest.raises(CompileError, match="arity"):
            compile_source(src)
