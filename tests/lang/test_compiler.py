"""Tests for compiling and running mini-HPF programs."""

import numpy as np
import pytest

from repro.lang.compiler import CompileError, compile_source
from repro.runtime.exec import distribute


def run_and_image(src, init=None):
    prog = compile_source(src)
    vm = prog.make_machine()
    if init:
        for name, values in init.items():
            distribute(vm, prog.arrays[name], values)
    prog.run(vm)
    return prog, vm


class TestEndToEnd:
    def test_fill_and_copy(self):
        src = """
        PROCESSORS P(4)
        TEMPLATE T(640)
        REAL A(320)
        REAL B(320)
        ALIGN A(i) WITH T(i)
        ALIGN B(j) WITH T(2*j+1)
        DISTRIBUTE T(CYCLIC(8)) ONTO P
        A(4:319:9) = 100.0
        A(0:312:8) = B(3:237:6)
        """
        host_b = np.arange(320, dtype=float)
        prog, vm = run_and_image(src, init={"B": host_b})
        got = prog.image(vm, "A")
        ref = np.zeros(320)
        ref[4:320:9] = 100.0
        ref[0:313:8] = host_b[3:238:6]
        assert np.array_equal(got, ref)

    def test_block_distribution(self):
        src = """
        PROCESSORS P(4)
        TEMPLATE T(100)
        REAL A(100)
        ALIGN A(i) WITH T(i)
        DISTRIBUTE T(BLOCK) ONTO P
        A(0:99:7) = 1.0
        """
        prog, vm = run_and_image(src)
        ref = np.zeros(100)
        ref[0:100:7] = 1.0
        assert np.array_equal(prog.image(vm, "A"), ref)

    def test_cyclic_distribution(self):
        src = """
        PROCESSORS P(3)
        TEMPLATE T(30)
        REAL A(30)
        ALIGN A(i) WITH T(i)
        DISTRIBUTE T(CYCLIC) ONTO P
        A(1:29:2) = 2.5
        """
        prog, vm = run_and_image(src)
        ref = np.zeros(30)
        ref[1:30:2] = 2.5
        assert np.array_equal(prog.image(vm, "A"), ref)

    def test_schedule_precomputed_at_compile_time(self):
        src = """
        PROCESSORS P(2)
        TEMPLATE T(64)
        REAL A(64)
        REAL B(64)
        ALIGN A(i) WITH T(i)
        ALIGN B(i) WITH T(i)
        DISTRIBUTE T(CYCLIC(4)) ONTO P
        A(0:62:2) = B(1:63:2)
        """
        prog = compile_source(src)
        copy_stmt = prog.statements[0]
        assert copy_stmt.schedule is not None
        assert copy_stmt.schedule.n_iterations == 32

    def test_statement_descriptions(self):
        src = """
        PROCESSORS P(2)
        TEMPLATE T(16)
        REAL A(16)
        ALIGN A(i) WITH T(i)
        DISTRIBUTE T(CYCLIC(2)) ONTO P
        A(0:15:3) = 9.0
        """
        prog = compile_source(src)
        assert "A(0:15:3) = 9.0" in prog.statements[0].description

    def test_image_unknown_array(self):
        prog = compile_source(
            "PROCESSORS P(2)\nTEMPLATE T(8)\nREAL A(8)\n"
            "ALIGN A(i) WITH T(i)\nDISTRIBUTE T(CYCLIC(1)) ONTO P\n"
        )
        vm = prog.make_machine()
        with pytest.raises(CompileError, match="unknown array"):
            prog.image(vm, "Z")


class TestSemanticErrors:
    BASE = (
        "PROCESSORS P(2)\nTEMPLATE T(64)\nREAL A(32)\n"
        "ALIGN A(i) WITH T(i)\nDISTRIBUTE T(CYCLIC(4)) ONTO P\n"
    )

    def test_no_processors(self):
        with pytest.raises(CompileError, match="PROCESSORS"):
            compile_source("TEMPLATE T(8)\n")

    def test_undeclared_array(self):
        with pytest.raises(CompileError, match="undeclared array"):
            compile_source(self.BASE + "Z(0:9) = 1.0\n")

    def test_unaligned_array(self):
        with pytest.raises(CompileError, match="no ALIGN"):
            compile_source(
                "PROCESSORS P(2)\nTEMPLATE T(8)\nREAL A(8)\n"
                "DISTRIBUTE T(CYCLIC(1)) ONTO P\n"
            )

    def test_undistributed_template(self):
        with pytest.raises(CompileError, match="undistributed template"):
            compile_source(
                "PROCESSORS P(2)\nTEMPLATE T(8)\nREAL A(8)\nALIGN A(i) WITH T(i)\n"
            )

    def test_alignment_outside_template(self):
        with pytest.raises(CompileError, match="outside template"):
            compile_source(
                "PROCESSORS P(2)\nTEMPLATE T(8)\nREAL A(8)\n"
                "ALIGN A(i) WITH T(2*i)\nDISTRIBUTE T(CYCLIC(1)) ONTO P\n"
            )

    def test_double_align(self):
        with pytest.raises(CompileError, match="aligned twice"):
            compile_source(
                "PROCESSORS P(2)\nTEMPLATE T(8)\nREAL A(8)\n"
                "ALIGN A(i) WITH T(i)\nALIGN A(i) WITH T(i)\n"
                "DISTRIBUTE T(CYCLIC(1)) ONTO P\n"
            )

    def test_double_distribute(self):
        with pytest.raises(CompileError, match="distributed twice"):
            compile_source(
                "PROCESSORS P(2)\nTEMPLATE T(8)\n"
                "DISTRIBUTE T(CYCLIC(1)) ONTO P\nDISTRIBUTE T(BLOCK) ONTO P\n"
            )

    def test_section_out_of_bounds(self):
        with pytest.raises(CompileError, match="exceeds bounds"):
            compile_source(self.BASE + "A(0:32) = 1.0\n")

    def test_non_conformable(self):
        src = (
            "PROCESSORS P(2)\nTEMPLATE T(64)\nREAL A(32)\nREAL B(32)\n"
            "ALIGN A(i) WITH T(i)\nALIGN B(i) WITH T(i)\n"
            "DISTRIBUTE T(CYCLIC(4)) ONTO P\nA(0:9) = B(0:8)\n"
        )
        with pytest.raises(CompileError, match="non-conformable"):
            compile_source(src)

    def test_unknown_processors_in_distribute(self):
        with pytest.raises(CompileError, match="unknown processors"):
            compile_source(
                "PROCESSORS P(2)\nTEMPLATE T(8)\nDISTRIBUTE T(BLOCK) ONTO Q\n"
            )
