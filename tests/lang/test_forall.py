"""Tests for FORALL loops with affine subscripts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast_nodes import CombineAssign, FillAssign, ForallAssign
from repro.lang.compiler import compile_source
from repro.lang.desugar import desugar_forall, iteration_count
from repro.lang.parser import ParseError, parse_program
from repro.lang.reference import interpret
from repro.runtime.exec import distribute

BASE = """
PROCESSORS P(4)
TEMPLATE T(256)
REAL A(64)
REAL B(64)
ALIGN A(i) WITH T(i)
ALIGN B(i) WITH T(2*i+1)
DISTRIBUTE T(CYCLIC(4)) ONTO P
"""


class TestParsing:
    def test_fill_forall(self):
        prog = parse_program("FORALL (i = 0:9) A(i) = 3.5")
        stmt = prog.statements[0]
        assert isinstance(stmt, ForallAssign)
        assert stmt.var == "i"
        assert stmt.value == 3.5
        assert stmt.target.array == "A" and (stmt.target.a, stmt.target.b) == (1, 0)

    def test_affine_subscripts(self):
        prog = parse_program("FORALL (j = 0:20:2) A(2*j+1) = B(j) + 0.5 * B(j+2)")
        stmt = prog.statements[0]
        assert (stmt.target.a, stmt.target.b) == (2, 1)
        assert stmt.value is None
        assert [(t.coef, t.ref.a, t.ref.b) for t in stmt.terms] == [
            (1.0, 1, 0), (0.5, 1, 2)
        ]

    def test_errors(self):
        with pytest.raises(ParseError, match="left-hand side"):
            parse_program("FORALL (i = 0:9) 3.0 = A(i)")
        with pytest.raises(ParseError, match="affine"):
            parse_program("FORALL (i = 0:9) A(i) = B(j)")
        with pytest.raises(ParseError, match="terms"):
            parse_program("FORALL (i = 0:9) A(i) = B(0:3)")
        with pytest.raises(ParseError, match="assignment"):
            parse_program("FORALL (i = 0:9) A(i)")


class TestDesugar:
    def test_iteration_count(self):
        from repro.lang.ast_nodes import Triplet

        assert iteration_count(Triplet(0, 9, 1)) == 10
        assert iteration_count(Triplet(0, 9, 3)) == 4
        assert iteration_count(Triplet(9, 0, -3)) == 4
        assert iteration_count(Triplet(5, 4, 1)) == 0

    def test_fill_desugar(self):
        prog = parse_program("FORALL (i = 0:10:3) A(2*i+1) = 7.0")
        lowered = desugar_forall(prog.statements[0])
        assert isinstance(lowered, FillAssign)
        t = lowered.target.triplet
        # iterates 0,3,6,9 -> images 1,7,13,19
        assert (t.lower, t.upper, t.stride) == (1, 19, 6)

    def test_combine_desugar(self):
        prog = parse_program("FORALL (i = 2:8:2) A(i) = B(i+1)")
        lowered = desugar_forall(prog.statements[0])
        assert isinstance(lowered, CombineAssign)
        t = lowered.terms[0].section.triplet
        assert (t.lower, t.upper, t.stride) == (3, 9, 2)

    def test_empty(self):
        prog = parse_program("FORALL (i = 5:4) A(i) = 1.0")
        assert desugar_forall(prog.statements[0]) is None


class TestExecution:
    def test_fill(self):
        prog = compile_source(BASE + "FORALL (i = 0:63:5) A(i) = 9.0\n")
        vm = prog.run()
        ref = np.zeros(64)
        ref[0:64:5] = 9.0
        assert np.array_equal(prog.image(vm, "A"), ref)

    def test_stencil_forall(self):
        prog = compile_source(BASE + "FORALL (i = 1:62) A(i) = 0.5*A(i-1) + 0.5*A(i+1)\n")
        vm = prog.make_machine()
        host = np.arange(64, dtype=float) ** 2
        distribute(vm, prog.arrays["A"], host)
        prog.run(vm)
        ref = host.copy()
        ref[1:-1] = 0.5 * (host[:-2] + host[2:])
        assert np.allclose(prog.image(vm, "A"), ref)

    def test_aligned_source(self):
        prog = compile_source(BASE + "FORALL (i = 0:31) A(2*i) = B(i)\n")
        vm = prog.make_machine()
        host_b = np.arange(64, dtype=float) + 100
        distribute(vm, prog.arrays["B"], host_b)
        prog.run(vm)
        ref = np.zeros(64)
        ref[0:64:2] = host_b[0:32]
        assert np.array_equal(prog.image(vm, "A"), ref)

    def test_empty_forall_is_noop(self):
        prog = compile_source(BASE + "FORALL (i = 5:4) A(i) = 1.0\n")
        assert "[empty]" in prog.statements[0].description
        vm = prog.run()
        assert not prog.image(vm, "A").any()

    def test_reference_agrees(self):
        src = BASE + "FORALL (i = 0:20:2) A(3*i+1) = 2.0*B(i) + -1.0*B(i+10)\n"
        ast = parse_program(src)
        prog = compile_source(src)
        host_b = np.random.default_rng(1).random(64)
        want = interpret(ast, {"B": host_b})
        vm = prog.make_machine()
        distribute(vm, prog.arrays["B"], host_b)
        prog.run(vm)
        assert np.allclose(prog.image(vm, "A"), want["A"])

    @given(
        st.integers(min_value=1, max_value=3),   # a coefficient of LHS
        st.integers(min_value=0, max_value=4),   # b of LHS
        st.integers(min_value=1, max_value=3),   # stride
        st.integers(min_value=1, max_value=10),  # count
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_foralls(self, a, b, s, count, seed):
        n = 64
        last = (count - 1) * s
        # Keep images in bounds: a*last + b < n and last + count offset fits.
        if a * last + b >= n or last + 5 >= n:
            return
        src = (
            BASE
            + f"FORALL (i = 0:{last}:{s}) A({a}*i+{b}) = 0.5*B(i) + 2.0*B(i+5)\n"
        )
        ast = parse_program(src)
        prog = compile_source(src)
        host_b = np.random.default_rng(seed).integers(-9, 9, n).astype(float)
        want = interpret(ast, {"B": host_b})
        vm = prog.make_machine()
        distribute(vm, prog.arrays["B"], host_b)
        prog.run(vm)
        assert np.allclose(prog.image(vm, "A"), want["A"])
