"""Tests for the mini-HPF parser."""

import pytest

from repro.lang.ast_nodes import CopyAssign, FillAssign
from repro.lang.parser import ParseError, parse_affine, parse_program, parse_triplet


class TestTriplet:
    def test_full(self):
        t = parse_triplet("4:319:9")
        assert (t.lower, t.upper, t.stride) == (4, 319, 9)

    def test_default_stride(self):
        assert parse_triplet("0:10").stride == 1

    def test_negative(self):
        t = parse_triplet("100:4:-9")
        assert t.stride == -9

    def test_errors(self):
        with pytest.raises(ParseError, match="malformed triplet"):
            parse_triplet("abc")
        with pytest.raises(ParseError, match="nonzero"):
            parse_triplet("0:10:0")
        with pytest.raises(ParseError, match="malformed triplet"):
            parse_triplet("1:2:3:4")


class TestAffine:
    @pytest.mark.parametrize(
        "expr,want",
        [
            ("i", (1, 0)),
            ("-i", (-1, 0)),
            ("+i", (1, 0)),
            ("2*i", (2, 0)),
            ("2*i+1", (2, 1)),
            ("2 * i + 1", (2, 1)),
            ("-3*i-4", (-3, -4)),
            ("i+7", (1, 7)),
            ("-i+9", (-1, 9)),
        ],
    )
    def test_forms(self, expr, want):
        assert parse_affine(expr, "i") == want

    def test_errors(self):
        with pytest.raises(ParseError, match="malformed affine"):
            parse_affine("j+1", "i")
        with pytest.raises(ParseError, match="malformed affine"):
            parse_affine("i*i", "i")
        with pytest.raises(ParseError, match="nonzero"):
            parse_affine("0*i", "i")


class TestProgram:
    SRC = """
    ! declarations
    PROCESSORS P(4)
    TEMPLATE T(640)
    REAL A(320)
    REAL B(320)
    ALIGN A(i) WITH T(i)
    ALIGN B(j) WITH T(2*j+1)
    DISTRIBUTE T(CYCLIC(8)) ONTO P

    A(4:319:9) = 100.0      ! fill
    A(0:312:8) = B(3:237:6) ! copy
    """

    def test_full_program(self):
        prog = parse_program(self.SRC)
        assert prog.processors[0].name == "P" and prog.processors[0].size == 4
        assert prog.templates[0].size == 640
        assert {a.name for a in prog.arrays} == {"A", "B"}
        assert prog.aligns[1].a == 2 and prog.aligns[1].b == 1
        assert prog.distributes[0].format == "CYCLIC(8)"
        assert prog.distributes[0].k == 8
        assert isinstance(prog.statements[0], FillAssign)
        assert prog.statements[0].value == 100.0
        assert isinstance(prog.statements[1], CopyAssign)
        assert prog.statements[1].source.array == "B"

    def test_block_and_cyclic_formats(self):
        prog = parse_program(
            "PROCESSORS P(2)\nTEMPLATE T(10)\nTEMPLATE U(10)\n"
            "DISTRIBUTE T(BLOCK) ONTO P\nDISTRIBUTE U(CYCLIC) ONTO P\n"
        )
        assert prog.distributes[0].format == "BLOCK"
        assert prog.distributes[1].format == "CYCLIC"

    def test_case_insensitive_keywords(self):
        prog = parse_program("processors P(2)\ntemplate T(8)\nreal A(8)\n"
                             "align A(i) with T(i)\ndistribute T(cyclic(2)) onto P\n")
        assert prog.distributes[0].k == 2

    def test_comments_and_blanks(self):
        prog = parse_program("\n! nothing\n   \nPROCESSORS P(1)\n")
        assert len(prog.processors) == 1

    @pytest.mark.parametrize(
        "line,match",
        [
            ("GARBAGE", "unrecognized"),
            ("PROCESSORS P(0)", "positive"),
            ("TEMPLATE T(-1)", "positive"),
            ("REAL A(0)", "positive"),
            ("A(0:10:0) = 1.0", "nonzero"),
            ("A(0:10) = ", "right-hand side"),
            ("1.0 = A(0:10)", "left-hand side"),
            ("DISTRIBUTE T(CYCLIC(0)) ONTO P", "positive"),
        ],
    )
    def test_errors(self, line, match):
        with pytest.raises(ParseError, match=match):
            parse_program(line)

    def test_error_carries_lineno(self):
        try:
            parse_program("PROCESSORS P(2)\nGARBAGE\n")
        except ParseError as e:
            assert e.lineno == 2
        else:
            pytest.fail("expected ParseError")

    def test_fill_scientific_notation(self):
        prog = parse_program("A(0:9) = 1.5e3")
        assert prog.statements[0].value == 1500.0
