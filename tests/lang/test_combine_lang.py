"""Tests for combine statements through the language front end."""

import numpy as np
import pytest

from repro.lang.ast_nodes import CombineAssign, CopyAssign
from repro.lang.compiler import CompileError, compile_source
from repro.lang.parser import ParseError, parse_program
from repro.runtime.exec import distribute


class TestParsing:
    def test_scaled_single_term(self):
        prog = parse_program("A(0:9) = 2.0 * B(0:9)")
        stmt = prog.statements[0]
        assert isinstance(stmt, CombineAssign)
        assert stmt.terms[0].coef == 2.0
        assert stmt.terms[0].section.array == "B"

    def test_sum_of_sections(self):
        prog = parse_program("A(0:9) = B(0:9) + C(10:19)")
        stmt = prog.statements[0]
        assert isinstance(stmt, CombineAssign)
        assert [t.coef for t in stmt.terms] == [1.0, 1.0]
        assert [t.section.array for t in stmt.terms] == ["B", "C"]

    def test_mixed_coefficients(self):
        prog = parse_program("A(0:9) = 0.5 * B(0:9) + -1.5 * C(0:9)")
        stmt = prog.statements[0]
        assert [t.coef for t in stmt.terms] == [0.5, -1.5]

    def test_plain_copy_stays_copy(self):
        prog = parse_program("A(0:9) = B(0:9)")
        assert isinstance(prog.statements[0], CopyAssign)

    def test_errors(self):
        with pytest.raises(ParseError, match="coefficient"):
            parse_program("A(0:9) = x * B(0:9)")
        with pytest.raises(ParseError, match="sum of"):
            parse_program("A(0:9) = B(0:9) + 5q")
        with pytest.raises(ParseError, match="empty term"):
            parse_program("A(0:9) = B(0:9) + ")


class TestExecution:
    SRC = """
    PROCESSORS P(4)
    TEMPLATE T(128)
    REAL A(128)
    REAL B(128)
    REAL C(128)
    ALIGN A(i) WITH T(i)
    ALIGN B(i) WITH T(i)
    ALIGN C(i) WITH T(i)
    DISTRIBUTE T(CYCLIC(4)) ONTO P
    A(0:125:3) = 2.0 * B(1:126:3) + -1.0 * C(2:127:3)
    """

    def test_end_to_end(self):
        prog = compile_source(self.SRC)
        vm = prog.make_machine()
        host_b = np.arange(128, dtype=float)
        host_c = np.arange(128, dtype=float) * 10
        distribute(vm, prog.arrays["B"], host_b)
        distribute(vm, prog.arrays["C"], host_c)
        prog.run(vm)
        ref = np.zeros(128)
        ref[0:126:3] = 2.0 * host_b[1:127:3] - host_c[2:128:3]
        assert np.array_equal(prog.image(vm, "A"), ref)

    def test_description(self):
        prog = compile_source(self.SRC)
        desc = prog.statements[0].description
        assert "2.0*B" in desc and "-1.0*C" in desc

    def test_non_conformable_term(self):
        src = self.SRC.replace("C(2:127:3)", "C(2:100:3)")
        with pytest.raises(CompileError, match="non-conformable"):
            compile_source(src)

    def test_undeclared_term_array(self):
        src = self.SRC.replace("C(2:127:3)", "Z(2:127:3)")
        with pytest.raises(CompileError, match="undeclared"):
            compile_source(src)

    def test_jacobi_in_language(self):
        """The self-referential stencil expressed as one statement."""
        src = """
        PROCESSORS P(4)
        TEMPLATE T(64)
        REAL A(64)
        ALIGN A(i) WITH T(i)
        DISTRIBUTE T(CYCLIC(4)) ONTO P
        A(1:62) = 0.5 * A(0:61) + 0.5 * A(2:63)
        """
        prog = compile_source(src)
        vm = prog.make_machine()
        host = np.arange(64, dtype=float) ** 2
        distribute(vm, prog.arrays["A"], host)
        prog.run(vm)
        ref = host.copy()
        ref[1:-1] = 0.5 * (host[:-2] + host[2:])
        assert np.allclose(prog.image(vm, "A"), ref)
