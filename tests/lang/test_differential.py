"""Differential testing: distributed execution vs reference interpreter.

Random mini-HPF programs (random mappings, random statements) are
compiled onto the virtual machine and executed; final array images must
equal the sequential reference interpreter's.  This is the strongest
end-to-end check in the suite: a divergence anywhere in the
access-sequence / alignment / communication stack shows up here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.compiler import compile_source
from repro.lang.parser import parse_program
from repro.lang.reference import interpret
from repro.runtime.exec import distribute

ARRAY_NAMES = ["A", "B", "C"]


@st.composite
def random_program_1d(draw):
    """A random rank-1 program over three arrays of equal size."""
    p = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=12, max_value=64))
    k = draw(st.integers(min_value=1, max_value=8))
    # Affine alignments (a >= 1 keeps template extents easy to bound).
    lines = [f"PROCESSORS P({p})", f"TEMPLATE T({4 * n + 16})"]
    for name in ARRAY_NAMES:
        lines.append(f"REAL {name}({n})")
    for name in ARRAY_NAMES:
        a = draw(st.integers(min_value=1, max_value=3))
        b = draw(st.integers(min_value=0, max_value=5))
        lines.append(f"ALIGN {name}(i) WITH T({a}*i+{b})")
    lines.append(f"DISTRIBUTE T(CYCLIC({k})) ONTO P")

    n_statements = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_statements):
        kind = draw(st.sampled_from(["fill", "copy", "combine"]))
        count = draw(st.integers(min_value=1, max_value=10))

        def section(count=count):
            s = draw(st.integers(min_value=1, max_value=4))
            max_l = n - 1 - (count - 1) * s
            if max_l < 0:
                s = 1
                max_l = n - count
            l = draw(st.integers(min_value=0, max_value=max_l))
            return f"{l}:{l + (count - 1) * s}:{s}"

        target = draw(st.sampled_from(ARRAY_NAMES))
        if kind == "fill":
            value = draw(st.integers(min_value=-50, max_value=50))
            lines.append(f"{target}({section()}) = {value}.0")
        elif kind == "copy":
            source = draw(st.sampled_from(ARRAY_NAMES))
            lines.append(f"{target}({section()}) = {source}({section()})")
        else:
            t1 = draw(st.sampled_from(ARRAY_NAMES))
            t2 = draw(st.sampled_from(ARRAY_NAMES))
            c1 = draw(st.integers(min_value=-3, max_value=3))
            c2 = draw(st.integers(min_value=-3, max_value=3))
            lines.append(
                f"{target}({section()}) = {c1}.0 * {t1}({section()}) "
                f"+ {c2}.0 * {t2}({section()})"
            )
    return "\n".join(lines), n


class TestDifferential1D:
    @given(random_program_1d(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_vm_matches_reference(self, prog_and_n, seed):
        source, n = prog_and_n
        program_ast = parse_program(source)
        compiled = compile_source(source)

        rng = np.random.default_rng(seed)
        inputs = {name: rng.integers(-9, 9, n).astype(float) for name in ARRAY_NAMES}

        want = interpret(program_ast, inputs)

        vm = compiled.make_machine()
        for name in ARRAY_NAMES:
            distribute(vm, compiled.arrays[name], inputs[name])
        compiled.run(vm)

        for name in ARRAY_NAMES:
            got = compiled.image(vm, name)
            assert np.allclose(got, want[name]), (source, name)


class TestDifferential2D:
    @given(
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=6, max_value=16),
        st.integers(min_value=6, max_value=16),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_2d_program(self, g0, g1, k0, k1, n0, n1, seed):
        source = f"""
        PROCESSORS P({g0}, {g1})
        TEMPLATE   T({n0}, {n1})
        TEMPLATE   U({n1}, {n0})
        REAL       M({n0}, {n1})
        REAL       N({n0}, {n1})
        REAL       Q({n1}, {n0})
        ALIGN      M(i, j) WITH T(i, j)
        ALIGN      N(i, j) WITH T(i, j)
        ALIGN      Q(i, j) WITH U(i, j)
        DISTRIBUTE T(CYCLIC({k0}), CYCLIC({k1})) ONTO P
        DISTRIBUTE U(CYCLIC({k1}), CYCLIC({k0})) ONTO P
        M(0:{n0 - 1}, 0:{n1 - 1}) = N(0:{n0 - 1}, 0:{n1 - 1})
        M(0:{n0 - 1}:2, 0:{n1 - 1}) = 3.0
        Q(0:{n1 - 1}, 0:{n0 - 1}) = TRANSPOSE(M(0:{n0 - 1}, 0:{n1 - 1}))
        """
        program_ast = parse_program(source)
        compiled = compile_source(source)
        rng = np.random.default_rng(seed)
        inputs = {"N": rng.integers(-9, 9, (n0, n1)).astype(float)}
        want = interpret(program_ast, inputs)

        vm = compiled.make_machine()
        distribute(vm, compiled.arrays["N"], inputs["N"])
        compiled.run(vm)
        for name in ("M", "N", "Q"):
            assert np.allclose(compiled.image(vm, name), want[name]), name
