"""Every example script must run cleanly (they self-verify with asserts)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example prints its findings


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
