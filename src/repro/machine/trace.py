"""Execution tracing and statistics for the simulated machine.

Benchmarks and integration tests use these helpers to assert *what* a
node program touched (exact local addresses, in order) and to report
aggregate machine activity (message counts, bytes, memory traffic) in
the spirit of the paper's per-processor measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vm import VirtualMachine

__all__ = ["AccessTrace", "TracingMemory", "machine_report"]


@dataclass
class AccessTrace:
    """Ordered record of loads/stores against one local arena."""

    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)

    @property
    def addresses(self) -> list[int]:
        """All touched addresses in program order (reads and writes merged
        is not tracked; most node codes are write-only or read-only)."""
        return self.writes if self.writes else self.reads


class TracingMemory:
    """A local-memory proxy that records every indexed access.

    Wraps a NumPy arena; integer and array indexing are both recorded.
    Node-code templates accept any object with ``__getitem__`` /
    ``__setitem__`` and ``len``, so tests can substitute this for the raw
    arena to check the paper's claim that the ΔM walk touches exactly
    the owned section elements in increasing order.
    """

    def __init__(self, arena: np.ndarray, trace: AccessTrace | None = None) -> None:
        self.arena = arena
        self.trace = trace if trace is not None else AccessTrace()

    def __len__(self) -> int:
        return len(self.arena)

    def _record(self, log: list[int], index) -> None:
        if isinstance(index, (int, np.integer)):
            log.append(int(index))
        else:
            log.extend(int(i) for i in np.asarray(index).ravel())

    def __getitem__(self, index):
        self._record(self.trace.reads, index)
        return self.arena[index]

    def __setitem__(self, index, value) -> None:
        self._record(self.trace.writes, index)
        self.arena[index] = value


def machine_report(vm: VirtualMachine) -> dict:
    """Aggregate activity summary of a virtual machine run."""
    net = vm.network.stats
    return {
        "ranks": vm.p,
        "messages": net.messages,
        "bytes": net.bytes,
        "channels": dict(net.per_channel),
        "memory": [
            {
                "rank": proc.rank,
                "reads": proc.stats.reads,
                "writes": proc.stats.writes,
                "allocations": proc.stats.allocations,
                "allocated_cells": proc.stats.allocated_cells,
            }
            for proc in vm.processors
        ],
    }
