"""Execution tracing and statistics for the simulated machine.

Benchmarks and integration tests use these helpers to assert *what* a
node program touched (exact local addresses, in order) and to report
aggregate machine activity (message counts, bytes, memory traffic) in
the spirit of the paper's per-processor measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vm import VirtualMachine

__all__ = ["AccessTrace", "TracingMemory", "fault_report", "machine_report"]


@dataclass
class AccessTrace:
    """Ordered record of loads/stores against one local arena."""

    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)

    @property
    def addresses(self) -> list[int]:
        """All touched addresses in program order (reads and writes merged
        is not tracked; most node codes are write-only or read-only)."""
        return self.writes if self.writes else self.reads


class TracingMemory:
    """A local-memory proxy that records every indexed access.

    Wraps a NumPy arena; integer and array indexing are both recorded.
    Node-code templates accept any object with ``__getitem__`` /
    ``__setitem__`` and ``len``, so tests can substitute this for the raw
    arena to check the paper's claim that the ΔM walk touches exactly
    the owned section elements in increasing order.
    """

    def __init__(self, arena: np.ndarray, trace: AccessTrace | None = None) -> None:
        self.arena = arena
        self.trace = trace if trace is not None else AccessTrace()

    def __len__(self) -> int:
        return len(self.arena)

    def _record(self, log: list[int], index) -> None:
        if isinstance(index, (int, np.integer)):
            log.append(int(index))
        else:
            log.extend(int(i) for i in np.asarray(index).ravel())

    def __getitem__(self, index):
        self._record(self.trace.reads, index)
        return self.arena[index]

    def __setitem__(self, index, value) -> None:
        self._record(self.trace.writes, index)
        self.arena[index] = value


def machine_report(vm: VirtualMachine) -> dict:
    """Aggregate activity summary of a virtual machine run."""
    net = vm.network.stats
    return {
        "ranks": vm.p,
        "messages": net.messages,
        "bytes": net.bytes,
        "channels": dict(net.per_channel),
        "supersteps": vm.network.superstep,
        "network": {
            "sent": net.sent,
            "delivered": net.delivered,
            "dropped": net.dropped,
            "duplicated": net.duplicated,
            "corrupted": net.corrupted,
            "stalled": net.stalled,
            "quarantined": net.quarantined,
            "fault_events": len(vm.network.fault_events),
        },
        "crashes": list(vm.crash_log),
        "dead_ranks": list(vm.dead_ranks),
        "incarnations": [proc.incarnation for proc in vm.processors],
        "memory": [
            {
                "rank": proc.rank,
                "reads": proc.stats.reads,
                "writes": proc.stats.writes,
                "allocations": proc.stats.allocations,
                "allocated_cells": proc.stats.allocated_cells,
            }
            for proc in vm.processors
        ],
    }


def fault_report(vm: VirtualMachine) -> dict:
    """Summary of the fault trace: per-kind counts plus the ordered
    event list (:class:`repro.machine.faults.FaultEvent` records,
    including ``crash`` / ``restart`` / ``quarantine`` lifecycle events).

    Deterministic given the plan's seed and the program -- two runs with
    the same seed produce identical reports, which is what makes
    fault-injection failures replayable.
    """
    events = list(vm.network.fault_events)
    by_kind: dict[str, int] = {}
    for ev in events:
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
    return {
        "plan": vm.network.fault_plan,
        "events": events,
        "by_kind": by_kind,
        "supersteps": vm.network.superstep,
        "crashes": list(vm.crash_log),
    }
