"""Execution tracing and statistics for the simulated machine.

Benchmarks and integration tests use these helpers to assert *what* a
node program touched (exact local addresses, in order) and to report
aggregate machine activity (message counts, bytes, memory traffic) in
the spirit of the paper's per-processor measurements.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs.spans import EventLog, EventRecord
from .iface import Machine
from .vm import VirtualMachine

__all__ = [
    "AccessTrace",
    "FlightRecord",
    "FlightRecorder",
    "TracingMemory",
    "fault_report",
    "machine_report",
]


@dataclass
class AccessTrace:
    """Ordered record of loads/stores against one local arena."""

    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)

    @property
    def addresses(self) -> list[int]:
        """All touched addresses in program order (reads and writes merged
        is not tracked; most node codes are write-only or read-only)."""
        return self.writes if self.writes else self.reads


class TracingMemory:
    """A local-memory proxy that records every indexed access.

    Wraps a NumPy arena; integer and array indexing are both recorded.
    Node-code templates accept any object with ``__getitem__`` /
    ``__setitem__`` and ``len``, so tests can substitute this for the raw
    arena to check the paper's claim that the ΔM walk touches exactly
    the owned section elements in increasing order.
    """

    def __init__(self, arena: np.ndarray, trace: AccessTrace | None = None) -> None:
        self.arena = arena
        self.trace = trace if trace is not None else AccessTrace()

    def __len__(self) -> int:
        return len(self.arena)

    def _record(self, log: list[int], index) -> None:
        if isinstance(index, (int, np.integer)):
            log.append(int(index))
        else:
            log.extend(int(i) for i in np.asarray(index).ravel())

    def __getitem__(self, index):
        self._record(self.trace.reads, index)
        return self.arena[index]

    def __setitem__(self, index, value) -> None:
        self._record(self.trace.writes, index)
        self.arena[index] = value


#: Flight-recorder entries are machine events; the recorder is a view
#: over the observability event log, so they share one record type.
FlightRecord = EventRecord


class FlightRecorder:
    """Per-rank bounded ring buffer of recent machine activity.

    The post-mortem instrument for the silent-corruption defense
    (docs/FAULT_MODEL.md §5): each rank keeps its last ``capacity``
    events -- sends, deliveries, drops, quarantines, injected faults,
    audit verdicts, repairs -- so when a verified exchange gives up with
    an ``ExchangeFailure``, :meth:`dump` leaves a JSON snapshot in
    ``fault-reports/`` that tells the story of the final supersteps
    without having traced the whole (possibly enormous) run.

    Since the observability refactor this class owns no storage of its
    own once attached: :meth:`attach` force-enables the machine's
    :class:`repro.obs.spans.EventLog` (the single store the network and
    VM write sends, deliveries, drops, quarantines, and fault events
    into) and re-bounds it to ``capacity``; :meth:`detach` restores the
    log's previous enabled state.  Runtime layers append their own
    entries (audit verdicts, repair decisions) via :meth:`record`.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._vm: Machine | None = None
        # Standalone store used only until attach() points us at a
        # machine's event log (record() before attach still works).
        self._own = EventLog(capacity, enabled=True)
        self._prev_enabled = False

    @property
    def _log(self) -> EventLog:
        return self._vm.obs.events if self._vm is not None else self._own

    @property
    def dropped_records(self) -> int:
        """Ring evictions in the backing log (bounded-buffer honesty)."""
        return self._log.dropped

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, vm: Machine) -> None:
        if self._vm is not None and self._vm is not vm:
            raise ValueError("recorder is already attached to another machine")
        if self._vm is None:
            self._vm = vm
            log = vm.obs.events
            self._prev_enabled = log.enabled
            log.enabled = True
            log.set_capacity(self.capacity)
            # Carry over anything recorded while unattached.
            for rank, ring in self._own.rings().items():
                for ev in ring:
                    log.record(rank, ev.superstep, ev.kind, ev.detail)
            self._own.clear()

    def detach(self) -> None:
        if self._vm is None:
            return
        self._vm.obs.events.enabled = self._prev_enabled
        self._vm = None

    def sync(self) -> None:
        """Retained for backward compatibility: events are now recorded
        at the source (``Network.record_fault`` writes straight into the
        event log), so there is nothing to fold in."""

    # ------------------------------------------------------------------
    # Recording / dumping
    # ------------------------------------------------------------------

    def record(self, rank: int, superstep: int, kind: str, detail: str) -> None:
        self._log.record(rank, superstep, kind, detail)

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "dropped_records": self.dropped_records,
            "superstep": self._vm.superstep if self._vm is not None else None,
            "ranks": {
                str(rank): [
                    {"superstep": r.superstep, "kind": r.kind, "detail": r.detail}
                    for r in ring
                ]
                for rank, ring in sorted(self._log.rings().items())
            },
        }

    def dump(self, directory, label: str = "exchange") -> Path:
        """Write the rings as JSON under ``directory`` (created if
        needed); returns the file path.  Called by the verified exchange
        on any ``ExchangeFailure``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Per-PID filename: worker processes and the driver can all dump
        # without clobbering each other under fault-reports/.
        path = directory / f"flight-{label}-p{os.getpid()}-{int(time.time() * 1000):x}.json"
        path.write_text(json.dumps(self.snapshot(), indent=1))
        from ..obs.export import rotate_reports

        rotate_reports(directory)
        return path


def machine_report(vm: VirtualMachine) -> dict:
    """Aggregate activity summary of a virtual machine run.

    Includes the runtime's plan-cache counters (``plan_caches``) so
    reports show how much schedule/plan construction was amortized, and
    the machine's observability snapshot (``metrics``/``observability``)
    when an enabled handle is attached.  The plan-cache import is
    deferred: the machine layer does not depend on the runtime package
    at module level.
    """
    from ..runtime.plancache import cache_stats

    net = vm.network.stats
    return {
        "plan_caches": cache_stats(),
        "metrics": vm.obs.metrics.snapshot(),
        "observability": {
            "enabled": vm.obs.enabled,
            "spans": len(vm.obs.trace),
            "dropped_spans": vm.obs.trace.dropped,
            "events": vm.obs.events.count(),
            "dropped_events": vm.obs.events.dropped,
        },
        "ranks": vm.p,
        "messages": net.messages,
        "bytes": net.bytes,
        "channels": dict(net.per_channel),
        "supersteps": vm.network.superstep,
        "network": {
            "sent": net.sent,
            "delivered": net.delivered,
            "dropped": net.dropped,
            "duplicated": net.duplicated,
            "corrupted": net.corrupted,
            "stalled": net.stalled,
            "quarantined": net.quarantined,
            "fault_events": len(vm.network.fault_events),
        },
        "crashes": list(vm.crash_log),
        "dead_ranks": list(vm.dead_ranks),
        "incarnations": [proc.incarnation for proc in vm.processors],
        "memory": [
            {
                "rank": proc.rank,
                "reads": proc.stats.reads,
                "writes": proc.stats.writes,
                "allocations": proc.stats.allocations,
                "allocated_cells": proc.stats.allocated_cells,
                "scribbles": proc.stats.scribbles,
            }
            for proc in vm.processors
        ],
    }


def fault_report(vm: VirtualMachine) -> dict:
    """Summary of the fault trace: per-kind counts plus the ordered
    event list (:class:`repro.machine.faults.FaultEvent` records,
    including ``crash`` / ``restart`` / ``quarantine`` lifecycle events).

    Deterministic given the plan's seed and the program -- two runs with
    the same seed produce identical reports, which is what makes
    fault-injection failures replayable.
    """
    events = list(vm.network.fault_events)
    by_kind: dict[str, int] = {}
    for ev in events:
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
    return {
        "plan": vm.network.fault_plan,
        "events": events,
        "by_kind": by_kind,
        "supersteps": vm.network.superstep,
        "crashes": list(vm.crash_log),
    }
