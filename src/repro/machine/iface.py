"""The execution-backend seam: what a *machine* is, independent of how
its ranks actually run.

Everything above this layer -- the executors in :mod:`repro.runtime`,
the resilient exchange, checkpointing, the integrity auditor, the
collectives -- drives a distributed-memory machine through a small
surface: per-rank named memory arenas, point-to-point messages that
cross superstep barriers, and a rank crash/restart lifecycle.  This
module names that surface as two structural protocols so the system can
run on more than one substrate:

* :class:`RankState` -- one rank's volatile state (what
  :class:`repro.machine.processor.Processor` models in-process, and
  what the multiprocess backend's rank handles mirror for a real OS
  process);
* :class:`Machine` -- the whole machine: superstep execution, message
  delivery, barriers, lifecycle, and teardown.

Two backends implement :class:`Machine`:

* :class:`repro.machine.vm.VirtualMachine` -- the in-process simulator,
  deterministic by construction.  It is the **oracle**: every other
  backend must produce bit-identical results under the same seeds
  (``tests/runtime/test_differential.py``).
* :class:`repro.machine.mp.MpMachine` -- each rank a real OS process
  with arenas in ``multiprocessing.shared_memory`` and exchange over
  framed unix-socket packets, supervised with monotonic-clock
  heartbeats and real ``SIGKILL`` crash recovery
  (docs/BACKENDS.md).

The protocols are structural (:func:`typing.runtime_checkable`): a
backend never inherits from them, it just has the members.  Code that
accepts "any machine" should annotate with :class:`Machine` and stick
to this surface.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = ["BACKENDS", "Machine", "RankState", "create_machine"]


@runtime_checkable
class RankState(Protocol):
    """One rank's volatile state: identity, liveness, and named arenas.

    The in-process backend's :class:`~repro.machine.processor.Processor`
    is the reference implementation; the multiprocess backend exposes
    the same surface over shared-memory segments owned by a real rank
    process.  ``incarnation`` counts restarts (so peers and the
    recovery loop can tell a reboot from a stall) and ``crashed_at``
    records the superstep of the latest crash.
    """

    rank: int
    alive: bool
    incarnation: int
    crashed_at: int | None

    @property
    def memory_names(self) -> tuple[str, ...]: ...

    def memory(self, name: str) -> np.ndarray: ...

    def allocate(
        self, name: str, size: int, dtype=np.float64, fill=0
    ) -> np.ndarray: ...

    def has_memory(self, name: str) -> bool: ...

    def arenas(self) -> list[tuple[str, np.ndarray]]: ...


@runtime_checkable
class Machine(Protocol):
    """A ``p``-rank bulk-synchronous distributed-memory machine.

    The contract every executor and resilience layer relies on:

    * **Execution** -- :meth:`run` executes a node function once per
      live rank and then crosses a barrier; messages sent during
      superstep ``t`` are receivable during superstep ``t + 1``.
    * **Messaging** -- :meth:`send` / :meth:`recv` / :meth:`probe` /
      :meth:`drain` are the per-rank mailbox ops
      (:class:`~repro.machine.vm.NodeContext` routes through them);
      :meth:`outstanding` is the host-side quiescence check.
    * **Lifecycle** -- ranks crash (losing their volatile arenas and
      in-flight traffic) and restart with a bumped incarnation;
      ``crash_log`` records ``(rank, superstep)`` pairs in the order
      observed.
    * **Elastic membership** -- :meth:`grow_to` appends fresh, empty
      ranks; :meth:`retire_to` fences the top ranks' traffic and removes
      them.  :mod:`repro.runtime.elastic` drives crash-tolerant
      re-layout migrations through this pair.
    * **Hooks** -- ``barrier_hooks`` run at every barrier after node
      execution but before fault injection (the integrity auditor's
      commit point).
    * **Teardown** -- :meth:`close` releases whatever the backend
      holds (a no-op in-process; processes, sockets, and shared-memory
      segments for the multiprocess backend).  Machines are usable as
      context managers via ``closing()`` semantics in the backends.
    """

    p: int
    obs: Any
    processors: Sequence[RankState]
    crash_log: list[tuple[int, int]]
    barrier_hooks: list[Callable[..., None]]

    @property
    def superstep(self) -> int: ...

    # -- execution -----------------------------------------------------

    def run(self, fn: Callable[..., Any], *args: Any) -> list[Any]: ...

    def run_spmd(
        self, fn: Callable[..., Any], per_rank_args: Sequence[tuple] | None = None
    ) -> list[Any]: ...

    def bsp(self, *phases: Callable[..., Any]) -> list[list[Any]]: ...

    # -- messaging -----------------------------------------------------

    def send(self, source: int, dest: int, tag: Any, payload: Any) -> None: ...

    def recv(self, dest: int, source: int, tag: Any) -> Any: ...

    def probe(self, dest: int, source: int, tag: Any) -> bool: ...

    def drain(self, dest: int, tag: Any) -> list[tuple[int, Any]]: ...

    def outstanding(self, tags: Any) -> int: ...

    # -- lifecycle -----------------------------------------------------

    def alive(self, rank: int) -> bool: ...

    @property
    def dead_ranks(self) -> tuple[int, ...]: ...

    def crash_rank(self, rank: int, downtime: int | None = None) -> None: ...

    # -- elastic membership --------------------------------------------

    def grow_to(self, new_p: int) -> None: ...

    def retire_to(self, new_p: int) -> None: ...

    # -- whole-machine conveniences ------------------------------------

    def allocate_all(self, name: str, sizes: Iterable[int], **kw) -> None: ...

    def memories(self, name: str) -> list: ...

    def close(self) -> None: ...


#: Backend registry for :func:`create_machine`.  Values are import
#: paths resolved lazily so importing the machine package never drags
#: in the multiprocess machinery (sockets, shared memory) unless asked.
BACKENDS = {
    "inprocess": ("repro.machine.vm", "VirtualMachine"),
    "mp": ("repro.machine.mp", "MpMachine"),
}


def create_machine(p: int, backend: str = "inprocess", **kw) -> Machine:
    """Construct a machine by backend name.

    ``create_machine(p, "inprocess", fault_plan=...)`` returns the
    deterministic in-process oracle; ``create_machine(p, "mp", ...)``
    the real-process backend (see :class:`repro.machine.mp.MpConfig`
    for its keyword knobs).  Both accept ``fault_plan`` and ``obs``.
    """
    try:
        module_name, cls_name = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; known backends: {sorted(BACKENDS)}"
        ) from None
    import importlib

    cls = getattr(importlib.import_module(module_name), cls_name)
    return cls(p, **kw)
