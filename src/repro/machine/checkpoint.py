"""Superstep-granularity checkpoint/restart for the SPMD machine.

Crash faults (:class:`repro.machine.faults.FaultPlan` kill points) wipe
a rank's volatile memory; this module is the stable storage that makes
such a crash survivable.  A :class:`CheckpointStore` captures per-rank
snapshots -- every local arena serialized with a CRC-32, plus an opaque
runtime ``state`` blob (the resilient protocol stashes its applied-set
there, its "network sequence state") -- and restores them into a
restarted processor after verifying every checksum, so a bit-rotted
checkpoint is a hard :class:`CheckpointError` rather than silently
wrong recovered data.

Policies are deliberately small: :class:`CheckpointPolicy` expresses
"every N rounds" (``every=N``) or on-demand-only (``every=None``), and
bounded retention (the store keeps the last ``retention`` checkpoints,
like a rotating snapshot directory).  The store never snapshots a dead
rank -- its memory is already gone -- so a checkpoint taken mid-outage
simply omits the victim and :meth:`CheckpointStore.latest_for` walks
back to the newest checkpoint that still covers it.

See docs/FAULT_MODEL.md ("Crash faults and recovery") for how
:mod:`repro.runtime.resilient` drives this during an exchange.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from .iface import Machine, RankState

__all__ = [
    "ArenaSnapshot",
    "Checkpoint",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointStore",
    "RankSnapshot",
]


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken, found, or verifiably restored."""


def _state_checksum(state: Any) -> int:
    return zlib.crc32(repr(state).encode())


@dataclass(frozen=True, slots=True)
class ArenaSnapshot:
    """One local memory arena, serialized and checksummed."""

    name: str
    dtype: str  # NumPy dtype.str, e.g. "<f8"
    data: bytes
    checksum: int

    @classmethod
    def capture(cls, name: str, arena: np.ndarray) -> "ArenaSnapshot":
        data = np.ascontiguousarray(arena).tobytes()
        return cls(name, arena.dtype.str, data, zlib.crc32(data))

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def restore(self) -> np.ndarray:
        if zlib.crc32(self.data) != self.checksum:
            raise CheckpointError(
                f"checksum mismatch restoring arena {self.name!r} -- "
                "checkpoint is corrupted"
            )
        return np.frombuffer(self.data, dtype=np.dtype(self.dtype)).copy()


@dataclass(frozen=True, slots=True)
class RankSnapshot:
    """One rank's full volatile state at a superstep boundary.

    ``state`` is an opaque blob the runtime layers may attach (the
    resilient exchange stores its per-rank protocol state there); it is
    checksummed by ``repr`` so accidental mutation between save and
    restore is detected.
    """

    rank: int
    incarnation: int
    arenas: tuple[ArenaSnapshot, ...]
    state: Any = None
    state_checksum: int = 0

    @classmethod
    def capture(cls, proc: RankState, state: Any = None) -> "RankSnapshot":
        arenas = tuple(
            ArenaSnapshot.capture(name, proc.memory(name))
            for name in proc.memory_names
        )
        return cls(
            proc.rank, proc.incarnation, arenas, state, _state_checksum(state)
        )

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arenas)

    def arena_values(self, name: str) -> np.ndarray | None:
        """Checksum-verified contents of one snapshotted arena, or
        ``None`` if this snapshot does not carry it.

        The chunk-repair path of the verified exchange
        (docs/FAULT_MODEL.md §5) reads single arenas here: a scribbled
        chunk is patched from the newest covering checkpoint without
        rewinding the whole rank.
        """
        for snap in self.arenas:
            if snap.name == name:
                return snap.restore()
        return None

    def restore_into(self, proc: RankState) -> Any:
        """Reallocate every snapshotted arena on ``proc`` (checksums
        verified) and return the verified opaque ``state``."""
        if not proc.alive:
            raise CheckpointError(
                f"cannot restore into dead rank {proc.rank}; restart it first"
            )
        if _state_checksum(self.state) != self.state_checksum:
            raise CheckpointError(
                f"runtime-state checksum mismatch restoring rank {proc.rank}"
            )
        for snap in self.arenas:
            values = snap.restore()
            proc.allocate(snap.name, len(values), dtype=values.dtype)
            proc.memory(snap.name)[:] = values
        return self.state


@dataclass(frozen=True)
class Checkpoint:
    """Machine-wide snapshot at one superstep (dead ranks omitted)."""

    superstep: int
    snapshots: dict[int, RankSnapshot]

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.snapshots.values())

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(sorted(self.snapshots))


@dataclass(frozen=True, slots=True)
class CheckpointPolicy:
    """When to checkpoint, and how many checkpoints to keep.

    ``every=N`` takes a snapshot every ``N`` protocol rounds;
    ``every=None`` means on-demand only (explicit :meth:`save` calls,
    e.g. the exchange's baseline checkpoint).  ``retention`` bounds the
    store: older checkpoints are discarded first-in-first-out.
    """

    every: int | None = 1
    retention: int = 2

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1 or None, got {self.every}")
        if self.retention < 1:
            raise ValueError(f"retention must be >= 1, got {self.retention}")

    def due(self, rounds_since_last: int) -> bool:
        return self.every is not None and rounds_since_last >= self.every


class CheckpointStore:
    """Bounded stable storage for machine checkpoints.

    The store survives rank crashes by construction (it lives host-side,
    the simulator's stand-in for disk/replicated storage).  ``saved`` /
    ``bytes_saved`` / ``restores`` feed the overhead benchmark in
    ``benchmarks/bench_resilience.py``.
    """

    def __init__(self, policy: CheckpointPolicy | None = None) -> None:
        self.policy = policy if policy is not None else CheckpointPolicy()
        self._checkpoints: deque[Checkpoint] = deque(maxlen=self.policy.retention)
        self.saved = 0
        self.bytes_saved = 0
        self.restores = 0

    @property
    def checkpoints(self) -> tuple[Checkpoint, ...]:
        return tuple(self._checkpoints)

    def save(
        self,
        vm: Machine,
        states: dict[int, Any] | None = None,
    ) -> Checkpoint:
        """Snapshot every live rank of ``vm`` (dead ranks are omitted:
        their memory is already lost).  ``states`` attaches an opaque
        per-rank runtime blob to the snapshots."""
        snapshots = {
            rank: RankSnapshot.capture(
                vm.processors[rank],
                None if states is None else states.get(rank),
            )
            for rank in range(vm.p)
            if vm.processors[rank].alive
        }
        if not snapshots:
            raise CheckpointError("no live ranks to checkpoint")
        ckpt = Checkpoint(vm.superstep, snapshots)
        self._checkpoints.append(ckpt)
        self.saved += 1
        self.bytes_saved += ckpt.nbytes
        return ckpt

    def covering(
        self, superstep: int, rank: int | None = None
    ) -> Checkpoint | None:
        """Newest retained checkpoint taken at or before ``superstep``
        (optionally required to cover ``rank``), or ``None`` when
        retention has already evicted every candidate.

        This is the question degraded-mode membership decisions ask:
        "can rank ``r``'s state as of superstep ``s`` still be
        recovered?"  A ``None`` answer means the crash outlived the
        retention window (see :meth:`retention_window`).
        """
        for ckpt in reversed(self._checkpoints):
            if ckpt.superstep > superstep:
                continue
            if rank is not None and rank not in ckpt.snapshots:
                continue
            return ckpt
        return None

    def retention_window(self) -> dict[str, Any]:
        """The store's current retention window, for diagnostics: the
        oldest and newest retained supersteps (``None`` when empty) and
        the policy's ``every``/``retention`` knobs.  Failure paths embed
        this in their error messages so "crash outlived retention" is
        diagnosable from the exception alone."""
        steps = [ckpt.superstep for ckpt in self._checkpoints]
        return {
            "oldest": min(steps) if steps else None,
            "newest": max(steps) if steps else None,
            "retained": len(steps),
            "every": self.policy.every,
            "retention": self.policy.retention,
        }

    def describe_window(self) -> str:
        """One-line human rendering of :meth:`retention_window`."""
        win = self.retention_window()
        if win["retained"] == 0:
            held = "no checkpoints retained"
        else:
            held = (
                f"retained supersteps [{win['oldest']}, {win['newest']}] "
                f"({win['retained']} checkpoint(s))"
            )
        return (
            f"{held}; policy every={win['every']} retention={win['retention']}"
        )

    def latest_for(
        self, rank: int, before: int | None = None
    ) -> tuple[Checkpoint, RankSnapshot] | None:
        """Newest retained checkpoint covering ``rank`` (optionally taken
        strictly before superstep ``before``), or ``None``."""
        for ckpt in reversed(self._checkpoints):
            if before is not None and ckpt.superstep >= before:
                continue
            snap = ckpt.snapshots.get(rank)
            if snap is not None:
                return ckpt, snap
        return None

    def restore_rank(
        self, vm: Machine, rank: int, checkpoint: Checkpoint | None = None
    ) -> Any:
        """Restore ``rank``'s arenas from ``checkpoint`` (default: the
        newest covering it); returns the snapshot's opaque runtime state.
        Raises :class:`CheckpointError` when no usable checkpoint exists
        or any checksum fails."""
        if checkpoint is not None:
            snap = checkpoint.snapshots.get(rank)
            if snap is None:
                raise CheckpointError(
                    f"checkpoint at superstep {checkpoint.superstep} does not "
                    f"cover rank {rank}"
                )
        else:
            entry = self.latest_for(rank)
            if entry is None:
                raise CheckpointError(f"no retained checkpoint covers rank {rank}")
            _, snap = entry
        state = snap.restore_into(vm.processors[rank])
        self.restores += 1
        return state
