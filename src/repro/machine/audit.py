"""End-to-end memory-integrity auditing for the SPMD machine.

Packet CRCs (:mod:`repro.runtime.resilient`) defend data *in flight*;
checkpoint checksums (:mod:`repro.machine.checkpoint`) defend data *on
stable storage*.  Neither sees bits that rot *at rest* inside a rank's
live arena -- a ``scribble`` fault (:mod:`repro.machine.faults`) is
faithfully packed, retransmitted, checkpointed, and "recovered", which
is exactly the silent-data-corruption failure mode fleet-scale studies
report.  This module is the detection layer (docs/FAULT_MODEL.md §5).

An :class:`IntegrityAuditor` keeps, per ``(rank, arena)``, a *block
checksum ledger*: the arena is divided into fixed-size chunks of
``chunk_size`` elements, each with a CRC-32, backed by a shadow copy of
the last known-legitimate contents.  The runtime *notes* every
legitimate write (:meth:`IntegrityAuditor.note_write`); the ledger folds
those notes in at the superstep barrier via the virtual machine's
``barrier_hooks`` -- which run **before** fault injection, so the ledger
always reflects the pre-rot state.  An :meth:`IntegrityAuditor.audit`
pass then localizes any divergence to a chunk, the exact diverged local
addresses within it, and (via :func:`localize_divergence`, using the
paper's own access-sequence machinery in
:mod:`repro.distribution.localize`) the owned global array indices --
"rank 2's A, chunk 3, slots 17-19, global indices 134:146:6" instead of
"something is wrong".

The auditor only *detects*; repair policy (re-fetch from the sender's
retransmit buffer, chunk restore from checkpoint, full rank restore)
belongs to the verified-exchange mode of :mod:`repro.runtime.resilient`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .processor import Processor
from .vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (layering)
    from ..distribution.array import DistributedArray

__all__ = [
    "AuditStats",
    "Divergence",
    "IntegrityAuditor",
    "localize_divergence",
]

# Whole-arena divergences (e.g. an unexplained reallocation) carry this
# sentinel instead of a chunk number; localization has failed and the
# caller must escalate to a full rank restore.
WHOLE_ARENA = -1


def _chunk_crcs(data: np.ndarray, chunk_bytes: int) -> list[int]:
    raw = data.reshape(-1).view(np.uint8)
    return [
        zlib.crc32(raw[off : off + chunk_bytes].tobytes())
        for off in range(0, raw.size, chunk_bytes)
    ] or [zlib.crc32(b"")]


@dataclass(frozen=True, slots=True)
class Divergence:
    """One localized integrity violation: which chunk of which arena on
    which rank no longer matches the ledger, down to the element slots.

    ``chunk == WHOLE_ARENA`` (with empty ``slots``) means localization
    failed -- the arena changed shape or dtype outside any legitimate
    write path -- and only a full restore can help.
    """

    superstep: int
    rank: int
    arena: str
    chunk: int
    slots: tuple[int, ...]  # diverged element slots (local addresses)

    @property
    def localized(self) -> bool:
        return self.chunk != WHOLE_ARENA


@dataclass
class AuditStats:
    """What the auditor did and found (feeds the resilience report and
    the audit-overhead benchmark)."""

    captures: int = 0
    commits: int = 0
    slots_refreshed: int = 0
    audits: int = 0
    chunks_checked: int = 0
    divergences: int = 0


class _ArenaLedger:
    """Shadow copy + per-chunk CRC table for one ``(rank, arena)``."""

    __slots__ = ("shadow", "chunk_size", "chunk_bytes", "crcs")

    def __init__(self, arena: np.ndarray, chunk_size: int) -> None:
        self.shadow = arena.copy()
        self.chunk_size = chunk_size
        self.chunk_bytes = chunk_size * arena.dtype.itemsize
        self.crcs = _chunk_crcs(self.shadow, self.chunk_bytes)

    def matches_layout(self, arena: np.ndarray) -> bool:
        return (
            arena.shape == self.shadow.shape and arena.dtype == self.shadow.dtype
        )

    def refresh(self, slots: np.ndarray, arena: np.ndarray) -> None:
        """Fold legitimately-written element slots into the shadow and
        recompute the CRCs of every touched chunk."""
        self.shadow[slots] = arena[slots]
        raw = self.shadow.reshape(-1).view(np.uint8)
        for c in np.unique(slots // self.chunk_size):
            off = int(c) * self.chunk_bytes
            self.crcs[int(c)] = zlib.crc32(
                raw[off : off + self.chunk_bytes].tobytes()
            )

    def audit(self, arena: np.ndarray) -> list[tuple[int, tuple[int, ...]]]:
        """``(chunk, diverged_slots)`` pairs where the live arena's bytes
        no longer CRC-match the ledger."""
        live = np.ascontiguousarray(arena).reshape(-1).view(np.uint8)
        shadow = self.shadow.reshape(-1).view(np.uint8)
        out = []
        for c, crc in enumerate(self.crcs):
            off = c * self.chunk_bytes
            window = live[off : off + self.chunk_bytes]
            if zlib.crc32(window.tobytes()) == crc:
                continue
            diff = np.nonzero(window != shadow[off : off + self.chunk_bytes])[0]
            slots = tuple(
                sorted(
                    {
                        (off + int(b)) // self.shadow.dtype.itemsize
                        for b in diff
                    }
                )
            )
            out.append((c, slots))
        return out

    def expected(self, slots) -> np.ndarray:
        """The ledger's (trusted) values at the given element slots."""
        return self.shadow[np.asarray(slots, dtype=np.int64)].copy()


class IntegrityAuditor:
    """Block-checksum ledger over every live arena of a machine.

    Lifecycle::

        auditor = IntegrityAuditor(chunk_size=64)
        auditor.attach(vm)           # capture + register barrier hook
        ...                          # node code; runtime calls
        ...                          # auditor.note_write(...) after each
        ...                          # legitimate arena write
        divs = auditor.audit(vm)     # localize any at-rest corruption
        auditor.detach(vm)

    The barrier hook (:meth:`commit`) folds noted writes into the ledger
    at each barrier *before* scribble injection, so anything that later
    diverges from the ledger is, by construction, not a legitimate
    write.  Writes that are never noted look like corruption -- that is
    the contract: the ledger trusts exactly what the runtime vouches
    for.
    """

    def __init__(self, chunk_size: int = 64) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1 element, got {chunk_size}")
        self.chunk_size = chunk_size
        self._ledgers: dict[tuple[int, str], _ArenaLedger] = {}
        self._pending: dict[tuple[int, str], list[np.ndarray]] = {}
        self.verdicts: list[Divergence] = []
        self.stats = AuditStats()
        self._attached_to: VirtualMachine | None = None

    # ------------------------------------------------------------------
    # Capture / lifecycle
    # ------------------------------------------------------------------

    def capture_rank(self, proc: Processor) -> None:
        """(Re)snapshot every arena of one rank as the new ledger truth
        -- used at attach time and after a verified checkpoint restore."""
        for key in [k for k in self._ledgers if k[0] == proc.rank]:
            del self._ledgers[key]
        for key in [k for k in self._pending if k[0] == proc.rank]:
            del self._pending[key]
        for name, arena in proc.arenas():
            self._ledgers[(proc.rank, name)] = _ArenaLedger(arena, self.chunk_size)
        self.stats.captures += 1

    def capture(self, vm: VirtualMachine) -> None:
        for proc in vm.processors:
            if proc.alive:
                self.capture_rank(proc)

    def attach(self, vm: VirtualMachine) -> None:
        """Capture the machine and register the ledger-commit barrier
        hook; idempotent per machine."""
        if self._attached_to is not None and self._attached_to is not vm:
            raise ValueError("auditor is already attached to another machine")
        self.capture(vm)
        if self.commit not in vm.barrier_hooks:
            vm.barrier_hooks.append(self.commit)
        self._attached_to = vm

    def detach(self, vm: VirtualMachine) -> None:
        if self.commit in vm.barrier_hooks:
            vm.barrier_hooks.remove(self.commit)
        self._attached_to = None

    # ------------------------------------------------------------------
    # Legitimate-write tracking
    # ------------------------------------------------------------------

    def note_write(self, rank: int, arena: str, slots) -> None:
        """Record that the runtime legitimately wrote the given element
        slots; folded into the ledger at the next barrier commit."""
        slots = np.asarray(slots, dtype=np.int64).reshape(-1)
        if slots.size == 0:
            return
        self._pending.setdefault((rank, arena), []).append(slots)

    def commit(self, vm: VirtualMachine, superstep: int | None = None) -> None:
        """Barrier hook: fold every noted write into the shadow/CRC
        ledger from the live (still pre-fault) arenas, and pick up any
        newly allocated arena.  Pending notes whose arena has vanished
        (rank crashed this barrier window) are discarded -- the crash
        path recaptures on restore."""
        pending, self._pending = self._pending, {}
        for (rank, name), slot_runs in pending.items():
            proc = vm.processors[rank]
            if not proc.alive or not proc.has_memory(name):
                continue
            arena = proc.memory(name)
            ledger = self._ledgers.get((rank, name))
            if ledger is None or not ledger.matches_layout(arena):
                # Legitimate (re)allocation: start a fresh ledger.
                self._ledgers[(rank, name)] = _ArenaLedger(arena, self.chunk_size)
                continue
            slots = np.unique(np.concatenate(slot_runs))
            ledger.refresh(slots, arena)
            self.stats.slots_refreshed += int(slots.size)
        self.stats.commits += 1

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    def audit(
        self, vm: VirtualMachine, superstep: int | None = None
    ) -> list[Divergence]:
        """Compare every live, ledgered arena against its chunk CRCs and
        return (and record) the localized divergences.

        Divergence means bytes changed outside any noted write since the
        last barrier commit -- at-rest corruption, never a false alarm
        for legitimate traffic (those were committed pre-fault).  Ranks
        that are dead, or alive-but-wiped awaiting restore, are skipped;
        an arena whose very shape/dtype changed un-noted is reported as
        a ``WHOLE_ARENA`` divergence (localization failed).
        """
        step = vm.superstep if superstep is None else superstep
        found: list[Divergence] = []
        for (rank, name), ledger in sorted(self._ledgers.items()):
            proc = vm.processors[rank]
            if not proc.alive or not proc.has_memory(name):
                continue  # crash path owns wiped/rebooting ranks
            arena = proc.memory(name)
            if not ledger.matches_layout(arena):
                found.append(Divergence(step, rank, name, WHOLE_ARENA, ()))
                continue
            self.stats.chunks_checked += len(ledger.crcs)
            for chunk, slots in ledger.audit(arena):
                found.append(Divergence(step, rank, name, chunk, slots))
        self.stats.audits += 1
        self.stats.divergences += len(found)
        self.verdicts.extend(found)
        return found

    def expected_values(self, rank: int, arena: str, slots) -> np.ndarray:
        """Ledger (trusted) values for the given slots -- what a correct
        repair must reproduce, byte for byte."""
        return self._ledgers[(rank, arena)].expected(slots)

    def has_ledger(self, rank: int, arena: str) -> bool:
        return (rank, arena) in self._ledgers

    def chunk_range(self, rank: int, arena: str, chunk: int) -> tuple[int, int]:
        """Half-open element-slot range ``[lo, hi)`` covered by a chunk."""
        ledger = self._ledgers[(rank, arena)]
        lo = chunk * ledger.chunk_size
        return lo, min(lo + ledger.chunk_size, ledger.shadow.size)


# ----------------------------------------------------------------------
# Localization to global indices
# ----------------------------------------------------------------------


def localize_divergence(
    div: Divergence, array: "DistributedArray"
) -> dict[int, tuple[int, ...]]:
    """Map a divergence's local slots to the owned **global** indices of
    ``array`` -- the final step of the audit story: chunk -> local
    addresses -> global elements a neighbor would have read wrong.

    Returns ``{slot: index_tuple}``; slots holding no element of the
    array (e.g. a divergence reported against a different arena) are
    omitted.  Rank-1 arrays take the O(owned) access-sequence path
    through :mod:`repro.distribution.localize` (the paper's own
    machinery); higher ranks fall back to an ownership scan.
    """
    # Lazy import: repro.machine must stay importable without the
    # distribution layer (layering; see DESIGN.md §3.3).
    from ..distribution.localize import localized_elements
    from ..distribution.section import RegularSection

    wanted = set(div.slots)
    out: dict[int, tuple[int, ...]] = {}
    if not wanted:
        return out
    if array.rank == 1:
        dim = array._dims[0]
        full = RegularSection(0, array.shape[0] - 1, 1)
        pairs = localized_elements(
            dim.layout.p, dim.layout.k, dim.extent,
            dim.axis_map.alignment, full, div.rank,
        )
        for index, slot in pairs:
            if slot in wanted:
                out[slot] = (index,)
        return out
    for idx in np.ndindex(*array.shape):
        if array.is_local(idx, div.rank):
            slot = array.local_address(idx, div.rank)
            if slot in wanted:
                out[slot] = tuple(int(i) for i in idx)
    return out
