"""Process supervision for the multiprocess backend.

The supervisor owns the worker :class:`multiprocessing.Process` handles
and the two failure detectors layered on them:

* **Exit detection** -- ``Process.exitcode`` polling.  A worker that
  took ``SIGKILL`` shows ``-9`` here; this is ground truth and needs no
  timeout.
* **Heartbeat suspicion** -- workers beat on a datagram socket; the
  supervisor stamps each beat with *its own* ``time.monotonic()``.  A
  worker whose process is alive but whose latest beat is older than
  ``suspect_after`` is *suspected*: the machine fences it with a real
  ``SIGKILL`` (so suspicion can never be half-true) and then treats it
  as crashed.  Stamping receiver-side means no clock value ever crosses
  a process boundary.

The supervisor is deliberately thread-free on the driver side: the
heartbeat socket is non-blocking and drained at barriers and while
waiting out barrier replies, the only places suspicion matters.
"""

from __future__ import annotations

import os
import pickle
import signal
import socket
import time
from multiprocessing import get_context

from .timeouts import Deadline
from .worker import worker_main

__all__ = ["Supervisor"]


class Supervisor:
    """Spawn, watch, fence, and reap one worker process per rank."""

    def __init__(
        self,
        session_dir: str,
        start_method: str,
        hb_sock: socket.socket,
        suspect_after: float,
    ) -> None:
        self._ctx = get_context(start_method)
        self.session_dir = session_dir
        self._hb_sock = hb_sock
        self.suspect_after = suspect_after
        self.procs: dict[int, object] = {}  # rank -> Process (current incarnation)
        self.incarnations: dict[int, int] = {}
        self.last_hb: dict[int, float] = {}
        #: (rank, incarnation) -> exitcode, for post-mortem diagnostics.
        self.exit_codes: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def spawn(self, rank: int, incarnation: int, spec: dict) -> None:
        """Start (or restart) ``rank``'s worker.  ``daemon=True`` is the
        interpreter-exit backstop: even an unclean driver death takes
        the fleet down with it (workers also self-exit on orphanhood)."""
        proc = self._ctx.Process(
            target=worker_main,
            args=(spec,),
            name=f"repro-mp-r{rank}-i{incarnation}",
            daemon=True,
        )
        proc.start()
        self.procs[rank] = proc
        self.incarnations[rank] = incarnation
        self.last_hb[rank] = time.monotonic()

    def pid(self, rank: int) -> int | None:
        proc = self.procs.get(rank)
        return proc.pid if proc is not None else None

    def exitcode(self, rank: int) -> int | None:
        """``None`` while running; the OS exit status once dead
        (``-9`` after ``SIGKILL``)."""
        proc = self.procs.get(rank)
        if proc is None:
            return None
        code = proc.exitcode
        if code is not None:
            self.exit_codes[(rank, self.incarnations[rank])] = code
        return code

    def kill(self, rank: int, join_timeout: float = 2.0) -> int | None:
        """Fence ``rank`` with a real ``SIGKILL`` and reap it."""
        proc = self.procs.get(rank)
        if proc is None:
            return None
        if proc.exitcode is None and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        proc.join(join_timeout)
        return self.exitcode(rank)

    def retire(self, rank: int, join_timeout: float = 2.0) -> None:
        """Permanently remove ``rank`` from supervision (elastic
        shrink): reap its process if still running and forget its
        handle, incarnation, and heartbeat state so a stale beat from a
        straggling worker can never resurrect a retired rank."""
        proc = self.procs.pop(rank, None)
        incarnation = self.incarnations.pop(rank, None)
        self.last_hb.pop(rank, None)
        if proc is None:
            return
        proc.join(join_timeout)
        if proc.exitcode is None and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            proc.join(0.5)
        if incarnation is not None and proc.exitcode is not None:
            self.exit_codes[(rank, incarnation)] = proc.exitcode

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def drain_heartbeats(self) -> None:
        """Soak up every queued beat, stamping arrival on the driver's
        monotonic clock.  Beats from a stale incarnation (a ghost that
        has not died yet) are discarded."""
        now = time.monotonic()
        while True:
            try:
                datagram = self._hb_sock.recv(4096)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            try:
                rank, incarnation, _seq = pickle.loads(datagram)
            except Exception:
                continue  # torn datagram; the next beat corrects it
            if self.incarnations.get(rank) == incarnation:
                self.last_hb[rank] = now

    def suspected(self, rank: int) -> bool:
        """Process looks alive but has not beaten within
        ``suspect_after`` seconds of driver-monotonic time."""
        last = self.last_hb.get(rank)
        if last is None:
            return False
        return time.monotonic() - last > self.suspect_after

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown_all(self, join_timeout: float) -> None:
        """Reap every worker: join, escalate to terminate, then kill.
        After this returns no worker process of this session exists."""
        deadline = Deadline(join_timeout)
        for proc in self.procs.values():
            proc.join(max(deadline.remaining(), 0.05))
        for proc in self.procs.values():
            if proc.exitcode is None:
                proc.terminate()
        for proc in self.procs.values():
            if proc.exitcode is None:
                proc.join(0.5)
            if proc.exitcode is None and proc.pid is not None:
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                proc.join(0.5)
        for rank in list(self.procs):
            self.exitcode(rank)  # record final codes
        self.procs.clear()
