"""Monotonic-clock deadlines and bounded retry backoff.

Every wait in the multiprocess backend -- socket connects, framed
reads, barrier mark waits, heartbeat suspicion, shutdown joins -- is
bounded by a :class:`Deadline` built on ``time.monotonic()``, never on
wall-clock time (``time.time()`` jumps under NTP slew and would turn a
clock step into a spurious crash suspicion or an unbounded hang).
Retries use :class:`Backoff`, a deterministic capped exponential
schedule: no randomized jitter, because the backend's tests replay
failure schedules from seeds and the retry cadence must not introduce a
hidden nondeterministic clock.

The hard rule these two types encode (learned the painful way from a
spawn-context probe that blocked forever on a queue read): **no wait
without a deadline**.  A dead peer must surface as a timeout and then a
diagnostic, never as a hang.
"""

from __future__ import annotations

import time

__all__ = ["Backoff", "Deadline"]


class Deadline:
    """A fixed point on the monotonic clock to race against.

    ``Deadline(2.5)`` expires 2.5 seconds from construction;
    :meth:`remaining` is clamped to zero so it can feed a socket
    timeout directly.  A ``None``/non-positive budget means *already
    expired* -- useful for "poll once, never block" call sites.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: float) -> None:
        self._expires_at = time.monotonic() + max(0.0, seconds)

    def remaining(self) -> float:
        """Seconds left, clamped to 0.0 (safe as a socket timeout)."""
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining():.3f}s)"


class Backoff:
    """Deterministic capped exponential backoff for bounded retries.

    ``for delay in Backoff(...)`` never terminates on its own -- pair it
    with a :class:`Deadline` (see :func:`~repro.machine.mp.framing.connect_framed`)
    or call :meth:`sleep` inside an attempt-bounded loop.
    """

    __slots__ = ("initial", "factor", "ceiling", "_next")

    def __init__(
        self, initial: float = 0.005, factor: float = 2.0, ceiling: float = 0.25
    ) -> None:
        if initial <= 0 or factor < 1.0 or ceiling < initial:
            raise ValueError(
                f"bad backoff schedule: initial={initial} factor={factor} "
                f"ceiling={ceiling}"
            )
        self.initial = initial
        self.factor = factor
        self.ceiling = ceiling
        self._next = initial

    def peek(self) -> float:
        """The delay the next :meth:`sleep` would take."""
        return self._next

    def sleep(self, deadline: Deadline | None = None) -> float:
        """Sleep the current delay (truncated to the deadline's
        remaining budget, if one is given) and advance the schedule.
        Returns the seconds actually slept."""
        delay = self._next
        if deadline is not None:
            delay = min(delay, deadline.remaining())
        if delay > 0:
            time.sleep(delay)
        self._next = min(self._next * self.factor, self.ceiling)
        return delay

    def reset(self) -> None:
        self._next = self.initial
