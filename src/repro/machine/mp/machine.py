"""The multiprocess machine: real processes under a crash-tolerant driver.

:class:`MpMachine` implements the :class:`~repro.machine.iface.Machine`
protocol with one real OS process per rank
(:mod:`repro.machine.mp.worker`), arenas in POSIX shared memory
(:mod:`repro.machine.mp.shm`), peer exchange over framed unix-domain
sockets (:mod:`repro.machine.mp.framing`), and supervision --
exit-code polling, heartbeat suspicion, ``SIGKILL`` fencing, restart
with incarnation bump -- in :mod:`repro.machine.mp.supervisor`.

Node functions still execute on the driver (they are closures over
host-side protocol state), driving their rank's worker through control
commands; what is *real* is everything underneath: the bytes in the
arenas, the frames on the wire, and the deaths.  ``kill -9`` of a rank
worker mid-exchange is detected (exit code or stale heartbeat within a
monotonic deadline), converted into the same crash bookkeeping the
in-process oracle produces (``crash_log`` entry, quarantined traffic,
scheduled restart with a new incarnation), and recovered through the
ordinary checkpoint/replay path of :mod:`repro.runtime.resilient` --
which is why every tier-1 program is bit-identical across backends
under the same seeds (``tests/runtime/test_differential.py``, and
docs/BACKENDS.md for the full story).

Teardown is orphan-free by construction: an explicit :meth:`close` (or
context-manager exit) shuts workers down gracefully then escalates;
a ``weakref.finalize`` backstop kills processes, unlinks every
shared-memory segment, and removes the session directory even when the
driver is garbage-collected or the interpreter exits without cleanup.
"""

from __future__ import annotations

import os
import selectors
import shutil
import socket
import tempfile
import weakref
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ...obs import Observability
from ..faults import FaultEvent, FaultPlan
from ..network import Message, NetworkStats
from ..processor import MemoryStats
from ..vm import NodeContext
from .framing import FrameError, recv_frame, send_frame
from .shm import ShmArena
from .supervisor import Supervisor
from .timeouts import Deadline
from .worker import ctrl_path, hb_path

__all__ = ["MpConfig", "MpError", "MpMachine", "RankHandle"]


class MpError(RuntimeError):
    """Unrecoverable backend failure (a *diagnostic*, never a hang)."""


class RankDied(BaseException):
    """Internal control flow: the rank whose node function is executing
    lost its worker mid-superstep.  Derives from ``BaseException`` so a
    node function's own ``except Exception`` cannot swallow it; the
    machine's run loop converts it into the rank's ``None`` result."""

    def __init__(self, rank: int) -> None:
        super().__init__(rank)
        self.rank = rank


@dataclass(frozen=True)
class MpConfig:
    """Timing knobs of the multiprocess backend.

    Every value feeds a ``time.monotonic()``-based
    :class:`~repro.machine.mp.timeouts.Deadline`.  ``mark_timeout`` is
    how long a worker waits for peers' barrier marks before reporting
    them missing; ``suspect_after`` is the heartbeat staleness bound
    beyond which a live-looking process is fenced with ``SIGKILL``.
    ``fork`` is the default start method (fast, Linux-native); the
    backend also runs under ``spawn`` (exercised by the test suite)
    since every worker input is picklable and the entry point is
    importable.
    """

    start_method: str = "fork"
    hb_interval: float = 0.05
    suspect_after: float = 2.0
    mark_timeout: float = 2.0
    barrier_grace: float = 2.0
    connect_timeout: float = 2.0
    ctrl_timeout: float = 10.0
    spawn_timeout: float = 20.0
    shutdown_timeout: float = 2.0


class RankHandle:
    """Driver-side :class:`~repro.machine.iface.RankState` for one rank.

    Mirrors :class:`~repro.machine.processor.Processor` exactly, except
    arenas are driver-owned shared-memory segments
    (:class:`~repro.machine.mp.shm.ShmArena`): the rank's worker process
    maps the same bytes, so worker-side writes (scribbles) are visible
    here without copies, and checkpoint capture/restore work unchanged.
    """

    def __init__(self, rank: int, registry: set[str]) -> None:
        if rank < 0:
            raise ValueError(f"rank must be nonnegative, got {rank}")
        self.rank = rank
        self._registry = registry  # session-wide shm names, for teardown
        self._arenas: dict[str, ShmArena] = {}
        self.stats = MemoryStats()
        self.alive = True
        self.incarnation = 0
        self.crashed_at: int | None = None

    # -- crash lifecycle (Processor parity) ----------------------------

    def crash(self, superstep: int) -> None:
        if not self.alive:
            raise RuntimeError(f"rank {self.rank} is already dead")
        self.alive = False
        self.crashed_at = superstep
        self._wipe()

    def restart(self) -> None:
        if self.alive:
            raise RuntimeError(f"rank {self.rank} is not dead")
        self.alive = True
        self.incarnation += 1

    def _wipe(self) -> None:
        for arena in self._arenas.values():
            self._registry.discard(arena.shm_name)
            arena.close(unlink=True)
        self._arenas.clear()

    # -- arenas --------------------------------------------------------

    @property
    def memory_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._arenas))

    def arenas(self) -> list[tuple[str, np.ndarray]]:
        return [(name, self._arenas[name].array) for name in self.memory_names]

    def allocate(self, name: str, size: int, dtype=np.float64, fill=0) -> np.ndarray:
        old = self._arenas.pop(name, None)
        if old is not None:
            self._registry.discard(old.shm_name)
            old.close(unlink=True)
        arena = ShmArena(name, size, dtype, fill)
        self._arenas[name] = arena
        self._registry.add(arena.shm_name)
        self.stats.allocations += 1
        self.stats.allocated_cells += size
        return arena.array

    def memory(self, name: str) -> np.ndarray:
        try:
            return self._arenas[name].array
        except KeyError:
            raise KeyError(
                f"rank {self.rank} has no local memory named {name!r}; "
                f"allocated: {sorted(self._arenas)}"
            ) from None

    def has_memory(self, name: str) -> bool:
        return name in self._arenas

    def free(self, name: str) -> None:
        if name not in self._arenas:
            raise KeyError(f"rank {self.rank} has no local memory named {name!r}")
        arena = self._arenas.pop(name)
        self._registry.discard(arena.shm_name)
        arena.close(unlink=True)

    def shm_arena(self, name: str) -> ShmArena:
        """The backing segment (the scribble command needs its name)."""
        return self._arenas[name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankHandle(rank={self.rank}, memories={sorted(self._arenas)})"


def _teardown(
    supervisor: Supervisor,
    shm_names: set[str],
    session_dir: str,
    socks: list,
) -> None:
    """Last-resort resource reaper, runnable without the machine object
    (``weakref.finalize`` target): kill the fleet, unlink every segment,
    remove the session directory.  Idempotent and exception-free."""
    try:
        supervisor.shutdown_all(1.0)
    except Exception:
        pass
    for sock in socks:
        try:
            sock.close()
        except Exception:
            pass
    for name in list(shm_names):
        try:
            os.unlink(f"/dev/shm/{name}")
        except OSError:
            pass
        shm_names.discard(name)
    shutil.rmtree(session_dir, ignore_errors=True)


class MpMachine:
    """A ``p``-rank machine whose ranks are real, killable processes.

    Drop-in for :class:`~repro.machine.vm.VirtualMachine` behind the
    :class:`~repro.machine.iface.Machine` protocol: same superstep
    semantics, same fault-plan schedule (via the shared
    :func:`~repro.machine.faults.plan_channel_delivery`), same crash
    bookkeeping -- plus real ``SIGKILL`` kill points and detection of
    deaths nobody scheduled.
    """

    def __init__(
        self,
        p: int,
        fault_plan: FaultPlan | None = None,
        obs: Observability | None = None,
        config: MpConfig | None = None,
        **overrides: Any,
    ) -> None:
        if p <= 0:
            raise ValueError(f"need at least one rank, got p={p}")
        self.p = p
        self.fault_plan = fault_plan
        self.obs = obs if obs is not None else Observability(enabled=False)
        self.config = replace(config or MpConfig(), **overrides)
        self._shm_names: set[str] = set()
        self.processors = [RankHandle(rank, self._shm_names) for rank in range(p)]
        self.stats = NetworkStats()
        self.fault_events: list[FaultEvent] = []
        self.crash_log: list[tuple[int, int]] = []
        self._restart_at: dict[int, int] = {}
        self.barrier_hooks: list[Callable[["MpMachine", int], None]] = []
        self._superstep = 0
        self._staged: dict[int, list[tuple[int, Any, Any]]] = {
            r: [] for r in range(p)
        }
        # Optional per-superstep traffic sink (repro.obs.profile): sends
        # are recorded here (they stage driver-side anyway), deliveries
        # from the per-source deltas in the workers' barrier replies.
        self.profile = None
        self._session_dir = tempfile.mkdtemp(prefix="repro-mp-")
        self._socks: list = []
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(ctrl_path(self._session_dir))
        self._listener.listen(p + 2)
        self._socks.append(self._listener)
        self._hb_sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        self._hb_sock.bind(hb_path(self._session_dir))
        self._hb_sock.setblocking(False)
        self._socks.append(self._hb_sock)
        self.supervisor = Supervisor(
            self._session_dir,
            self.config.start_method,
            self._hb_sock,
            self.config.suspect_after,
        )
        self._ctrl: dict[int, socket.socket] = {}
        self._finalizer = weakref.finalize(
            self, _teardown, self.supervisor, self._shm_names,
            self._session_dir, self._socks,
        )
        try:
            for rank in range(p):
                self._spawn(rank)
            self._await_hello(set(range(p)))
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, rank: int) -> None:
        handle = self.processors[rank]
        spec = {
            "rank": rank,
            "incarnation": handle.incarnation,
            "p": self.p,
            "plan": self.fault_plan,
            "session_dir": self._session_dir,
            "hb_interval": self.config.hb_interval,
            "mark_timeout": self.config.mark_timeout,
            "connect_timeout": self.config.connect_timeout,
        }
        self.supervisor.spawn(rank, handle.incarnation, spec)

    def _await_hello(self, expected: set[int]) -> None:
        """Accept control connections until every expected rank has
        identified itself (bounded; a worker that never says hello is a
        spawn failure, not a hang)."""
        deadline = Deadline(self.config.spawn_timeout)
        waiting = dict.fromkeys(expected)
        while waiting:
            if deadline.expired():
                raise MpError(
                    f"workers {sorted(waiting)} never connected within "
                    f"{self.config.spawn_timeout}s"
                )
            self._listener.settimeout(max(deadline.remaining(), 0.05))
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            hello = recv_frame(conn, Deadline(deadline.remaining() + 0.5))
            rank = hello["rank"]
            old = self._ctrl.get(rank)
            if old is not None:
                try:
                    old.close()
                except OSError:
                    pass
                if old in self._socks:
                    self._socks.remove(old)
            self._ctrl[rank] = conn
            self._socks.append(conn)
            waiting.pop(rank, None)

    def _default_downtime(self) -> int:
        return self.fault_plan.crash_downtime if self.fault_plan is not None else 1

    # ------------------------------------------------------------------
    # Control commands
    # ------------------------------------------------------------------

    def _command(
        self, rank: int, cmd: dict, timeout: float | None = None
    ) -> dict:
        """One request/reply on ``rank``'s control channel.

        A transport failure is triaged on the spot: a dead (or
        heartbeat-stale, then fenced) worker becomes a crash at the
        current superstep and raises :class:`RankDied`; anything else is
        a hard :class:`MpError` diagnostic."""
        sock = self._ctrl.get(rank)
        if sock is None:
            raise MpError(f"rank {rank} has no control channel")
        try:
            send_frame(sock, cmd)
            reply = recv_frame(
                sock, Deadline(timeout if timeout is not None else self.config.ctrl_timeout)
            )
        except (FrameError, OSError):
            code = self.supervisor.exitcode(rank)
            self.supervisor.drain_heartbeats()
            if code is None and self.supervisor.suspected(rank):
                code = self.supervisor.kill(rank)
            if code is not None:
                self._crash(rank, self._superstep, self._default_downtime())
                raise RankDied(rank) from None
            raise MpError(
                f"control channel to live rank {rank} failed on "
                f"{cmd.get('op')!r} at superstep {self._superstep}"
            ) from None
        if not reply.get("ok"):
            if reply.get("error") == "LookupError":
                raise LookupError(reply["message"])
            raise MpError(
                f"rank {rank} {cmd.get('op')!r} failed: "
                f"{reply.get('error')}: {reply.get('message')}"
            )
        return reply

    # ------------------------------------------------------------------
    # Machine-level messaging (Machine protocol)
    # ------------------------------------------------------------------

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.p:
            raise ValueError(f"{what} rank {rank} out of range [0, {self.p})")

    def send(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        """Stage a message at its source (shipped to the source worker
        and onto the wire at the next barrier -- the mp analogue of the
        oracle network's pending buffer)."""
        self._check_rank(source, "source")
        self._check_rank(dest, "destination")
        msg = Message(source, dest, tag, payload)
        self._staged[source].append((dest, tag, payload))
        self.stats.record(msg)
        obs = self.obs
        if obs.enabled:
            nbytes = msg.nbytes
            obs.inc("net.messages_sent")
            obs.inc("net.bytes_sent", nbytes)
            obs.observe("net.message_bytes", nbytes)
        if self.profile is not None:
            self.profile.record_send(self._superstep, source, dest, msg.nbytes)
        if obs.events.enabled:
            obs.events.record(
                source, self._superstep, "send",
                f"{source}->{dest} tag={tag!r} {msg.nbytes}B",
            )

    def recv(self, dest: int, source: int, tag: Any) -> Any:
        if not self.processors[dest].alive:
            raise LookupError(f"rank {dest} is dead; its mailbox was quarantined")
        return self._command(dest, {"op": "recv", "source": source, "tag": tag})[
            "payload"
        ]

    def probe(self, dest: int, source: int, tag: Any) -> bool:
        if not self.processors[dest].alive:
            return False
        return self._command(dest, {"op": "probe", "source": source, "tag": tag})[
            "result"
        ]

    def drain(self, dest: int, tag: Any) -> list[tuple[int, Any]]:
        if not self.processors[dest].alive:
            return []
        result = self._command(dest, {"op": "drain", "tag": tag})["result"]
        return [(source, payload) for source, payload in result]

    def outstanding(self, tags: Any) -> int:
        tag_set = set(tags)
        n = sum(
            1
            for msgs in self._staged.values()
            for _, tag, _ in msgs
            if tag in tag_set
        )
        for rank in range(self.p):
            if not self.processors[rank].alive:
                continue
            try:
                n += self._command(
                    rank, {"op": "outstanding", "tags": sorted(tag_set)}
                )["result"]
            except RankDied:
                continue  # its in-flight traffic died with it
        return n

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------

    def alive(self, rank: int) -> bool:
        return self.processors[rank].alive

    @property
    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(r for r in range(self.p) if not self.processors[r].alive)

    def crash_rank(self, rank: int, downtime: int | None = None) -> None:
        """Really kill ``rank``'s worker (``SIGKILL``), with the same
        bookkeeping and restart schedule as the oracle."""
        if downtime is None:
            downtime = self._default_downtime()
        if downtime < 1:
            raise ValueError(f"downtime must be >= 1 superstep, got {downtime}")
        self._kill_rank(rank, self._superstep, downtime)

    def _kill_rank(self, rank: int, step: int, downtime: int) -> None:
        self.supervisor.kill(rank)
        self._crash(rank, step, downtime)

    def _crash(self, rank: int, step: int, downtime: int) -> None:
        handle = self.processors[rank]
        if not handle.alive:
            return  # already accounted (e.g. detected twice in one step)
        handle.crash(step)
        # The rank's staged sends die with it -- oracle quarantine of a
        # dead source's pending traffic.
        for dest, tag, _payload in self._staged[rank]:
            self._quarantine_event(step, rank, dest, tag)
        self._staged[rank] = []
        self.record_fault(step, "crash", rank, -1, None, 0)
        self.crash_log.append((rank, step))
        self._restart_at[rank] = step + 1 + downtime

    def _revive_due(self) -> None:
        """Respawn dead ranks whose downtime elapsed: a fresh worker
        process under a bumped incarnation, arenas empty (restoring
        state is the checkpoint layer's job, exactly as in-process)."""
        step = self._superstep
        for rank, when in list(self._restart_at.items()):
            if step >= when:
                handle = self.processors[rank]
                handle.restart()
                self._spawn(rank)
                self._await_hello({rank})
                self.record_fault(
                    step, "restart", rank, -1, None, handle.incarnation
                )
                del self._restart_at[rank]

    # ------------------------------------------------------------------
    # Elastic membership (Machine protocol)
    # ------------------------------------------------------------------

    def grow_to(self, new_p: int) -> None:
        """Admit ranks ``p .. new_p-1``: spawn their worker processes,
        wait for their hellos (bounded), and tell every existing worker
        the new world size.  The new ranks start with empty arenas --
        populating them is the elastic runtime's job
        (:mod:`repro.runtime.elastic`)."""
        if new_p <= self.p:
            raise ValueError(f"grow_to({new_p}) from p={self.p}: need new_p > p")
        step = self._superstep
        old_p = self.p
        for rank in range(old_p, new_p):
            self.processors.append(RankHandle(rank, self._shm_names))
            self._staged[rank] = []
        self.p = new_p
        try:
            for rank in range(old_p, new_p):
                self._spawn(rank)
            self._await_hello(set(range(old_p, new_p)))
        except Exception:
            # Failed admission: put the machine back the way it was.
            self.p = old_p
            for rank in range(old_p, new_p):
                self.supervisor.retire(rank, join_timeout=0.5)
                self._staged.pop(rank, None)
                sock = self._ctrl.pop(rank, None)
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                    if sock in self._socks:
                        self._socks.remove(sock)
            del self.processors[old_p:]
            raise
        for rank in range(old_p):
            if not self.processors[rank].alive:
                continue  # a respawn picks up the new p from its spec
            try:
                self._command(rank, {"op": "resize", "p": new_p})
            except RankDied:
                pass
        self.obs.inc("elastic.grow")
        self.record_fault(step, "grow", -1, -1, None, new_p)

    def retire_to(self, new_p: int) -> None:
        """Release ranks ``new_p .. p-1``: graceful shutdown, then the
        supervisor reaps (escalating to ``SIGKILL``), shared-memory
        arenas are unlinked, control channels closed, and survivors told
        the shrunk world size.  Dead retiring ranks lose their scheduled
        respawn -- a retired rank can never come back."""
        if not 0 < new_p < self.p:
            raise ValueError(
                f"retire_to({new_p}) from p={self.p}: need 0 < new_p < p"
            )
        step = self._superstep
        old_p = self.p
        for rank in range(new_p, old_p):
            handle = self.processors[rank]
            self._restart_at.pop(rank, None)
            sock = self._ctrl.pop(rank, None)
            if sock is not None:
                if handle.alive:
                    try:
                        send_frame(sock, {"op": "shutdown"})
                        recv_frame(sock, Deadline(self.config.shutdown_timeout))
                    except (FrameError, OSError):
                        pass
                try:
                    sock.close()
                except OSError:
                    pass
                if sock in self._socks:
                    self._socks.remove(sock)
            self.supervisor.retire(rank)
            handle._wipe()
            self._staged.pop(rank, None)
        del self.processors[new_p:]
        self.p = new_p
        for rank in range(new_p):
            if not self.processors[rank].alive:
                continue
            try:
                self._command(rank, {"op": "resize", "p": new_p})
            except RankDied:
                pass
        self.obs.inc("elastic.retire")
        self.record_fault(step, "retire", -1, -1, None, new_p)

    # ------------------------------------------------------------------
    # Fault/event bookkeeping (oracle parity)
    # ------------------------------------------------------------------

    def record_fault(
        self, step: int, kind: str, source: int, dest: int, tag: Any, seq: int
    ) -> None:
        self.fault_events.append(FaultEvent(step, kind, source, dest, tag, seq))
        obs = self.obs
        obs.inc(f"faults.{kind}")
        if obs.events.enabled:
            rank = source if dest < 0 else dest
            obs.events.record(
                rank, step, kind,
                f"src={source} dest={dest} tag={tag!r} seq={seq}",
            )

    def _quarantine_event(self, step: int, source: int, dest: int, tag: Any) -> None:
        self.stats.quarantined += 1
        self.fault_events.append(
            FaultEvent(step, "quarantine", source, dest, tag, 0)
        )
        obs = self.obs
        if obs.enabled:
            obs.inc("net.messages_quarantined")
        if obs.events.enabled:
            detail = f"{source}->{dest} tag={tag!r}"
            obs.events.record(source, step, "quarantine", detail)
            if dest >= 0 and dest != source:
                obs.events.record(dest, step, "quarantine", detail)

    def _merge_reply(self, step: int, rank: int, reply: dict) -> None:
        """Fold a worker's per-barrier events and counters into the
        driver-side trace -- the per-process rings merge into one
        machine-wide record here.  ``rank`` is the replying worker (the
        destination of any deliveries it reports)."""
        for event in reply.get("events", ()):
            _step, kind, source, dest, tag, seq = event
            if kind == "quarantine":
                self._quarantine_event(step, source, dest, tag)
            else:
                self.record_fault(step, kind, source, dest, tag, seq)
        counters = reply.get("counters", {})
        delivered = counters.get("delivered", 0)
        self.stats.delivered += delivered
        self.stats.bytes_delivered += counters.get("bytes_delivered", 0)
        self.stats.dropped += counters.get("dropped", 0)
        self.stats.duplicated += counters.get("duplicated", 0)
        self.stats.corrupted += counters.get("corrupted", 0)
        self.stats.stalled += counters.get("stalled", 0)
        if delivered and self.obs.enabled:
            # Oracle-parity delivery counters: the in-process network
            # increments these per delivered copy.
            self.obs.inc("net.messages_delivered", delivered)
            self.obs.inc("net.bytes_delivered", counters.get("bytes_delivered", 0))
        if self.profile is not None:
            for source, (messages, nbytes, max_nbytes) in reply.get(
                "received", {}
            ).items():
                self.profile.record_delivery_batch(
                    step, source, rank, messages, nbytes, max_nbytes
                )

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def _barrier(self) -> None:
        """Superstep barrier, same phase order as the oracle: hooks,
        scribbles, crash points, then delivery -- except delivery here
        is a two-phase distributed exchange (flush + marks, then
        deliver), and "crash" means ``SIGKILL``."""
        step = self._superstep
        with self.obs.span("barrier", step=step):
            for hook in self.barrier_hooks:
                hook(self, step)
            self.supervisor.drain_heartbeats()
            self._reap_unexpected(step)
            plan = self.fault_plan
            if plan is not None:
                self._inject_scribbles(plan, step)
                for rank in range(self.p):
                    if self.processors[rank].alive and plan.crashed(step, rank):
                        self._kill_rank(rank, step, plan.crash_downtime)
            self._exchange(step)
            self._superstep += 1
        self.obs.inc("vm.supersteps")

    def _reap_unexpected(self, step: int) -> None:
        """Fold deaths nobody scheduled (external ``kill -9``, a worker
        segfault) into ordinary crash bookkeeping at this superstep."""
        for rank in range(self.p):
            if not self.processors[rank].alive:
                continue
            if self.supervisor.exitcode(rank) is not None:
                self._crash(rank, step, self._default_downtime())

    def _inject_scribbles(self, plan: FaultPlan, step: int) -> None:
        """Oracle-parity scribble points, executed *inside the worker
        process* against the shared segment (the cross-process write is
        the backend's proof the memory is really shared)."""
        if plan.scribble <= 0.0 and not plan.forced_scribbles:
            return
        for rank in range(self.p):
            handle = self.processors[rank]
            if not handle.alive:
                continue
            for name in handle.memory_names:
                if not plan.scribbled(step, rank, name):
                    continue
                arena = handle.shm_arena(name)
                salt = plan.scribble_salt(step, rank, name)
                try:
                    reply = self._command(
                        rank,
                        {
                            "op": "scribble",
                            "shm_name": arena.shm_name,
                            "size": arena.size,
                            "dtype": arena.dtype.str,
                            "salt": salt,
                            "width": plan.scribble_width,
                        },
                    )
                except RankDied:
                    break  # rank died under us; it has no arenas now
                touched = reply["touched"]
                if not touched:
                    continue
                handle.stats.scribbles += 1
                self.record_fault(step, "scribble", rank, -1, name, touched[0])

    def _post(self, rank: int, cmd: dict) -> bool:
        """Fire a command without waiting for the reply (barrier
        fan-out).  Returns False when the channel is already broken."""
        sock = self._ctrl.get(rank)
        if sock is None:
            return False
        try:
            send_frame(sock, cmd)
            return True
        except OSError:
            return False

    def _collect(
        self, step: int, ranks: list[int], deadline: Deadline, what: str
    ) -> dict[int, dict]:
        """Gather one reply per rank, triaging stragglers: a dead
        worker becomes a crash at this step; a heartbeat-stale one is
        fenced first; a live, beating one past the deadline is a hard
        diagnostic.  Never hangs."""
        replies: dict[int, dict] = {}
        pending = set(ranks)
        sel = selectors.DefaultSelector()
        for rank in ranks:
            sock = self._ctrl.get(rank)
            if sock is None:
                pending.discard(rank)
                continue
            sel.register(sock, selectors.EVENT_READ, rank)
        try:
            while pending:
                for key, _ in sel.select(timeout=0.05):
                    rank = key.data
                    if rank not in pending:
                        continue
                    try:
                        reply = recv_frame(
                            key.fileobj, Deadline(deadline.remaining() + 0.5)
                        )
                    except (FrameError, OSError):
                        continue  # triaged below via exitcode/heartbeat
                    replies[rank] = reply
                    pending.discard(rank)
                    sel.unregister(key.fileobj)
                if not pending:
                    break
                self.supervisor.drain_heartbeats()
                for rank in list(pending):
                    code = self.supervisor.exitcode(rank)
                    if code is None and self.supervisor.suspected(rank):
                        code = self.supervisor.kill(rank)
                    if code is not None:
                        sock = self._ctrl.get(rank)
                        if sock is not None:
                            try:
                                sel.unregister(sock)
                            except (KeyError, ValueError):
                                pass
                        pending.discard(rank)
                        self._crash(rank, step, self._default_downtime())
                if pending and deadline.expired():
                    raise MpError(
                        f"{what} at superstep {step}: live ranks "
                        f"{sorted(pending)} did not reply within the deadline"
                    )
        finally:
            sel.close()
        return replies

    def _exchange(self, step: int) -> None:
        """Two-phase distributed barrier delivery.

        Phase 1 (*flush*): every live worker receives its staged sends
        plus the live-set/incarnation map, pushes data frames to peers,
        and exchanges marks; its reply names any live peer whose mark
        never arrived.  Deaths discovered while waiting shrink the live
        set.  Phase 2 (*deliver*): survivors apply the shared fault
        schedule to this step's arrived batches; batches from ranks that
        died mid-flush are quarantined, so a partial flush can never be
        half-delivered.
        """
        live = [r for r in range(self.p) if self.processors[r].alive]
        incarnations = {r: self.processors[r].incarnation for r in live}
        posted = []
        for rank in live:
            msgs = self._staged[rank]
            self._staged[rank] = []
            cmd = {
                "op": "flush",
                "step": step,
                "live": live,
                "incarnations": incarnations,
                "msgs": msgs,
            }
            if self._post(rank, cmd):
                posted.append(rank)
            else:
                # Channel already broken: triage immediately.
                code = self.supervisor.exitcode(rank) or self.supervisor.kill(rank)
                self._crash(rank, step, self._default_downtime())
        deadline = Deadline(self.config.mark_timeout + self.config.barrier_grace)
        replies = self._collect(step, posted, deadline, "barrier flush")
        for rank, reply in replies.items():
            self._merge_reply(step, rank, reply)
        # Marks missing from ranks that are still alive mean a straggler
        # flush, not a death: one bounded re-wait round (flush is
        # idempotent per step), then give up loudly.
        unresolved = {
            rank: [m for m in reply.get("missing", ()) if self.processors[m].alive]
            for rank, reply in replies.items()
        }
        retry = [r for r, missing in unresolved.items() if missing and self.processors[r].alive]
        if retry:
            live_now = [r for r in range(self.p) if self.processors[r].alive]
            incarnations = {r: self.processors[r].incarnation for r in live_now}
            posted = [
                r
                for r in retry
                if self._post(
                    r,
                    {
                        "op": "flush",
                        "step": step,
                        "live": live_now,
                        "incarnations": incarnations,
                        "msgs": [],
                    },
                )
            ]
            redo = self._collect(
                step,
                posted,
                Deadline(self.config.mark_timeout + self.config.barrier_grace),
                "barrier flush retry",
            )
            still = {
                r: [m for m in reply.get("missing", ()) if self.processors[m].alive]
                for r, reply in redo.items()
            }
            bad = {r: m for r, m in still.items() if m}
            if bad:
                raise MpError(
                    f"barrier at superstep {step} could not complete: "
                    f"marks missing from live ranks {bad} after retry"
                )
        # Phase 2: deliver on whoever is still alive now.
        live_now = [r for r in range(self.p) if self.processors[r].alive]
        posted = [
            r
            for r in live_now
            if self._post(r, {"op": "deliver", "step": step, "live": live_now})
        ]
        for rank in live_now:
            if rank not in posted:
                self.supervisor.kill(rank)
                self._crash(rank, step, self._default_downtime())
        replies = self._collect(
            step, posted, Deadline(self.config.ctrl_timeout), "barrier deliver"
        )
        for rank, reply in replies.items():
            self._merge_reply(step, rank, reply)

    # ------------------------------------------------------------------
    # Execution (oracle-parity run loop)
    # ------------------------------------------------------------------

    @property
    def superstep(self) -> int:
        return self._superstep

    def run(self, fn: Callable[..., Any], *args: Any) -> list[Any]:
        obs = self.obs
        step = self._superstep
        with obs.span("superstep", step=step):
            self._revive_due()
            results = []
            for rank in range(self.p):
                if not self.processors[rank].alive:
                    results.append(None)
                    continue
                with obs.span("node", rank=rank, step=step):
                    try:
                        results.append(fn(NodeContext(self, rank), *args))
                    except RankDied:
                        results.append(None)
            self._barrier()
        return results

    def run_spmd(
        self, fn: Callable[..., Any], per_rank_args: Sequence[tuple] | None = None
    ) -> list[Any]:
        if per_rank_args is not None and len(per_rank_args) != self.p:
            raise ValueError(
                f"need {self.p} argument tuples, got {len(per_rank_args)}"
            )
        obs = self.obs
        step = self._superstep
        with obs.span("superstep", step=step):
            self._revive_due()
            results = []
            for rank in range(self.p):
                if not self.processors[rank].alive:
                    results.append(None)
                    continue
                args = per_rank_args[rank] if per_rank_args is not None else ()
                with obs.span("node", rank=rank, step=step):
                    try:
                        results.append(fn(NodeContext(self, rank), *args))
                    except RankDied:
                        results.append(None)
            self._barrier()
        return results

    def bsp(self, *phases: Callable[..., Any]) -> list[list[Any]]:
        if not phases:
            raise ValueError("need at least one phase")
        return [self.run(phase) for phase in phases]

    # ------------------------------------------------------------------
    # Whole-machine conveniences
    # ------------------------------------------------------------------

    def allocate_all(self, name: str, sizes: Iterable[int], **kw) -> None:
        sizes = list(sizes)
        if len(sizes) != self.p:
            raise ValueError(f"need {self.p} sizes, got {len(sizes)}")
        for handle, size in zip(self.processors, sizes):
            handle.allocate(name, size, **kw)

    def memories(self, name: str) -> list:
        return [handle.memory(name) for handle in self.processors]

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
        self.fault_events.clear()
        for handle in self.processors:
            handle.stats = MemoryStats()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Orphan-free teardown: polite shutdown commands, then the
        finalizer kills anything left, unlinks every shared-memory
        segment, and removes the session directory.  Idempotent."""
        if not self._finalizer.alive:
            return
        for rank in range(self.p):
            if not self.processors[rank].alive:
                continue
            sock = self._ctrl.get(rank)
            if sock is None:
                continue
            try:
                send_frame(sock, {"op": "shutdown"})
                recv_frame(sock, Deadline(0.5))
            except (FrameError, OSError):
                pass
        for handle in self.processors:
            handle._wipe()
        self._finalizer()

    def __enter__(self) -> "MpMachine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MpMachine(p={self.p}, superstep={self._superstep}, "
            f"start_method={self.config.start_method!r})"
        )
