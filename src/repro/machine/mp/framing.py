"""Length-prefixed, checksummed message framing over stream sockets.

The multiprocess backend moves two kinds of traffic over unix-domain
stream sockets: control commands between the driver and each rank
worker, and data/mark frames between peer workers.  Both use the same
frame format::

    MAGIC (2 bytes) | length (u32 le) | crc32 (u32 le) | payload

The payload is a pickled Python object (supersteps ship NumPy arrays
and the resilient protocol's packet dataclasses; pickle round-trips
both exactly).  The CRC is not a security boundary -- everything stays
on one machine under one user -- it catches truncated or interleaved
writes during teardown races, turning them into a clean
:class:`FrameError` instead of an unpickling crash deep inside a
barrier.

Every read is bounded by a :class:`~repro.machine.mp.timeouts.Deadline`;
a peer that dies mid-frame surfaces as :class:`FrameTimeout` (or
:class:`FrameClosed` on a clean EOF), never as a hang.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any

from .timeouts import Backoff, Deadline

__all__ = [
    "FrameClosed",
    "FrameError",
    "FrameTimeout",
    "HEADER_SIZE",
    "connect_framed",
    "pack_frame",
    "parse_header",
    "recv_frame",
    "send_frame",
    "verify_payload",
]

MAGIC = b"\xabM"
_HEADER = struct.Struct("<2sII")
#: Size of the fixed frame header (magic + length + crc32).
HEADER_SIZE = _HEADER.size
#: Refuse frames above this size -- a corrupted length prefix must not
#: make a reader try to allocate gigabytes.
MAX_FRAME = 1 << 30


class FrameError(RuntimeError):
    """Malformed frame: bad magic, oversized length, or CRC mismatch."""


class FrameClosed(FrameError):
    """The peer closed the connection cleanly (EOF between frames)."""


class FrameTimeout(FrameError):
    """The deadline expired before a complete frame arrived."""


# ---------------------------------------------------------------------------
# Byte-level primitives (transport-agnostic)
# ---------------------------------------------------------------------------
#
# The planning service (:mod:`repro.service`) reuses the exact same frame
# format over asyncio streams with JSON payloads, so the header packing,
# parsing, and CRC verification are exposed as pure byte functions; the
# blocking socket helpers below and the service's async reader are both
# thin shells over them.


def pack_frame(payload: bytes) -> bytes:
    """Wrap an already-encoded payload in one complete frame."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"payload length {len(payload)} exceeds cap {MAX_FRAME}")
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def parse_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header and return ``(payload_length, crc32)``."""
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds cap {MAX_FRAME}")
    return length, crc


def verify_payload(payload: bytes, crc: int) -> bytes:
    """Check the payload against its header CRC; returns the payload."""
    if zlib.crc32(payload) != crc:
        raise FrameError(f"frame CRC mismatch on {len(payload)}-byte payload")
    return payload


def send_frame(sock: socket.socket, obj: Any) -> int:
    """Pickle ``obj`` and write it as one frame; returns bytes written.

    ``sendall`` either completes or raises (``BrokenPipeError`` when the
    peer died); partial writes never leak onto the wire unnoticed.
    """
    frame = pack_frame(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, n: int, deadline: Deadline, what: str) -> bytes:
    """Read exactly ``n`` bytes before the deadline or raise."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        if deadline.expired():
            raise FrameTimeout(f"timed out reading {what} ({got}/{n} bytes)")
        sock.settimeout(max(deadline.remaining(), 1e-4))
        try:
            chunk = sock.recv(n - got)
        except socket.timeout:
            raise FrameTimeout(f"timed out reading {what} ({got}/{n} bytes)") from None
        if not chunk:
            if got:
                raise FrameError(f"peer closed mid-{what} ({got}/{n} bytes)")
            raise FrameClosed(f"peer closed before {what}")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, deadline: Deadline) -> Any:
    """Read one complete frame and return the unpickled object."""
    header = _recv_exact(sock, HEADER_SIZE, deadline, "frame header")
    length, crc = parse_header(header)
    payload = _recv_exact(sock, length, deadline, "frame payload")
    return pickle.loads(verify_payload(payload, crc))


def connect_framed(path: str, deadline: Deadline) -> socket.socket:
    """Connect to a unix-domain listener with bounded retry-backoff.

    A listener that is momentarily absent (the peer is mid-restart and
    has not bound its new incarnation's socket yet) is retried on a
    deterministic :class:`~repro.machine.mp.timeouts.Backoff` schedule
    until the deadline; a peer that never appears surfaces as
    :class:`FrameTimeout` naming the path.
    """
    backoff = Backoff()
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(max(deadline.remaining(), 1e-4))
            sock.connect(path)
            sock.settimeout(None)
            return sock
        except (FileNotFoundError, ConnectionRefusedError, socket.timeout, OSError):
            sock.close()
            if deadline.expired():
                raise FrameTimeout(f"could not connect to {path!r}") from None
            backoff.sleep(deadline)
