"""Shared-memory arena plumbing for the multiprocess backend.

Rank arenas live in POSIX shared memory
(:mod:`multiprocessing.shared_memory`) so that the driver, the rank's
own worker process, and fault injection all see the same bytes: a
scribble applied *inside the worker process* is visible to the driver's
checkpoint capture without any copy -- which is exactly the proof that
the memory is really shared (``tests/machine/mp/test_mp_machine.py``).

Ownership is deliberately one-sided: the **driver** creates and unlinks
every segment.  Worker processes only ever *attach*.  That sidesteps
CPython's resource-tracker misfeature (gh-82300): in 3.8--3.12 an
attaching process registers the segment with its own resource tracker,
which then unlinks it when that process exits -- so a crashed worker
would tear arenas out from under the survivors.  :func:`attach_array`
unregisters the attachment immediately, leaving exactly one owner.

Segment names are short (``psm``-style namespaces cap out around 30
chars on some platforms) and namespaced by the driver PID plus a
counter, so concurrent test sessions never collide.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmArena", "attach_array", "create_arena", "unlink_quietly"]

_counter = 0


def _next_name() -> str:
    global _counter
    _counter += 1
    return f"rp{os.getpid():x}x{_counter:x}"


class ShmArena:
    """One named arena backed by a driver-owned shared-memory segment.

    ``array`` is the driver-side NumPy view (what checkpoint capture
    and :meth:`RankHandle.memory` hand out); ``shm_name`` is what a
    worker needs to attach its own view.  Zero-length arenas are backed
    by a 1-byte segment (POSIX shm rejects empty maps) and sliced back
    to size.
    """

    __slots__ = ("name", "shm", "array", "dtype", "size")

    def __init__(self, name: str, size: int, dtype, fill) -> None:
        self.name = name
        self.size = size
        self.dtype = np.dtype(dtype)
        nbytes = max(1, size * self.dtype.itemsize)
        self.shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=_next_name()
        )
        self.array = np.ndarray(size, dtype=self.dtype, buffer=self.shm.buf)
        self.array[:] = fill

    @property
    def shm_name(self) -> str:
        return self.shm.name

    def close(self, unlink: bool = True) -> None:
        # Drop the view before closing the mmap or CPython refuses with
        # BufferError("cannot close exported pointers exist").
        self.array = None
        self.shm.close()
        if unlink:
            unlink_quietly(self.shm)


def create_arena(name: str, size: int, dtype=np.float64, fill=0) -> ShmArena:
    if size < 0:
        raise ValueError(f"size must be nonnegative, got {size}")
    return ShmArena(name, size, dtype, fill)


def attach_array(
    shm_name: str, size: int, dtype
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach an existing segment and view it as a 1-D array.

    The caller must keep the returned ``SharedMemory`` alive as long as
    the array view and ``close()`` it afterwards (never unlink -- the
    driver owns the segment).
    """
    # Suppress the attach-side resource-tracker registration (gh-82300):
    # only the creating process may own the segment's lifetime, and an
    # unregister-after-the-fact would also cancel the creator's
    # registration (the tracker's cache is a set shared over one
    # inherited pipe), making teardown noisy.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = original_register
    array = np.ndarray(size, dtype=np.dtype(dtype), buffer=shm.buf)
    return shm, array


def unlink_quietly(shm: shared_memory.SharedMemory) -> None:
    """Unlink, tolerating a segment that is already gone (teardown runs
    from both ``close()`` and an ``atexit`` hook; the second pass must
    be a no-op, not a crash)."""
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass
