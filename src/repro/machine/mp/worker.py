"""The rank worker: one real OS process per rank.

Node *programs* stay on the driver (they are Python closures over
host-side protocol state and cannot cross a process boundary), but the
machine underneath them is real: each rank is a separate process whose
arenas live in shared memory and whose superstep traffic crosses
unix-domain sockets to its peers.  ``kill -9`` on a worker is therefore
a *real* crash -- buffered sends, receive queues, and in-flight frames
die with the process, exactly the loss model the in-process oracle
simulates with quarantine.

Wire protocol (all frames via :mod:`repro.machine.mp.framing`):

* **Control** (driver <-> worker, strict request/reply): ``flush``,
  ``deliver``, ``recv`` / ``probe`` / ``drain`` / ``outstanding``,
  ``scribble``, ``ping``, ``shutdown``.
* **Peer data** (worker -> worker, one stream socket per ordered pair):
  ``data`` frames carrying ``(step, source, tag, payload)`` and a
  ``mark`` frame per superstep.  Because a stream socket is FIFO, a
  peer's ``mark`` for step *t* proves all of its step-*t* data frames
  arrived -- the two-phase barrier the driver builds on.
* **Heartbeat** (worker -> driver, datagram): ``(rank, incarnation,
  seq)`` every ``hb_interval`` seconds.  The driver judges staleness on
  *its own* monotonic clock, so no cross-process clock comparison ever
  happens.

Fault parity with the oracle: sends buffer locally until the barrier
(so a **stall** really holds bytes off the wire, and a crash really
loses them), and delivery consults the *same*
:func:`~repro.machine.faults.plan_channel_delivery` schedule the
in-process network uses -- same seed, same drops, same corrupt salts,
bit for bit.  An orphaned worker (driver died without cleanup) notices
its parent change and exits on its own; no zombie ranks outlive a
session.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
from collections import deque
from typing import Any

from ..faults import corrupt_payload, plan_channel_delivery, scribble_arena
from ..network import payload_nbytes
from .framing import FrameClosed, FrameError, connect_framed, recv_frame, send_frame
from .shm import attach_array
from .timeouts import Deadline

__all__ = ["Worker", "ctrl_path", "hb_path", "peer_path", "worker_main"]

#: Practically-unbounded deadline for reads whose termination is the
#: connection itself closing (ctrl loop, peer readers).
_FOREVER = 1e9


def peer_path(session_dir: str, rank: int, incarnation: int) -> str:
    """A rank incarnation's peer listener: restarted ranks bind a fresh
    path so a peer can never talk to a ghost of the old incarnation."""
    return os.path.join(session_dir, f"r{rank}-i{incarnation}.sock")


def ctrl_path(session_dir: str) -> str:
    return os.path.join(session_dir, "ctrl.sock")


def hb_path(session_dir: str) -> str:
    return os.path.join(session_dir, "hb.sock")


class Worker:
    """Per-process state machine executing the driver's commands."""

    def __init__(self, spec: dict) -> None:
        self.rank: int = spec["rank"]
        self.incarnation: int = spec["incarnation"]
        self.p: int = spec["p"]
        self.plan = spec["plan"]  # FaultPlan or None (picklable either way)
        self.session_dir: str = spec["session_dir"]
        self.hb_interval: float = spec["hb_interval"]
        self.mark_timeout: float = spec["mark_timeout"]
        self.connect_timeout: float = spec["connect_timeout"]
        self._ppid = os.getppid()
        # Send side: messages buffer here until a flush command -- the
        # analogue of the oracle network's pending list, and the state a
        # stall holds back / a crash loses.
        self.outgoing: list[tuple[int, Any, Any]] = []  # (dest, tag, payload)
        # Receive side (written by peer-reader threads under _cond):
        # step -> source -> [(tag, payload)] in arrival order, which per
        # connection equals send order.
        self.recv_buf: dict[int, dict[int, list[tuple[Any, Any]]]] = {}
        self.marks: dict[int, set[int]] = {}
        self._cond = threading.Condition()
        # Delivered, receivable messages: (source, tag) -> FIFO.
        self.queues: dict[tuple[int, Any], deque] = {}
        self._flushed: set[int] = set()  # idempotency for re-issued flushes
        self._peers: dict[int, tuple[int, socket.socket]] = {}  # dest -> (inc, sock)
        # Incarnations whose listener refused us: presumed dead, never
        # retried (an incarnation cannot come back; its successor gets a
        # fresh key).  Bounds the cost of racing a peer's death to one
        # short connect attempt instead of a full retry budget.
        self._unreachable: set[tuple[int, int]] = set()
        self._stop = threading.Event()
        self.listener: socket.socket | None = None
        self.ctrl: socket.socket | None = None
        self._hb_sock: socket.socket | None = None

    # ------------------------------------------------------------------
    # Startup / threads
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind the peer listener, start heartbeats, say hello.

        The listener binds *before* the hello frame is sent, so once the
        driver has collected every hello it knows every peer is
        connectable -- no flush ever races a missing listener except
        across a restart, which the connect retry absorbs.
        """
        self.listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.listener.bind(peer_path(self.session_dir, self.rank, self.incarnation))
        self.listener.listen(self.p + 1)
        threading.Thread(
            target=self._accept_loop, name=f"r{self.rank}-accept", daemon=True
        ).start()
        self._hb_sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        self._hb_sock.setblocking(False)
        threading.Thread(
            target=self._hb_loop, name=f"r{self.rank}-hb", daemon=True
        ).start()
        self.ctrl = connect_framed(
            ctrl_path(self.session_dir), Deadline(self.connect_timeout)
        )
        send_frame(
            self.ctrl,
            {
                "op": "hello",
                "rank": self.rank,
                "incarnation": self.incarnation,
                "pid": os.getpid(),
            },
        )

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return  # listener closed: shutting down
            threading.Thread(
                target=self._peer_reader, args=(conn,), daemon=True
            ).start()

    def _peer_reader(self, conn: socket.socket) -> None:
        """Drain one inbound peer connection into the receive buffers."""
        try:
            while not self._stop.is_set():
                frame = recv_frame(conn, Deadline(_FOREVER))
                with self._cond:
                    if frame["kind"] == "data":
                        self.recv_buf.setdefault(frame["step"], {}).setdefault(
                            frame["source"], []
                        ).append((frame["tag"], frame["payload"]))
                    elif frame["kind"] == "mark":
                        self.marks.setdefault(frame["step"], set()).add(
                            frame["source"]
                        )
                        self._cond.notify_all()
        except (FrameError, OSError):
            pass  # peer died or closed; the barrier protocol notices
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _hb_loop(self) -> None:
        """Beat every ``hb_interval`` and watch for orphanhood: if the
        driver vanishes (parent changes, or the heartbeat endpoint is
        gone) the worker exits rather than linger as a zombie rank."""
        target = hb_path(self.session_dir)
        seq = 0
        while not self._stop.is_set():
            if os.getppid() != self._ppid:
                os._exit(3)
            try:
                self._hb_sock.sendto(
                    pickle.dumps((self.rank, self.incarnation, seq)), target
                )
            except (BlockingIOError, InterruptedError):
                pass  # driver is slow draining; skip this beat
            except OSError:
                os._exit(3)  # heartbeat endpoint gone: orphaned
            seq += 1
            self._stop.wait(self.hb_interval)

    # ------------------------------------------------------------------
    # Peer connections
    # ------------------------------------------------------------------

    def _peer(self, dest: int, incarnation: int) -> socket.socket | None:
        """Connected socket to ``dest``'s current incarnation, or
        ``None`` when the peer is unreachable (presumed dead; the
        caller quarantines).  Reconnects when the peer restarted.

        The connect attempt is deliberately short: the driver collects
        every incarnation's hello (sent *after* its listener is bound)
        before naming it in a live set, so a listener that refuses or
        is missing means the peer died -- there is no slow-start case
        worth a long retry budget, and a dead peer must not be allowed
        to eat the barrier deadline."""
        cached = self._peers.get(dest)
        if cached is not None:
            if cached[0] == incarnation:
                return cached[1]
            self._drop_peer(dest)
        if (dest, incarnation) in self._unreachable:
            return None
        try:
            sock = connect_framed(
                peer_path(self.session_dir, dest, incarnation),
                Deadline(min(self.connect_timeout, 0.25)),
            )
        except FrameError:
            self._unreachable.add((dest, incarnation))
            return None
        self._peers[dest] = (incarnation, sock)
        return sock

    def _drop_peer(self, dest: int) -> None:
        cached = self._peers.pop(dest, None)
        if cached is not None:
            try:
                cached[1].close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Command loop
    # ------------------------------------------------------------------

    def serve(self) -> None:
        while True:
            try:
                cmd = recv_frame(self.ctrl, Deadline(_FOREVER))
            except (FrameClosed, FrameError, OSError):
                return  # driver gone; shutdown() runs in worker_main
            try:
                reply = self._handle(cmd)
            except Exception as exc:  # surface, never kill the loop
                reply = {
                    "ok": False,
                    "error": type(exc).__name__,
                    "message": str(exc),
                }
            try:
                send_frame(self.ctrl, reply)
            except OSError:
                return
            if cmd.get("op") == "shutdown":
                return

    def _handle(self, cmd: dict) -> dict:
        op = cmd["op"]
        if op == "flush":
            return self._flush(cmd)
        if op == "deliver":
            return self._deliver(cmd)
        if op == "recv":
            return self._recv(cmd)
        if op == "probe":
            key = (cmd["source"], cmd["tag"])
            return {"ok": True, "result": bool(self.queues.get(key))}
        if op == "drain":
            return self._drain(cmd)
        if op == "outstanding":
            return {"ok": True, "result": self._outstanding(cmd["tags"])}
        if op == "scribble":
            return self._scribble(cmd)
        if op == "resize":
            return self._resize(cmd)
        if op == "ping":
            return {
                "ok": True,
                "pid": os.getpid(),
                "rank": self.rank,
                "incarnation": self.incarnation,
            }
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "error": "ValueError", "message": f"unknown op {op!r}"}

    # ------------------------------------------------------------------
    # Barrier phase 1: flush
    # ------------------------------------------------------------------

    def _flush(self, cmd: dict) -> dict:
        """Push buffered sends to live peers, then exchange marks.

        Faithful to the oracle barrier: a stalled rank holds its whole
        buffer (new sends append *behind* held ones, preserving
        held-first delivery next step); sends to dead peers are
        quarantined; everything else hits the wire, followed by a mark
        on every live peer connection.  The reply reports which live
        peers' marks never arrived before the (monotonic) deadline --
        the driver's cue to poll liveness and shrink the live set.

        Idempotent per step: a re-issued flush only re-enters the mark
        wait, it never re-sends data.
        """
        step: int = cmd["step"]
        live = set(cmd["live"])
        incarnations: dict[int, int] = cmd["incarnations"]
        events: list[tuple] = []
        counters = {"stalled": 0, "quarantined": 0, "sent": 0}
        self.outgoing.extend(cmd.get("msgs", ()))
        if step not in self._flushed:
            self._flushed.add(step)
            stalled = (
                self.plan is not None
                and bool(self.outgoing)
                and self.plan.stalled(step, self.rank)
            )
            if stalled:
                events.append((step, "stall", self.rank, -1, None, 0))
                counters["stalled"] = len(self.outgoing)
            else:
                by_dest: dict[int, list[tuple[Any, Any]]] = {}
                for dest, tag, payload in self.outgoing:
                    by_dest.setdefault(dest, []).append((tag, payload))
                self.outgoing = []
                for dest, msgs in by_dest.items():
                    if dest == self.rank:
                        # Self-sends loop back without touching a socket.
                        with self._cond:
                            self.recv_buf.setdefault(step, {}).setdefault(
                                self.rank, []
                            ).extend(msgs)
                        counters["sent"] += len(msgs)
                        continue
                    if dest not in live:
                        for tag, _ in msgs:
                            events.append(
                                (step, "quarantine", self.rank, dest, tag, 0)
                            )
                            counters["quarantined"] += 1
                        continue
                    sock = self._peer(dest, incarnations[dest])
                    if sock is None:
                        for tag, _ in msgs:
                            events.append(
                                (step, "quarantine", self.rank, dest, tag, 0)
                            )
                            counters["quarantined"] += 1
                        continue
                    try:
                        for tag, payload in msgs:
                            send_frame(
                                sock,
                                {
                                    "kind": "data",
                                    "step": step,
                                    "source": self.rank,
                                    "tag": tag,
                                    "payload": payload,
                                },
                            )
                            counters["sent"] += 1
                    except OSError:
                        # Peer died mid-batch; its process state is gone
                        # anyway, so the lost tail is moot.
                        self._drop_peer(dest)
            # Marks go out even when stalled: "done sending for step t"
            # is true -- the stalled bytes are not step-t traffic.
            for dest in sorted(live):
                if dest == self.rank:
                    continue
                sock = self._peer(dest, incarnations[dest])
                if sock is None:
                    continue
                try:
                    send_frame(
                        sock, {"kind": "mark", "step": step, "source": self.rank}
                    )
                except OSError:
                    self._drop_peer(dest)
        needed = live - {self.rank}
        deadline = Deadline(self.mark_timeout)
        with self._cond:
            while not needed <= self.marks.get(step, set()):
                remaining = deadline.remaining()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            missing = sorted(needed - self.marks.get(step, set()))
        return {"ok": True, "missing": missing, "events": events, "counters": counters}

    # ------------------------------------------------------------------
    # Barrier phase 2: deliver
    # ------------------------------------------------------------------

    def _deliver(self, cmd: dict) -> dict:
        """Move this step's arrived batches into the receive queues,
        applying the shared fault schedule per source channel.

        Batches from sources no longer in the live set (they died after
        flushing part of their data) are quarantined whole -- the
        oracle's mark-dead semantics.  Sources iterate in sorted order
        so the reply's event list is deterministic; queue FIFO order is
        per channel and unaffected.
        """
        step: int = cmd["step"]
        live = set(cmd["live"])
        events: list[tuple] = []
        counters = {
            "delivered": 0,
            "dropped": 0,
            "duplicated": 0,
            "corrupted": 0,
            "quarantined": 0,
            "bytes_delivered": 0,
        }
        # Per-source delivery deltas (at most one entry per peer rank),
        # piggybacked on this reply so the driver can assemble
        # per-superstep profiles (repro.obs.profile) without extra wire
        # round-trips: source -> [messages, bytes, max_bytes].
        received: dict[int, list[int]] = {}

        def note_delivery(source: int, payload: Any) -> None:
            nbytes = payload_nbytes(payload)
            counters["bytes_delivered"] += nbytes
            slot = received.get(source)
            if slot is None:
                slot = received[source] = [0, 0, 0]
            slot[0] += 1
            slot[1] += nbytes
            if nbytes > slot[2]:
                slot[2] = nbytes

        with self._cond:
            batches = self.recv_buf.pop(step, {})
            self.marks.pop(step, None)
        for source in sorted(batches):
            msgs = batches[source]
            if source not in live:
                for tag, _ in msgs:
                    events.append((step, "quarantine", source, self.rank, tag, 0))
                    counters["quarantined"] += 1
                continue
            if self.plan is None:
                for tag, payload in msgs:
                    self.queues.setdefault((source, tag), deque()).append(payload)
                    counters["delivered"] += 1
                    note_delivery(source, payload)
                continue
            actions, reordered = plan_channel_delivery(
                self.plan, step, source, self.rank, len(msgs)
            )
            if reordered:
                events.append((step, "reorder", source, self.rank, None, len(msgs)))
            for act in actions:
                tag, payload = msgs[act.index]
                if act.drop:
                    events.append((step, "drop", source, self.rank, tag, act.seq))
                    counters["dropped"] += 1
                    continue
                if act.corrupt_salt is not None:
                    payload = corrupt_payload(payload, act.corrupt_salt)
                    events.append((step, "corrupt", source, self.rank, tag, act.seq))
                    counters["corrupted"] += 1
                if act.copies > 1:
                    events.append(
                        (step, "duplicate", source, self.rank, tag, act.seq)
                    )
                    counters["duplicated"] += 1
                for _ in range(act.copies):
                    self.queues.setdefault((source, tag), deque()).append(payload)
                    counters["delivered"] += 1
                    note_delivery(source, payload)
        return {
            "ok": True,
            "events": events,
            "counters": counters,
            "received": received,
        }

    # ------------------------------------------------------------------
    # Mailbox ops
    # ------------------------------------------------------------------

    def _recv(self, cmd: dict) -> dict:
        key = (cmd["source"], cmd["tag"])
        queue = self.queues.get(key)
        if not queue:
            return {
                "ok": False,
                "error": "LookupError",
                "message": (
                    f"rank {self.rank}: no delivered message from "
                    f"{cmd['source']} with tag {cmd['tag']!r} (BSP programs "
                    "may only receive what a previous superstep sent)"
                ),
            }
        return {"ok": True, "payload": queue.popleft()}

    def _drain(self, cmd: dict) -> dict:
        tag = cmd["tag"]
        out = []
        for source in range(self.p):
            queue = self.queues.get((source, tag))
            while queue:
                out.append((source, queue.popleft()))
        return {"ok": True, "result": out}

    def _outstanding(self, tags: Any) -> int:
        tags = set(tags)
        n = sum(1 for _, tag, _ in self.outgoing if tag in tags)
        with self._cond:
            for per_source in self.recv_buf.values():
                for msgs in per_source.values():
                    n += sum(1 for tag, _ in msgs if tag in tags)
        n += sum(len(q) for (_, tag), q in self.queues.items() if tag in tags)
        return n

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------

    def _resize(self, cmd: dict) -> dict:
        """Adopt a new world size (elastic grow/shrink).

        On shrink, connections to retired peers are dropped and their
        delivered-but-unreceived messages discarded -- the worker-side
        analogue of the driver network's retire quarantine.  On grow,
        nothing else is needed: new peers are dialled lazily from the
        live set the next flush carries.
        """
        new_p: int = cmd["p"]
        old_p = self.p
        self.p = new_p
        dropped = 0
        if new_p < old_p:
            for dest in [d for d in self._peers if d >= new_p]:
                self._drop_peer(dest)
            for key in [k for k in self.queues if k[0] >= new_p]:
                dropped += len(self.queues.pop(key))
            with self._cond:
                for per_source in self.recv_buf.values():
                    for source in [s for s in per_source if s >= new_p]:
                        dropped += len(per_source.pop(source))
        return {"ok": True, "p": new_p, "dropped": dropped}

    # ------------------------------------------------------------------
    # In-arena corruption (proves the memory is really shared)
    # ------------------------------------------------------------------

    def _scribble(self, cmd: dict) -> dict:
        """Attach the named shared arena and rot bits *in this process*.

        The driver (and checkpoint capture, and the auditor) observe the
        flip through their own mappings -- the differential test's proof
        that arenas are one physical segment, not copies."""
        shm, array = attach_array(cmd["shm_name"], cmd["size"], cmd["dtype"])
        try:
            touched = scribble_arena(array, cmd["salt"], cmd["width"])
        finally:
            del array
            shm.close()
        return {"ok": True, "touched": touched}

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        self._stop.set()
        for dest in list(self._peers):
            self._drop_peer(dest)
        for sock in (self.listener, self.ctrl, self._hb_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        try:
            os.unlink(peer_path(self.session_dir, self.rank, self.incarnation))
        except OSError:
            pass


def worker_main(spec: dict) -> None:
    """Process entry point (importable, so ``spawn`` can find it)."""
    worker = Worker(spec)
    try:
        worker.start()
        worker.serve()
    finally:
        worker.shutdown()
