"""Real-process execution backend for the SPMD machine.

Each rank is an OS process: arenas in POSIX shared memory, superstep
exchange over framed unix-domain sockets, supervision with
monotonic-clock heartbeats, real ``SIGKILL`` crash injection, restart
with incarnation bump, and orphan-free teardown.  The in-process
:class:`~repro.machine.vm.VirtualMachine` is the deterministic oracle
this backend is differentially tested against (docs/BACKENDS.md).

Import this package only when you want the real thing --
``create_machine(p, "mp")`` resolves it lazily so the simulator never
pays for sockets and shared memory it does not use.
"""

from .machine import MpConfig, MpError, MpMachine, RankHandle
from .timeouts import Backoff, Deadline

__all__ = ["Backoff", "Deadline", "MpConfig", "MpError", "MpMachine", "RankHandle"]
