"""Bulk-synchronous SPMD virtual machine.

The paper's experiments ran SPMD node programs on a 32-node iPSC/860;
this module provides the deterministic stand-in (see DESIGN.md's
substitution table).  A *node program* is a Python callable
``fn(ctx, *args)`` executed once per rank.  Execution is
bulk-synchronous: within one superstep every rank runs to completion in
rank order, sends are buffered, and a barrier delivers them for the
next superstep.  ``ctx.barrier()`` may also be called *inside* a node
program -- it splits the program into supersteps using generator-style
re-execution-free coroutines (the node function simply returns, and the
next phase function receives the delivered messages).

For programs that need receives of same-step sends, use
:meth:`VirtualMachine.bsp` with explicit phase functions -- the idiom
all of :mod:`repro.runtime` uses (compute send sets / exchange / apply).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..obs import Observability
from .faults import FaultPlan, scribble_arena
from .network import Network
from .processor import Processor

__all__ = ["NodeContext", "VirtualMachine"]


@dataclass
class NodeContext:
    """Per-rank view handed to node programs.

    Backend-agnostic: it drives its machine purely through the
    :class:`repro.machine.iface.Machine` surface (machine-level
    ``send``/``recv``/``probe``/``drain`` and the rank's
    :class:`~repro.machine.iface.RankState`), so the same node function
    runs unchanged on the in-process oracle and the multiprocess
    backend.
    """

    vm: Any  # any Machine backend
    rank: int

    @property
    def p(self) -> int:
        return self.vm.p

    @property
    def processor(self):
        return self.vm.processors[self.rank]

    def memory(self, name: str):
        return self.processor.memory(name)

    def allocate(self, name: str, size: int, **kw):
        return self.processor.allocate(name, size, **kw)

    def send(self, dest: int, tag: Any, payload: Any) -> None:
        self.vm.send(self.rank, dest, tag, payload)

    def recv(self, source: int, tag: Any) -> Any:
        return self.vm.recv(self.rank, source, tag)

    def probe(self, source: int, tag: Any) -> bool:
        return self.vm.probe(self.rank, source, tag)

    def drain(self, tag: Any) -> list[tuple[int, Any]]:
        return self.vm.drain(self.rank, tag)


class VirtualMachine:
    """A simulated ``p``-rank distributed-memory machine.

    Pass a :class:`~repro.machine.faults.FaultPlan` to make the
    interconnect adversarial (deterministically, in the plan's seed);
    see docs/FAULT_MODEL.md and :mod:`repro.runtime.resilient` for the
    protocol that survives it.  Plans with crash points (or explicit
    :meth:`crash_rank` calls) kill whole ranks at barriers: a dead rank
    skips execution, its in-flight traffic is quarantined, and after its
    downtime it restarts with wiped memory -- state restoration is the
    job of :mod:`repro.machine.checkpoint`.
    """

    def __init__(
        self,
        p: int,
        fault_plan: FaultPlan | None = None,
        obs: Observability | None = None,
    ) -> None:
        if p <= 0:
            raise ValueError(f"need at least one rank, got p={p}")
        self.p = p
        # The machine's observability handle (repro.obs): superstep and
        # barrier spans, network/fault metrics, and the machine-event
        # rings all hang off it.  Disabled (free) unless one is passed.
        self.obs = obs if obs is not None else Observability(enabled=False)
        self.processors = [Processor(rank) for rank in range(p)]
        self.network = Network(p, fault_plan=fault_plan, obs=self.obs)
        self.crash_log: list[tuple[int, int]] = []  # (rank, superstep)
        self._restart_at: dict[int, int] = {}
        # Called at every barrier *after* node execution but *before*
        # fault injection (scribbles, crash points) -- the last instant
        # at which every arena still holds only legitimate writes.  The
        # integrity auditor commits its ledger here; the flight recorder
        # syncs here.  Hooks receive ``(vm, superstep)``.
        self.barrier_hooks: list[Callable[["VirtualMachine", int], None]] = []

    @property
    def superstep(self) -> int:
        """Number of barriers crossed so far (the fault plan's clock)."""
        return self.network.superstep

    @property
    def profile(self):
        """The attached :class:`repro.obs.profile.ProfileCollector`, if
        any -- the traffic seam lives on the network, where sends and
        barrier deliveries happen."""
        return self.network.profile

    @profile.setter
    def profile(self, collector) -> None:
        self.network.profile = collector

    # ------------------------------------------------------------------
    # Machine-level messaging (the Machine protocol surface; the
    # in-process backend simply delegates to its Network)
    # ------------------------------------------------------------------

    def send(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        self.network.send(source, dest, tag, payload)

    def recv(self, dest: int, source: int, tag: Any) -> Any:
        return self.network.recv(dest, source, tag)

    def probe(self, dest: int, source: int, tag: Any) -> bool:
        return self.network.probe(dest, source, tag)

    def drain(self, dest: int, tag: Any) -> list[tuple[int, Any]]:
        return self.network.drain(dest, tag)

    def outstanding(self, tags: Any) -> int:
        """Pending or delivered-but-unreceived messages with a tag in
        ``tags`` -- the quiescence check of the resilient protocols."""
        return self.network.outstanding(tags)

    def close(self) -> None:
        """Release backend resources (nothing to do in-process; the
        multiprocess backend tears down processes, sockets, and
        shared-memory segments here)."""

    def __enter__(self) -> "VirtualMachine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------

    def alive(self, rank: int) -> bool:
        return self.processors[rank].alive

    @property
    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(r for r in range(self.p) if not self.processors[r].alive)

    def crash_rank(self, rank: int, downtime: int | None = None) -> None:
        """Kill ``rank`` at the current superstep (outside any fault
        plan): memory wiped, in-flight messages quarantined, automatic
        restart ``downtime`` supersteps later (default: the plan's
        ``crash_downtime``, or 1)."""
        if downtime is None:
            plan = self.network.fault_plan
            downtime = plan.crash_downtime if plan is not None else 1
        if downtime < 1:
            raise ValueError(f"downtime must be >= 1 superstep, got {downtime}")
        self._crash(rank, self.network.superstep, downtime)

    def _crash(self, rank: int, step: int, downtime: int) -> None:
        self.processors[rank].crash(step)
        self.network.mark_dead(rank, step)
        self.network.record_fault(step, "crash", rank, -1, None, 0)
        self.crash_log.append((rank, step))
        self._restart_at[rank] = step + 1 + downtime

    def _revive_due(self) -> None:
        """Restart dead ranks whose downtime has elapsed (called before
        each superstep's execution): alive again, memory still wiped."""
        step = self.network.superstep
        for rank, when in list(self._restart_at.items()):
            if step >= when:
                proc = self.processors[rank]
                proc.restart()
                self.network.mark_alive(rank)
                self.network.record_fault(
                    step, "restart", rank, -1, None, proc.incarnation
                )
                del self._restart_at[rank]

    def _barrier(self) -> None:
        """Superstep barrier: run the legitimate-write hooks, fire this
        step's scribble points (in-arena bit rot) and crash points
        (quarantining the victims' in-flight sends), then deliver."""
        step = self.network.superstep
        with self.obs.span("barrier", step=step):
            for hook in self.barrier_hooks:
                hook(self, step)
            plan = self.network.fault_plan
            if plan is not None:
                self._inject_scribbles(plan, step)
                for rank in range(self.p):
                    if self.processors[rank].alive and plan.crashed(step, rank):
                        self._crash(rank, step, plan.crash_downtime)
            self.network.deliver()
        self.obs.inc("vm.supersteps")

    def _inject_scribbles(self, plan: FaultPlan, step: int) -> None:
        """Fire this barrier's ``(superstep, rank, arena)`` scribble
        points: flip bits inside live arenas, in place.  Runs *after*
        the barrier hooks, so an attached auditor's ledger reflects the
        pre-rot state -- that ordering is what makes the corruption
        detectable at all."""
        if plan.scribble <= 0.0 and not plan.forced_scribbles:
            return
        for rank in range(self.p):
            proc = self.processors[rank]
            if not proc.alive:
                continue  # nothing to rot: a dead rank's memory is gone
            for name, arena in proc.arenas():
                if not plan.scribbled(step, rank, name):
                    continue
                salt = plan.scribble_salt(step, rank, name)
                touched = scribble_arena(arena, salt, plan.scribble_width)
                if not touched:
                    continue
                proc.stats.scribbles += 1
                self.network.record_fault(
                    step, "scribble", rank, -1, name, touched[0]
                )

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------

    def grow_to(self, new_p: int) -> None:
        """Add ranks ``p .. new_p-1`` to the machine (empty memories,
        alive, incarnation 0).  Existing ranks, their arenas, and any
        in-flight traffic are untouched."""
        if new_p <= self.p:
            raise ValueError(f"grow_to({new_p}) from p={self.p}: need new_p > p")
        step = self.network.superstep
        for rank in range(self.p, new_p):
            self.processors.append(Processor(rank))
        self.network.resize(new_p)
        self.p = new_p
        self.obs.inc("elastic.grow")
        self.network.record_fault(step, "grow", -1, -1, None, new_p)

    def retire_to(self, new_p: int) -> None:
        """Retire ranks ``new_p .. p-1``: their arenas are freed, their
        in-flight traffic is quarantined (like a crash, but permanent),
        and the machine shrinks to ``new_p`` ranks.  Surviving ranks are
        untouched."""
        if not 0 < new_p < self.p:
            raise ValueError(f"retire_to({new_p}) from p={self.p}: need 0 < new_p < p")
        step = self.network.superstep
        for rank in range(new_p, self.p):
            self._restart_at.pop(rank, None)
        self.network.resize(new_p)
        del self.processors[new_p:]
        self.p = new_p
        self.obs.inc("elastic.retire")
        self.network.record_fault(step, "retire", -1, -1, None, new_p)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, fn: Callable[..., Any], *args: Any) -> list[Any]:
        """Run one superstep: ``fn(ctx, *args)`` on every live rank, then
        a barrier.  Dead ranks skip execution and yield ``None``."""
        obs = self.obs
        step = self.network.superstep
        with obs.span("superstep", step=step):
            self._revive_due()
            results = []
            for rank in range(self.p):
                if not self.processors[rank].alive:
                    results.append(None)
                    continue
                with obs.span("node", rank=rank, step=step):
                    results.append(fn(NodeContext(self, rank), *args))
            self._barrier()
        return results

    def bsp(self, *phases: Callable[..., Any]) -> list[list[Any]]:
        """Run a sequence of supersteps.  Messages sent during phase ``t``
        are receivable during phase ``t + 1``.  Returns per-phase,
        per-rank results."""
        if not phases:
            raise ValueError("need at least one phase")
        return [self.run(phase) for phase in phases]

    def run_spmd(
        self, fn: Callable[..., Any], per_rank_args: Sequence[tuple] | None = None
    ) -> list[Any]:
        """Superstep with per-rank argument tuples."""
        if per_rank_args is not None and len(per_rank_args) != self.p:
            raise ValueError(
                f"need {self.p} argument tuples, got {len(per_rank_args)}"
            )
        obs = self.obs
        step = self.network.superstep
        with obs.span("superstep", step=step):
            self._revive_due()
            results = []
            for rank in range(self.p):
                if not self.processors[rank].alive:
                    results.append(None)
                    continue
                args = per_rank_args[rank] if per_rank_args is not None else ()
                with obs.span("node", rank=rank, step=step):
                    results.append(fn(NodeContext(self, rank), *args))
            self._barrier()
        return results

    # ------------------------------------------------------------------
    # Whole-machine conveniences
    # ------------------------------------------------------------------

    def allocate_all(self, name: str, sizes: Iterable[int], **kw) -> None:
        """Allocate a named arena on every rank (``sizes`` per rank)."""
        sizes = list(sizes)
        if len(sizes) != self.p:
            raise ValueError(f"need {self.p} sizes, got {len(sizes)}")
        for proc, size in zip(self.processors, sizes):
            proc.allocate(name, size, **kw)

    def memories(self, name: str) -> list:
        return [proc.memory(name) for proc in self.processors]

    def reset_stats(self) -> None:
        from .network import NetworkStats
        from .processor import MemoryStats

        self.network.stats = NetworkStats()
        self.network.fault_events.clear()
        for proc in self.processors:
            proc.stats = MemoryStats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualMachine(p={self.p})"
