"""Interconnect topology models for the simulated machine.

The paper's measurements were taken on an Intel iPSC/860 *hypercube*.
The table-construction algorithms are communication-free, so topology
never affects the paper's numbers -- but the surrounding runtime
(communication sets, shifts, transposes) does move data, and a topology
model lets the benchmarks report distance-weighted traffic the way an
iPSC user would reason about it.

Models provided:

* :class:`HypercubeTopology` -- ranks are hypercube corners, distance is
  the Hamming distance of the rank ids (the iPSC routing metric);
* :class:`RingTopology` -- distance is the shorter way around a ring;
* :class:`CrossbarTopology` -- unit distance between distinct ranks
  (an idealized full crossbar, the implicit default elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import NetworkStats

__all__ = [
    "Topology",
    "HypercubeTopology",
    "RingTopology",
    "CrossbarTopology",
    "weighted_traffic",
]


class Topology:
    """Base class: a distance metric over ranks."""

    p: int

    def distance(self, a: int, b: int) -> int:
        raise NotImplementedError

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range [0, {self.p})")

    def diameter(self) -> int:
        """Maximum distance between any two ranks."""
        return max(
            self.distance(a, b) for a in range(self.p) for b in range(self.p)
        )


@dataclass(frozen=True)
class HypercubeTopology(Topology):
    """A ``2**dim``-node hypercube; distance = Hamming(a ^ b).

    The iPSC/860 model: the paper's 32 processors form a 5-cube.
    """

    dim: int

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise ValueError(f"dimension must be nonnegative, got {self.dim}")

    @property
    def p(self) -> int:
        return 1 << self.dim

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return (a ^ b).bit_count()

    def neighbors(self, rank: int) -> list[int]:
        """The ``dim`` ranks one hop away."""
        self._check(rank)
        return [rank ^ (1 << bit) for bit in range(self.dim)]

    def route(self, a: int, b: int) -> list[int]:
        """One dimension-ordered (e-cube) route from ``a`` to ``b``,
        inclusive of both endpoints -- the iPSC routing discipline."""
        self._check(a)
        self._check(b)
        path = [a]
        current = a
        diff = a ^ b
        bit = 0
        while diff:
            if diff & 1:
                current ^= 1 << bit
                path.append(current)
            diff >>= 1
            bit += 1
        return path


@dataclass(frozen=True)
class RingTopology(Topology):
    """A bidirectional ring of ``p`` ranks."""

    p: int

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError(f"need at least one rank, got {self.p}")

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        around = abs(a - b)
        return min(around, self.p - around)


@dataclass(frozen=True)
class CrossbarTopology(Topology):
    """Idealized full crossbar: unit distance between distinct ranks."""

    p: int

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError(f"need at least one rank, got {self.p}")

    def distance(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        return 0 if a == b else 1


def weighted_traffic(stats: NetworkStats, topology: Topology) -> int:
    """Total message-hops: each recorded channel's message count weighted
    by its topological distance.  An iPSC-style cost figure for the
    communication a schedule induces."""
    total = 0
    for (src, dst), count in stats.per_channel.items():
        total += count * topology.distance(src, dst)
    return total
