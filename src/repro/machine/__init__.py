"""Deterministic SPMD machine simulator (substitute for the iPSC/860).

See DESIGN.md Section 2 for the substitution rationale.  The machine is
bulk-synchronous: node programs run per rank within a superstep and
messages cross superstep barriers.
"""

from .collectives import (
    allgather,
    allreduce,
    alltoall,
    broadcast,
    gather,
    reduce,
    scatter,
)
from .checkpoint import (
    ArenaSnapshot,
    Checkpoint,
    CheckpointError,
    CheckpointPolicy,
    CheckpointStore,
    RankSnapshot,
)
from .audit import AuditStats, Divergence, IntegrityAuditor, localize_divergence
from .costmodel import CostModel, MessageCost, SuperstepEstimate, estimate_superstep
from .faults import (
    FAULT_KINDS,
    ChannelAction,
    FaultDecision,
    FaultEvent,
    FaultPlan,
    corrupt_payload,
    plan_channel_delivery,
    scribble_arena,
)
from .network import Message, Network, NetworkStats, payload_nbytes
from .processor import MemoryStats, Processor
from .topology import (
    CrossbarTopology,
    HypercubeTopology,
    RingTopology,
    Topology,
    weighted_traffic,
)
from .trace import (
    AccessTrace,
    FlightRecord,
    FlightRecorder,
    TracingMemory,
    fault_report,
    machine_report,
)
from .iface import BACKENDS, Machine, RankState, create_machine
from .vm import NodeContext, VirtualMachine

__all__ = [
    "BACKENDS",
    "Machine",
    "RankState",
    "create_machine",
    "VirtualMachine",
    "NodeContext",
    "Processor",
    "MemoryStats",
    "Network",
    "NetworkStats",
    "Message",
    "payload_nbytes",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultDecision",
    "ChannelAction",
    "plan_channel_delivery",
    "FaultEvent",
    "corrupt_payload",
    "scribble_arena",
    "AuditStats",
    "Divergence",
    "IntegrityAuditor",
    "localize_divergence",
    "FlightRecord",
    "FlightRecorder",
    "ArenaSnapshot",
    "RankSnapshot",
    "Checkpoint",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointStore",
    "broadcast",
    "scatter",
    "gather",
    "allgather",
    "reduce",
    "allreduce",
    "alltoall",
    "AccessTrace",
    "TracingMemory",
    "machine_report",
    "fault_report",
    "Topology",
    "HypercubeTopology",
    "RingTopology",
    "CrossbarTopology",
    "weighted_traffic",
    "CostModel",
    "MessageCost",
    "SuperstepEstimate",
    "estimate_superstep",
]
