"""Per-rank state of the simulated distributed-memory machine.

Each :class:`Processor` owns a set of named local memory arenas
(1-D NumPy arrays -- the flattened compressed local arrays of
:class:`repro.distribution.DistributedArray`) plus instrumentation
counters used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Processor", "MemoryStats"]


@dataclass
class MemoryStats:
    reads: int = 0
    writes: int = 0
    allocations: int = 0
    allocated_cells: int = 0
    scribbles: int = 0  # in-arena corruption events injected by a plan


class Processor:
    """One simulated node: rank id + named local memories + counters.

    A processor can *crash* (see :class:`repro.machine.faults.FaultPlan`
    kill points): it goes dead, its memories are wiped, and a later
    :meth:`restart` brings it back -- still empty -- under a new
    incarnation number.  Restoring state is the job of
    :mod:`repro.machine.checkpoint`; the processor itself only models
    the volatile-memory loss.
    """

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError(f"rank must be nonnegative, got {rank}")
        self.rank = rank
        self._memories: dict[str, np.ndarray] = {}
        self.stats = MemoryStats()
        self.alive = True
        self.incarnation = 0  # bumped at every restart
        self.crashed_at: int | None = None  # superstep of the latest crash

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------

    def crash(self, superstep: int) -> None:
        """Kill the node: volatile memory is lost, nothing executes until
        :meth:`restart`."""
        if not self.alive:
            raise RuntimeError(f"rank {self.rank} is already dead")
        self.alive = False
        self.crashed_at = superstep
        self._memories.clear()

    def restart(self) -> None:
        """Bring a dead node back up with wiped memory and a fresh
        incarnation number (so peers can tell a reboot from a stall)."""
        if self.alive:
            raise RuntimeError(f"rank {self.rank} is not dead")
        self.alive = True
        self.incarnation += 1

    @property
    def memory_names(self) -> tuple[str, ...]:
        """Allocated arena names, sorted (checkpointing iterates these)."""
        return tuple(sorted(self._memories))

    def arenas(self) -> list[tuple[str, np.ndarray]]:
        """``(name, arena)`` pairs in name order -- the iteration the
        scribble injector and the integrity auditor share, so both walk
        memory in the same deterministic order."""
        return [(name, self._memories[name]) for name in self.memory_names]

    def allocate(self, name: str, size: int, dtype=np.float64, fill=0) -> np.ndarray:
        """Allocate (or reallocate) a named local arena of ``size`` cells."""
        if size < 0:
            raise ValueError(f"size must be nonnegative, got {size}")
        arena = np.full(size, fill, dtype=dtype)
        self._memories[name] = arena
        self.stats.allocations += 1
        self.stats.allocated_cells += size
        return arena

    def memory(self, name: str) -> np.ndarray:
        try:
            return self._memories[name]
        except KeyError:
            raise KeyError(
                f"rank {self.rank} has no local memory named {name!r}; "
                f"allocated: {sorted(self._memories)}"
            ) from None

    def has_memory(self, name: str) -> bool:
        return name in self._memories

    def free(self, name: str) -> None:
        if name not in self._memories:
            raise KeyError(f"rank {self.rank} has no local memory named {name!r}")
        del self._memories[name]

    # Counted accessors -- the node-code templates use raw array access
    # in their hot loops for honest timing; these counted versions are
    # for tests and traces.

    def load(self, name: str, addr: int) -> float:
        self.stats.reads += 1
        return self.memory(name)[addr]

    def store(self, name: str, addr: int, value) -> None:
        self.stats.writes += 1
        self.memory(name)[addr] = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Processor(rank={self.rank}, memories={sorted(self._memories)})"
