"""Per-rank state of the simulated distributed-memory machine.

Each :class:`Processor` owns a set of named local memory arenas
(1-D NumPy arrays -- the flattened compressed local arrays of
:class:`repro.distribution.DistributedArray`) plus instrumentation
counters used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Processor", "MemoryStats"]


@dataclass
class MemoryStats:
    reads: int = 0
    writes: int = 0
    allocations: int = 0
    allocated_cells: int = 0


class Processor:
    """One simulated node: rank id + named local memories + counters."""

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError(f"rank must be nonnegative, got {rank}")
        self.rank = rank
        self._memories: dict[str, np.ndarray] = {}
        self.stats = MemoryStats()

    def allocate(self, name: str, size: int, dtype=np.float64, fill=0) -> np.ndarray:
        """Allocate (or reallocate) a named local arena of ``size`` cells."""
        if size < 0:
            raise ValueError(f"size must be nonnegative, got {size}")
        arena = np.full(size, fill, dtype=dtype)
        self._memories[name] = arena
        self.stats.allocations += 1
        self.stats.allocated_cells += size
        return arena

    def memory(self, name: str) -> np.ndarray:
        try:
            return self._memories[name]
        except KeyError:
            raise KeyError(
                f"rank {self.rank} has no local memory named {name!r}; "
                f"allocated: {sorted(self._memories)}"
            ) from None

    def has_memory(self, name: str) -> bool:
        return name in self._memories

    def free(self, name: str) -> None:
        if name not in self._memories:
            raise KeyError(f"rank {self.rank} has no local memory named {name!r}")
        del self._memories[name]

    # Counted accessors -- the node-code templates use raw array access
    # in their hot loops for honest timing; these counted versions are
    # for tests and traces.

    def load(self, name: str, addr: int) -> float:
        self.stats.reads += 1
        return self.memory(name)[addr]

    def store(self, name: str, addr: int, value) -> None:
        self.stats.writes += 1
        self.memory(name)[addr] = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Processor(rank={self.rank}, memories={sorted(self._memories)})"
