"""Analytic communication cost model for schedules on the simulated machine.

The reproduction cannot measure iPSC/860 network time, but it can
*model* it the way the era's literature did: a linear alpha-beta model
per message (``alpha`` startup latency + ``beta`` per byte), extended
with a per-hop term for the topology (e-cube routed hypercubes charge
distance), combined BSP-style per superstep:

    T_superstep = max over ranks of (sum of its message costs, sending
                  and receiving), plus the largest single network
                  transit time.

This is deliberately simple -- it ranks communication schedules, it does
not predict wall-clock -- and it is exactly the kind of figure the
paper's successors used to compare redistribution/transpose schedules.

Default constants are loosely based on published iPSC/860 numbers
(~70 us latency, ~2.8 MB/s per link -> ~0.36 us/byte), scaled for
readability; pass your own :class:`CostModel` to change them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from .topology import Topology

__all__ = ["CostModel", "MessageCost", "SuperstepEstimate", "estimate_superstep"]


class _TransferLike(Protocol):
    source: int
    dest: int

    def __len__(self) -> int: ...


@dataclass(frozen=True, slots=True)
class CostModel:
    """Linear message cost: ``alpha + beta*bytes + gamma*(hops - 1)``.

    ``gamma`` charges each extra hop beyond the first (nearest-neighbor
    messages pay only ``alpha + beta*bytes``).  ``word_bytes`` converts
    element counts to bytes.
    """

    alpha_us: float = 70.0
    beta_us_per_byte: float = 0.36
    gamma_us_per_hop: float = 10.0
    word_bytes: int = 8

    def message_us(self, elements: int, hops: int) -> float:
        if elements < 0:
            raise ValueError(f"element count must be nonnegative, got {elements}")
        if hops < 1:
            raise ValueError(f"a message needs at least one hop, got {hops}")
        return (
            self.alpha_us
            + self.beta_us_per_byte * elements * self.word_bytes
            + self.gamma_us_per_hop * (hops - 1)
        )


@dataclass(frozen=True, slots=True)
class MessageCost:
    source: int
    dest: int
    elements: int
    hops: int
    time_us: float


@dataclass(frozen=True, slots=True)
class SuperstepEstimate:
    """BSP-style estimate of one exchange superstep."""

    messages: tuple[MessageCost, ...]
    per_rank_us: tuple[float, ...]  # send+receive load per rank
    bottleneck_rank: int
    time_us: float  # max per-rank load + slowest single transit

    @property
    def total_traffic_us(self) -> float:
        return sum(m.time_us for m in self.messages)


def estimate_superstep(
    transfers: Iterable[_TransferLike],
    p: int,
    topology: Topology,
    model: CostModel | None = None,
) -> SuperstepEstimate:
    """Estimate one exchange superstep of ``transfers`` (local q==r
    transfers are skipped -- they cost no network time)."""
    if model is None:
        model = CostModel()
    if p <= 0:
        raise ValueError(f"need at least one rank, got {p}")
    messages = []
    load = [0.0] * p
    slowest = 0.0
    for tr in transfers:
        if tr.source == tr.dest:
            continue
        hops = topology.distance(tr.source, tr.dest)
        cost = model.message_us(len(tr), max(hops, 1))
        messages.append(MessageCost(tr.source, tr.dest, len(tr), hops, cost))
        load[tr.source] += cost
        load[tr.dest] += cost
        slowest = max(slowest, cost)
    bottleneck = max(range(p), key=lambda r: load[r]) if p else 0
    return SuperstepEstimate(
        messages=tuple(messages),
        per_rank_us=tuple(load),
        bottleneck_rank=bottleneck,
        time_us=load[bottleneck] + slowest,
    )
