"""Collective operations built on the point-to-point fabric.

BSP-style collectives: each is a pair of phases (contribute, combine)
run through :meth:`repro.machine.vm.VirtualMachine.bsp` semantics.  The
implementations favour clarity over simulated-network optimality; the
instrumentation in :class:`repro.machine.network.NetworkStats` still
reports realistic message/byte counts for the naive algorithms.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .vm import VirtualMachine

__all__ = ["broadcast", "gather", "allgather", "reduce", "allreduce", "alltoall", "scatter"]


def broadcast(vm: VirtualMachine, values: Sequence[Any], root: int) -> list[Any]:
    """Root's value to every rank.  ``values`` holds each rank's local
    candidate (only ``values[root]`` is used).  Returns per-rank results."""
    _check_root(vm, root)

    def send_phase(ctx):
        if ctx.rank == root:
            for dest in range(ctx.p):
                ctx.send(dest, "bcast", values[root])

    def recv_phase(ctx):
        return ctx.recv(root, "bcast")

    _, results = vm.bsp(send_phase, recv_phase)
    return results


def scatter(vm: VirtualMachine, chunks: Sequence[Any], root: int) -> list[Any]:
    """Rank ``root`` sends ``chunks[i]`` to rank ``i``."""
    _check_root(vm, root)
    if len(chunks) != vm.p:
        raise ValueError(f"need {vm.p} chunks, got {len(chunks)}")

    def send_phase(ctx):
        if ctx.rank == root:
            for dest in range(ctx.p):
                ctx.send(dest, "scatter", chunks[dest])

    def recv_phase(ctx):
        return ctx.recv(root, "scatter")

    _, results = vm.bsp(send_phase, recv_phase)
    return results


def gather(vm: VirtualMachine, values: Sequence[Any], root: int) -> list[Any] | None:
    """Every rank's value to ``root``.  Returns the gathered list (in the
    root's slot of the per-rank results); other ranks get ``None``."""
    _check_root(vm, root)

    def send_phase(ctx):
        ctx.send(root, "gather", values[ctx.rank])

    def recv_phase(ctx):
        if ctx.rank != root:
            return None
        return [ctx.recv(src, "gather") for src in range(ctx.p)]

    _, results = vm.bsp(send_phase, recv_phase)
    return results[root]


def allgather(vm: VirtualMachine, values: Sequence[Any]) -> list[list[Any]]:
    """Every rank receives every rank's value."""

    def send_phase(ctx):
        for dest in range(ctx.p):
            ctx.send(dest, "allgather", values[ctx.rank])

    def recv_phase(ctx):
        return [ctx.recv(src, "allgather") for src in range(ctx.p)]

    _, results = vm.bsp(send_phase, recv_phase)
    return results


def reduce(
    vm: VirtualMachine,
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
    root: int,
) -> Any:
    """Fold every rank's value with ``op`` at ``root``."""
    gathered = gather(vm, values, root)
    acc = gathered[0]
    for v in gathered[1:]:
        acc = op(acc, v)
    return acc


def allreduce(
    vm: VirtualMachine, values: Sequence[Any], op: Callable[[Any, Any], Any]
) -> list[Any]:
    """Reduce then broadcast; every rank gets the folded value."""
    total = reduce(vm, values, op, root=0)
    return broadcast(vm, [total] * vm.p, root=0)


def alltoall(vm: VirtualMachine, matrix: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """``matrix[src][dest]`` is delivered to ``dest``; rank ``r`` receives
    ``[matrix[src][r] for src in range(p)]``.  The personalized exchange
    underlying array-assignment communication."""
    if len(matrix) != vm.p or any(len(row) != vm.p for row in matrix):
        raise ValueError(f"need a {vm.p}x{vm.p} matrix of payloads")

    def send_phase(ctx):
        for dest in range(ctx.p):
            ctx.send(dest, "alltoall", matrix[ctx.rank][dest])

    def recv_phase(ctx):
        return [ctx.recv(src, "alltoall") for src in range(ctx.p)]

    _, results = vm.bsp(send_phase, recv_phase)
    return results


def _check_root(vm: VirtualMachine, root: int) -> None:
    if not 0 <= root < vm.p:
        raise ValueError(f"root {root} out of range [0, {vm.p})")
