"""Deterministic fault injection for the simulated interconnect.

The paper's experiments ran on a real iPSC/860, where messages can be
lost, duplicated, delayed, or delivered corrupted; our in-process
:class:`~repro.machine.network.Network` is perfect by construction.  A
:class:`FaultPlan` restores the adversarial part of the substitution
(see docs/FAULT_MODEL.md): the network consults it at :meth:`deliver`
time and may *drop*, *duplicate*, *reorder*, or *corrupt* individual
messages, or *stall* a rank's outgoing traffic for a superstep.  A plan
may also *crash* whole ranks: a seeded (or forced) schedule of
``(superstep, rank)`` kill points consulted by the virtual machine at
each barrier -- the rank dies, its in-flight messages are quarantined,
and it restarts with wiped memory after ``crash_downtime`` supersteps
(recovery is the runtime's job; see :mod:`repro.machine.checkpoint`
and :mod:`repro.runtime.resilient`).

A plan may also *scribble* inside a rank's local memory: seeded (or
forced) ``(superstep, rank, arena)`` points at which the virtual
machine flips bits in the named arena at the barrier -- the silent
data corruption that no packet CRC can see, because the bytes rot at
rest rather than in flight.  Detection and repair are the job of
:mod:`repro.machine.audit` and the verified-exchange mode of
:mod:`repro.runtime.resilient` (docs/FAULT_MODEL.md §5).

Every decision is a pure function of ``(seed, fault kind, superstep,
channel, sequence number)`` -- no hidden RNG stream whose state depends
on call order -- so the same seed against the same program always yields
the same fault trace, byte for byte.  That determinism is what makes
fault-injection test failures replayable (same seed => same schedule of
drops), and is asserted by ``tests/machine/test_faults.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "ChannelAction",
    "FaultDecision",
    "FaultEvent",
    "FaultPlan",
    "corrupt_payload",
    "plan_channel_delivery",
    "scribble_arena",
]

# Every fault kind a plan can express; ``FaultPlan.from_rates`` rejects
# anything else with a ValueError instead of silently never firing.
FAULT_KINDS = (
    "drop", "duplicate", "reorder", "corrupt", "stall", "crash", "scribble",
)

# Denominator for mapping a 64-bit digest prefix onto [0, 1).
_SCALE = float(1 << 64)


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """Per-message verdict of a :class:`FaultPlan`."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.corrupt)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault, as recorded by the network for traces."""

    superstep: int
    kind: str  # one of FAULT_KINDS, or "restart" / "quarantine"
    source: int
    dest: int  # -1 for rank-wide events (stall, crash, restart)
    tag: Any
    seq: int  # per-channel sequence number within the superstep batch


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, fully deterministic schedule of network faults.

    Rates are independent per-message probabilities in ``[0, 1]``;
    ``stall`` is a per-(rank, superstep) probability that *all* of that
    rank's messages entering the barrier are held back one superstep.
    ``crash`` is a per-(rank, superstep) probability that the rank dies
    at the barrier (its memory is wiped and its in-flight messages are
    quarantined); a crashed rank restarts after ``crash_downtime``
    supersteps.  ``channels`` restricts message-level faults to the
    given ``(source, dest)`` pairs (``None`` = every channel);
    ``supersteps`` restricts all faults to a half-open ``[start, stop)``
    window of superstep numbers.  ``scribble`` is a per-(rank, arena,
    superstep) probability that bits rot inside that local arena at the
    barrier (``scribble_width`` bytes get a deterministic bit flipped
    each).  Explicit schedules can be expressed on top of the
    probabilistic ones: ``forced_stalls`` names exact
    ``(superstep, rank)`` pairs, ``forced_drops`` exact
    ``(superstep, source, dest, seq)`` messages, ``forced_crashes``
    exact ``(superstep, rank)`` kill points, and ``forced_scribbles``
    exact ``(superstep, rank, arena)`` corruption points.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    stall: float = 0.0
    crash: float = 0.0
    scribble: float = 0.0
    crash_downtime: int = 1
    scribble_width: int = 1
    channels: frozenset[tuple[int, int]] | None = None
    supersteps: tuple[int, int] | None = None
    forced_stalls: frozenset[tuple[int, int]] = field(default_factory=frozenset)
    forced_drops: frozenset[tuple[int, int, int, int]] = field(
        default_factory=frozenset
    )
    forced_crashes: frozenset[tuple[int, int]] = field(default_factory=frozenset)
    forced_scribbles: frozenset[tuple[int, int, str]] = field(
        default_factory=frozenset
    )

    def __post_init__(self) -> None:
        for name in FAULT_KINDS:
            rate = getattr(self, name)
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate!r}")
        if self.crash_downtime < 1:
            raise ValueError(
                f"crash_downtime must be >= 1 superstep, got {self.crash_downtime}"
            )
        if self.scribble_width < 1:
            raise ValueError(
                f"scribble_width must be >= 1 byte, got {self.scribble_width}"
            )

    @classmethod
    def from_rates(cls, seed: int = 0, **config: Any) -> "FaultPlan":
        """Build a plan from keyword rates, rejecting unknown fault kinds.

        ``FaultPlan(drp=0.3)`` is a ``TypeError`` from the dataclass
        machinery; this constructor gives sweep harnesses (and config
        files) a clear :class:`ValueError` naming the known kinds
        instead, so a typo'd fault kind can never silently never fire.
        Non-rate knobs (``crash_downtime``, ``channels``, windows,
        forced schedules) pass through unchanged.
        """
        passthrough = {
            "crash_downtime", "scribble_width", "channels", "supersteps",
            "forced_stalls", "forced_drops", "forced_crashes",
            "forced_scribbles",
        }
        unknown = sorted(set(config) - set(FAULT_KINDS) - passthrough)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {unknown}; known kinds are "
                f"{list(FAULT_KINDS)}"
            )
        return cls(seed=seed, **config)

    # ------------------------------------------------------------------
    # Deterministic coin flips
    # ------------------------------------------------------------------

    def _chance(self, kind: str, *key: int) -> float:
        """Uniform-ish value in [0, 1) derived purely from the key."""
        packed = kind.encode() + struct.pack(f"<{len(key) + 1}q", self.seed, *key)
        digest = hashlib.blake2b(packed, digest_size=8).digest()
        return struct.unpack("<Q", digest)[0] / _SCALE

    def _in_window(self, superstep: int) -> bool:
        if self.supersteps is None:
            return True
        start, stop = self.supersteps
        return start <= superstep < stop

    def _on_channel(self, source: int, dest: int) -> bool:
        return self.channels is None or (source, dest) in self.channels

    # ------------------------------------------------------------------
    # Queries the network makes
    # ------------------------------------------------------------------

    def decide(
        self, superstep: int, source: int, dest: int, seq: int
    ) -> FaultDecision:
        """Verdict for the ``seq``-th message of channel ``(source,
        dest)`` in the batch delivered at ``superstep``."""
        if (superstep, source, dest, seq) in self.forced_drops:
            return FaultDecision(drop=True)
        if not self._in_window(superstep) or not self._on_channel(source, dest):
            return FaultDecision()
        return FaultDecision(
            drop=self.drop > 0.0
            and self._chance("drop", superstep, source, dest, seq) < self.drop,
            duplicate=self.duplicate > 0.0
            and self._chance("dup", superstep, source, dest, seq) < self.duplicate,
            corrupt=self.corrupt > 0.0
            and self._chance("corr", superstep, source, dest, seq) < self.corrupt,
        )

    def stalled(self, superstep: int, rank: int) -> bool:
        """True when ``rank``'s outgoing messages are held past this
        superstep's barrier (delivered at the next one instead)."""
        if (superstep, rank) in self.forced_stalls:
            return True
        if not self._in_window(superstep) or self.stall <= 0.0:
            return False
        return self._chance("stall", superstep, rank) < self.stall

    def crashed(self, superstep: int, rank: int) -> bool:
        """True when ``rank`` dies at the barrier closing ``superstep``.

        Like every other decision this is a pure function of the key, so
        a seed fully determines the kill schedule -- the property the
        checkpoint/recovery tests replay failures from.
        """
        if (superstep, rank) in self.forced_crashes:
            return True
        if not self._in_window(superstep) or self.crash <= 0.0:
            return False
        return self._chance("crash", superstep, rank) < self.crash

    def scribbled(self, superstep: int, rank: int, arena: str) -> bool:
        """True when bits rot in ``rank``'s local ``arena`` at the
        barrier closing ``superstep``.

        A pure function of ``(seed, superstep, rank, arena)`` like every
        other decision -- the arena name enters the digest via its
        CRC-32 -- so a scribble schedule replays exactly from its seed.
        """
        if (superstep, rank, arena) in self.forced_scribbles:
            return True
        if not self._in_window(superstep) or self.scribble <= 0.0:
            return False
        name_key = zlib.crc32(arena.encode())
        return self._chance("scrib", superstep, rank, name_key) < self.scribble

    def scribble_salt(self, superstep: int, rank: int, arena: str) -> int:
        """Deterministic salt that picks which bytes/bits a scribble at
        this point flips (fed to :func:`scribble_arena`)."""
        packed = b"scribsalt" + arena.encode() + struct.pack(
            "<3q", self.seed, superstep, rank
        )
        digest = hashlib.blake2b(packed, digest_size=8).digest()
        return struct.unpack("<Q", digest)[0] & 0x7FFFFFFF

    def permutation(
        self, superstep: int, source: int, dest: int, n: int
    ) -> list[int]:
        """Delivery order for an ``n``-message channel batch: identity
        unless the reorder coin fires, then a deterministic shuffle."""
        order = list(range(n))
        if (
            n < 2
            or self.reorder <= 0.0
            or not self._in_window(superstep)
            or not self._on_channel(source, dest)
            or self._chance("reord", superstep, source, dest) >= self.reorder
        ):
            return order
        # Fisher-Yates with hash-derived picks: deterministic in the key.
        for i in range(n - 1, 0, -1):
            j = int(self._chance("perm", superstep, source, dest, i) * (i + 1))
            order[i], order[j] = order[j], order[i]
        return order


# ----------------------------------------------------------------------
# Channel delivery planning (shared by every backend)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChannelAction:
    """What happens to one message of a channel batch at a barrier.

    ``index`` is the message's position in the batch in *send order*;
    ``seq`` its delivery sequence number after the (possibly reordered)
    permutation -- the key every per-message verdict was derived from.
    ``corrupt_salt`` is the deterministic salt for
    :func:`corrupt_payload` when the corrupt coin fired, else ``None``.
    """

    index: int
    seq: int
    drop: bool
    copies: int  # 1, or 2 when the duplicate coin fired
    corrupt_salt: int | None


def plan_channel_delivery(
    plan: "FaultPlan", superstep: int, source: int, dest: int, n: int
) -> tuple[list[ChannelAction], bool]:
    """Delivery schedule for an ``n``-message channel batch.

    Returns ``(actions, reordered)``: the per-message actions in
    delivery order, and whether the batch permutation was non-identity.
    This is the **single source of truth** for how a fault plan maps
    onto a batch of messages -- the in-process
    :class:`~repro.machine.network.Network` and the multiprocess
    backend's worker delivery both consume it, which is what makes the
    two backends' fault schedules bit-identical under the same seed
    (the differential-acceptance property of
    ``tests/runtime/test_differential.py``).  Every piece of the
    computation is a pure function of ``(seed, superstep, source,
    dest, seq)``; the corrupt salt hashes only integers, so it is
    stable across processes regardless of ``PYTHONHASHSEED``.
    """
    order = plan.permutation(superstep, source, dest, n)
    reordered = order != list(range(n))
    actions: list[ChannelAction] = []
    for seq, idx in enumerate(order):
        verdict = plan.decide(superstep, source, dest, seq)
        salt = None
        if verdict.corrupt:
            salt = hash((plan.seed, superstep, source, dest, seq)) & 0x7FFFFFFF
        actions.append(
            ChannelAction(
                idx, seq, verdict.drop, 2 if verdict.duplicate else 1, salt
            )
        )
    return actions, reordered


# ----------------------------------------------------------------------
# Payload corruption
# ----------------------------------------------------------------------


def corrupt_payload(payload: Any, salt: int) -> Any:
    """Return a corrupted *copy* of ``payload`` (the original is never
    mutated -- sender-side buffers must stay intact for retransmission).

    Mimics an in-flight bit error: NumPy arrays and byte strings get one
    bit flipped at a salt-derived position; scalars are perturbed;
    containers and dataclasses (e.g. the resilient protocol's packets)
    have one field corrupted recursively.  Payloads with no mutable byte
    representation are returned unchanged -- a corruption that changes
    nothing is harmless by definition.
    """
    if isinstance(payload, np.ndarray):
        if payload.nbytes == 0 or payload.dtype.hasobject:
            return payload
        out = payload.copy()
        view = out.reshape(-1).view(np.uint8)
        pos = salt % view.size
        view[pos] ^= np.uint8(1 << (salt % 8))
        return out
    if isinstance(payload, (bytes, bytearray)):
        if not payload:
            return payload
        out = bytearray(payload)
        pos = salt % len(out)
        out[pos] ^= 1 << (salt % 8)
        return bytes(out) if isinstance(payload, bytes) else out
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return payload ^ (1 << (salt % 16))
    if isinstance(payload, float):
        return -payload if payload else 1.0
    if isinstance(payload, str):
        if not payload:
            return payload
        pos = salt % len(payload)
        flipped = chr(ord(payload[pos]) ^ 1)
        return payload[:pos] + flipped + payload[pos + 1 :]
    if isinstance(payload, (tuple, list)):
        if not payload:
            return payload
        pos = salt % len(payload)
        items = list(payload)
        items[pos] = corrupt_payload(items[pos], salt)
        if isinstance(payload, tuple) and hasattr(payload, "_fields"):
            # Named tuples take positional args, not an iterable.
            return type(payload)(*items)
        return type(payload)(items)
    if isinstance(payload, dict):
        if not payload:
            return payload
        # Keys sorted by repr so the perturbed leaf is a pure function
        # of the salt, independent of insertion order (dicts preserve
        # it, but two processes may build the payload differently).
        keys = sorted(payload, key=repr)
        victim = keys[salt % len(keys)]
        out = dict(payload)
        out[victim] = corrupt_payload(out[victim], salt)
        return out
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        fields = dataclasses.fields(payload)
        if fields:
            f = fields[salt % len(fields)]
            value = getattr(payload, f.name)
            return dataclasses.replace(
                payload, **{f.name: corrupt_payload(value, salt)}
            )
    return payload


# ----------------------------------------------------------------------
# Memory scribbles
# ----------------------------------------------------------------------


def scribble_arena(arena: np.ndarray, salt: int, width: int = 1) -> list[int]:
    """Flip one bit in each of ``width`` consecutive bytes of ``arena``
    **in place** -- an at-rest memory corruption, the one fault kind
    that deliberately mutates live state instead of a copy.

    The affected byte window and the bit within each byte are pure
    functions of the salt, so a scribble replays exactly.  Returns the
    (sorted, unique) *element* slots whose bytes were touched, so the
    machine can trace which local addresses rotted; returns ``[]`` for
    arenas with no mutable byte representation (empty or object dtype),
    a scribble that is harmless by definition.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1 byte, got {width}")
    if arena.size == 0 or arena.dtype.hasobject:
        return []
    view = arena.reshape(-1).view(np.uint8)
    start = salt % view.size
    touched = []
    for i in range(min(width, view.size)):
        pos = (start + i) % view.size
        view[pos] ^= np.uint8(1 << ((salt + i) % 8))
        touched.append(pos // arena.dtype.itemsize)
    return sorted(set(touched))
