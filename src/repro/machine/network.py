"""Deterministic message-passing fabric for the SPMD simulator.

Substitutes for the iPSC/860's interconnect (see DESIGN.md).  Messages
are delivered in FIFO order per ``(source, destination, tag)`` channel;
delivery is deterministic because node programs execute in
bulk-synchronous supersteps (:mod:`repro.machine.vm`): everything sent
during superstep ``t`` is available to receives in superstep ``t + 1``.

A network may carry a :class:`~repro.machine.faults.FaultPlan`, in which
case :meth:`Network.deliver` consults it per message and may drop,
duplicate, reorder, or corrupt traffic, or hold back a stalled rank's
sends for one superstep (see docs/FAULT_MODEL.md).  Without a plan the
fabric is perfect, as before.

Byte accounting uses ``numpy`` buffer sizes when available and
``sys.getsizeof`` otherwise, so benchmarks can report traffic volumes.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs import Observability
from .faults import FaultEvent, FaultPlan, corrupt_payload, plan_channel_delivery

__all__ = ["Message", "Network", "NetworkStats", "payload_nbytes"]


def payload_nbytes(payload: Any, _depth: int = 0) -> int:
    """Approximate wire size of a payload in bytes.

    Objects exposing an integer ``nbytes`` (NumPy arrays and scalars,
    the resilient protocol's packets) report their buffer size exactly;
    byte strings their length.  Lists, tuples, and dicts recurse **one
    level** (dicts over keys *and* values) so that e.g. a list of arrays
    or a header dict of buffers counts the element buffers, not just
    ``sys.getsizeof``'s pointer-table size -- deeper nesting and other
    containers still fall back to ``sys.getsizeof``, which measures the
    container shell only.  The result is an accounting approximation,
    not a serialization: Python object headers and deep structure are
    deliberately not charged.
    """
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple)) and _depth == 0:
        return sys.getsizeof(payload) + sum(
            payload_nbytes(item, _depth=1) for item in payload
        )
    if isinstance(payload, dict) and _depth == 0:
        return sys.getsizeof(payload) + sum(
            payload_nbytes(k, _depth=1) + payload_nbytes(v, _depth=1)
            for k, v in payload.items()
        )
    return sys.getsizeof(payload)


@dataclass(frozen=True, slots=True)
class Message:
    source: int
    dest: int
    tag: Any
    payload: Any

    @property
    def nbytes(self) -> int:
        return payload_nbytes(self.payload)


@dataclass
class NetworkStats:
    """Traffic counters, split into *sent* vs *delivered* vs *dropped*.

    ``messages`` / ``bytes`` count sends (the legacy counters every
    benchmark reports); ``delivered`` / ``bytes_delivered`` count what
    actually crossed the barrier into a receive queue (duplicates
    included), and ``dropped`` / ``bytes_dropped`` what the fault plan
    discarded.  On a fault-free network ``delivered == messages`` once
    everything pending has crossed a barrier.
    """

    messages: int = 0
    bytes: int = 0
    per_channel: dict[tuple[int, int], int] = field(default_factory=dict)
    delivered: int = 0
    bytes_delivered: int = 0
    dropped: int = 0
    bytes_dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    stalled: int = 0
    quarantined: int = 0
    bytes_quarantined: int = 0

    @property
    def sent(self) -> int:
        """Alias for ``messages`` under the sent/delivered/dropped split."""
        return self.messages

    @property
    def bytes_sent(self) -> int:
        return self.bytes

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.nbytes
        key = (msg.source, msg.dest)
        self.per_channel[key] = self.per_channel.get(key, 0) + 1

    def record_delivered(self, msg: Message) -> None:
        self.delivered += 1
        self.bytes_delivered += msg.nbytes

    def record_dropped(self, msg: Message) -> None:
        self.dropped += 1
        self.bytes_dropped += msg.nbytes

    def record_quarantined(self, msg: Message) -> None:
        self.quarantined += 1
        self.bytes_quarantined += msg.nbytes


class Network:
    """Point-to-point channels between ``p`` ranks with BSP delivery.

    ``send`` enqueues into the *pending* buffer; :meth:`deliver` (called
    by the VM at superstep barriers) moves pending messages into the
    receivable queues.  ``recv`` raises :class:`LookupError` when no
    matching message has been delivered -- in a correct BSP program that
    is a programming error, not a race.

    With a ``fault_plan``, :meth:`deliver` becomes adversarial (drops,
    duplicates, reorders, corruption, stalls) while staying fully
    deterministic in the plan's seed; every injected fault is appended
    to :attr:`fault_events`.
    """

    def __init__(
        self,
        p: int,
        fault_plan: FaultPlan | None = None,
        obs: Observability | None = None,
    ) -> None:
        if p <= 0:
            raise ValueError(f"need at least one rank, got p={p}")
        self.p = p
        self.fault_plan = fault_plan
        self.superstep = 0
        self._pending: list[Message] = []
        self._queues: dict[tuple[int, int, Any], deque[Message]] = {}
        self.stats = NetworkStats()
        self.fault_events: list[FaultEvent] = []
        self.dead: set[int] = set()  # ranks whose NIC is down (crashed)
        # The observability sink for deliveries and faults: metric
        # counters when enabled, and the per-rank machine-event rings
        # the flight recorder is a view over (see repro.obs).
        self.obs = obs if obs is not None else Observability(enabled=False)
        # Optional per-superstep traffic sink: a
        # :class:`repro.obs.profile.ProfileCollector` while one is
        # attached, consulted on every send and delivered copy.
        self.profile = None

    def _observe(self, event: str, msg: Message, step: int) -> None:
        """Route a traffic event into the machine-event rings: sends to
        the source's ring, deliveries to the destination's, quarantines
        to both endpoints (drops go through :meth:`record_fault`)."""
        events = self.obs.events
        if not events.enabled:
            return
        detail = f"{msg.source}->{msg.dest} tag={msg.tag!r} {msg.nbytes}B"
        if event == "send":
            events.record(msg.source, step, event, detail)
        elif event == "deliver":
            events.record(msg.dest, step, event, detail)
        else:
            events.record(msg.source, step, event, detail)
            if msg.dest != msg.source:
                events.record(msg.dest, step, event, detail)

    def record_fault(
        self, step: int, kind: str, source: int, dest: int, tag: Any, seq: int
    ) -> None:
        """Single entry point for injected-fault bookkeeping: appends to
        :attr:`fault_events` (the deterministic replay trace), bumps the
        per-kind fault counter, and lands a machine event in the
        victim's ring.  The VM routes crash/restart/scribble lifecycle
        events through here too."""
        self.fault_events.append(FaultEvent(step, kind, source, dest, tag, seq))
        obs = self.obs
        obs.inc(f"faults.{kind}")
        if obs.events.enabled:
            rank = source if dest < 0 else dest
            obs.events.record(
                rank, step, kind,
                f"src={source} dest={dest} tag={tag!r} seq={seq}",
            )

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.p:
            raise ValueError(f"{what} rank {rank} out of range [0, {self.p})")

    def send(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        self._check_rank(source, "source")
        self._check_rank(dest, "destination")
        msg = Message(source, dest, tag, payload)
        self._pending.append(msg)
        self.stats.record(msg)
        obs = self.obs
        if obs.enabled:
            nbytes = msg.nbytes
            obs.inc("net.messages_sent")
            obs.inc("net.bytes_sent", nbytes)
            obs.observe("net.message_bytes", nbytes)
        if self.profile is not None:
            self.profile.record_send(self.superstep, source, dest, msg.nbytes)
        self._observe("send", msg, self.superstep)

    # ------------------------------------------------------------------
    # Crash quarantine
    # ------------------------------------------------------------------

    def mark_dead(self, rank: int, superstep: int | None = None) -> int:
        """Take ``rank``'s NIC down: its in-flight messages (pending
        sends *and* delivered-but-unreceived traffic addressed to it)
        are quarantined -- removed and counted, never delivered.  While
        dead, anything addressed to the rank is quarantined at the next
        barrier.  Returns the number of messages quarantined now."""
        self._check_rank(rank, "dead")
        self.dead.add(rank)
        step = self.superstep if superstep is None else superstep
        gone = 0
        keep: list[Message] = []
        for msg in self._pending:
            if msg.source == rank or msg.dest == rank:
                self._quarantine(msg, step)
                gone += 1
            else:
                keep.append(msg)
        self._pending = keep
        for (source, dest, tag), queue in self._queues.items():
            if dest == rank:
                while queue:
                    self._quarantine(queue.popleft(), step)
                    gone += 1
        return gone

    def mark_alive(self, rank: int) -> None:
        self.dead.discard(rank)

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------

    def resize(self, new_p: int) -> int:
        """Change the rank count of the fabric (elastic membership).

        Growing simply widens the valid rank range -- channels are
        created lazily, so no other state changes.  Shrinking fences the
        retired ranks first: any pending send and any
        delivered-but-unreceived message touching a rank ``>= new_p`` is
        quarantined (counted, never delivered), exactly like a crashed
        rank's traffic, so a retired rank can never leak stale messages
        into a later membership epoch.  Returns the number of messages
        quarantined."""
        if new_p <= 0:
            raise ValueError(f"need at least one rank, got p={new_p}")
        if new_p >= self.p:
            self.p = new_p
            return 0
        step = self.superstep
        gone = 0
        keep: list[Message] = []
        for msg in self._pending:
            if msg.source >= new_p or msg.dest >= new_p:
                self._quarantine(msg, step)
                gone += 1
            else:
                keep.append(msg)
        self._pending = keep
        for (source, dest, tag), queue in list(self._queues.items()):
            if source >= new_p or dest >= new_p:
                while queue:
                    self._quarantine(queue.popleft(), step)
                    gone += 1
                del self._queues[(source, dest, tag)]
        self.dead = {rank for rank in self.dead if rank < new_p}
        self.p = new_p
        return gone

    def _quarantine(self, msg: Message, step: int) -> None:
        self.stats.record_quarantined(msg)
        self.fault_events.append(
            FaultEvent(step, "quarantine", msg.source, msg.dest, msg.tag, 0)
        )
        obs = self.obs
        if obs.enabled:
            obs.inc("net.messages_quarantined")
            obs.inc("net.bytes_quarantined", msg.nbytes)
        self._observe("quarantine", msg, step)

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------

    def deliver(self) -> int:
        """Barrier: make pending messages receivable, consulting the
        fault plan (if any) per message.  Returns the number of messages
        made receivable (duplicates count)."""
        step = self.superstep
        self.superstep += 1
        if self.dead:
            # Traffic touching a downed NIC never crosses the barrier.
            live: list[Message] = []
            for msg in self._pending:
                if msg.source in self.dead or msg.dest in self.dead:
                    self._quarantine(msg, step)
                else:
                    live.append(msg)
            self._pending = live
        plan = self.fault_plan
        if plan is None:
            n = len(self._pending)
            for msg in self._pending:
                key = (msg.source, msg.dest, msg.tag)
                self._queues.setdefault(key, deque()).append(msg)
                self.stats.record_delivered(msg)
                self._record_delivered_obs(msg, step)
                self._observe("deliver", msg, step)
            self._pending.clear()
            return n
        return self._deliver_faulty(plan, step)

    def _record_delivered_obs(self, msg: Message, step: int) -> None:
        obs = self.obs
        if obs.enabled:
            obs.inc("net.messages_delivered")
            obs.inc("net.bytes_delivered", msg.nbytes)
        if self.profile is not None:
            self.profile.record_delivery(step, msg.source, msg.dest, msg.nbytes)

    def _deliver_faulty(self, plan: FaultPlan, step: int) -> int:
        # Stalled ranks: their messages stay pending until a barrier at
        # which the plan lets the rank through.
        held: list[Message] = []
        batch: list[Message] = []
        stalled_ranks: set[int] = set()
        for msg in self._pending:
            if plan.stalled(step, msg.source):
                held.append(msg)
                if msg.source not in stalled_ranks:
                    stalled_ranks.add(msg.source)
                    self.record_fault(step, "stall", msg.source, -1, None, 0)
                self.stats.stalled += 1
            else:
                batch.append(msg)
        self._pending = held

        # Group the surviving batch per channel, preserving send order,
        # so reordering and per-message sequence numbers are well defined.
        channels: dict[tuple[int, int], list[Message]] = {}
        for msg in batch:
            channels.setdefault((msg.source, msg.dest), []).append(msg)

        delivered = 0
        for (source, dest), msgs in channels.items():
            # The delivery schedule comes from the backend-shared
            # helper so the in-process oracle and the multiprocess
            # worker apply byte-identical fault schedules per seed.
            actions, reordered = plan_channel_delivery(
                plan, step, source, dest, len(msgs)
            )
            if reordered:
                self.record_fault(step, "reorder", source, dest, None, len(msgs))
            for act in actions:
                msg = msgs[act.index]
                if act.drop:
                    self.record_fault(step, "drop", source, dest, msg.tag, act.seq)
                    self.stats.record_dropped(msg)
                    if self.obs.enabled:
                        self.obs.inc("net.messages_dropped")
                        self.obs.inc("net.bytes_dropped", msg.nbytes)
                    continue
                if act.corrupt_salt is not None:
                    msg = Message(
                        msg.source,
                        msg.dest,
                        msg.tag,
                        corrupt_payload(msg.payload, act.corrupt_salt),
                    )
                    self.record_fault(step, "corrupt", source, dest, msg.tag, act.seq)
                    self.stats.corrupted += 1
                if act.copies > 1:
                    self.record_fault(
                        step, "duplicate", source, dest, msg.tag, act.seq
                    )
                    self.stats.duplicated += 1
                key = (msg.source, msg.dest, msg.tag)
                for _ in range(act.copies):
                    self._queues.setdefault(key, deque()).append(msg)
                    self.stats.record_delivered(msg)
                    self._record_delivered_obs(msg, step)
                    self._observe("deliver", msg, step)
                    delivered += 1
        return delivered

    # ------------------------------------------------------------------
    # Receives
    # ------------------------------------------------------------------

    def recv(self, dest: int, source: int, tag: Any) -> Any:
        """Receive the next delivered message on ``(source, dest, tag)``."""
        key = (source, dest, tag)
        queue = self._queues.get(key)
        if not queue:
            raise LookupError(
                f"rank {dest}: no delivered message from {source} with tag {tag!r} "
                "(BSP programs may only receive what a previous superstep sent)"
            )
        return queue.popleft().payload

    def probe(self, dest: int, source: int, tag: Any) -> bool:
        """True when a matching delivered message is waiting."""
        queue = self._queues.get((source, dest, tag))
        return bool(queue)

    def drain(self, dest: int, tag: Any) -> list[tuple[int, Any]]:
        """Receive every delivered message for ``dest`` with ``tag``, as
        ``(source, payload)`` pairs in source order."""
        out = []
        for source in range(self.p):
            key = (source, dest, tag)
            queue = self._queues.get(key)
            while queue:
                out.append((source, queue.popleft().payload))
        return out

    def outstanding(self, tags: Any) -> int:
        """Number of pending or delivered-but-unreceived messages whose
        tag is in ``tags`` -- the host-side quiescence check resilient
        protocols use before declaring their channels drained."""
        tags = set(tags)
        n = sum(1 for msg in self._pending if msg.tag in tags)
        for (_, _, tag), queue in self._queues.items():
            if tag in tags:
                n += len(queue)
        return n

    @property
    def idle(self) -> bool:
        """No pending and no undelivered messages remain."""
        return not self._pending and all(not q for q in self._queues.values())
