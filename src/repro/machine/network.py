"""Deterministic message-passing fabric for the SPMD simulator.

Substitutes for the iPSC/860's interconnect (see DESIGN.md).  Messages
are delivered in FIFO order per ``(source, destination, tag)`` channel;
delivery is deterministic because node programs execute in
bulk-synchronous supersteps (:mod:`repro.machine.vm`): everything sent
during superstep ``t`` is available to receives in superstep ``t + 1``.

Byte accounting uses ``numpy`` buffer sizes when available and
``sys.getsizeof`` otherwise, so benchmarks can report traffic volumes.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Message", "Network", "NetworkStats"]


@dataclass(frozen=True, slots=True)
class Message:
    source: int
    dest: int
    tag: Any
    payload: Any

    @property
    def nbytes(self) -> int:
        payload = self.payload
        if isinstance(payload, np.ndarray):
            return payload.nbytes
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        return sys.getsizeof(payload)


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    per_channel: dict[tuple[int, int], int] = field(default_factory=dict)

    def record(self, msg: Message) -> None:
        self.messages += 1
        self.bytes += msg.nbytes
        key = (msg.source, msg.dest)
        self.per_channel[key] = self.per_channel.get(key, 0) + 1


class Network:
    """Point-to-point channels between ``p`` ranks with BSP delivery.

    ``send`` enqueues into the *pending* buffer; :meth:`deliver` (called
    by the VM at superstep barriers) moves pending messages into the
    receivable queues.  ``recv`` raises :class:`LookupError` when no
    matching message has been delivered -- in a correct BSP program that
    is a programming error, not a race.
    """

    def __init__(self, p: int) -> None:
        if p <= 0:
            raise ValueError(f"need at least one rank, got p={p}")
        self.p = p
        self._pending: list[Message] = []
        self._queues: dict[tuple[int, int, Any], deque[Message]] = {}
        self.stats = NetworkStats()

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.p:
            raise ValueError(f"{what} rank {rank} out of range [0, {self.p})")

    def send(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        self._check_rank(source, "source")
        self._check_rank(dest, "destination")
        msg = Message(source, dest, tag, payload)
        self._pending.append(msg)
        self.stats.record(msg)

    def deliver(self) -> int:
        """Barrier: make all pending messages receivable.  Returns the
        number of messages delivered."""
        n = len(self._pending)
        for msg in self._pending:
            key = (msg.source, msg.dest, msg.tag)
            self._queues.setdefault(key, deque()).append(msg)
        self._pending.clear()
        return n

    def recv(self, dest: int, source: int, tag: Any) -> Any:
        """Receive the next delivered message on ``(source, dest, tag)``."""
        key = (source, dest, tag)
        queue = self._queues.get(key)
        if not queue:
            raise LookupError(
                f"rank {dest}: no delivered message from {source} with tag {tag!r} "
                "(BSP programs may only receive what a previous superstep sent)"
            )
        return queue.popleft().payload

    def probe(self, dest: int, source: int, tag: Any) -> bool:
        """True when a matching delivered message is waiting."""
        queue = self._queues.get((source, dest, tag))
        return bool(queue)

    def drain(self, dest: int, tag: Any) -> list[tuple[int, Any]]:
        """Receive every delivered message for ``dest`` with ``tag``, as
        ``(source, payload)`` pairs in source order."""
        out = []
        for source in range(self.p):
            key = (source, dest, tag)
            queue = self._queues.get(key)
            while queue:
                out.append((source, queue.popleft().payload))
        return out

    @property
    def idle(self) -> bool:
        """No pending and no undelivered messages remain."""
        return not self._pending and all(not q for q in self._queues.values())
