"""Keyed LRU caches for access plans and communication schedules.

The paper's algorithm makes *constructing* an access sequence cheap
(O(k) tables), but a runtime replays the same statements: every
superstep of an iterative solver re-derives the same localized element
vectors, the same per-dimension plans, and -- when section bounds are
compile-time constants -- the same communication schedules.  All of
these are pure functions of hashable layout descriptors, so this module
memoizes them:

* :func:`cached_localized_arrays` -- the ``(p, k, extent, alignment,
  section, rank)``-keyed index/slot vectors of
  :func:`repro.distribution.localize.localized_arrays`;
* :func:`cached_array_plan` -- per-dimension :class:`AccessPlan` objects
  keyed on the owning array's :meth:`DistributedArray.descriptor`;
* :func:`cached_comm_schedule` / :func:`cached_comm_schedule_2d` --
  whole communication schedules keyed on both sides' descriptors plus
  the section bounds (name-independent: transfers carry only ranks and
  slots, never array identities).

Cached values are shared across callers, so they must be treated as
immutable -- the vectorized producers already mark their arrays
read-only, and schedules are never mutated after construction (the lazy
per-rank send/receive indexes are idempotent).

Hit/miss counters are kept per cache and surfaced through
:func:`cache_stats`, which :func:`repro.machine.trace.machine_report`
folds into every machine report.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from threading import Lock
from typing import Callable, TypeVar

from ..distribution.array import DistributedArray
from ..distribution.localize import localized_arrays
from ..distribution.section import RegularSection
from ..obs import ambient

__all__ = [
    "PlanCache",
    "cached_localized_arrays",
    "cached_array_plan",
    "cached_comm_schedule",
    "cached_comm_schedule_2d",
    "cache_stats",
    "clear_plan_caches",
    "invalidate_for_p",
]

T = TypeVar("T")


class PlanCache:
    """A small thread-safe LRU mapping with hit/miss accounting.

    Values are computed at most once per resident key; eviction is
    least-recently-used beyond ``maxsize`` entries.  The lock is held
    only around bookkeeping, never around ``compute`` -- concurrent
    misses on the same key may compute twice (both results are
    equivalent; last write wins), which keeps slow plan construction out
    of the critical section.
    """

    def __init__(self, name: str, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._data: OrderedDict = OrderedDict()
        # Per-entry rank-count tags: key -> frozenset of the p values the
        # cached plan was computed for.  ``invalidate_for(p)`` drops every
        # entry tagged with a retired p so a later membership epoch can
        # never be served a stale-p plan (see ``invalidate_for_p``).
        self._ps: dict = {}
        self._lock = Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get_or_compute(self, key, compute: Callable[[], T], ps=()) -> T:
        if os.getpid() != _owner_pid:
            _reset_inherited_state()
        obs = ambient()
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                obs.inc(f"plancache.{self.name}.hits")
                return self._data[key]
            self.misses += 1
        obs.inc(f"plancache.{self.name}.misses")
        with obs.span("plan_compute", cache=self.name):
            value = compute()
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if ps:
                self._ps[key] = frozenset(ps)
            while len(self._data) > self.maxsize:
                evicted, _ = self._data.popitem(last=False)
                self._ps.pop(evicted, None)
                self.evictions += 1
                obs.inc(f"plancache.{self.name}.evictions")
        return value

    def invalidate_for(self, p: int) -> int:
        """Drop every entry whose plan was computed for rank count ``p``
        (by tag when present, falling back to a leading-``p`` key
        component).  Returns the number of entries dropped."""
        dropped = 0
        with self._lock:
            for key in list(self._data):
                tags = self._ps.get(key)
                if tags is None:
                    tags = _ps_from_key(key)
                if p in tags:
                    del self._data[key]
                    self._ps.pop(key, None)
                    dropped += 1
            self.invalidations += dropped
        if dropped:
            ambient().inc(f"plancache.{self.name}.invalidations", dropped)
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._ps.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


def _ps_from_key(key) -> frozenset:
    """Fallback rank-count tags for untagged entries: every int in the
    key's leading component (all cached_* keys lead with their p
    values; see the key layouts below)."""
    if isinstance(key, tuple) and key:
        head = key[0]
        if isinstance(head, int):
            return frozenset((head,))
        if isinstance(head, tuple) and all(isinstance(x, int) for x in head):
            return frozenset(head)
    return frozenset()


_localized_cache = PlanCache("localized_arrays", maxsize=4096)
_plan_cache = PlanCache("array_plans", maxsize=4096)
_schedule_cache = PlanCache("comm_schedules", maxsize=512)
_schedule2d_cache = PlanCache("comm_schedules_2d", maxsize=256)

_CACHES = (_localized_cache, _plan_cache, _schedule_cache, _schedule2d_cache)

# ---------------------------------------------------------------------------
# Fork/spawn hygiene
# ---------------------------------------------------------------------------
#
# The multiprocess backend (repro.machine.mp) forks worker processes while
# the driver may be mid-``get_or_compute``: a child would then inherit a
# *held* lock (instant deadlock on its first cache access) plus the parent's
# cached plans and hit/miss counters, which would double-count in any
# observability dump the child writes.  Two layers of defence:
#
# * ``os.register_at_fork(after_in_child=...)`` -- the normal path: every
#   fork re-arms fresh locks and empty caches in the child.
# * a pid check in ``get_or_compute`` -- the backstop for processes created
#   without running the fork hooks (exotic embedders, pre-registration
#   forks).  Spawned children re-import this module and need neither.

_owner_pid = os.getpid()


def _reset_inherited_state() -> None:
    """Give this process pristine caches: fresh (unheld) locks, no
    inherited entries, zeroed counters."""
    global _owner_pid
    _owner_pid = os.getpid()
    for cache in _CACHES:
        cache._lock = Lock()
        cache._data = OrderedDict()
        cache._ps = {}
        cache.hits = 0
        cache.misses = 0
        cache.evictions = 0
        cache.invalidations = 0


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_inherited_state)


def cached_localized_arrays(p, k, extent, alignment, section, rank):
    """Memoized :func:`repro.distribution.localize.localized_arrays`.

    The returned ``(indices, slots)`` vectors are read-only and shared;
    copy before mutating.
    """
    key = (p, k, extent, alignment, section, rank)
    return _localized_cache.get_or_compute(
        key,
        lambda: localized_arrays(p, k, extent, alignment, section, rank),
        ps=(p,),
    )


def cached_array_plan(
    array: DistributedArray, dim: int, section: RegularSection, rank: int
):
    """Memoized :func:`repro.runtime.address.make_array_plan`, keyed on
    ``(p, layout descriptor)`` -- not the array's identity/name.  The
    explicit leading rank count makes membership epochs first-class in
    the key space: :func:`invalidate_for_p` can drop a retired epoch's
    plans without parsing descriptors."""
    from .address import make_array_plan

    p = array.grid.size
    key = (p, array.descriptor(), dim, section, rank)
    return _plan_cache.get_or_compute(
        key, lambda: make_array_plan(array, dim, section, rank), ps=(p,)
    )


def cached_comm_schedule(
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
):
    """Memoized :func:`repro.runtime.commsets.compute_comm_schedule`.

    Keyed on ``((p_a, p_b), layout descriptors, section bounds)`` -- two
    statements over identically mapped arrays share one schedule object
    regardless of array names, and both sides' rank counts are explicit
    so a membership change can invalidate exactly the schedules that
    mention a retired p (cross-p migration schedules included).  Callers
    must treat the schedule as immutable (every executor already does).
    """
    from .commsets import compute_comm_schedule

    ps = (a.grid.size, b.grid.size)
    key = (ps, a.descriptor(), sec_a, b.descriptor(), sec_b)
    return _schedule_cache.get_or_compute(
        key, lambda: compute_comm_schedule(a, sec_a, b, sec_b), ps=ps
    )


def cached_comm_schedule_2d(
    a: DistributedArray,
    secs_a: tuple[RegularSection, RegularSection],
    b: DistributedArray,
    secs_b: tuple[RegularSection, RegularSection],
    rhs_dims: tuple[int, int] = (0, 1),
):
    """Memoized :func:`repro.runtime.commsets2d.compute_comm_schedule_2d`
    (tensor-product 2-D schedules, including the transpose pairing);
    keyed with both sides' rank counts explicit, as in
    :func:`cached_comm_schedule`."""
    from .commsets2d import compute_comm_schedule_2d

    ps = (a.grid.size, b.grid.size)
    key = (ps, a.descriptor(), tuple(secs_a), b.descriptor(), tuple(secs_b), rhs_dims)
    return _schedule2d_cache.get_or_compute(
        key,
        lambda: compute_comm_schedule_2d(a, tuple(secs_a), b, tuple(secs_b), rhs_dims),
        ps=ps,
    )


def cache_stats() -> dict:
    """Per-cache ``{entries, maxsize, hits, misses}`` counters."""
    return {cache.name: cache.stats() for cache in _CACHES}


def invalidate_for_p(p: int) -> int:
    """Drop every cached plan/schedule computed for rank count ``p``
    across all caches; returns the total entries dropped.

    The elastic runtime (:mod:`repro.runtime.elastic`) calls this when a
    membership epoch retires so a later epoch that happens to reuse the
    same rank count starts from freshly keyed plans -- a retired epoch
    can never serve a stale plan because the keys carry p explicitly.
    """
    return sum(cache.invalidate_for(p) for cache in _CACHES)


def clear_plan_caches() -> None:
    """Empty every plan cache and reset its counters (tests and
    benchmarks call this between timed configurations)."""
    for cache in _CACHES:
        cache.clear()
