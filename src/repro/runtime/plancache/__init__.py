"""Keyed, sharded caches for access plans and communication schedules.

The paper's algorithm makes *constructing* an access sequence cheap
(O(k) tables), but a runtime replays the same statements: every
superstep of an iterative solver re-derives the same localized element
vectors, the same per-dimension plans, and -- when section bounds are
compile-time constants -- the same communication schedules.  All of
these are pure functions of hashable layout descriptors, so this package
memoizes them:

* :func:`cached_localized_arrays` -- the ``(p, k, extent, alignment,
  section, rank)``-keyed index/slot vectors of
  :func:`repro.distribution.localize.localized_arrays`;
* :func:`cached_array_plan` -- per-dimension :class:`AccessPlan` objects
  keyed on the owning array's :meth:`DistributedArray.descriptor`;
* :func:`cached_comm_schedule` / :func:`cached_comm_schedule_2d` --
  whole communication schedules keyed on both sides' descriptors plus
  the section bounds (name-independent: transfers carry only ranks and
  slots, never array identities).

The cache class itself is :class:`~repro.runtime.plancache.sharded.ShardedPlanCache`
(per-shard locks, TTL+LFU admission, size bounds, single-flight
coalescing of identical in-flight keys) -- promoted to a package so the
long-running planning service (:mod:`repro.service`) can share it; see
``sharded.py`` for the concurrency model.  The global caches here use a
handful of shards each; :func:`configure_plan_caches` rebuilds them with
different shard counts / TTLs for service and benchmark use.

Cached values are shared across callers, so they must be treated as
immutable -- the vectorized producers already mark their arrays
read-only, and schedules are never mutated after construction (the lazy
per-rank send/receive indexes are idempotent).

Hit/miss counters are kept per cache and surfaced through
:func:`cache_stats`, which :func:`repro.machine.trace.machine_report`
folds into every machine report; :func:`reset_cache_stats` zeroes every
counter without dropping cached plans (windowed rates in week-long
processes), and :func:`evict_expired` returns expired entries' memory.
"""

from __future__ import annotations

import os

from ...distribution.array import DistributedArray
from ...distribution.localize import localized_arrays
from ...distribution.section import RegularSection
from .sharded import INT64_MAX, PlanCache, ShardedPlanCache, _ps_from_key

__all__ = [
    "PlanCache",
    "ShardedPlanCache",
    "INT64_MAX",
    "cached_localized_arrays",
    "cached_array_plan",
    "cached_comm_schedule",
    "cached_comm_schedule_2d",
    "cache_stats",
    "clear_plan_caches",
    "configure_plan_caches",
    "evict_expired",
    "invalidate_for_p",
    "reset_cache_stats",
]

# ---------------------------------------------------------------------------
# Fork/spawn hygiene
# ---------------------------------------------------------------------------
#
# The multiprocess backend (repro.machine.mp) forks worker processes while
# the driver may be mid-``get_or_compute``: a child would then inherit a
# *held* lock (instant deadlock on its first cache access) plus the parent's
# cached plans and hit/miss counters, which would double-count in any
# observability dump the child writes.  Two layers of defence:
#
# * ``os.register_at_fork(after_in_child=...)`` -- the normal path: every
#   fork re-arms fresh locks and empty caches in the child.
# * ``_pid_guard`` installed on every global cache -- the backstop for
#   processes created without running the fork hooks (exotic embedders,
#   pre-registration forks).  Spawned children re-import this package and
#   need neither.

_owner_pid = os.getpid()


def _pid_guard() -> None:
    if os.getpid() != _owner_pid:
        _reset_inherited_state()


def _reset_inherited_state() -> None:
    """Give this process pristine caches: fresh (unheld) locks, no
    inherited entries, zeroed counters."""
    global _owner_pid
    _owner_pid = os.getpid()
    for cache in _CACHES:
        cache._reset_for_new_process()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_inherited_state)


#: Default shard counts: sized so a multi-threaded service sees little
#: lock contention while single-threaded runtime use pays nothing.
_DEFAULT_SHAPES = {
    "localized_arrays": dict(maxsize=4096, shards=8),
    "array_plans": dict(maxsize=4096, shards=8),
    "comm_schedules": dict(maxsize=512, shards=4),
    "comm_schedules_2d": dict(maxsize=256, shards=4),
}


def _build_caches(shards: int | None = None, ttl_s: float | None = None,
                  maxsize: int | None = None) -> tuple:
    return tuple(
        ShardedPlanCache(
            name,
            maxsize if maxsize is not None else shape["maxsize"],
            shards=shards if shards is not None else shape["shards"],
            ttl_s=ttl_s,
            guard=_pid_guard,
        )
        for name, shape in _DEFAULT_SHAPES.items()
    )


_CACHES = _build_caches()
(_localized_cache, _plan_cache, _schedule_cache, _schedule2d_cache) = _CACHES


def configure_plan_caches(
    shards: int | None = None,
    ttl_s: float | None = None,
    maxsize: int | None = None,
) -> None:
    """Rebuild the global plan caches with new shard counts / TTL /
    size bounds (dropping all current entries).  The planning server
    calls this at boot from its ``--shards``/``--ttl-s`` knobs; the
    service benchmark sweeps shard counts through it.  ``None`` keeps a
    parameter at its default."""
    global _CACHES, _localized_cache, _plan_cache, _schedule_cache
    global _schedule2d_cache
    _CACHES = _build_caches(shards=shards, ttl_s=ttl_s, maxsize=maxsize)
    (_localized_cache, _plan_cache, _schedule_cache, _schedule2d_cache) = _CACHES


def cached_localized_arrays(p, k, extent, alignment, section, rank):
    """Memoized :func:`repro.distribution.localize.localized_arrays`.

    The returned ``(indices, slots)`` vectors are read-only and shared;
    copy before mutating.
    """
    key = (p, k, extent, alignment, section, rank)
    return _localized_cache.get_or_compute(
        key,
        lambda: localized_arrays(p, k, extent, alignment, section, rank),
        ps=(p,),
    )


def cached_array_plan(
    array: DistributedArray, dim: int, section: RegularSection, rank: int
):
    """Memoized :func:`repro.runtime.address.make_array_plan`, keyed on
    ``(p, layout descriptor)`` -- not the array's identity/name.  The
    explicit leading rank count makes membership epochs first-class in
    the key space: :func:`invalidate_for_p` can drop a retired epoch's
    plans without parsing descriptors."""
    from ..address import make_array_plan

    p = array.grid.size
    key = (p, array.descriptor(), dim, section, rank)
    return _plan_cache.get_or_compute(
        key, lambda: make_array_plan(array, dim, section, rank), ps=(p,)
    )


def cached_comm_schedule(
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
):
    """Memoized :func:`repro.runtime.commsets.compute_comm_schedule`.

    Keyed on ``((p_a, p_b), layout descriptors, section bounds)`` -- two
    statements over identically mapped arrays share one schedule object
    regardless of array names, and both sides' rank counts are explicit
    so a membership change can invalidate exactly the schedules that
    mention a retired p (cross-p migration schedules included).  Callers
    must treat the schedule as immutable (every executor already does).
    """
    from ..commsets import compute_comm_schedule

    ps = (a.grid.size, b.grid.size)
    key = (ps, a.descriptor(), sec_a, b.descriptor(), sec_b)
    return _schedule_cache.get_or_compute(
        key, lambda: compute_comm_schedule(a, sec_a, b, sec_b), ps=ps
    )


def cached_comm_schedule_2d(
    a: DistributedArray,
    secs_a: tuple[RegularSection, RegularSection],
    b: DistributedArray,
    secs_b: tuple[RegularSection, RegularSection],
    rhs_dims: tuple[int, int] = (0, 1),
):
    """Memoized :func:`repro.runtime.commsets2d.compute_comm_schedule_2d`
    (tensor-product 2-D schedules, including the transpose pairing);
    keyed with both sides' rank counts explicit, as in
    :func:`cached_comm_schedule`."""
    from ..commsets2d import compute_comm_schedule_2d

    ps = (a.grid.size, b.grid.size)
    key = (ps, a.descriptor(), tuple(secs_a), b.descriptor(), tuple(secs_b), rhs_dims)
    return _schedule2d_cache.get_or_compute(
        key,
        lambda: compute_comm_schedule_2d(a, tuple(secs_a), b, tuple(secs_b), rhs_dims),
        ps=ps,
    )


def cache_stats() -> dict:
    """Per-cache ``{entries, maxsize, shards, hits, misses, evictions,
    invalidations, expirations, coalesced}`` counters."""
    return {cache.name: cache.stats() for cache in _CACHES}


def invalidate_for_p(p: int) -> int:
    """Drop every cached plan/schedule computed for rank count ``p``
    across all caches; returns the total entries dropped.

    The elastic runtime (:mod:`repro.runtime.elastic`) calls this when a
    membership epoch retires so a later epoch that happens to reuse the
    same rank count starts from freshly keyed plans -- a retired epoch
    can never serve a stale plan because the keys carry p explicitly.
    """
    return sum(cache.invalidate_for(p) for cache in _CACHES)


def evict_expired() -> int:
    """Drop every expired entry across all plan caches (no-op unless a
    TTL was configured); returns the total dropped.  Long-running
    processes call this periodically so TTL actually returns memory
    instead of merely gating hits."""
    return sum(cache.evict_expired() for cache in _CACHES)


def reset_cache_stats() -> None:
    """Zero every cache's hit/miss/eviction counters *without* dropping
    any cached plan -- windowed rate reporting for long-running
    processes (the planning server's ``stats`` op exposes this)."""
    for cache in _CACHES:
        cache.reset_stats()


def clear_plan_caches() -> None:
    """Empty every plan cache and reset its counters (tests and
    benchmarks call this between timed configurations)."""
    for cache in _CACHES:
        cache.clear()
