"""The concurrency-safe sharded cache behind the plan caches.

:class:`ShardedPlanCache` generalizes the original single-lock LRU
``PlanCache`` for long-running, many-client use (the planning service of
:mod:`repro.service` keeps one process hot for days):

* **Sharding.**  Keys hash onto ``shards`` independent shards, each with
  its own lock and its own slice of the size budget, so concurrent
  lookups of unrelated plans never contend on one lock.

* **TTL + LFU admission.**  Entries optionally expire ``ttl_s`` seconds
  after insertion (monotonic clock, injectable for tests).  When a shard
  overflows its budget, eviction prefers already-expired entries, then
  the least-frequently-used entry, ties broken least-recently-used --
  a steady diet of one-off keys cannot flush the hot working set.

* **Coalescing.**  Concurrent misses on the *same* key compute once: the
  first caller computes while the rest park on an event and share the
  result (counted in ``coalesced``).  A compute that raises propagates
  the same exception to every wave of waiters and leaves no residue, so
  the next caller retries cleanly.

* **Stale reads.**  :meth:`peek` can return an expired entry without
  touching the hit/miss counters -- the planning service's degradation
  ladder serves these (tagged ``degraded``) when a shard's circuit
  breaker is open or the compute queue is saturated.  Plans are pure
  functions of their keys, so a stale entry is still bit-identical to a
  fresh computation; "stale" only means it outlived its freshness
  window.

* **Overflow-safe, resettable stats.**  Counters accumulate in Python
  integers (which cannot overflow) and are clamped to the signed-64-bit
  range on export for fixed-width consumers; :meth:`reset_stats` zeroes
  them *without* dropping any cached plan, so a week-long process can
  emit windowed rates.

Locks are held only around bookkeeping, never around ``compute`` -- the
same discipline as the original cache, now with single-flight instead of
duplicate computes.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from threading import Event, Lock
from typing import Callable, TypeVar

from ...obs import ambient

__all__ = ["ShardedPlanCache", "PlanCache", "INT64_MAX"]

T = TypeVar("T")

#: Export clamp: stats snapshots never exceed what an int64 consumer
#: (struct-packed snapshot metadata, downstream dashboards) can hold.
INT64_MAX = (1 << 63) - 1


def _clamp64(value: int) -> int:
    return value if value <= INT64_MAX else INT64_MAX


@dataclass(slots=True)
class _Entry:
    value: object
    freq: int  # accesses since insertion (LFU weight)
    expires_at: float | None  # monotonic deadline, None = never


class _Flight:
    """One in-progress compute that concurrent misses coalesce onto."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = Event()
        self.value: object = None
        self.error: BaseException | None = None


class _Shard:
    """One independently locked slice of the key space."""

    __slots__ = ("lock", "data", "ps", "inflight")

    def __init__(self) -> None:
        self.lock = Lock()
        self.data: OrderedDict[object, _Entry] = OrderedDict()
        self.ps: dict[object, frozenset] = {}
        self.inflight: dict[object, _Flight] = {}


class _Stats:
    """Unbounded counters with a lock of their own (shared by shards)."""

    __slots__ = (
        "lock", "hits", "misses", "evictions", "invalidations",
        "expirations", "coalesced",
    )

    def __init__(self) -> None:
        self.lock = Lock()
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.expirations = 0
        self.coalesced = 0

    def add(self, field: str, n: int = 1) -> None:
        with self.lock:
            setattr(self, field, getattr(self, field) + n)


class ShardedPlanCache:
    """Sharded, TTL/LFU-bounded, coalescing map of plan keys to plans.

    ``maxsize`` bounds the *total* entry count (split evenly across
    shards); ``ttl_s=None`` disables expiry.  ``guard`` is an optional
    pre-access hook (the global plan caches install the fork/pid guard
    through it).  The single-shard default preserves the original
    ``PlanCache`` semantics exactly.
    """

    def __init__(
        self,
        name: str,
        maxsize: int,
        shards: int = 1,
        ttl_s: float | None = None,
        guard: Callable[[], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive or None, got {ttl_s}")
        self.name = name
        self.maxsize = maxsize
        self.shards = shards
        self.ttl_s = ttl_s
        self._guard = guard
        self._clock = clock
        # Per-shard budget: ceil so the total never undershoots maxsize.
        self._shard_max = max(1, -(-maxsize // shards))
        self._shards = [_Shard() for _ in range(shards)]
        self._stats = _Stats()

    # -- counters (attribute compatibility with the original cache) ----

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    @property
    def evictions(self) -> int:
        return self._stats.evictions

    @property
    def invalidations(self) -> int:
        return self._stats.invalidations

    @property
    def expirations(self) -> int:
        return self._stats.expirations

    @property
    def coalesced(self) -> int:
        return self._stats.coalesced

    # Aggregated read-only views kept for white-box tests and debugging.

    @property
    def _data(self) -> dict:
        out: dict = {}
        for shard in self._shards:
            with shard.lock:
                out.update(shard.data)
        return {k: e.value for k, e in out.items()}

    @property
    def _ps(self) -> dict:
        out: dict = {}
        for shard in self._shards:
            with shard.lock:
                out.update(shard.ps)
        return out

    def __len__(self) -> int:
        return sum(len(shard.data) for shard in self._shards)

    def _shard_of(self, key) -> _Shard:
        return self._shards[hash(key) % self.shards]

    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def _expiry(self) -> float | None:
        return None if self.ttl_s is None else self._clock() + self.ttl_s

    # -- the hot path --------------------------------------------------

    def get_or_compute(self, key, compute: Callable[[], T], ps=()) -> T:
        """Return the cached value for ``key``, computing it at most once
        across all concurrent callers (single-flight).  Expired entries
        are recomputed (and counted in ``expirations``) but remain
        readable through :meth:`peek` until the fresh value lands."""
        if self._guard is not None:
            self._guard()
        obs = ambient()
        shard = self._shard_of(key)
        while True:
            with shard.lock:
                entry = shard.data.get(key)
                if entry is not None and not self._expired(entry):
                    entry.freq += 1
                    shard.data.move_to_end(key)
                    self._stats.add("hits")
                    obs.inc(f"plancache.{self.name}.hits")
                    return entry.value
                flight = shard.inflight.get(key)
                if flight is None:
                    if entry is not None:  # present but expired
                        self._stats.add("expirations")
                        obs.inc(f"plancache.{self.name}.expirations")
                    shard.inflight[key] = flight = _Flight()
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.done.wait()
                if flight.error is not None:
                    raise flight.error
                self._stats.add("coalesced")
                obs.inc(f"plancache.{self.name}.coalesced")
                return flight.value  # type: ignore[return-value]
            break

        # Leader: compute outside every lock, then publish.
        self._stats.add("misses")
        obs.inc(f"plancache.{self.name}.misses")
        try:
            with obs.span("plan_compute", cache=self.name):
                value = compute()
        except BaseException as exc:
            flight.error = exc
            with shard.lock:
                shard.inflight.pop(key, None)
            flight.done.set()
            raise
        self._insert(shard, key, value, ps, obs)
        flight.value = value
        with shard.lock:
            shard.inflight.pop(key, None)
        flight.done.set()
        return value

    def _insert(self, shard: _Shard, key, value, ps, obs, freq: int = 1) -> None:
        with shard.lock:
            shard.data[key] = _Entry(value, max(1, freq), self._expiry())
            shard.data.move_to_end(key)
            if ps:
                shard.ps[key] = frozenset(ps)
            else:
                shard.ps.pop(key, None)
            evicted = 0
            while len(shard.data) > self._shard_max:
                victim = self._pick_victim(shard)
                del shard.data[victim]
                shard.ps.pop(victim, None)
                evicted += 1
        if evicted:
            self._stats.add("evictions", evicted)
            obs.inc(f"plancache.{self.name}.evictions", evicted)

    def _pick_victim(self, shard: _Shard):
        """Choose the entry to evict (shard lock held): an expired entry
        if any exists (oldest first), else minimum freq, ties broken by
        LRU order -- the TTL+LFU admission policy."""
        best_key = None
        best_freq = None
        for k, entry in shard.data.items():  # LRU -> MRU order
            if self._expired(entry):
                return k
            if best_freq is None or entry.freq < best_freq:
                best_key, best_freq = k, entry.freq
        return best_key

    # -- cold paths ----------------------------------------------------

    def peek(self, key, allow_stale: bool = True, touch: bool = False):
        """Return ``(found, value)`` without triggering a recompute.
        ``allow_stale=True`` also returns expired entries -- the
        degraded-serving path of the planning service.  ``touch=True``
        counts a fresh find as a hit and bumps its LFU/LRU standing
        (the service's fast path); stale finds are never touched."""
        shard = self._shard_of(key)
        with shard.lock:
            entry = shard.data.get(key)
            if entry is None or (not allow_stale and self._expired(entry)):
                return False, None
            if touch and not self._expired(entry):
                entry.freq += 1
                shard.data.move_to_end(key)
                self._stats.add("hits")
                ambient().inc(f"plancache.{self.name}.hits")
            return True, entry.value

    def put(self, key, value, ps=(), freq: int = 1) -> None:
        """Insert ``value`` directly (snapshot warm-start); subject to
        the same admission/eviction policy as computed entries.
        ``freq`` seeds the LFU weight so restored hot entries keep their
        standing against the cold ones behind them."""
        if self._guard is not None:
            self._guard()
        self._insert(self._shard_of(key), key, value, ps, ambient(), freq=freq)

    def hot_entries(self, limit: int | None = None) -> list[tuple]:
        """``(key, value, freq)`` triples, hottest (highest-freq) first,
        skipping expired entries -- what the snapshot writer persists."""
        out: list[tuple] = []
        for shard in self._shards:
            with shard.lock:
                for k, entry in shard.data.items():
                    if not self._expired(entry):
                        out.append((k, entry.value, entry.freq))
        out.sort(key=lambda t: -t[2])
        return out if limit is None else out[:limit]

    def evict_expired(self) -> int:
        """Drop every expired entry now (long-running processes call this
        periodically so TTL actually returns memory); returns the count."""
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                dead = [k for k, e in shard.data.items() if self._expired(e)]
                for k in dead:
                    del shard.data[k]
                    shard.ps.pop(k, None)
                dropped += len(dead)
        if dropped:
            self._stats.add("expirations", dropped)
            self._stats.add("evictions", dropped)
            ambient().inc(f"plancache.{self.name}.evictions", dropped)
        return dropped

    def invalidate_for(self, p: int) -> int:
        """Drop every entry whose plan was computed for rank count ``p``
        (by tag when present, falling back to a leading-``p`` key
        component).  Returns the number of entries dropped."""
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                for key in list(shard.data):
                    tags = shard.ps.get(key)
                    if tags is None:
                        tags = _ps_from_key(key)
                    if p in tags:
                        del shard.data[key]
                        shard.ps.pop(key, None)
                        dropped += 1
        if dropped:
            self._stats.add("invalidations", dropped)
            ambient().inc(f"plancache.{self.name}.invalidations", dropped)
        return dropped

    def clear(self) -> None:
        """Empty the cache and zero its counters."""
        for shard in self._shards:
            with shard.lock:
                shard.data.clear()
                shard.ps.clear()
        self._stats.reset()

    def reset_stats(self) -> None:
        """Zero the counters *without* dropping any cached plan."""
        self._stats.reset()

    def _reset_for_new_process(self) -> None:
        """Fork hygiene: fresh (unheld) locks, no inherited entries or
        in-flight computes, zeroed counters."""
        self._shards = [_Shard() for _ in range(self.shards)]
        self._stats = _Stats()

    def stats(self) -> dict:
        s = self._stats
        with s.lock:
            return {
                "entries": len(self),
                "maxsize": self.maxsize,
                "shards": self.shards,
                "hits": _clamp64(s.hits),
                "misses": _clamp64(s.misses),
                "evictions": _clamp64(s.evictions),
                "invalidations": _clamp64(s.invalidations),
                "expirations": _clamp64(s.expirations),
                "coalesced": _clamp64(s.coalesced),
            }


def _ps_from_key(key) -> frozenset:
    """Fallback rank-count tags for untagged entries: every int in the
    key's leading component (all cached_* keys lead with their p
    values; see the key layouts in the package ``__init__``)."""
    if isinstance(key, tuple) and key:
        head = key[0]
        if isinstance(head, int):
            return frozenset((head,))
        if isinstance(head, tuple) and all(isinstance(x, int) for x in head):
            return frozenset(head)
    return frozenset()


#: Backward-compatible name: a single-shard :class:`ShardedPlanCache`
#: behaves exactly like the original lock-per-cache LRU ``PlanCache``
#: (plus single-flight coalescing instead of duplicate computes).
PlanCache = ShardedPlanCache
