"""Emit the paper's Figure 8 node code as C source.

An HPF compiler does not interpret ΔM tables -- it *emits node code*
that walks them.  This module produces that C, faithful to the paper's
Figure 8 fragments (shapes (a)-(d)) for the statement
``A(l:u:s) = value``, with the computed tables embedded as static
initializers when the distribution parameters are compile-time
constants (the paper's Section 6.1 scenario), or with a call to the
runtime constructor when they are not.

The emitted code is self-contained C89 (plus a ``main`` harness option)
so it can be eyeballed against the paper or compiled elsewhere; the
Python test suite checks its structure and -- via a tiny C interpreter
shim -- its address stream.

Beyond the eyeballable fragments, this module also emits *library*
translation units for the compiled-kernel subsystem
(:mod:`repro.runtime.native`): :func:`emit_runtime_kernels` produces the
generic table-driven node-code shapes plus the ΔM-driven pack/unpack
(gather/scatter) loops with ``extern`` entry points, and
:func:`emit_timing_library` wraps one specialized plan's node code in a
natively timed entry point.  Both are ``-fPIC``-able C99 with no
dependencies beyond libc, built and cached by
:mod:`repro.runtime.native.build`.
"""

from __future__ import annotations

from .address import AccessPlan

__all__ = [
    "EMITTER_VERSION",
    "KERNELS_ABI",
    "emit_node_code",
    "emit_harness",
    "emit_timing_harness",
    "emit_runtime_kernels",
    "emit_timing_library",
]

#: Version of the emitted C.  Part of every native-cache descriptor hash
#: (:mod:`repro.runtime.native.build`), so changing any emitter output
#: MUST bump this -- stale cached .so files would otherwise keep serving
#: the old code.
EMITTER_VERSION = 1

_HEADERS = {
    "a": "shape (a): cycle the table index with mod (Figure 8(a))",
    "b": "shape (b): compare-and-reset (Figure 8(b))",
    "c": "shape (c): for loop + goto done (Figure 8(c))",
    "d": "shape (d): two-table lookup by local offset (Figure 8(d))",
}


def _static_int_array(name: str, values) -> str:
    body = ", ".join(str(v) for v in values)
    return f"static const long {name}[{max(len(values), 1)}] = {{{body}}};"


def emit_node_code(plan: AccessPlan, shape: str, value: float = 100.0) -> str:
    """C function ``node_code(double *A)`` for one processor's share of
    ``A(l:u:s) = value`` using the given Figure 8 shape."""
    if shape not in _HEADERS:
        raise ValueError(f"unknown shape {shape!r}; choose from {sorted(_HEADERS)}")
    if plan.is_empty:
        return (
            f"/* {_HEADERS[shape]} -- this processor owns no section elements */\n"
            "void node_code(double *A) { (void)A; }\n"
        )
    if shape == "d" and plan.start_offset is None:
        raise ValueError("shape 'd' needs offset-indexed tables (identity alignment)")

    lines = [f"/* {_HEADERS[shape]} */"]
    lines.append(f"#define STARTMEM {plan.start_local}")
    lines.append(f"#define LASTMEM  {plan.last_local}")
    lines.append(f"#define LENGTH   {plan.length}")
    if shape == "d":
        lines.append(f"#define STARTOFFSET {plan.start_offset}")
        lines.append(_static_int_array("deltaM", plan.delta_m_by_offset))
        lines.append(_static_int_array("NextOffset", plan.next_offset))
    else:
        lines.append(_static_int_array("deltaM", plan.delta_m))
    lines.append("")
    lines.append("void node_code(double *A)")
    lines.append("{")
    if shape == "a":
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i = 0;",
            "    while (base <= A + LASTMEM) {",
            f"        *base = {value};",
            "        base += deltaM[i];",
            "        i = (i + 1) % LENGTH;",
            "    }",
        ])
    elif shape == "b":
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i = 0;",
            "    while (base <= A + LASTMEM) {",
            f"        *base = {value};",
            "        base += deltaM[i++];",
            "        if (i == LENGTH) i = 0;",
            "    }",
        ])
    elif shape == "c":
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i;",
            "    while (1) {",
            "        for (i = 0; i < LENGTH; i++) {",
            f"            *base = {value};",
            "            base += deltaM[i];",
            "            if (base > A + LASTMEM) goto done;",
            "        }",
            "    }",
            "done: ;",
        ])
    else:  # shape == "d"
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i = STARTOFFSET;",
            "    while (base <= A + LASTMEM) {",
            f"        *base = {value};",
            "        base += deltaM[i];",
            "        i = NextOffset[i];",
            "    }",
        ])
    lines.append("}")
    return "\n".join(lines) + "\n"


def emit_harness(plan: AccessPlan, shape: str, memory_size: int,
                 value: float = 100.0) -> str:
    """Complete C program: the node code plus a ``main`` that prints the
    written addresses in order (one per line) -- the address stream the
    tests compare against the Python shapes."""
    node = emit_node_code(plan, shape, value)
    return (
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n\n"
        + node
        + "\n"
        "int main(void)\n"
        "{\n"
        f"    double *A = calloc({memory_size}, sizeof(double));\n"
        "    long i;\n"
        "    node_code(A);\n"
        f"    for (i = 0; i < {memory_size}; i++)\n"
        f"        if (A[i] == {value}) printf(\"%ld\\n\", i);\n"
        "    free(A);\n"
        "    return 0;\n"
        "}\n"
    )


def emit_timing_harness(plan: AccessPlan, shape: str, memory_size: int,
                        value: float = 100.0) -> str:
    """C program that times ``node_code`` and prints the best
    per-invocation microseconds.

    ``argv[1]`` chooses the repetition count (default 1000); the minimum
    over repetitions is printed with 3 decimals -- the same min-of-N
    discipline the Python timers use.  This is the closest this
    reproduction gets to the paper's platform: the emitted Figure 8
    code, compiled by a real C compiler, timed natively.
    """
    node = emit_node_code(plan, shape, value)
    return (
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n"
        "#include <time.h>\n\n"
        + node
        + "\n"
        "static double now_us(void)\n"
        "{\n"
        "    struct timespec ts;\n"
        "    clock_gettime(CLOCK_MONOTONIC, &ts);\n"
        "    return ts.tv_sec * 1e6 + ts.tv_nsec * 1e-3;\n"
        "}\n\n"
        "int main(int argc, char **argv)\n"
        "{\n"
        "    long reps = argc > 1 ? atol(argv[1]) : 1000;\n"
        f"    double *A = calloc({memory_size}, sizeof(double));\n"
        "    double best = 1e30;\n"
        "    long r;\n"
        "    node_code(A); /* warm up */\n"
        "    for (r = 0; r < reps; r++) {\n"
        "        double t0 = now_us();\n"
        "        node_code(A);\n"
        "        double dt = now_us() - t0;\n"
        "        if (dt < best) best = dt;\n"
        "    }\n"
        "    printf(\"%.3f\\n\", best);\n"
        "    free(A);\n"
        "    return 0;\n"
        "}\n"
    )


#: Generic runtime kernels: the four Figure 8 node-code shapes with the
#: ΔM tables passed at run time (the paper's Section 6.1 "runtime
#: constructor" scenario), plus the ΔM-driven pack/unpack loops behind
#: distribute/collect and the resilient exchange.  ``long`` matches
#: NumPy's int64 on every LP64 platform the repo targets; the builder
#: rejects others.  Each fill returns the number of elements written so
#: the Python wrappers can preserve the interpreter shapes' contract.
_RUNTIME_KERNELS_C = r"""
/* Generic access-sequence kernels (Figure 8 shapes + pack/unpack).
 * Table-driven: distribution parameters arrive as arguments, so one
 * shared library serves every plan.  Emitted by repro.runtime.emit_c
 * (EMITTER_VERSION pins the cache key). */

long repro_fill_a(double *A, double value, long start, long last,
                  const long *deltaM, long length)
{
    double *base = A + start;
    double *end = A + last;
    long i = 0, written = 0;
    while (base <= end) {
        *base = value;
        written++;
        base += deltaM[i];
        i = (i + 1) % length;
    }
    return written;
}

long repro_fill_b(double *A, double value, long start, long last,
                  const long *deltaM, long length)
{
    double *base = A + start;
    double *end = A + last;
    long i = 0, written = 0;
    while (base <= end) {
        *base = value;
        written++;
        base += deltaM[i++];
        if (i == length) i = 0;
    }
    return written;
}

long repro_fill_c(double *A, double value, long start, long last,
                  const long *deltaM, long length)
{
    double *base = A + start;
    double *end = A + last;
    long i, written = 0;
    while (1) {
        for (i = 0; i < length; i++) {
            *base = value;
            written++;
            base += deltaM[i];
            if (base > end) goto done;
        }
    }
done:
    return written;
}

long repro_fill_d(double *A, double value, long start, long last,
                  const long *deltaM, const long *nextOffset,
                  long startOffset)
{
    double *base = A + start;
    double *end = A + last;
    long i = startOffset, written = 0;
    while (base <= end) {
        *base = value;
        written++;
        base += deltaM[i];
        i = nextOffset[i];
    }
    return written;
}

/* Descending traversal (negative gaps, start >= last) -- the
 * negative-stride analogue of shape (b). */
long repro_fill_desc(double *A, double value, long start, long last,
                     const long *deltaM, long length)
{
    double *base = A + start;
    double *end = A + last;
    long i = 0, written = 0;
    while (base >= end) {
        *base = value;
        written++;
        base += deltaM[i++];
        if (i == length) i = 0;
    }
    return written;
}

/* Fancy-indexed store over a materialized address vector (shape (v)
 * and the multidimensional execute_fill fast path). */
void repro_fill_indexed(double *A, const long *idx, long n, double value)
{
    long t;
    for (t = 0; t < n; t++)
        A[idx[t]] = value;
}

/* Pack: gather section elements into a contiguous send buffer. */
void repro_gather_f64(double *dst, const double *src, const long *idx,
                      long n)
{
    long t;
    for (t = 0; t < n; t++)
        dst[t] = src[idx[t]];
}

/* Unpack: scatter a contiguous receive buffer into local memory. */
void repro_scatter_f64(double *dst, const long *idx, const double *src,
                       long n)
{
    long t;
    for (t = 0; t < n; t++)
        dst[idx[t]] = src[t];
}

/* ABI probe: the loader checks this to reject stale/corrupt builds. */
long repro_kernels_abi(void) { return @ABI@; }
"""

#: The ABI stamp baked into the generic library and checked at load
#: time; bumped with EMITTER_VERSION.
KERNELS_ABI = 1


def emit_runtime_kernels() -> str:
    """The generic kernel library: table-driven Figure 8 shapes (a)-(d),
    the descending fill, the indexed fill, and the pack/unpack
    gather/scatter -- one ``-fPIC``-able translation unit."""
    return _RUNTIME_KERNELS_C.replace("@ABI@", str(KERNELS_ABI))


def emit_timing_library(plan: AccessPlan, shape: str, memory_size: int,
                        value: float = 100.0) -> str:
    """Shared-library variant of :func:`emit_timing_harness`.

    Exports the specialized ``node_code`` plus ``repro_best_us(reps)``,
    which allocates the local arena, runs the warm-up and the min-of-N
    repetition loop natively, and returns the best per-invocation
    microseconds as a double -- the Table 2 cell measurement without a
    process launch per cell.  ``repro_touched(A, cap)`` re-runs the node
    code on a caller-provided arena so the address stream stays
    checkable from Python.
    """
    node = emit_node_code(plan, shape, value)
    return (
        "#include <stdlib.h>\n"
        "#include <time.h>\n\n"
        + node
        + "\n"
        "static double now_us(void)\n"
        "{\n"
        "    struct timespec ts;\n"
        "    clock_gettime(CLOCK_MONOTONIC, &ts);\n"
        "    return ts.tv_sec * 1e6 + ts.tv_nsec * 1e-3;\n"
        "}\n\n"
        "double repro_best_us(long reps)\n"
        "{\n"
        f"    double *A = calloc({memory_size}, sizeof(double));\n"
        "    double best = 1e30;\n"
        "    long r;\n"
        "    if (!A) return -1.0;\n"
        "    node_code(A); /* warm up */\n"
        "    for (r = 0; r < reps; r++) {\n"
        "        double t0 = now_us();\n"
        "        node_code(A);\n"
        "        double dt = now_us() - t0;\n"
        "        if (dt < best) best = dt;\n"
        "    }\n"
        "    free(A);\n"
        "    return best;\n"
        "}\n\n"
        "void repro_touched(double *A)\n"
        "{\n"
        "    node_code(A);\n"
        "}\n"
    )
