"""Emit the paper's Figure 8 node code as C source.

An HPF compiler does not interpret ΔM tables -- it *emits node code*
that walks them.  This module produces that C, faithful to the paper's
Figure 8 fragments (shapes (a)-(d)) for the statement
``A(l:u:s) = value``, with the computed tables embedded as static
initializers when the distribution parameters are compile-time
constants (the paper's Section 6.1 scenario), or with a call to the
runtime constructor when they are not.

The emitted code is self-contained C89 (plus a ``main`` harness option)
so it can be eyeballed against the paper or compiled elsewhere; the
Python test suite checks its structure and -- via a tiny C interpreter
shim -- its address stream.
"""

from __future__ import annotations

from .address import AccessPlan

__all__ = ["emit_node_code", "emit_harness", "emit_timing_harness"]

_HEADERS = {
    "a": "shape (a): cycle the table index with mod (Figure 8(a))",
    "b": "shape (b): compare-and-reset (Figure 8(b))",
    "c": "shape (c): for loop + goto done (Figure 8(c))",
    "d": "shape (d): two-table lookup by local offset (Figure 8(d))",
}


def _static_int_array(name: str, values) -> str:
    body = ", ".join(str(v) for v in values)
    return f"static const long {name}[{max(len(values), 1)}] = {{{body}}};"


def emit_node_code(plan: AccessPlan, shape: str, value: float = 100.0) -> str:
    """C function ``node_code(double *A)`` for one processor's share of
    ``A(l:u:s) = value`` using the given Figure 8 shape."""
    if shape not in _HEADERS:
        raise ValueError(f"unknown shape {shape!r}; choose from {sorted(_HEADERS)}")
    if plan.is_empty:
        return (
            f"/* {_HEADERS[shape]} -- this processor owns no section elements */\n"
            "void node_code(double *A) { (void)A; }\n"
        )
    if shape == "d" and plan.start_offset is None:
        raise ValueError("shape 'd' needs offset-indexed tables (identity alignment)")

    lines = [f"/* {_HEADERS[shape]} */"]
    lines.append(f"#define STARTMEM {plan.start_local}")
    lines.append(f"#define LASTMEM  {plan.last_local}")
    lines.append(f"#define LENGTH   {plan.length}")
    if shape == "d":
        lines.append(f"#define STARTOFFSET {plan.start_offset}")
        lines.append(_static_int_array("deltaM", plan.delta_m_by_offset))
        lines.append(_static_int_array("NextOffset", plan.next_offset))
    else:
        lines.append(_static_int_array("deltaM", plan.delta_m))
    lines.append("")
    lines.append("void node_code(double *A)")
    lines.append("{")
    if shape == "a":
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i = 0;",
            "    while (base <= A + LASTMEM) {",
            f"        *base = {value};",
            "        base += deltaM[i];",
            "        i = (i + 1) % LENGTH;",
            "    }",
        ])
    elif shape == "b":
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i = 0;",
            "    while (base <= A + LASTMEM) {",
            f"        *base = {value};",
            "        base += deltaM[i++];",
            "        if (i == LENGTH) i = 0;",
            "    }",
        ])
    elif shape == "c":
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i;",
            "    while (1) {",
            "        for (i = 0; i < LENGTH; i++) {",
            f"            *base = {value};",
            "            base += deltaM[i];",
            "            if (base > A + LASTMEM) goto done;",
            "        }",
            "    }",
            "done: ;",
        ])
    else:  # shape == "d"
        lines.extend([
            "    double *base = A + STARTMEM;",
            "    long i = STARTOFFSET;",
            "    while (base <= A + LASTMEM) {",
            f"        *base = {value};",
            "        base += deltaM[i];",
            "        i = NextOffset[i];",
            "    }",
        ])
    lines.append("}")
    return "\n".join(lines) + "\n"


def emit_harness(plan: AccessPlan, shape: str, memory_size: int,
                 value: float = 100.0) -> str:
    """Complete C program: the node code plus a ``main`` that prints the
    written addresses in order (one per line) -- the address stream the
    tests compare against the Python shapes."""
    node = emit_node_code(plan, shape, value)
    return (
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n\n"
        + node
        + "\n"
        "int main(void)\n"
        "{\n"
        f"    double *A = calloc({memory_size}, sizeof(double));\n"
        "    long i;\n"
        "    node_code(A);\n"
        f"    for (i = 0; i < {memory_size}; i++)\n"
        f"        if (A[i] == {value}) printf(\"%ld\\n\", i);\n"
        "    free(A);\n"
        "    return 0;\n"
        "}\n"
    )


def emit_timing_harness(plan: AccessPlan, shape: str, memory_size: int,
                        value: float = 100.0) -> str:
    """C program that times ``node_code`` and prints the best
    per-invocation microseconds.

    ``argv[1]`` chooses the repetition count (default 1000); the minimum
    over repetitions is printed with 3 decimals -- the same min-of-N
    discipline the Python timers use.  This is the closest this
    reproduction gets to the paper's platform: the emitted Figure 8
    code, compiled by a real C compiler, timed natively.
    """
    node = emit_node_code(plan, shape, value)
    return (
        "#include <stdio.h>\n"
        "#include <stdlib.h>\n"
        "#include <time.h>\n\n"
        + node
        + "\n"
        "static double now_us(void)\n"
        "{\n"
        "    struct timespec ts;\n"
        "    clock_gettime(CLOCK_MONOTONIC, &ts);\n"
        "    return ts.tv_sec * 1e6 + ts.tv_nsec * 1e-3;\n"
        "}\n\n"
        "int main(int argc, char **argv)\n"
        "{\n"
        "    long reps = argc > 1 ? atol(argv[1]) : 1000;\n"
        f"    double *A = calloc({memory_size}, sizeof(double));\n"
        "    double best = 1e30;\n"
        "    long r;\n"
        "    node_code(A); /* warm up */\n"
        "    for (r = 0; r < reps; r++) {\n"
        "        double t0 = now_us();\n"
        "        node_code(A);\n"
        "        double dt = now_us() - t0;\n"
        "        if (dt < best) best = dt;\n"
        "    }\n"
        "    printf(\"%.3f\\n\", best);\n"
        "    free(A);\n"
        "    return 0;\n"
        "}\n"
    )
