"""Communication sets for two-dimensional array statements.

For ``A(sec_a0, sec_a1) = B(sec_b0, sec_b1)`` the iteration space is the
cross product ``t0 in [0, n0) x t1 in [0, n1)`` and -- because HPF maps
each dimension independently (paper Section 2) -- the communication
pattern *factorizes*: iteration ``(t0, t1)`` moves between grid
coordinates determined per dimension by the 1-D ownership functions.
The 2-D schedule is therefore the tensor product of two 1-D transfer
sets, built from the same per-dimension machinery
:mod:`repro.runtime.commsets` uses, with flat local addresses composed
row-major.

``rhs_dims`` generalizes the pairing of iteration axes to RHS
dimensions: the default ``(0, 1)`` is the elementwise statement;
``(1, 0)`` pairs LHS dimension 0 with RHS dimension 1 -- the
**distributed transpose** ``A(i, j) = B(j, i)``.  Arrays may map their
dimensions onto grid axes in any (distinct) order and use different
block sizes and affine alignments.  The two grids may even differ in
total size -- each transfer's source rank is linearized through the
RHS grid and its destination rank through the LHS grid, which is what
lets :mod:`repro.runtime.elastic` schedule a live re-layout between a
``p``-rank and a ``p'``-rank grid on a machine of ``max(p, p')`` ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection
from .commsets import iter_dim_buckets

__all__ = ["Transfer2D", "CommSchedule2D", "compute_comm_schedule_2d"]


@dataclass(frozen=True, slots=True)
class Transfer2D:
    """One sender->receiver block of a 2-D statement.

    ``src_slots``/``dst_slots`` are *flat* row-major local addresses,
    parallel arrays ordered odometer style (iteration axis 0 slowest).
    """

    source: int
    dest: int
    src_slots: tuple[int, ...] | np.ndarray
    dst_slots: tuple[int, ...] | np.ndarray

    def __len__(self) -> int:
        return len(self.src_slots)


@dataclass
class CommSchedule2D:
    n_iterations: tuple[int, int]
    locals_: list[Transfer2D] = field(default_factory=list)
    transfers: list[Transfer2D] = field(default_factory=list)
    _send_index: dict[int, list[Transfer2D]] | None = field(
        default=None, repr=False, compare=False
    )
    _recv_index: dict[int, list[Transfer2D]] | None = field(
        default=None, repr=False, compare=False
    )
    _indexed_count: int = field(default=-1, repr=False, compare=False)

    @property
    def total_elements(self) -> int:
        return sum(len(t) for t in self.locals_) + sum(
            len(t) for t in self.transfers
        )

    @property
    def communicated_elements(self) -> int:
        return sum(len(t) for t in self.transfers)

    def _reindex(self) -> None:
        if self._indexed_count == len(self.transfers):
            return
        send: dict[int, list[Transfer2D]] = {}
        recv: dict[int, list[Transfer2D]] = {}
        for t in self.transfers:
            send.setdefault(t.source, []).append(t)
            recv.setdefault(t.dest, []).append(t)
        self._send_index = send
        self._recv_index = recv
        self._indexed_count = len(self.transfers)

    def sends_from(self, rank: int) -> list[Transfer2D]:
        self._reindex()
        return self._send_index.get(rank, [])

    def receives_at(self, rank: int) -> list[Transfer2D]:
        self._reindex()
        return self._recv_index.get(rank, [])


def _check_rank2(array: DistributedArray, role: str) -> None:
    if array.rank != 2:
        raise ValueError(f"{role} array {array.name} must be rank-2")
    if array.grid.rank != 2:
        raise ValueError(f"{role} array {array.name} must be on a rank-2 grid")
    axes = set()
    for d, dim in enumerate(array._dims):
        if dim.layout is None:
            raise ValueError(
                f"{role} array {array.name} dimension {d} is not distributed"
            )
        axes.add(dim.axis_map.grid_axis)
    if axes != {0, 1}:
        raise ValueError(
            f"{role} array {array.name} must cover both grid axes"
        )


def _dim_buckets(
    a: DistributedArray, dim_a_idx: int, sec_a: RegularSection,
    b: DistributedArray, dim_b_idx: int, sec_b: RegularSection,
) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]:
    """Transfer sets of one iteration axis pairing LHS dimension
    ``dim_a_idx`` with RHS dimension ``dim_b_idx``: maps ``(q, r)``
    coordinate pairs to ``(src_slots, dst_slots)`` vectors in increasing
    iteration order (the shared vectorized pass of
    :func:`repro.runtime.commsets.iter_dim_buckets`)."""
    dim_a = a._dims[dim_a_idx]
    dim_b = b._dims[dim_b_idx]
    buckets: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    for q in range(b.grid.shape[dim_b.axis_map.grid_axis]):
        for r, _t, src_slots, dst_slots in iter_dim_buckets(
            dim_a, sec_a, dim_b, sec_b, q
        ):
            buckets[(q, r)] = (src_slots, dst_slots)
    return buckets


def compute_comm_schedule_2d(
    a: DistributedArray,
    secs_a: tuple[RegularSection, RegularSection],
    b: DistributedArray,
    secs_b: tuple[RegularSection, RegularSection],
    rhs_dims: tuple[int, int] = (0, 1),
) -> CommSchedule2D:
    """Schedule for the 2-D statement pairing LHS dim ``e`` with RHS dim
    ``rhs_dims[e]`` (``(0, 1)`` elementwise, ``(1, 0)`` transpose)."""
    _check_rank2(a, "LHS")
    _check_rank2(b, "RHS")
    if sorted(rhs_dims) != [0, 1]:
        raise ValueError(f"rhs_dims must be a permutation of (0, 1), got {rhs_dims}")
    lengths_a = tuple(len(sec) for sec in secs_a)
    lengths_b = tuple(len(secs_b[rhs_dims[e]]) for e in (0, 1))
    if lengths_a != lengths_b:
        raise ValueError(
            f"non-conformable sections: {lengths_a} vs {lengths_b}"
        )
    schedule = CommSchedule2D(n_iterations=lengths_a)
    if 0 in lengths_a:
        return schedule

    buckets = [
        _dim_buckets(a, e, secs_a[e], b, rhs_dims[e], secs_b[rhs_dims[e]])
        for e in (0, 1)
    ]
    axis_b = [b._dims[rhs_dims[e]].axis_map.grid_axis for e in (0, 1)]
    axis_a = [a._dims[e].axis_map.grid_axis for e in (0, 1)]
    # Whether iteration axis e supplies the RHS's *row* (dim 0) slot.
    rhs_is_dim0 = [rhs_dims[e] == 0 for e in (0, 1)]

    for (q0, r0), (bs0, as0) in sorted(buckets[0].items()):
        for (q1, r1), (bs1, as1) in sorted(buckets[1].items()):
            src_coords = [0, 0]
            src_coords[axis_b[0]], src_coords[axis_b[1]] = q0, q1
            dst_coords = [0, 0]
            dst_coords[axis_a[0]], dst_coords[axis_a[1]] = r0, r1
            src = b.grid.linearize(tuple(src_coords))
            dst = a.grid.linearize(tuple(dst_coords))
            src_shape1 = b.local_shape(src)[1]
            dst_shape1 = a.local_shape(dst)[1]
            # Flat addresses as a broadcast outer sum, raveled odometer
            # style (iteration axis 0 slowest) -- identical order to the
            # scalar double loop it replaces.
            if rhs_is_dim0[0]:
                src_flat = bs0[:, None] * src_shape1 + bs1[None, :]
            else:
                src_flat = bs1[None, :] * src_shape1 + bs0[:, None]
            dst_flat = as0[:, None] * dst_shape1 + as1[None, :]
            transfer = Transfer2D(
                src, dst, src_flat.reshape(-1), dst_flat.reshape(-1)
            )
            if src == dst:
                schedule.locals_.append(transfer)
            else:
                schedule.transfers.append(transfer)
    return schedule
