"""The four node-code templates of Figure 8, plus a vectorized shape.

After the ΔM table is constructed, each processor traverses its local
memory with one of these loops (the paper's C fragments correspond to
``A(l:u:s) = 100.0``):

* **shape (a)** -- cycle the table index with an explicit ``mod``
  (given "for conceptual reasons" in Chatterjee et al.; by far the
  slowest measured shape in Table 2);
* **shape (b)** -- replace ``mod`` with a compare-and-reset;
* **shape (c)** -- a ``for`` loop over the table inside an infinite
  loop, exiting with ``goto done`` (better scheduling in the paper's
  icc build);
* **shape (d)** -- two-table lookup indexed by local offset
  (``deltaM`` + ``NextOffset``), the fastest of the four in Table 2;
* **shape (v)** -- our NumPy-vectorized ablation: materialize all local
  addresses with a cumulative sum of the tiled gap table and assign in
  one fancy-indexing store (idiomatic Python per the HPC guides; not in
  the paper).

Every function assigns ``value`` to each element the plan covers and
returns the number of elements written.  ``memory`` may be a NumPy
array, a Python list, or a :class:`repro.machine.TracingMemory`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .address import AccessPlan

__all__ = [
    "fill_shape_a",
    "fill_shape_b",
    "fill_shape_c",
    "fill_shape_d",
    "fill_vectorized",
    "SHAPES",
    "get_shape",
    "materialize_addresses",
]


def fill_shape_a(memory, plan: AccessPlan, value) -> int:
    """Figure 8(a): ``i = (i + 1) % length`` -- mod every iteration."""
    if plan.count == 0:
        return 0
    base = plan.start_local
    last = plan.last_local
    delta = plan.delta_m
    length = plan.length
    i = 0
    written = 0
    while base <= last:
        memory[base] = value
        written += 1
        base += delta[i]
        i = (i + 1) % length
    return written


def fill_shape_b(memory, plan: AccessPlan, value) -> int:
    """Figure 8(b): compare-and-reset instead of ``mod`` (what Chatterjee
    et al.'s implementation actually used, per the paper's footnote)."""
    if plan.count == 0:
        return 0
    base = plan.start_local
    last = plan.last_local
    delta = plan.delta_m
    length = plan.length
    i = 0
    written = 0
    while base <= last:
        memory[base] = value
        written += 1
        base += delta[i]
        i += 1
        if i == length:
            i = 0
    return written


def fill_shape_c(memory, plan: AccessPlan, value) -> int:
    """Figure 8(c): ``for`` over the table inside ``while (TRUE)``, exit
    via ``goto done`` -- emulated with a flag and ``break``."""
    if plan.count == 0:
        return 0
    base = plan.start_local
    last = plan.last_local
    delta = plan.delta_m
    length = plan.length
    written = 0
    done = False
    while not done:
        for i in range(length):
            memory[base] = value
            written += 1
            base += delta[i]
            if base > last:
                done = True
                break
    return written


def fill_shape_d(memory, plan: AccessPlan, value) -> int:
    """Figure 8(d): two-table lookup indexed by local offset (the fastest
    shape of Table 2; requires the Section 6.2 offset-indexed tables)."""
    if plan.count == 0:
        return 0
    base = plan.start_local
    last = plan.last_local
    delta = plan.delta_m_by_offset
    nxt = plan.next_offset
    i = plan.start_offset
    written = 0
    while base <= last:
        memory[base] = value
        written += 1
        base += delta[i]
        i = nxt[i]
    return written


def materialize_addresses(plan: AccessPlan) -> np.ndarray:
    """All local addresses the plan covers, as one NumPy array.

    ``start + cumsum(tile(gaps))`` -- the vectorized equivalent of the
    table walk, used by shape (v) and by bulk gather/scatter paths.
    """
    if plan.count == 0:
        return np.empty(0, dtype=np.int64)
    gaps = np.asarray(plan.delta_m, dtype=np.int64)
    reps = -(-plan.count // plan.length)  # ceil
    steps = np.tile(gaps, reps)[: plan.count - 1]
    out = np.empty(plan.count, dtype=np.int64)
    out[0] = plan.start_local
    if plan.count > 1:
        np.cumsum(steps, out=out[1:])
        out[1:] += plan.start_local
    return out


def fill_vectorized(memory, plan: AccessPlan, value) -> int:
    """Shape (v): one fancy-indexed store over the materialized address
    vector (ablation A4; idiomatic NumPy, no per-element interpretation)."""
    addrs = materialize_addresses(plan)
    if len(addrs):
        memory[addrs] = value
    return len(addrs)


def fill_descending(memory, plan: AccessPlan, value) -> int:
    """Traverse a *descending* plan (negative gaps, ``start >= last``).

    The negative-stride analogue of shape (b); pair with
    :meth:`repro.runtime.address.AccessPlan.descending`.
    """
    if plan.count == 0:
        return 0
    if any(g >= 0 for g in plan.delta_m):
        raise ValueError(
            "fill_descending needs a descending plan "
            "(AccessPlan.descending()); this one has nonnegative gaps"
        )
    base = plan.start_local
    last = plan.last_local
    delta = plan.delta_m
    length = plan.length
    i = 0
    written = 0
    while base >= last:
        memory[base] = value
        written += 1
        base += delta[i]
        i += 1
        if i == length:
            i = 0
    return written


#: Shape registry keyed by the paper's figure labels.
SHAPES: dict[str, Callable] = {
    "a": fill_shape_a,
    "b": fill_shape_b,
    "c": fill_shape_c,
    "d": fill_shape_d,
    "v": fill_vectorized,
}


def get_shape(name: str, native: bool | None = None) -> Callable:
    """Look up a node-code shape by its Figure 8 label (a/b/c/d/v).

    ``native`` selects the compiled-kernel dispatch seam
    (:mod:`repro.runtime.native`): ``True`` prefers the compiled shape
    (falling back per call when the memory is not native-servable or no
    compiler exists), ``False`` pins the interpreter, ``None`` follows
    the global mode.  Either way the returned callable has the same
    ``(memory, plan, value) -> written`` contract and writes the same
    bits -- the Python shapes remain the semantics of record.
    """
    try:
        fill = SHAPES[name]
    except KeyError:
        raise ValueError(
            f"unknown node-code shape {name!r}; choose from {sorted(SHAPES)}"
        ) from None
    from .native import kernels_for

    kernels = kernels_for(native)
    if kernels is None:
        return fill

    from ..obs import ambient

    def native_fill(memory, plan: AccessPlan, value) -> int:
        written = kernels.fill(memory, plan, value, name)
        if written is None:
            ambient().inc("native.dispatch_numpy")
            return fill(memory, plan, value)
        ambient().inc("native.dispatch_native")
        return written

    return native_fill
