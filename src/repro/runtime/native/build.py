"""Compile emitted C into a hashed, crash-safe on-disk artifact cache.

The emitters (:mod:`repro.runtime.emit_c`) produce translation units;
this module turns them into loadable shared objects (or standalone
executables for the C benchmark harnesses) exactly once per
*descriptor*.  A descriptor is a JSON-able dict of everything that can
change the produced machine code: the plan parameters / source identity,
the emitter version, the pinned flag set, the artifact kind, and the
compiler id (path + version line).  Its SHA-256 keys the artifact, so:

* repeated runs -- and the plan-cache / service layers above -- never
  recompile warm work;
* a compiler upgrade, emitter change, or flag change misses cleanly
  instead of serving stale code;
* concurrent builders race benignly: each compiles into a private
  ``.tmp-<pid>`` file and installs with an atomic :func:`os.replace`,
  mirroring the snapshot discipline of :mod:`repro.service.snapshot`.

Layered on top is a per-process handle cache of loaded
:class:`ctypes.CDLL` objects, guarded against fork inheritance the same
way :mod:`repro.runtime.plancache` guards its locks (``register_at_fork``
plus a pid check), so the multiprocess backend's workers never share a
parent's dlopen handles or double-count its counters.

Knobs (environment):

* ``REPRO_NATIVE_CC`` -- pin the compiler path.  Setting it to a
  missing/broken path *disables* autodetection (that is the point: CI's
  fallback leg hides the compiler this way).
* ``REPRO_NATIVE_CACHE`` -- cache directory (default
  ``.repro-native-cache/`` under the current directory, git-ignored).

Failures surface as :class:`NativeBuildError`; callers
(:mod:`repro.runtime.native`) decide whether that means a hard error or
a NumPy fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
from pathlib import Path

from ...obs import ambient
from ..emit_c import EMITTER_VERSION

__all__ = [
    "NativeBuildError",
    "find_compiler",
    "compiler_id",
    "cache_dir",
    "descriptor_hash",
    "build_cached",
    "load_library",
    "clear_handle_cache",
    "CFLAGS_SHARED",
    "CFLAGS_EXE",
]


class NativeBuildError(RuntimeError):
    """A native artifact could not be built (no compiler, compiler
    failure, or unloadable output)."""


#: Pinned flag sets -- part of every descriptor hash.  ``_POSIX_C_SOURCE``
#: because strict ``-std=c99`` hides ``clock_gettime``/``CLOCK_MONOTONIC``,
#: which the timing harnesses use.
CFLAGS_SHARED = (
    "-O2", "-fPIC", "-shared", "-std=c99",
    "-D_POSIX_C_SOURCE=199309L", "-fno-plt",
)
CFLAGS_EXE = ("-O2", "-std=c99", "-D_POSIX_C_SOURCE=199309L")

_ENV_CC = "REPRO_NATIVE_CC"
_ENV_CACHE = "REPRO_NATIVE_CACHE"

# ---------------------------------------------------------------------------
# Compiler discovery
# ---------------------------------------------------------------------------

#: ``path -> version line`` memo; reset per process (fork guard below).
_compiler_version_memo: dict[str, str | None] = {}


def find_compiler() -> str | None:
    """Path of the C compiler to use, or ``None``.

    ``REPRO_NATIVE_CC`` pins it when set (a nonexistent pin means "no
    compiler" -- deliberate, so tests and CI can hide a present cc);
    otherwise the first of ``cc``/``gcc``/``clang`` on PATH wins.
    """
    pinned = os.environ.get(_ENV_CC)
    if pinned is not None:
        path = shutil.which(pinned) or (pinned if os.path.exists(pinned) else None)
        return path
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_id(cc: str | None = None) -> str:
    """Stable identity of the compiler for cache keys and bench
    metadata: ``<basename> <first --version line>``, or ``"none"``."""
    if cc is None:
        cc = find_compiler()
    if cc is None:
        return "none"
    if cc not in _compiler_version_memo:
        _pid_guard()
        try:
            out = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=30
            )
            line = (out.stdout or out.stderr).splitlines()[0].strip() if (
                out.stdout or out.stderr
            ) else ""
            _compiler_version_memo[cc] = line or None
        except (OSError, subprocess.SubprocessError):
            _compiler_version_memo[cc] = None
    version = _compiler_version_memo[cc]
    if version is None:
        return "none"
    return f"{os.path.basename(cc)}: {version}"


# ---------------------------------------------------------------------------
# Cache layout
# ---------------------------------------------------------------------------

def cache_dir() -> Path:
    """The on-disk artifact cache root (created lazily)."""
    root = os.environ.get(_ENV_CACHE)
    return Path(root) if root else Path.cwd() / ".repro-native-cache"


def descriptor_hash(descriptor: dict) -> str:
    """SHA-256 of the canonical-JSON descriptor (the cache key)."""
    blob = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


def _artifact_paths(key: str, kind: str) -> tuple[Path, Path]:
    suffix = ".so" if kind == "shared" else ".bin"
    root = cache_dir()
    return root / f"{key}{suffix}", root / f"{key}.c"


# ---------------------------------------------------------------------------
# Build
# ---------------------------------------------------------------------------

def build_cached(source: str, descriptor: dict, *, kind: str = "shared") -> Path:
    """Return the compiled artifact for ``source``, building at most once.

    ``descriptor`` identifies the *semantics* of the source (plan
    parameters, harness name, ...); the full cache key additionally
    folds in the emitter version, the flag set, the artifact kind, and
    the compiler id, so none of those can alias.  The source text itself
    is hashed in too -- belt and braces against an under-specified
    descriptor.

    Raises :class:`NativeBuildError` when no compiler is available or
    compilation fails; never leaves a partial artifact behind (compile
    to a private temp name, then atomic :func:`os.replace`).
    """
    if kind not in ("shared", "exe"):
        raise ValueError(f"unknown artifact kind {kind!r}")
    cc = find_compiler()
    if cc is None:
        raise NativeBuildError(
            "no C compiler: set REPRO_NATIVE_CC or install cc/gcc/clang"
        )
    flags = CFLAGS_SHARED if kind == "shared" else CFLAGS_EXE
    key = descriptor_hash({
        "descriptor": descriptor,
        "emitter_version": EMITTER_VERSION,
        "kind": kind,
        "flags": flags,
        "compiler": compiler_id(cc),
        "source_sha": hashlib.sha256(source.encode()).hexdigest(),
    })
    artifact, source_path = _artifact_paths(key, kind)
    obs = ambient()
    if artifact.exists():
        obs.inc("native.disk_hit")
        return artifact

    root = cache_dir()
    root.mkdir(parents=True, exist_ok=True)
    # Temp names keep their real suffixes (cc decides language by
    # suffix) while staying unique per builder pid.
    tmp = artifact.with_name(f"{key}.tmp-{os.getpid()}{artifact.suffix}")
    tmp_src = source_path.with_name(f"{key}.tmp-{os.getpid()}.c")
    with obs.span("native_compile", kind=kind, key=key):
        tmp_src.write_text(source)
        try:
            proc = subprocess.run(
                [cc, *flags, "-o", str(tmp), str(tmp_src)],
                capture_output=True, text=True, timeout=300,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            tmp_src.unlink(missing_ok=True)
            raise NativeBuildError(f"compiler invocation failed: {exc}") from exc
        if proc.returncode != 0 or not tmp.exists():
            tmp_src.unlink(missing_ok=True)
            tmp.unlink(missing_ok=True)
            raise NativeBuildError(
                f"{os.path.basename(cc)} failed (exit {proc.returncode}):\n"
                f"{proc.stderr.strip()[:2000]}"
            )
        # Source installed first (debuggability: the .c for every .so),
        # artifact last -- an artifact implies its source is present.
        os.replace(tmp_src, source_path)
        os.replace(tmp, artifact)
    obs.inc("native.compile")
    return artifact


# ---------------------------------------------------------------------------
# Handle cache (dlopen'd libraries), fork/spawn-safe
# ---------------------------------------------------------------------------

_handles: dict[Path, ctypes.CDLL] = {}
_owner_pid = os.getpid()


def _pid_guard() -> None:
    global _owner_pid
    if os.getpid() != _owner_pid:
        _reset_inherited_state()


def _reset_inherited_state() -> None:
    """Fresh handle/memo state for a new process (fork hygiene, same
    discipline as :mod:`repro.runtime.plancache`)."""
    global _owner_pid
    _owner_pid = os.getpid()
    _handles.clear()
    _compiler_version_memo.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_inherited_state)


def clear_handle_cache() -> None:
    """Drop every loaded-library handle and compiler memo (tests and the
    corrupt-artifact recovery path).  The .so files on disk stay."""
    _handles.clear()
    _compiler_version_memo.clear()


def load_library(
    source: str, descriptor: dict, *, required_symbols: tuple[str, ...] = ()
) -> ctypes.CDLL:
    """Build (or reuse) the shared library for ``source`` and dlopen it.

    The in-process handle cache makes repeat loads free; a cached .so
    that fails to dlopen or lacks ``required_symbols`` (truncated or
    corrupted file, stale partial install) is deleted and rebuilt once
    -- the same reject-diagnose-rebuild contract the service applies to
    cache snapshots.
    """
    _pid_guard()
    artifact = build_cached(source, descriptor, kind="shared")
    handle = _handles.get(artifact)
    if handle is not None:
        ambient().inc("native.handle_hit")
        return handle
    try:
        handle = _load_checked(artifact, required_symbols)
    except OSError:
        # Corrupt/truncated artifact: reject, rebuild, retry once.
        ambient().inc("native.rebuild_corrupt")
        artifact.unlink(missing_ok=True)
        artifact = build_cached(source, descriptor, kind="shared")
        try:
            handle = _load_checked(artifact, required_symbols)
        except OSError as exc:
            raise NativeBuildError(
                f"rebuilt artifact still unloadable: {artifact}: {exc}"
            ) from exc
    _handles[artifact] = handle
    return handle


def _load_checked(artifact: Path, required_symbols: tuple[str, ...]) -> ctypes.CDLL:
    handle = ctypes.CDLL(str(artifact))
    for name in required_symbols:
        if not hasattr(handle, name):
            raise OSError(f"missing symbol {name!r} in {artifact}")
    return handle
