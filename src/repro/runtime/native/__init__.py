"""Native-speed access-sequence kernels behind a NumPy-safe dispatch seam.

The runtime has emitted faithful Figure 8 C since the seed
(:mod:`repro.runtime.emit_c`) but only ever *interpreted* the ΔM tables
in Python, which flattens the paper's Section 6 operation-mix ratios
under interpreter overhead.  This package closes the loop from emitted
to executed kernels:

* :mod:`repro.runtime.native.build` compiles emitted C with the host
  compiler into a hashed on-disk .so cache (atomic installs, corrupt
  artifacts rejected and rebuilt, fork-safe handle cache);
* this module wraps the generic kernel library
  (:func:`repro.runtime.emit_c.emit_runtime_kernels`) in
  :class:`RuntimeKernels` -- the four Figure 8 node-code shapes, the
  descending fill, the indexed fill, and the ΔM-driven pack/unpack
  (gather/scatter) -- with ctypes signatures checked at load time;
* :func:`kernels_for` is the dispatch seam :mod:`repro.runtime.codegen`
  and :mod:`repro.runtime.exec` consult: it returns the loaded kernels
  or ``None``, and ``None`` always means "use the existing NumPy path".

Native dispatch **never changes results**: the scalar Python shapes stay
the correctness referee (differential property tests in
``tests/runtime/test_native.py``), and any reason the native path cannot
serve a call -- no compiler, a broken compiler, a non-float64 or
non-contiguous memory, a ``TracingMemory`` -- falls back to NumPy with
an observable counter (and a single process-wide warning when the cause
is a missing compiler).

Selection model (``native=`` arguments accept ``None``/``True``/``False``):

* ``native=True`` -- use compiled kernels, falling back if unavailable;
* ``native=False`` -- never;
* ``native=None`` (default) -- follow the global mode:
  ``auto`` (default) treats ``None`` as NumPy, ``on`` treats it as
  native-when-available, ``off`` force-disables even explicit ``True``
  (kill switch).  Set via :func:`set_native_mode` or ``REPRO_NATIVE``.

Counters (through the ambient obs handle): ``native.compile``,
``native.disk_hit``, ``native.handle_hit``, ``native.rebuild_corrupt``,
``native.fallback``, ``native.dispatch_native``,
``native.dispatch_numpy``.  See docs/NATIVE.md.
"""

from __future__ import annotations

import ctypes
import os
import warnings

import numpy as np

from ...obs import ambient
from ..address import AccessPlan
from ..emit_c import KERNELS_ABI, emit_runtime_kernels
from .build import (
    NativeBuildError,
    build_cached,
    clear_handle_cache,
    compiler_id,
    find_compiler,
    load_library,
)

__all__ = [
    "NativeBuildError",
    "RuntimeKernels",
    "native_available",
    "get_runtime_kernels",
    "kernels_for",
    "native_mode",
    "set_native_mode",
    "reset_native_state",
    "build_cached",
    "compiler_id",
    "find_compiler",
    "clear_handle_cache",
]

_MODES = ("auto", "on", "off")

_REQUIRED_SYMBOLS = (
    "repro_fill_a",
    "repro_fill_b",
    "repro_fill_c",
    "repro_fill_d",
    "repro_fill_desc",
    "repro_fill_indexed",
    "repro_gather_f64",
    "repro_scatter_f64",
    "repro_kernels_abi",
)

_f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")


class RuntimeKernels:
    """ctypes facade over the generic compiled kernel library.

    Every method either performs the operation natively and returns its
    result, or returns ``None`` to tell the caller "this call shape is
    not native-servable, use the NumPy path" (wrong dtype, non-ndarray
    memory, missing shape-(d) tables).  Falling back is always safe
    because the NumPy paths are the semantics of record.
    """

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        for name in ("repro_fill_a", "repro_fill_b", "repro_fill_c"):
            fn = getattr(lib, name)
            fn.argtypes = [_f64, ctypes.c_double, ctypes.c_long,
                           ctypes.c_long, _i64, ctypes.c_long]
            fn.restype = ctypes.c_long
        lib.repro_fill_desc.argtypes = [_f64, ctypes.c_double, ctypes.c_long,
                                        ctypes.c_long, _i64, ctypes.c_long]
        lib.repro_fill_desc.restype = ctypes.c_long
        lib.repro_fill_d.argtypes = [_f64, ctypes.c_double, ctypes.c_long,
                                     ctypes.c_long, _i64, _i64, ctypes.c_long]
        lib.repro_fill_d.restype = ctypes.c_long
        lib.repro_fill_indexed.argtypes = [_f64, _i64, ctypes.c_long,
                                           ctypes.c_double]
        lib.repro_fill_indexed.restype = None
        lib.repro_gather_f64.argtypes = [_f64, _f64, _i64, ctypes.c_long]
        lib.repro_gather_f64.restype = None
        lib.repro_scatter_f64.argtypes = [_f64, _i64, _f64, ctypes.c_long]
        lib.repro_scatter_f64.restype = None
        lib.repro_kernels_abi.argtypes = []
        lib.repro_kernels_abi.restype = ctypes.c_long

    # -- dispatchability ------------------------------------------------

    @staticmethod
    def _servable(memory) -> bool:
        return (
            isinstance(memory, np.ndarray)
            and memory.dtype == np.float64
            and memory.flags["C_CONTIGUOUS"]
            and memory.ndim == 1
        )

    @staticmethod
    def _tables(values) -> np.ndarray:
        return np.ascontiguousarray(values, dtype=np.int64)

    # -- node-code shapes ----------------------------------------------

    def fill(self, memory, plan: AccessPlan, value, shape: str) -> int | None:
        """Run one Figure 8 shape natively; ``None`` = not servable."""
        if not self._servable(memory):
            return None
        if plan.count == 0:
            return 0
        value = float(value)
        if shape in ("a", "b", "c"):
            fn = getattr(self._lib, f"repro_fill_{shape}")
            return int(fn(memory, value, plan.start_local, plan.last_local,
                          self._tables(plan.delta_m), plan.length))
        if shape == "d":
            if plan.start_offset is None:
                return None
            return int(self._lib.repro_fill_d(
                memory, value, plan.start_local, plan.last_local,
                self._tables(plan.delta_m_by_offset),
                self._tables(plan.next_offset), plan.start_offset,
            ))
        if shape == "v":
            from ..codegen import materialize_addresses

            return self.fill_indexed(memory, materialize_addresses(plan), value)
        if shape == "desc":
            return int(self._lib.repro_fill_desc(
                memory, value, plan.start_local, plan.last_local,
                self._tables(plan.delta_m), plan.length,
            ))
        return None

    def fill_indexed(self, memory, addrs: np.ndarray, value) -> int | None:
        """``memory[addrs] = value`` natively; ``None`` = not servable."""
        if not self._servable(memory):
            return None
        idx = self._tables(addrs)
        self._lib.repro_fill_indexed(memory, idx, len(idx), float(value))
        return len(idx)

    # -- ΔM-driven pack/unpack -----------------------------------------

    def gather(self, src, idx: np.ndarray) -> np.ndarray | None:
        """Pack: ``src[idx].copy()`` natively; ``None`` = not servable."""
        if not self._servable(src):
            return None
        idx = self._tables(idx)
        out = np.empty(len(idx), dtype=np.float64)
        self._lib.repro_gather_f64(out, src, idx, len(idx))
        return out

    def scatter(self, dst, idx: np.ndarray, values) -> bool:
        """Unpack: ``dst[idx] = values`` natively; False = not servable."""
        if not self._servable(dst):
            return False
        values = np.ascontiguousarray(values, dtype=np.float64)
        idx = self._tables(idx)
        if len(values) != len(idx):
            raise ValueError(
                f"scatter length mismatch: {len(idx)} slots, "
                f"{len(values)} values"
            )
        self._lib.repro_scatter_f64(dst, idx, values, len(idx))
        return True


# ---------------------------------------------------------------------------
# Load-once state (per process; reset on fork via build's guard)
# ---------------------------------------------------------------------------

_kernels: RuntimeKernels | None = None
_load_failed = False
_warned = False
_mode = os.environ.get("REPRO_NATIVE", "auto").lower()
if _mode not in _MODES:
    _mode = "auto"


def native_mode() -> str:
    """The global selection mode: ``auto``, ``on``, or ``off``."""
    return _mode


def set_native_mode(mode: str) -> str:
    """Set the global mode; returns the previous one.  ``off`` is the
    kill switch (even explicit ``native=True`` calls use NumPy)."""
    global _mode
    if mode not in _MODES:
        raise ValueError(f"unknown native mode {mode!r}; choose from {_MODES}")
    previous, _mode = _mode, mode
    return previous


def _warn_fallback(reason: str) -> None:
    global _warned
    ambient().inc("native.fallback")
    if not _warned:
        _warned = True
        warnings.warn(
            f"native kernels unavailable ({reason}); "
            "falling back to the NumPy path (results are identical)",
            RuntimeWarning,
            stacklevel=3,
        )


def get_runtime_kernels() -> RuntimeKernels | None:
    """The loaded generic kernel library, building it on first use;
    ``None`` (with one warning + a ``native.fallback`` counter) when it
    cannot be built or loaded."""
    global _kernels, _load_failed
    if _kernels is not None:
        return _kernels
    if _load_failed:
        ambient().inc("native.fallback")
        return None
    if ctypes.sizeof(ctypes.c_long) != 8:
        _load_failed = True
        _warn_fallback("platform long is not 64-bit")
        return None
    try:
        lib = load_library(
            emit_runtime_kernels(),
            {"unit": "runtime_kernels", "abi": KERNELS_ABI},
            required_symbols=_REQUIRED_SYMBOLS,
        )
        if int(lib.repro_kernels_abi()) != KERNELS_ABI:
            raise NativeBuildError(
                f"kernel ABI mismatch (got {int(lib.repro_kernels_abi())}, "
                f"want {KERNELS_ABI})"
            )
    except NativeBuildError as exc:
        _load_failed = True
        _warn_fallback(str(exc).splitlines()[0])
        return None
    _kernels = RuntimeKernels(lib)
    return _kernels


def native_available() -> bool:
    """Whether native dispatch can actually serve calls right now."""
    return get_runtime_kernels() is not None


def kernels_for(flag: bool | None) -> RuntimeKernels | None:
    """Resolve a ``native=`` argument against the global mode.

    The one seam every dispatch site goes through; returns the kernels
    to use or ``None`` for the NumPy path.
    """
    mode = _mode
    if mode == "off" or flag is False:
        return None
    if flag is None and mode != "on":
        return None
    return get_runtime_kernels()


def reset_native_state() -> None:
    """Forget loaded kernels, load failures, the warn-once latch, and
    dlopen handles (tests flip compilers/cache dirs between cases; real
    code never needs this)."""
    global _kernels, _load_failed, _warned
    _kernels = None
    _load_failed = False
    _warned = False
    clear_handle_cache()
