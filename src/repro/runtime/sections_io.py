"""Section-level gather/scatter between ranks and a root image.

The runtime's statements keep data distributed; tools at the edges of a
program (I/O, validation, front-ends) need *section views* on one rank:

* :func:`gather_section` -- assemble ``A(sections)`` as a dense array on
  a root rank (every owner sends its elements once);
* :func:`scatter_section` -- the inverse: a root-held dense array is
  written into the owners' local memories;
* :func:`reduce_section` -- a fold over the section's elements without
  materializing it anywhere (each rank folds locally, the root combines
  partial results).

All three enumerate per-rank elements with the access-sequence
machinery (vectorized flat addresses), not per-element ownership tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection
from ..machine.vm import VirtualMachine
from .address import flat_local_addresses
from .plancache import cached_localized_arrays

__all__ = ["gather_section", "scatter_section", "reduce_section"]


def _section_shape(sections: tuple[RegularSection, ...]) -> tuple[int, ...]:
    return tuple(len(sec) for sec in sections)


def _positions(
    array: DistributedArray,
    sections: tuple[RegularSection, ...],
    rank: int,
) -> np.ndarray:
    """Flat positions (row-major over the section's iteration space) of
    the elements ``rank`` owns, aligned with
    :func:`flat_local_addresses`' odometer order."""
    coords = array.grid.coordinates(rank)
    shape = _section_shape(sections)
    per_dim: list[np.ndarray] = []
    for sec, dim in zip(sections, array._dims):
        norm = sec.normalized()
        if norm.is_empty:
            return np.empty(0, dtype=np.int64)
        if dim.layout is None:
            pos = np.arange(len(norm), dtype=np.int64)
        else:
            coord = coords[dim.axis_map.grid_axis]
            indices, _ = cached_localized_arrays(
                dim.layout.p, dim.layout.k, dim.extent,
                dim.axis_map.alignment, sec, coord,
            )
            # Exact division: every owned index is a section member, so
            # floor matches position_of for negative strides too.
            pos = (indices - sec.lower) // sec.stride
        per_dim.append(pos)
    if any(p.size == 0 for p in per_dim):
        return np.empty(0, dtype=np.int64)
    acc = per_dim[0]
    for pos, extent in zip(per_dim[1:], shape[1:]):
        acc = acc[..., None] * extent + pos
    return acc.reshape(-1)


def _check(vm: VirtualMachine, array: DistributedArray, sections, root: int):
    if vm.p != array.grid.size:
        raise ValueError(
            f"machine has {vm.p} ranks but {array.name} is mapped onto "
            f"{array.grid.size}"
        )
    if len(sections) != array.rank:
        raise ValueError(
            f"need {array.rank} sections for {array.name}, got {len(sections)}"
        )
    if not 0 <= root < vm.p:
        raise ValueError(f"root {root} out of range [0, {vm.p})")


def gather_section(
    vm: VirtualMachine,
    array: DistributedArray,
    sections: tuple[RegularSection, ...],
    root: int = 0,
) -> np.ndarray:
    """Dense image of ``A(sections)`` assembled on ``root``.

    Shape is the per-dimension section lengths; element ``[t0, t1, ...]``
    is ``A(sections[0].element(t0), ...)``.
    """
    _check(vm, array, sections, root)
    shape = _section_shape(sections)
    tag = ("gather_section", array.name)

    def send_phase(ctx):
        addrs = flat_local_addresses(array, tuple(sections), ctx.rank)
        positions = _positions(array, tuple(sections), ctx.rank)
        values = ctx.memory(array.name)[addrs] if len(addrs) else np.empty(0)
        ctx.send(root, tag, (positions, values))

    def assemble_phase(ctx):
        if ctx.rank != root:
            return None
        out = np.zeros(int(np.prod(shape)) if shape else 0)
        for src in range(ctx.p):
            positions, values = ctx.recv(src, tag)
            if len(positions):
                out[positions] = values
        return out.reshape(shape)

    _, results = vm.bsp(send_phase, assemble_phase)
    return results[root]


def scatter_section(
    vm: VirtualMachine,
    array: DistributedArray,
    sections: tuple[RegularSection, ...],
    values: np.ndarray,
    root: int = 0,
) -> None:
    """Write a root-held dense image into ``A(sections)``.

    ``values`` must have the section's shape; in this BSP simulation the
    root's payload is addressed directly (the root packs one message per
    owning rank).
    """
    _check(vm, array, sections, root)
    shape = _section_shape(sections)
    values = np.asarray(values, dtype=float)
    if values.shape != shape:
        raise ValueError(f"values shape {values.shape} != section shape {shape}")
    flat = values.reshape(-1)
    tag = ("scatter_section", array.name)

    def pack_phase(ctx):
        if ctx.rank != root:
            return
        for dest in range(ctx.p):
            positions = _positions(array, tuple(sections), dest)
            ctx.send(dest, tag, flat[positions] if len(positions) else np.empty(0))

    def unpack_phase(ctx):
        payload = ctx.recv(root, tag)
        addrs = flat_local_addresses(array, tuple(sections), ctx.rank)
        if len(addrs):
            ctx.memory(array.name)[addrs] = payload

    vm.bsp(pack_phase, unpack_phase)


def reduce_section(
    vm: VirtualMachine,
    array: DistributedArray,
    sections: tuple[RegularSection, ...],
    op: Callable[[np.ndarray], float] = np.sum,
    combine: Callable[[float, float], float] = float.__add__,
    root: int = 0,
) -> float:
    """Fold ``A(sections)`` without materializing it: each rank applies
    ``op`` to its owned values, the root combines the partials.

    Defaults compute the section's sum.  Note ``op`` must be decomposable
    under ``combine`` (sum/add, max/max, ...).
    """
    _check(vm, array, sections, root)
    tag = ("reduce_section", array.name)

    def local_phase(ctx):
        addrs = flat_local_addresses(array, tuple(sections), ctx.rank)
        partial = float(op(ctx.memory(array.name)[addrs])) if len(addrs) else None
        ctx.send(root, tag, partial)

    def combine_phase(ctx):
        if ctx.rank != root:
            return None
        total = None
        for src in range(ctx.p):
            partial = ctx.recv(src, tag)
            if partial is None:
                continue
            total = partial if total is None else combine(total, partial)
        return total

    _, results = vm.bsp(local_phase, combine_phase)
    return results[root]
