"""Access plans: everything one processor needs to traverse a section.

An :class:`AccessPlan` bundles the outputs of the paper's algorithm --
starting/last local addresses, the visit-order ΔM table, and the
offset-indexed tables for node-code shape 8(d) -- together with the
bounded-section element count.  Plans for plain ``cyclic(k)``
distributions come from :func:`make_plan`; plans for
:class:`repro.distribution.DistributedArray` dimensions (including
affine alignments) from :func:`make_array_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.access import compute_access_table
from ..core.counting import last_location, local_count
from ..core.multidim import compose_flat_addresses
from ..core.offsets import compute_offset_tables
from ..distribution.array import DistributedArray
from ..distribution.layout import CyclicLayout
from ..distribution.localize import localize_section
from ..distribution.section import RegularSection
from .plancache import cached_localized_arrays

__all__ = ["AccessPlan", "make_plan", "make_array_plan", "flat_local_addresses"]


@dataclass(frozen=True, slots=True)
class AccessPlan:
    """Per-processor traversal plan for a bounded section.

    ``delta_m`` is in visit order (shapes a-c); ``delta_m_by_offset`` /
    ``next_offset`` / ``start_offset`` feed shape (d).  ``count`` is the
    number of elements the processor owns within the bounds; ``count == 0``
    plans have ``start_local is None``.
    """

    p: int
    k: int
    m: int
    count: int
    length: int
    start_local: int | None
    last_local: int | None
    delta_m: tuple[int, ...]
    start_offset: int | None
    delta_m_by_offset: tuple[int, ...]
    next_offset: tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def descending(self) -> "AccessPlan":
        """The same bounded traversal in *decreasing* index order.

        The paper's Section 2 treats negative strides "analogously"; in
        table terms, the descending walk starts at the last owned
        element and follows the ascending cycle's gaps reversed and
        negated, rotated so the anchor is the last element's position in
        the cycle.  Shape-(d) tables are direction-specific and are not
        carried over (``start_offset is None``); use shapes a-c or the
        dedicated descending filler.
        """
        if self.is_empty:
            return self
        pos_last = (self.count - 1) % self.length
        gaps = tuple(
            -self.delta_m[(pos_last - 1 - j) % self.length]
            for j in range(self.length)
        )
        return AccessPlan(
            p=self.p,
            k=self.k,
            m=self.m,
            count=self.count,
            length=self.length,
            start_local=self.last_local,
            last_local=self.start_local,
            delta_m=gaps,
            start_offset=None,
            delta_m_by_offset=(),
            next_offset=(),
        )


def make_plan(p: int, k: int, l: int, u: int, s: int, m: int) -> AccessPlan:
    """Build the full plan for ``A(l:u:s)`` on processor ``m`` under an
    identity-aligned ``cyclic(k)`` distribution.

    Negative strides are normalized first (the paper's Section 2
    reduction); traversal is always in increasing index order.
    """
    section = RegularSection(l, u, s).normalized()
    if section.is_empty:
        return AccessPlan(p, k, m, 0, 0, None, None, (), None, (), ())
    l, u, s = section.lower, section.upper, section.stride

    count = local_count(p, k, l, u, s, m)
    if count == 0:
        return AccessPlan(p, k, m, 0, 0, None, None, (), None, (), ())

    table = compute_access_table(p, k, l, s, m)
    offsets = compute_offset_tables(p, k, l, s, m)
    layout = CyclicLayout(p, k)
    last_global = last_location(p, k, l, u, s, m)
    return AccessPlan(
        p=p,
        k=k,
        m=m,
        count=count,
        length=table.length,
        start_local=table.start_local,
        last_local=layout.local_address_on(last_global, m),
        delta_m=table.gaps,
        start_offset=offsets.start_offset,
        delta_m_by_offset=offsets.delta_m,
        next_offset=offsets.next_offset,
    )


def make_array_plan(
    array: DistributedArray, dim: int, section: RegularSection, rank: int
) -> AccessPlan:
    """Plan for one dimension of a :class:`DistributedArray` section.

    Slots are *compressed array-local* slots (alignment-aware, via the
    two-application scheme); for identity alignments the result is
    identical to :func:`make_plan`.  Shape-(d) tables are not available
    for non-identity alignments (``start_offset is None``) because the
    offset-indexed form assumes the template walk -- shapes (a)-(c) and
    (v) work for every plan.
    """
    d = array._dims[dim]
    if d.layout is None:
        raise ValueError(f"dimension {dim} of {array.name} is not distributed")
    coords = array.grid.coordinates(rank)
    m = coords[d.axis_map.grid_axis]
    p, k = d.layout.p, d.layout.k

    norm = section.normalized()
    if norm.is_empty:
        return AccessPlan(p, k, m, 0, 0, None, None, (), None, (), ())

    if d.axis_map.alignment.is_identity:
        plan = make_plan(p, k, norm.lower, norm.upper, norm.stride, m)
        return plan

    table = localize_section(p, k, d.extent, d.axis_map.alignment, norm, m)
    if table.is_empty:
        return AccessPlan(p, k, m, 0, 0, None, None, (), None, (), ())
    image = d.axis_map.alignment.apply_section(norm).normalized()
    count = local_count(p, k, image.lower, image.upper, image.stride, m)
    if count == 0:
        # The unbounded cycle touches this rank but the bounded section
        # ends before its first owned element.
        return AccessPlan(p, k, m, 0, 0, None, None, (), None, (), ())
    slots = table.slots(count)
    return AccessPlan(
        p=p,
        k=k,
        m=m,
        count=count,
        length=table.length,
        start_local=slots[0],
        last_local=slots[-1],
        delta_m=table.gaps,
        start_offset=None,
        delta_m_by_offset=(),
        next_offset=(),
    )


def flat_local_addresses(
    array: DistributedArray, sections: tuple[RegularSection, ...], rank: int
) -> np.ndarray:
    """All flat local addresses of a multidimensional section on ``rank``.

    The Section-2 reduction, vectorized: each distributed dimension runs
    the 1-D algorithm for its slot vector and the flat addresses are a
    broadcast outer sum over the row-major local shape.  Order is
    odometer (last dimension fastest), matching
    :meth:`DistributedArray.local_section_elements`.
    """
    if len(sections) != array.rank:
        raise ValueError(
            f"need one section per dimension: {array.rank} dims, "
            f"{len(sections)} sections"
        )
    coords = array.grid.coordinates(rank)
    per_dim: list[np.ndarray] = []
    for sec, dim in zip(sections, array._dims):
        norm = sec.normalized()
        if norm.is_empty:
            return np.empty(0, dtype=np.int64)
        if dim.layout is None:
            if norm.lower < 0 or norm.upper >= dim.extent:
                raise IndexError(f"section {sec} outside extent {dim.extent}")
            per_dim.append(np.arange(norm.lower, norm.upper + 1, norm.stride,
                                     dtype=np.int64))
        else:
            coord = coords[dim.axis_map.grid_axis]
            _, slots = cached_localized_arrays(
                dim.layout.p, dim.layout.k, dim.extent,
                dim.axis_map.alignment, sec, coord,
            )
            per_dim.append(slots)
    return compose_flat_addresses(per_dim, array.local_shape(rank))
