"""Triangular and trapezoidal iteration spaces (paper Section 8).

The paper's future work names "diagonal or trapezoidal array sections".
A trapezoidal loop nest over a 2-D array touches, in row ``i``, the
column section ``lo(i) : hi(i) : s`` where the bounds are affine in
``i`` -- the lower-triangular update of an LU factorization
(``A(i, i:n-1)``) being the canonical instance.

Per row this is exactly the paper's 1-D problem with a *varying lower
bound*; the key cost observation is the one the paper makes in Section
6.1: the transition structure depends only on ``(p, k, s)``, so one
:class:`repro.core.fsm.AccessFSM` serves every row, and each row costs
only its start-location solve plus its owned elements.

:func:`trapezoid_local_elements` enumerates a rank's elements of the
trapezoid; :func:`trapezoid_local_counts` gives the per-rank load (the
load-balance figure block-cyclic distributions exist to improve).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.counting import local_count, section_length
from ..core.generator import RLCursor
from ..distribution.array import DistributedArray
from ..distribution.section import RegularSection

__all__ = ["Trapezoid", "trapezoid_local_elements", "trapezoid_local_counts"]


@dataclass(frozen=True, slots=True)
class Trapezoid:
    """Row ``i`` in ``rows`` touches columns ``col_lo(i) : col_hi(i) : col_stride``
    with affine bounds ``col_lo(i) = a_lo*i + b_lo`` (clamped to
    ``[0, ncols)``) and likewise for ``col_hi``.

    ``a_lo = 1, b_lo = 0, a_hi = 0, b_hi = ncols-1`` is the upper
    triangle ``A(i, i:)``; ``a_lo = 0, b_lo = 0, a_hi = 1, b_hi = 0``
    the lower triangle ``A(i, :i+1)``.
    """

    rows: RegularSection
    a_lo: int
    b_lo: int
    a_hi: int
    b_hi: int
    col_stride: int = 1

    def __post_init__(self) -> None:
        if self.col_stride <= 0:
            raise ValueError(
                f"column stride must be positive, got {self.col_stride}"
            )

    def col_section(self, i: int, ncols: int) -> RegularSection:
        lo = min(max(self.a_lo * i + self.b_lo, 0), ncols - 1)
        hi = min(max(self.a_hi * i + self.b_hi, 0), ncols - 1)
        return RegularSection(lo, hi, self.col_stride)


def _dims(array: DistributedArray):
    if array.rank != 2:
        raise ValueError(f"{array.name} must be rank-2, got rank {array.rank}")
    dim_r, dim_c = array._dims
    for dim, name in ((dim_r, "row"), (dim_c, "column")):
        if dim.layout is None:
            raise ValueError(f"{array.name}: {name} dimension is not distributed")
        if not dim.axis_map.alignment.is_identity:
            raise ValueError(
                f"{array.name}: trapezoids require identity alignment on the "
                f"{name} dimension"
            )
    return dim_r, dim_c


def trapezoid_local_elements(
    array: DistributedArray, trap: Trapezoid, rank: int
) -> list[tuple[tuple[int, int], int]]:
    """``((i, j), flat_local_address)`` pairs of the trapezoid owned by
    ``rank``, rows ascending then columns ascending.

    Cost: O(owned rows * (log + owned columns)) -- each owned row pays
    one start-location solve (via :class:`RLCursor`) plus its elements;
    no per-row table is materialized.
    """
    dim_r, dim_c = _dims(array)
    nrows, ncols = array.shape
    rc = array.grid.coordinates(rank)
    mr = rc[dim_r.axis_map.grid_axis]
    mc = rc[dim_c.axis_map.grid_axis]
    lshape = array.local_shape(rank)

    rows = trap.rows.normalized()
    if rows.is_empty:
        return []
    if rows.lower < 0 or rows.upper >= nrows:
        raise IndexError(f"row section {trap.rows} outside extent {nrows}")

    out: list[tuple[tuple[int, int], int]] = []
    p_r, k_r = dim_r.layout.p, dim_r.layout.k
    p_c, k_c = dim_c.layout.p, dim_c.layout.k
    for i in rows:
        if dim_r.layout.owner(i) != mr:
            continue
        row_slot = dim_r.layout.local_address(i)
        cols = trap.col_section(i, ncols)
        if cols.is_empty:
            continue
        cursor = RLCursor(p_c, k_c, cols.lower, cols.stride, mc)
        if cursor.is_empty:
            continue
        base = row_slot * lshape[1]
        while cursor.index is not None and cursor.index <= cols.upper:
            out.append(((i, cursor.index), base + cursor.local))
            cursor.advance()
    return out


def trapezoid_local_counts(array: DistributedArray, trap: Trapezoid) -> list[int]:
    """Per-rank element counts of the trapezoid (load-balance profile).

    O(rows * k) total using the counting machinery -- no enumeration of
    elements.
    """
    dim_r, dim_c = _dims(array)
    nrows, ncols = array.shape
    rows = trap.rows.normalized()
    if not rows.is_empty and (rows.lower < 0 or rows.upper >= nrows):
        raise IndexError(f"row section {trap.rows} outside extent {nrows}")
    p_r = dim_r.layout.p
    p_c, k_c = dim_c.layout.p, dim_c.layout.k

    counts = [0] * array.grid.size
    for i in rows:
        mr = dim_r.layout.owner(i)
        cols = trap.col_section(i, ncols)
        if cols.is_empty:
            continue
        for mc in range(p_c):
            n = local_count(p_c, k_c, cols.lower, cols.upper, cols.stride, mc)
            if n == 0:
                continue
            coords = [0] * array.grid.rank
            coords[dim_r.axis_map.grid_axis] = mr
            coords[dim_c.axis_map.grid_axis] = mc
            counts[array.grid.linearize(tuple(coords))] += n
    return counts
