"""HPF runtime: access plans, node-code shapes, communication, execution."""

from .address import AccessPlan, flat_local_addresses, make_array_plan, make_plan
from .codegen import (
    SHAPES,
    fill_descending,
    fill_shape_a,
    fill_shape_b,
    fill_shape_c,
    fill_shape_d,
    fill_vectorized,
    get_shape,
    materialize_addresses,
)
from .commsets import CommSchedule, Transfer, compute_comm_schedule
from .commsets2d import CommSchedule2D, Transfer2D, compute_comm_schedule_2d
from .emit_c import emit_harness, emit_node_code, emit_timing_harness
from .exec import (
    collect,
    distribute,
    execute_combine,
    execute_copy,
    execute_copy_2d,
    execute_fill,
    execute_transpose,
)
from .redistribute import (
    RedistributionStats,
    plan_redistribution,
    redistribute,
    stats_from_schedule,
    traffic_matrix,
)
from .resilient import (
    ExchangeFailure,
    Packet,
    RecoveryEvent,
    ResilienceReport,
    RetryPolicy,
    execute_copy_resilient,
    redistribute_resilient,
)
from .sections_io import gather_section, reduce_section, scatter_section
from .triangular import (
    Trapezoid,
    trapezoid_local_counts,
    trapezoid_local_elements,
)

__all__ = [
    "AccessPlan",
    "make_plan",
    "make_array_plan",
    "flat_local_addresses",
    "fill_descending",
    "SHAPES",
    "get_shape",
    "fill_shape_a",
    "fill_shape_b",
    "fill_shape_c",
    "fill_shape_d",
    "fill_vectorized",
    "materialize_addresses",
    "CommSchedule",
    "Transfer",
    "compute_comm_schedule",
    "distribute",
    "collect",
    "execute_copy",
    "execute_fill",
    "execute_combine",
    "execute_copy_2d",
    "execute_transpose",
    "CommSchedule2D",
    "Transfer2D",
    "compute_comm_schedule_2d",
    "RedistributionStats",
    "plan_redistribution",
    "redistribute",
    "stats_from_schedule",
    "traffic_matrix",
    "ExchangeFailure",
    "Packet",
    "RecoveryEvent",
    "ResilienceReport",
    "RetryPolicy",
    "execute_copy_resilient",
    "redistribute_resilient",
    "Trapezoid",
    "trapezoid_local_counts",
    "trapezoid_local_elements",
    "gather_section",
    "scatter_section",
    "reduce_section",
    "emit_node_code",
    "emit_harness",
    "emit_timing_harness",
]
