"""Communication sets for array-assignment statements.

For a statement ``A(la:ua:sa) = B(lb:ub:sb)`` over differently mapped
arrays, iteration ``t`` reads ``B(lb + t*sb)`` from its owner ``q`` and
writes ``A(la + t*sa)`` on its owner ``r``; whenever ``q != r`` the
value must be communicated.  "Generating local addresses and
communication sets" is exactly the companion problem of the paper's
Chatterjee et al. reference, and the access-sequence machinery makes the
enumeration efficient: each sender enumerates only *its own* elements of
the RHS section (O(#local elements) after an O(k) table construction)
and computes the LHS owner/address arithmetically.

The public :func:`compute_comm_schedule` is fully vectorized: every
sender's RHS elements come from
:func:`repro.distribution.localize.localized_arrays` as index/slot
vectors, the LHS owners and compressed slots are closed-form divmod
arithmetic (:mod:`repro.core.kernels`), and the per-destination
:class:`Transfer` buckets fall out of one ``lexsort`` + boundary split.
:func:`compute_comm_schedule_reference` keeps the original
element-at-a-time loop as the oracle the property tests and benchmarks
compare against.

Rank-1 arrays on rank-1 grids are supported directly; multidimensional
statements decompose per-dimension at the :mod:`repro.runtime.exec`
level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.kernels import local_addresses_of, owners_of
from ..distribution.array import DistributedArray
from ..distribution.localize import localized_arrays, localized_elements
from ..distribution.section import RegularSection

__all__ = [
    "Transfer",
    "CommSchedule",
    "compute_comm_schedule",
    "compute_comm_schedule_reference",
    "iter_dim_buckets",
]


@dataclass(frozen=True, slots=True)
class Transfer:
    """One sender->receiver element list.

    Parallel sequences (int64 vectors on the vectorized path, plain
    tuples from the reference path -- consumers index them uniformly via
    :func:`repro.runtime.exec.as_index`): ``iterations[t]`` is the
    iteration number, ``src_slots[t]`` the sender-local B slot,
    ``dst_slots[t]`` the receiver-local A slot.
    """

    source: int
    dest: int
    iterations: tuple[int, ...] | np.ndarray
    src_slots: tuple[int, ...] | np.ndarray
    dst_slots: tuple[int, ...] | np.ndarray

    def __len__(self) -> int:
        return len(self.iterations)

    def astuples(self) -> tuple:
        """Canonical hashable form ``(source, dest, iterations,
        src_slots, dst_slots)`` with tuple element lists -- the equality
        key the tests compare vectorized and reference schedules by."""
        return (
            self.source,
            self.dest,
            tuple(int(t) for t in self.iterations),
            tuple(int(s) for s in self.src_slots),
            tuple(int(s) for s in self.dst_slots),
        )


@dataclass
class CommSchedule:
    """All transfers of one array-assignment statement.

    ``locals_`` are the ``q == r`` fast-path copies (no network);
    ``transfers`` the cross-processor messages, keyed for deterministic
    iteration.  :meth:`sends_from` / :meth:`receives_at` are backed by
    per-rank indexes built once (lazily, after construction) -- they are
    called every superstep by the executors and the resilient exchange,
    and must not rescan the transfer list each time.
    """

    n_iterations: int
    locals_: list[Transfer] = field(default_factory=list)
    transfers: list[Transfer] = field(default_factory=list)
    _send_index: dict[int, list[Transfer]] | None = field(
        default=None, repr=False, compare=False
    )
    _recv_index: dict[int, list[Transfer]] | None = field(
        default=None, repr=False, compare=False
    )
    _indexed_count: int = field(default=-1, repr=False, compare=False)

    @property
    def total_elements(self) -> int:
        return sum(len(t) for t in self.locals_) + sum(len(t) for t in self.transfers)

    @property
    def communicated_elements(self) -> int:
        return sum(len(t) for t in self.transfers)

    def _reindex(self) -> None:
        if self._indexed_count == len(self.transfers):
            return
        send: dict[int, list[Transfer]] = {}
        recv: dict[int, list[Transfer]] = {}
        for t in self.transfers:
            send.setdefault(t.source, []).append(t)
            recv.setdefault(t.dest, []).append(t)
        self._send_index = send
        self._recv_index = recv
        self._indexed_count = len(self.transfers)

    def sends_from(self, rank: int) -> list[Transfer]:
        self._reindex()
        return self._send_index.get(rank, [])

    def receives_at(self, rank: int) -> list[Transfer]:
        self._reindex()
        return self._recv_index.get(rank, [])


def _check_rank1(array: DistributedArray, role: str) -> None:
    if array.rank != 1:
        raise ValueError(f"{role} array {array.name} must be rank-1 (got rank {array.rank})")
    if array.grid.rank != 1:
        raise ValueError(
            f"{role} array {array.name} must be mapped onto a rank-1 grid"
        )
    if not array.axis_maps[0].distribution.partitions:
        raise ValueError(f"{role} array {array.name} dimension 0 is not distributed")


def _check_conformable(sec_a: RegularSection, sec_b: RegularSection) -> None:
    if len(sec_a) != len(sec_b):
        raise ValueError(
            f"non-conformable sections: |{sec_a}| = {len(sec_a)} vs "
            f"|{sec_b}| = {len(sec_b)}"
        )


def iter_dim_buckets(
    dim_a, sec_a: RegularSection, dim_b, sec_b: RegularSection, q: int
) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
    """Per-destination transfer vectors of one iteration axis, from
    sender coordinate ``q``.

    Yields ``(r, iterations, src_slots, dst_slots)`` for every LHS
    coordinate ``r`` receiving elements from ``q``, ascending in ``r``,
    each vector sorted by iteration number.  One vectorized pass:
    sender-side elements from :func:`localized_arrays`, LHS owners and
    template-local addresses as closed-form divmod arithmetic, LHS
    compressed slots via the (per-destination) vectorized rank function,
    and the bucketing as a single ``lexsort`` + boundary split.

    Shared by the 1-D schedule below and the tensor-product 2-D
    schedule (:mod:`repro.runtime.commsets2d`).
    """
    b_indices, b_slots = localized_arrays(
        dim_b.layout.p,
        dim_b.layout.k,
        dim_b.extent,
        dim_b.axis_map.alignment,
        sec_b,
        q,
    )
    if b_indices.size == 0:
        return
    # Iteration numbers: exact division (every element is a section
    # member), valid for negative strides too.
    t = (b_indices - sec_b.lower) // sec_b.stride
    a_indices = sec_a.lower + t * sec_a.stride

    layout_a = dim_a.layout
    align_a = dim_a.axis_map.alignment
    p_a, k_a = layout_a.p, layout_a.k
    dests = owners_of(a_indices, p_a, k_a, align_a.a, align_a.b)
    addrs = local_addresses_of(a_indices, p_a, k_a, align_a.a, align_a.b)

    order = np.lexsort((t, dests))
    dests_sorted = dests[order]
    bounds = np.flatnonzero(np.diff(dests_sorted)) + 1
    identity = align_a.is_identity
    for seg in np.split(order, bounds):
        r = int(dests[seg[0]])
        if identity:
            # Stride-1 allocation: the compressed slot *is* the
            # template-local address.
            a_slots = addrs[seg]
        else:
            ranks = dim_a.rank_function(r)
            assert ranks is not None
            a_slots = ranks.rank_array(addrs[seg])
        yield r, t[seg], b_slots[seg], a_slots


def compute_comm_schedule(
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
) -> CommSchedule:
    """Communication schedule for ``A(sec_a) = B(sec_b)``, vectorized.

    The two sections must have equal lengths (conformable statement).
    Each sending rank contributes one vectorized pass over its own RHS
    elements -- O(k) table construction plus O(#local elements) vector
    ops; no per-element Python executes.  Produces transfers
    element-for-element identical to
    :func:`compute_comm_schedule_reference`.
    """
    _check_rank1(a, "LHS")
    _check_rank1(b, "RHS")
    _check_conformable(sec_a, sec_b)
    n = len(sec_a)
    schedule = CommSchedule(n_iterations=n)
    if n == 0:
        return schedule

    dim_a = a._dims[0]
    dim_b = b._dims[0]
    for q in range(b.grid.size):
        for r, t, src_slots, dst_slots in iter_dim_buckets(
            dim_a, sec_a, dim_b, sec_b, q
        ):
            for vec in (t, src_slots, dst_slots):
                vec.flags.writeable = False
            transfer = Transfer(
                source=q,
                dest=r,
                iterations=t,
                src_slots=src_slots,
                dst_slots=dst_slots,
            )
            if q == r:
                schedule.locals_.append(transfer)
            else:
                schedule.transfers.append(transfer)
    return schedule


def compute_comm_schedule_reference(
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
) -> CommSchedule:
    """Element-at-a-time schedule construction (the original scalar
    path), kept as the oracle for :func:`compute_comm_schedule` --
    property tests assert both produce identical transfers, and the
    kernel benchmarks report the speedup between them."""
    _check_rank1(a, "LHS")
    _check_rank1(b, "RHS")
    _check_conformable(sec_a, sec_b)
    n = len(sec_a)
    schedule = CommSchedule(n_iterations=n)
    if n == 0:
        return schedule

    dim_a = a._dims[0]
    dim_b = b._dims[0]
    p_b = b.grid.size

    buckets: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for q in range(p_b):
        pairs = localized_elements(
            dim_b.layout.p,
            dim_b.layout.k,
            dim_b.extent,
            dim_b.axis_map.alignment,
            sec_b,
            q,
        )
        for b_index, b_slot in pairs:
            t = sec_b.position_of(b_index)
            a_index = sec_a.element(t)
            r = dim_a.owner(a_index)
            a_slot = dim_a.local_slot(a_index, r)
            buckets.setdefault((q, r), []).append((t, b_slot, a_slot))

    for (q, r), triples in sorted(buckets.items()):
        triples.sort()
        transfer = Transfer(
            source=q,
            dest=r,
            iterations=tuple(t for t, _, _ in triples),
            src_slots=tuple(bs for _, bs, _ in triples),
            dst_slots=tuple(asl for _, _, asl in triples),
        )
        if q == r:
            schedule.locals_.append(transfer)
        else:
            schedule.transfers.append(transfer)
    return schedule
