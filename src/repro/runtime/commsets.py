"""Communication sets for array-assignment statements.

For a statement ``A(la:ua:sa) = B(lb:ub:sb)`` over differently mapped
arrays, iteration ``t`` reads ``B(lb + t*sb)`` from its owner ``q`` and
writes ``A(la + t*sa)`` on its owner ``r``; whenever ``q != r`` the
value must be communicated.  "Generating local addresses and
communication sets" is exactly the companion problem of the paper's
Chatterjee et al. reference, and the access-sequence machinery makes the
enumeration efficient: each sender enumerates only *its own* elements of
the RHS section (O(#local elements) after an O(k) table construction)
and computes the LHS owner/address arithmetically.

Rank-1 arrays on rank-1 grids are supported directly; multidimensional
statements decompose per-dimension at the :mod:`repro.runtime.exec`
level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distribution.array import DistributedArray
from ..distribution.localize import localized_elements
from ..distribution.section import RegularSection

__all__ = ["Transfer", "CommSchedule", "compute_comm_schedule"]


@dataclass(frozen=True, slots=True)
class Transfer:
    """One sender->receiver element list.

    Parallel tuples: ``iterations[t]`` is the iteration number,
    ``src_slots[t]`` the sender-local B slot, ``dst_slots[t]`` the
    receiver-local A slot.
    """

    source: int
    dest: int
    iterations: tuple[int, ...]
    src_slots: tuple[int, ...]
    dst_slots: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.iterations)


@dataclass
class CommSchedule:
    """All transfers of one array-assignment statement.

    ``locals_`` are the ``q == r`` fast-path copies (no network);
    ``transfers`` the cross-processor messages, keyed for deterministic
    iteration.
    """

    n_iterations: int
    locals_: list[Transfer] = field(default_factory=list)
    transfers: list[Transfer] = field(default_factory=list)

    @property
    def total_elements(self) -> int:
        return sum(len(t) for t in self.locals_) + sum(len(t) for t in self.transfers)

    @property
    def communicated_elements(self) -> int:
        return sum(len(t) for t in self.transfers)

    def sends_from(self, rank: int) -> list[Transfer]:
        return [t for t in self.transfers if t.source == rank]

    def receives_at(self, rank: int) -> list[Transfer]:
        return [t for t in self.transfers if t.dest == rank]


def _check_rank1(array: DistributedArray, role: str) -> None:
    if array.rank != 1:
        raise ValueError(f"{role} array {array.name} must be rank-1 (got rank {array.rank})")
    if array.grid.rank != 1:
        raise ValueError(
            f"{role} array {array.name} must be mapped onto a rank-1 grid"
        )
    if not array.axis_maps[0].distribution.partitions:
        raise ValueError(f"{role} array {array.name} dimension 0 is not distributed")


def compute_comm_schedule(
    a: DistributedArray,
    sec_a: RegularSection,
    b: DistributedArray,
    sec_b: RegularSection,
) -> CommSchedule:
    """Communication schedule for ``A(sec_a) = B(sec_b)``.

    The two sections must have equal lengths (conformable statement).
    Enumeration cost: each sending rank walks its own RHS elements once.
    """
    _check_rank1(a, "LHS")
    _check_rank1(b, "RHS")
    if len(sec_a) != len(sec_b):
        raise ValueError(
            f"non-conformable sections: |{sec_a}| = {len(sec_a)} vs "
            f"|{sec_b}| = {len(sec_b)}"
        )
    n = len(sec_a)
    schedule = CommSchedule(n_iterations=n)
    if n == 0:
        return schedule

    dim_a = a._dims[0]
    dim_b = b._dims[0]
    p_b = b.grid.size

    # Pre-resolve per-destination LHS rank functions lazily via the
    # DistributedArray cache (dim.local_slot builds them on demand).
    buckets: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for q in range(p_b):
        pairs = localized_elements(
            dim_b.layout.p,
            dim_b.layout.k,
            dim_b.extent,
            dim_b.axis_map.alignment,
            sec_b,
            q,
        )
        for b_index, b_slot in pairs:
            t = sec_b.position_of(b_index)
            a_index = sec_a.element(t)
            r = dim_a.owner(a_index)
            a_slot = dim_a.local_slot(a_index, r)
            buckets.setdefault((q, r), []).append((t, b_slot, a_slot))

    for (q, r), triples in sorted(buckets.items()):
        triples.sort()
        transfer = Transfer(
            source=q,
            dest=r,
            iterations=tuple(t for t, _, _ in triples),
            src_slots=tuple(bs for _, bs, _ in triples),
            dst_slots=tuple(asl for _, _, asl in triples),
        )
        if q == r:
            schedule.locals_.append(transfer)
        else:
            schedule.transfers.append(transfer)
    return schedule
